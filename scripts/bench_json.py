#!/usr/bin/env python3
"""Generate BENCH_datalife.json from the Criterion benchmark suites.

Runs the cargo benches that cover the observability overhead and the flow
engine stress paths, parses the harness's per-benchmark output lines

    group/bench                                  12345.6 ns/iter  [789 iters]

and writes one record per benchmark:

    [{"bench": "obs_overhead/disabled", "median_ns": 12345.6,
      "samples": 3, "git_rev": "abcdef0"}, ...]

The harness reports one mean per bench per invocation, so the suite is run
--repeat times (default 3) and `median_ns` is the median of those means
(`samples` = how many means were aggregated) — medians damp the scheduler
noise of shared CI runners. The script also prints the obs-disabled
overhead (obs_overhead/disabled vs the plain end_to_end run of the same
workload) and, with --max-overhead-pct, fails when it exceeds the budget.

Usage:
    python3 scripts/bench_json.py [-o BENCH_datalife.json]
        [--bench simulation --bench analysis] [--repeat 3]
        [--max-overhead-pct 2.0]
        [--from-file saved_output.txt]   # parse instead of running cargo
"""

import argparse
import json
import re
import statistics
import subprocess
import sys
from pathlib import Path

LINE_RE = re.compile(
    r"^(?P<bench>\S+)\s+(?P<ns>[0-9]+(?:\.[0-9]+)?) ns/iter\s+\[(?P<iters>[0-9]+) iters\]"
)

REPO = Path(__file__).resolve().parent.parent


def git_rev():
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO, capture_output=True, text=True, check=True,
        )
        return out.stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def run_benches(benches):
    cmd = ["cargo", "bench", "-p", "dfl-bench"]
    for b in benches:
        cmd += ["--bench", b]
    print(f"+ {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, cwd=REPO, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        sys.exit(f"cargo bench failed with exit code {proc.returncode}")
    return proc.stdout


def parse(text):
    """One {bench: mean_ns} mapping per harness invocation's output."""
    means = {}
    for line in text.splitlines():
        m = LINE_RE.match(line.strip())
        if m:
            means[m.group("bench")] = float(m.group("ns"))
    return means


def aggregate(runs, rev):
    """Median across repeated runs, one record per bench."""
    benches = {}
    for means in runs:
        for bench, ns in means.items():
            benches.setdefault(bench, []).append(ns)
    return [
        {
            "bench": bench,
            "median_ns": statistics.median(values),
            "samples": len(values),
            "git_rev": rev,
        }
        for bench, values in sorted(benches.items())
    ]


def overhead_pct(runs):
    """obs-disabled vs the identically configured adjacent baseline run.

    Uses the best (minimum) mean across repeats for both sides: the two
    benches execute identical code, so any positive delta is scheduler
    noise, and min-of-N converges on the unthrottled cost much faster than
    the median does on a shared runner.
    """
    disabled = [m["obs_overhead/disabled"] for m in runs if "obs_overhead/disabled" in m]
    baseline = [m["obs_overhead/baseline_no_obs"] for m in runs
                if "obs_overhead/baseline_no_obs" in m]
    if not disabled or not baseline:
        return None
    return (min(disabled) / min(baseline) - 1.0) * 100.0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("-o", "--out", default=str(REPO / "BENCH_datalife.json"))
    ap.add_argument("--bench", action="append", dest="benches",
                    help="bench target to run (repeatable); "
                         "default: simulation analysis serve")
    ap.add_argument("--from-file", help="parse saved bench output instead of running cargo")
    ap.add_argument("--repeat", type=int, default=3,
                    help="how many times to run the suite (median taken per bench)")
    ap.add_argument("--max-overhead-pct", type=float, default=None,
                    help="fail if obs-disabled overhead exceeds this percentage")
    args = ap.parse_args()

    if args.from_file:
        runs = [parse(Path(args.from_file).read_text())]
    else:
        benches = args.benches or ["simulation", "analysis", "serve"]
        runs = [parse(run_benches(benches)) for _ in range(max(1, args.repeat))]

    records = aggregate(runs, git_rev())
    if not records:
        sys.exit("no benchmark lines parsed — was cargo bench run in --test mode?")
    groups = {r["bench"].split("/")[0] for r in records}
    for required in ("obs_overhead", "flow_stress_1k"):
        if required not in groups:
            sys.exit(f"required bench group '{required}' missing from output")

    Path(args.out).write_text(json.dumps(records, indent=2) + "\n")
    print(f"wrote {args.out}: {len(records)} benches across {len(groups)} groups")

    pct = overhead_pct(runs)
    if pct is not None:
        print(f"obs-disabled overhead vs plain run: {pct:+.2f}%")
        if args.max_overhead_pct is not None and pct > args.max_overhead_pct:
            sys.exit(f"obs-disabled overhead {pct:+.2f}% exceeds "
                     f"budget {args.max_overhead_pct:.2f}%")


if __name__ == "__main__":
    main()
