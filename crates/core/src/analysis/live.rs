//! Online (in-situ) DFL analysis: an incremental graph builder fed task by
//! task from a running workflow, plus windowed blame attribution.
//!
//! The post-hoc pipeline builds a [`DflGraph`] from a complete
//! [`MeasurementSet`] after the run ends. [`LiveDfl`] instead *folds* each
//! completed task's measurement records into an accumulating set as the run
//! streams them out, and can materialize the current graph, critical path,
//! and caterpillar at any point — the live "what is the run's shape so far"
//! view the paper's in-situ motivation calls for.
//!
//! # Equivalence guarantee
//!
//! Batch graph construction assigns vertex IDs in measurement order (all
//! tasks, then data files, then edges), and the critical-path DP breaks
//! cost ties by vertex ID — so a *different* construction order could pick
//! a different (equal-cost) path. `LiveDfl` therefore keeps its folded
//! state in the collector's canonical order regardless of fold order: tasks
//! sorted by [`TaskId`] (the monitor's begin order), files by [`FileId`]
//! (intern order), records by `(task, file)` — exactly what
//! [`MeasurementSet`] export produces. Folding every event of a finished
//! run, in any arrival order, therefore reproduces the batch
//! [`critical_path`]/[`caterpillar`] results **bit for bit**. The
//! differential property suite locks this down on generated DAG runs,
//! fault/retry runs included.
//!
//! # Blame
//!
//! [`Blame`] answers "where did this window's time go": every span retiring
//! inside a window contributes its full duration to its `(category,
//! subject)` bucket — e.g. `(run, node:0)`, `(flow, tier:beegfs)`,
//! `(queued, node:1)`. A long transfer is attributed to the window in which
//! it completes (spans are emitted at close time), which keeps the fold
//! single-pass and deterministic. Entries sort by descending busy time, so
//! the head of the list is the entity gating progress right now.

use std::collections::{BTreeMap, HashMap};

use serde::Serialize;

use crate::analysis::caterpillar::{caterpillar, Caterpillar, CaterpillarRule};
use crate::analysis::cost::CostModel;
use crate::analysis::critical_path::CriticalPath;
use crate::analysis::incremental::{EnginePath, IncrementalGcpa};
use crate::graph::build::{edge_props_for, logical_path};
use crate::graph::{DflGraph, EdgeId, Vertex, VertexId, VertexKind, VertexProps};
use crate::props::{DataProps, FlowDir, TaskProps};
use dfl_trace::stats::FileRecord;
use dfl_trace::{FileId, FlowKind, MeasurementSet, TaskFileRecord, TaskId, TaskRecord};

/// File keys sort after every task key (tasks precede files in canonical
/// vertex order).
const FILE_KEY_BASE: u64 = 1 << 32;

/// Incremental DFL builder with batch-equivalent materialization (see
/// module docs).
#[derive(Debug)]
pub struct LiveDfl {
    model: CostModel,
    set: MeasurementSet,
    /// Result caches, invalidated by any fold. The graph is the *canonical*
    /// graph (batch ids), rebuilt on demand for `graph()`/`caterpillar()`;
    /// the critical path comes from the incremental engine and is already
    /// translated to canonical ids.
    graph: Option<DflGraph>,
    cp: Option<CriticalPath>,
    /// The incremental GCPA engine: holds a fold-order twin of the graph
    /// keyed so its tie-breaks replicate canonical order (see
    /// [`IncrementalGcpa`] docs), refreshed cone-by-cone per fold.
    eng: IncrementalGcpa,
    /// Canonical trace ids → engine vertex ids.
    task_v: BTreeMap<TaskId, VertexId>,
    file_v: BTreeMap<FileId, VertexId>,
    /// The engine edges currently materialized for each task's records
    /// (unlinked wholesale when the task refolds).
    task_edges: BTreeMap<TaskId, Vec<EdgeId>>,
    /// Files referenced by each task's current records (for record-count
    /// bookkeeping on refold).
    task_files: BTreeMap<TaskId, Vec<FileId>>,
    /// Live record count per file: a file vertex participates in endpoint
    /// selection only while ≥ 1 folded record references it (the batch
    /// builder materializes exactly those files).
    file_recs: BTreeMap<FileId, u32>,
}

/// The current critical path's head: the endpoint vertex the batch DP
/// selects, i.e. where the dominant cost chain currently ends.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LiveHead {
    /// Display name of the endpoint vertex.
    pub vertex: String,
    /// `"task"` or `"data"`.
    pub kind: &'static str,
    /// Total cost of the current critical path under the live model.
    pub total_cost: f64,
    /// Vertices on the current path.
    pub path_len: usize,
}

impl LiveDfl {
    pub fn new(model: CostModel) -> Self {
        LiveDfl {
            model,
            set: MeasurementSet { tasks: Vec::new(), files: Vec::new(), records: Vec::new() },
            graph: None,
            cp: None,
            eng: IncrementalGcpa::new(model),
            task_v: BTreeMap::new(),
            file_v: BTreeMap::new(),
            task_edges: BTreeMap::new(),
            task_files: BTreeMap::new(),
            file_recs: BTreeMap::new(),
        }
    }

    /// Folds a file-table entry (idempotent per [`FileId`]; a later fold
    /// with the same ID replaces the entry, since sizes grow as the run
    /// writes).
    pub fn fold_file(&mut self, f: &FileRecord) {
        match self.set.files.binary_search_by_key(&f.file, |x| x.file) {
            Ok(i) => {
                let cur = &self.set.files[i];
                if cur.path != f.path || cur.size != f.size || cur.block_size != f.block_size {
                    self.set.files[i] = f.clone();
                    // Data-vertex properties feed no cost model, so the
                    // engine graph needs no touch-up; only the canonical
                    // rebuild caches go stale.
                    self.invalidate();
                }
            }
            Err(i) => {
                self.set.files.insert(i, f.clone());
                self.materialize_file(f.file);
                self.invalidate();
            }
        }
    }

    /// Creates the engine vertex (and pending edges) for a file that just
    /// joined the file table while records referencing it were already
    /// folded — the state where the batch builder would first materialize
    /// it. Unreferenced files get no vertex, exactly like batch.
    fn materialize_file(&mut self, file: FileId) {
        if self.file_recs.get(&file).copied().unwrap_or(0) == 0 {
            return;
        }
        debug_assert!(!self.file_v.contains_key(&file), "vertex exists only once referenced+known");
        let fv = self.add_file_vertex(file);
        // Connect every folded record that was waiting for this vertex
        // (records of unknown files add no edges, per the batch skip rule).
        let waiting: Vec<TaskFileRecord> =
            self.set.records.iter().filter(|r| r.file == file).cloned().collect();
        for r in &waiting {
            self.add_record_edges(r, fv);
        }
    }

    /// Adds the engine vertex for a known, referenced file.
    fn add_file_vertex(&mut self, file: FileId) -> VertexId {
        let i = self
            .set
            .files
            .binary_search_by_key(&file, |x| x.file)
            .expect("file table entry exists");
        let f = &self.set.files[i];
        let fv = self.eng.add_vertex(
            Vertex {
                kind: VertexKind::Data,
                name: f.path.clone(),
                logical: logical_path(&f.path),
                props: VertexProps::Data(DataProps {
                    size: f.size,
                    block_size: f.block_size,
                    instances: 1,
                    ..Default::default()
                }),
            },
            FILE_KEY_BASE | u64::from(file.0),
        );
        self.file_v.insert(file, fv);
        fv
    }

    /// Adds one record's producer/consumer engine edges and tracks them
    /// under the record's task for later retraction.
    fn add_record_edges(&mut self, r: &TaskFileRecord, fv: VertexId) {
        let tv = self.task_v[&r.task];
        let life = self
            .set
            .tasks
            .binary_search_by_key(&r.task, |x| x.task)
            .map(|i| self.set.tasks[i].lifetime_ns())
            .unwrap_or(0);
        let edges = self.task_edges.entry(r.task).or_default();
        for k in r.flow_kinds() {
            let props = edge_props_for(r, k, life);
            let e = match k {
                FlowKind::Producer => self.eng.add_edge(tv, fv, FlowDir::Producer, props),
                FlowKind::Consumer => self.eng.add_edge(fv, tv, FlowDir::Consumer, props),
            };
            edges.push(e);
        }
    }

    /// Folds one completed task and its per-file records. Re-folding the
    /// same [`TaskId`] replaces the earlier fold (latest wins), so feeding
    /// per-window snapshots is as valid as feeding one event per task.
    pub fn fold_task(&mut self, t: &TaskRecord, records: &[TaskFileRecord]) {
        match self.set.tasks.binary_search_by_key(&t.task, |x| x.task) {
            Ok(i) => self.set.tasks[i] = t.clone(),
            Err(i) => self.set.tasks.insert(i, t.clone()),
        }
        // Drop this task's previous records, then splice the new batch in
        // canonical (task, file) position.
        self.set.records.retain(|r| r.task != t.task);
        for r in records {
            debug_assert_eq!(r.task, t.task, "record folded under the wrong task");
            let at = self
                .set
                .records
                .binary_search_by_key(&(r.task, r.file), |x| (x.task, x.file))
                .unwrap_or_else(|i| i);
            self.set.records.insert(at, r.clone());
        }
        self.sync_task(t, records);
        self.invalidate();
    }

    /// Mirrors one task fold into the engine: refresh the task vertex,
    /// retract the previous fold's edges and file references, then add the
    /// new records' edges. Only the touched vertices' cones go dirty.
    fn sync_task(&mut self, t: &TaskRecord, records: &[TaskFileRecord]) {
        let props = TaskProps {
            lifetime_ns: t.lifetime_ns(),
            start_ns: t.start_ns,
            end_ns: t.end_ns,
            instances: 1,
        };
        if let Some(&tv) = self.task_v.get(&t.task) {
            self.eng.set_vertex_props(tv, VertexProps::Task(props));
        } else {
            let tv = self.eng.add_vertex(
                Vertex {
                    kind: VertexKind::Task,
                    name: t.name.clone(),
                    logical: t.logical.clone(),
                    props: VertexProps::Task(props),
                },
                u64::from(t.task.0),
            );
            self.task_v.insert(t.task, tv);
        }
        // Retract the previous fold: unlink its edges and release its file
        // references. A file with no remaining references leaves endpoint
        // selection, exactly as the batch builder would drop its vertex.
        for e in self.task_edges.remove(&t.task).unwrap_or_default() {
            self.eng.unlink_edge(e);
        }
        for f in self.task_files.remove(&t.task).unwrap_or_default() {
            let n = self.file_recs.get_mut(&f).expect("referenced file has a count");
            *n -= 1;
            if *n == 0 {
                if let Some(&fv) = self.file_v.get(&f) {
                    self.eng.set_active(fv, false);
                }
            }
        }
        // Apply the new fold.
        let mut files = Vec::with_capacity(records.len());
        for r in records {
            files.push(r.file);
            let n = self.file_recs.entry(r.file).or_insert(0);
            *n += 1;
            let newly_referenced = *n == 1;
            if self.set.files.binary_search_by_key(&r.file, |x| x.file).is_err() {
                continue; // unknown file: no vertex, no edges (batch skip rule)
            }
            let fv = match self.file_v.get(&r.file) {
                Some(&fv) => {
                    if newly_referenced {
                        self.eng.set_active(fv, true);
                    }
                    fv
                }
                None => self.add_file_vertex(r.file),
            };
            self.add_record_edges(r, fv);
        }
        self.task_files.insert(t.task, files);
    }

    fn invalidate(&mut self) {
        self.graph = None;
        self.cp = None;
    }

    /// The cost model this live view folds under.
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Tasks folded so far.
    pub fn task_count(&self) -> usize {
        self.set.tasks.len()
    }

    /// Task↔file records folded so far.
    pub fn record_count(&self) -> usize {
        self.set.records.len()
    }

    /// The accumulated measurement set, in canonical export order.
    pub fn measurements(&self) -> &MeasurementSet {
        &self.set
    }

    /// The current graph, built through the same canonical path as the
    /// batch pipeline (memoized until the next fold).
    pub fn graph(&mut self) -> &DflGraph {
        if self.graph.is_none() {
            self.graph = Some(DflGraph::from_measurements(&self.set));
        }
        self.graph.as_ref().expect("just built")
    }

    /// The current generalized critical path (memoized until the next
    /// fold). Identical to `critical_path(&from_measurements(set), model)`
    /// on the same folded state — but computed by the incremental engine,
    /// which only refreshes the cone the folds since the last query dirtied.
    pub fn critical_path(&mut self) -> &CriticalPath {
        if self.cp.is_none() {
            let ep = self.eng.critical_path();
            self.cp = Some(self.translate(&ep));
        }
        self.cp.as_ref().expect("just computed")
    }

    /// Rewrites an engine path into canonical batch ids: tasks map to their
    /// rank in the task table, files to task-count + their rank among
    /// *referenced* files, edges to their position in the batch builder's
    /// record-order enumeration. O(path + records), no graph rebuild.
    fn translate(&self, ep: &EnginePath) -> CriticalPath {
        let t_count = self.set.tasks.len();
        // Files the batch builder materializes, in canonical (FileId) order.
        let refd: Vec<FileId> = self
            .set
            .files
            .iter()
            .map(|f| f.file)
            .filter(|f| self.file_recs.get(f).copied().unwrap_or(0) > 0)
            .collect();
        let vertices: Vec<VertexId> = ep
            .vertices
            .iter()
            .map(|&v| {
                let key = self.eng.key_of(v);
                if key < FILE_KEY_BASE {
                    let t = TaskId(key as u32);
                    let i = self
                        .set
                        .tasks
                        .binary_search_by_key(&t, |x| x.task)
                        .expect("task on path is folded");
                    VertexId(i as u32)
                } else {
                    let f = FileId((key - FILE_KEY_BASE) as u32);
                    let i = refd.binary_search(&f).expect("file on path is referenced");
                    VertexId((t_count + i) as u32)
                }
            })
            .collect();

        // Batch edge ids are assignment order over records × flow kinds
        // (skipping files without vertices); walk that enumeration with a
        // counter and pick out the path's (task, file, kind) triples. Live
        // folds carry at most one record per (task, file), so the triple
        // identifies the edge uniquely.
        let mut want: HashMap<(TaskId, FileId, FlowKind), usize> =
            HashMap::with_capacity(ep.edges.len());
        for (i, &e) in ep.edges.iter().enumerate() {
            let edge = self.eng.graph().edge(e);
            let (src_key, dst_key) = (self.eng.key_of(edge.src), self.eng.key_of(edge.dst));
            let triple = match edge.dir {
                FlowDir::Producer => (
                    TaskId(src_key as u32),
                    FileId((dst_key - FILE_KEY_BASE) as u32),
                    FlowKind::Producer,
                ),
                FlowDir::Consumer => (
                    TaskId(dst_key as u32),
                    FileId((src_key - FILE_KEY_BASE) as u32),
                    FlowKind::Consumer,
                ),
            };
            want.insert(triple, i);
        }
        let mut edges = vec![EdgeId(0); ep.edges.len()];
        let mut next_id: u32 = 0;
        for r in &self.set.records {
            if refd.binary_search(&r.file).is_err() {
                continue; // no file vertex: the batch builder adds no edges
            }
            for k in r.flow_kinds() {
                if let Some(&i) = want.get(&(r.task, r.file, k)) {
                    edges[i] = EdgeId(next_id);
                }
                next_id += 1;
            }
        }
        CriticalPath { vertices, edges, total_cost: ep.total_cost }
    }

    /// The current DFL caterpillar around the live critical path.
    pub fn caterpillar(&mut self, rule: CaterpillarRule) -> Caterpillar {
        let cp = self.critical_path().clone();
        caterpillar(self.graph(), &cp, rule)
    }

    /// Where the dominant cost chain currently ends, or `None` while the
    /// folded graph is still empty.
    pub fn head(&mut self) -> Option<LiveHead> {
        let cp = self.critical_path().clone();
        let &last = cp.vertices.last()?;
        let v = self.graph().vertex(last);
        Some(LiveHead {
            vertex: v.name.clone(),
            kind: if v.is_task() { "task" } else { "data" },
            total_cost: cp.total_cost,
            path_len: cp.vertices.len(),
        })
    }
}

/// One blame bucket of a window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct BlameEntry {
    /// Span category (`run`, `retry`, `recovery`, `flow`, `queued`, …).
    pub category: String,
    /// Track-level subject (`node:0`, `tier:beegfs`, …).
    pub subject: String,
    /// Nanoseconds attributed to this bucket in the window.
    pub busy_ns: u64,
}

/// Streaming per-window blame accumulator (see module docs for the
/// attribution rule).
#[derive(Debug, Default)]
pub struct Blame {
    acc: BTreeMap<(String, String), u64>,
}

impl Blame {
    pub fn new() -> Self {
        Blame::default()
    }

    /// Attributes a retired span's duration to `(category, subject)`.
    pub fn observe(&mut self, category: &str, subject: &str, start_ns: u64, end_ns: u64) {
        let dur = end_ns.saturating_sub(start_ns);
        if dur == 0 {
            return;
        }
        *self.acc.entry((category.to_owned(), subject.to_owned())).or_insert(0) += dur;
    }

    /// Whether anything was attributed since the last window close.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// Closes the window: returns entries sorted by descending busy time
    /// (ties broken by category, then subject — deterministic), clearing
    /// the accumulator for the next window.
    pub fn take_window(&mut self) -> Vec<BlameEntry> {
        let mut entries: Vec<BlameEntry> = std::mem::take(&mut self.acc)
            .into_iter()
            .map(|((category, subject), busy_ns)| BlameEntry { category, subject, busy_ns })
            .collect();
        entries.sort_by(|a, b| {
            b.busy_ns
                .cmp(&a.busy_ns)
                .then_with(|| a.category.cmp(&b.category))
                .then_with(|| a.subject.cmp(&b.subject))
        });
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::critical_path::critical_path;
    use dfl_trace::ids::{FileId, TaskId};

    fn task(id: u32, name: &str, start: u64, end: u64) -> TaskRecord {
        TaskRecord {
            task: TaskId(id),
            name: name.to_owned(),
            logical: name.split('-').next().unwrap_or(name).to_owned(),
            start_ns: start,
            end_ns: end,
        }
    }

    fn file(id: u32, path: &str, size: u64) -> FileRecord {
        FileRecord { file: FileId(id), path: path.to_owned(), size, block_size: 4096 }
    }

    fn record(t: u32, f: u32, read: u64, written: u64) -> TaskFileRecord {
        TaskFileRecord {
            task: TaskId(t),
            task_name: format!("t{t}"),
            file: FileId(f),
            file_path: format!("f{f}"),
            opens: 1,
            read_ops: u64::from(read > 0),
            write_ops: u64::from(written > 0),
            bytes_read: read,
            bytes_written: written,
            read_ns: read / 100,
            write_ns: written / 100,
            open_span_ns: 1_000,
            first_open_ns: 0,
            last_close_ns: 1_000,
            file_size: read.max(written),
            read_distance: Default::default(),
            write_distance: Default::default(),
            histogram: dfl_trace::histogram::BlockHistogram::new(
                4096,
                1,
                dfl_trace::SpatialSampler::keep_all(1),
            ),
        }
    }

    /// gen writes f0; use reads f0, writes f1; sum reads f1.
    fn chain_set() -> MeasurementSet {
        MeasurementSet {
            tasks: vec![
                task(0, "gen-0", 0, 1_000),
                task(1, "use-0", 1_000, 2_000),
                task(2, "sum-0", 2_000, 3_000),
            ],
            files: vec![file(0, "f0", 1 << 20), file(1, "f1", 1 << 19)],
            records: vec![
                record(0, 0, 0, 1 << 20),
                record(1, 0, 1 << 20, 0),
                record(1, 1, 0, 1 << 19),
                record(2, 1, 1 << 19, 0),
            ],
        }
    }

    fn assert_paths_identical(a: &CriticalPath, b: &CriticalPath) {
        assert_eq!(a.vertices, b.vertices);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits(), "cost bit-identical");
    }

    #[test]
    fn full_fold_matches_batch_bit_for_bit() {
        let set = chain_set();
        let batch_g = DflGraph::from_measurements(&set);
        let batch_cp = critical_path(&batch_g, &CostModel::Volume);

        let mut live = LiveDfl::new(CostModel::Volume);
        for f in &set.files {
            live.fold_file(f);
        }
        for t in &set.tasks {
            let recs: Vec<_> =
                set.records.iter().filter(|r| r.task == t.task).cloned().collect();
            live.fold_task(t, &recs);
        }
        assert_paths_identical(live.critical_path(), &batch_cp);
        let live_cat = live.caterpillar(CaterpillarRule::Dfl);
        let batch_cat = caterpillar(&batch_g, &batch_cp, CaterpillarRule::Dfl);
        assert_eq!(live_cat.spine, batch_cat.spine);
        assert_eq!(live_cat.legs, batch_cat.legs);
        assert_eq!(live_cat.extended, batch_cat.extended);
        assert_eq!(live_cat.edges, batch_cat.edges);
    }

    #[test]
    fn fold_order_is_irrelevant() {
        let set = chain_set();
        let batch_cp = critical_path(&DflGraph::from_measurements(&set), &CostModel::Volume);

        // Completion order reversed, files folded late.
        let mut live = LiveDfl::new(CostModel::Volume);
        for t in set.tasks.iter().rev() {
            let recs: Vec<_> =
                set.records.iter().filter(|r| r.task == t.task).cloned().collect();
            live.fold_task(t, &recs);
        }
        for f in set.files.iter().rev() {
            live.fold_file(f);
        }
        assert_paths_identical(live.critical_path(), &batch_cp);
    }

    #[test]
    fn refolding_a_task_replaces_it() {
        let set = chain_set();
        let mut live = LiveDfl::new(CostModel::Volume);
        for f in &set.files {
            live.fold_file(f);
        }
        // Fold gen-0 twice: once with bogus records, then the real ones.
        live.fold_task(&set.tasks[0], &[record(0, 1, 7, 7)]);
        for t in &set.tasks {
            let recs: Vec<_> =
                set.records.iter().filter(|r| r.task == t.task).cloned().collect();
            live.fold_task(t, &recs);
        }
        let batch_cp = critical_path(&DflGraph::from_measurements(&set), &CostModel::Volume);
        assert_paths_identical(live.critical_path(), &batch_cp);
        assert_eq!(live.record_count(), set.records.len());
    }

    #[test]
    fn head_names_the_path_endpoint() {
        let set = chain_set();
        let mut live = LiveDfl::new(CostModel::Volume);
        for f in &set.files {
            live.fold_file(f);
        }
        assert!(live.head().is_none(), "empty fold has no head");
        for t in &set.tasks {
            let recs: Vec<_> =
                set.records.iter().filter(|r| r.task == t.task).cloned().collect();
            live.fold_task(t, &recs);
        }
        let head = live.head().expect("non-empty");
        assert!(head.total_cost > 0.0);
        assert!(head.path_len >= 3, "chain spans tasks and data");
    }

    #[test]
    fn blame_sorts_desc_and_resets() {
        let mut b = Blame::new();
        b.observe("flow", "tier:beegfs", 0, 300);
        b.observe("run", "node:0", 0, 500);
        b.observe("flow", "tier:beegfs", 300, 400);
        b.observe("queued", "node:1", 0, 0); // zero duration ignored
        let w = b.take_window();
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].category.as_str(), w[0].busy_ns), ("run", 500));
        assert_eq!((w[1].subject.as_str(), w[1].busy_ns), ("tier:beegfs", 400));
        assert!(b.take_window().is_empty(), "window close resets");
    }

    #[test]
    fn blame_ties_break_deterministically() {
        let mut b = Blame::new();
        b.observe("run", "node:1", 0, 100);
        b.observe("run", "node:0", 0, 100);
        b.observe("flow", "tier:x", 0, 100);
        let w = b.take_window();
        let labels: Vec<_> =
            w.iter().map(|e| format!("{}:{}", e.category, e.subject)).collect();
        assert_eq!(labels, ["flow:tier:x", "run:node:0", "run:node:1"]);
    }
}
