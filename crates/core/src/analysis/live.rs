//! Online (in-situ) DFL analysis: an incremental graph builder fed task by
//! task from a running workflow, plus windowed blame attribution.
//!
//! The post-hoc pipeline builds a [`DflGraph`] from a complete
//! [`MeasurementSet`] after the run ends. [`LiveDfl`] instead *folds* each
//! completed task's measurement records into an accumulating set as the run
//! streams them out, and can materialize the current graph, critical path,
//! and caterpillar at any point — the live "what is the run's shape so far"
//! view the paper's in-situ motivation calls for.
//!
//! # Equivalence guarantee
//!
//! Batch graph construction assigns vertex IDs in measurement order (all
//! tasks, then data files, then edges), and the critical-path DP breaks
//! cost ties by vertex ID — so a *different* construction order could pick
//! a different (equal-cost) path. `LiveDfl` therefore keeps its folded
//! state in the collector's canonical order regardless of fold order: tasks
//! sorted by [`TaskId`] (the monitor's begin order), files by [`FileId`]
//! (intern order), records by `(task, file)` — exactly what
//! [`MeasurementSet`] export produces. Folding every event of a finished
//! run, in any arrival order, therefore reproduces the batch
//! [`critical_path`]/[`caterpillar`] results **bit for bit**. The
//! differential property suite locks this down on generated DAG runs,
//! fault/retry runs included.
//!
//! # Blame
//!
//! [`Blame`] answers "where did this window's time go": every span retiring
//! inside a window contributes its full duration to its `(category,
//! subject)` bucket — e.g. `(run, node:0)`, `(flow, tier:beegfs)`,
//! `(queued, node:1)`. A long transfer is attributed to the window in which
//! it completes (spans are emitted at close time), which keeps the fold
//! single-pass and deterministic. Entries sort by descending busy time, so
//! the head of the list is the entity gating progress right now.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::analysis::caterpillar::{caterpillar, Caterpillar, CaterpillarRule};
use crate::analysis::cost::CostModel;
use crate::analysis::critical_path::{critical_path, CriticalPath};
use crate::graph::DflGraph;
use dfl_trace::stats::FileRecord;
use dfl_trace::{MeasurementSet, TaskFileRecord, TaskRecord};

/// Incremental DFL builder with batch-equivalent materialization (see
/// module docs).
#[derive(Debug)]
pub struct LiveDfl {
    model: CostModel,
    set: MeasurementSet,
    /// Result caches, invalidated by any fold.
    graph: Option<DflGraph>,
    cp: Option<CriticalPath>,
}

/// The current critical path's head: the endpoint vertex the batch DP
/// selects, i.e. where the dominant cost chain currently ends.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LiveHead {
    /// Display name of the endpoint vertex.
    pub vertex: String,
    /// `"task"` or `"data"`.
    pub kind: &'static str,
    /// Total cost of the current critical path under the live model.
    pub total_cost: f64,
    /// Vertices on the current path.
    pub path_len: usize,
}

impl LiveDfl {
    pub fn new(model: CostModel) -> Self {
        LiveDfl {
            model,
            set: MeasurementSet { tasks: Vec::new(), files: Vec::new(), records: Vec::new() },
            graph: None,
            cp: None,
        }
    }

    /// Folds a file-table entry (idempotent per [`FileId`]; a later fold
    /// with the same ID replaces the entry, since sizes grow as the run
    /// writes).
    pub fn fold_file(&mut self, f: &FileRecord) {
        match self.set.files.binary_search_by_key(&f.file, |x| x.file) {
            Ok(i) => {
                let cur = &self.set.files[i];
                if cur.path != f.path || cur.size != f.size || cur.block_size != f.block_size {
                    self.set.files[i] = f.clone();
                    self.invalidate();
                }
            }
            Err(i) => {
                self.set.files.insert(i, f.clone());
                self.invalidate();
            }
        }
    }

    /// Folds one completed task and its per-file records. Re-folding the
    /// same [`TaskId`] replaces the earlier fold (latest wins), so feeding
    /// per-window snapshots is as valid as feeding one event per task.
    pub fn fold_task(&mut self, t: &TaskRecord, records: &[TaskFileRecord]) {
        match self.set.tasks.binary_search_by_key(&t.task, |x| x.task) {
            Ok(i) => self.set.tasks[i] = t.clone(),
            Err(i) => self.set.tasks.insert(i, t.clone()),
        }
        // Drop this task's previous records, then splice the new batch in
        // canonical (task, file) position.
        self.set.records.retain(|r| r.task != t.task);
        for r in records {
            debug_assert_eq!(r.task, t.task, "record folded under the wrong task");
            let at = self
                .set
                .records
                .binary_search_by_key(&(r.task, r.file), |x| (x.task, x.file))
                .unwrap_or_else(|i| i);
            self.set.records.insert(at, r.clone());
        }
        self.invalidate();
    }

    fn invalidate(&mut self) {
        self.graph = None;
        self.cp = None;
    }

    /// Tasks folded so far.
    pub fn task_count(&self) -> usize {
        self.set.tasks.len()
    }

    /// Task↔file records folded so far.
    pub fn record_count(&self) -> usize {
        self.set.records.len()
    }

    /// The accumulated measurement set, in canonical export order.
    pub fn measurements(&self) -> &MeasurementSet {
        &self.set
    }

    /// The current graph, built through the same canonical path as the
    /// batch pipeline (memoized until the next fold).
    pub fn graph(&mut self) -> &DflGraph {
        if self.graph.is_none() {
            self.graph = Some(DflGraph::from_measurements(&self.set));
        }
        self.graph.as_ref().expect("just built")
    }

    /// The current generalized critical path (memoized until the next
    /// fold). Identical to `critical_path(&from_measurements(set), model)`
    /// on the same folded state.
    pub fn critical_path(&mut self) -> &CriticalPath {
        if self.cp.is_none() {
            if self.graph.is_none() {
                self.graph = Some(DflGraph::from_measurements(&self.set));
            }
            let g = self.graph.as_ref().expect("just built");
            self.cp = Some(critical_path(g, &self.model));
        }
        self.cp.as_ref().expect("just built")
    }

    /// The current DFL caterpillar around the live critical path.
    pub fn caterpillar(&mut self, rule: CaterpillarRule) -> Caterpillar {
        self.critical_path();
        let cp = self.cp.clone().expect("just built");
        caterpillar(self.graph.as_ref().expect("built with cp"), &cp, rule)
    }

    /// Where the dominant cost chain currently ends, or `None` while the
    /// folded graph is still empty.
    pub fn head(&mut self) -> Option<LiveHead> {
        self.critical_path();
        let cp = self.cp.as_ref().expect("just built");
        let g = self.graph.as_ref().expect("built with cp");
        let &last = cp.vertices.last()?;
        let v = g.vertex(last);
        Some(LiveHead {
            vertex: v.name.clone(),
            kind: if v.is_task() { "task" } else { "data" },
            total_cost: cp.total_cost,
            path_len: cp.vertices.len(),
        })
    }
}

/// One blame bucket of a window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct BlameEntry {
    /// Span category (`run`, `retry`, `recovery`, `flow`, `queued`, …).
    pub category: String,
    /// Track-level subject (`node:0`, `tier:beegfs`, …).
    pub subject: String,
    /// Nanoseconds attributed to this bucket in the window.
    pub busy_ns: u64,
}

/// Streaming per-window blame accumulator (see module docs for the
/// attribution rule).
#[derive(Debug, Default)]
pub struct Blame {
    acc: BTreeMap<(String, String), u64>,
}

impl Blame {
    pub fn new() -> Self {
        Blame::default()
    }

    /// Attributes a retired span's duration to `(category, subject)`.
    pub fn observe(&mut self, category: &str, subject: &str, start_ns: u64, end_ns: u64) {
        let dur = end_ns.saturating_sub(start_ns);
        if dur == 0 {
            return;
        }
        *self.acc.entry((category.to_owned(), subject.to_owned())).or_insert(0) += dur;
    }

    /// Whether anything was attributed since the last window close.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// Closes the window: returns entries sorted by descending busy time
    /// (ties broken by category, then subject — deterministic), clearing
    /// the accumulator for the next window.
    pub fn take_window(&mut self) -> Vec<BlameEntry> {
        let mut entries: Vec<BlameEntry> = std::mem::take(&mut self.acc)
            .into_iter()
            .map(|((category, subject), busy_ns)| BlameEntry { category, subject, busy_ns })
            .collect();
        entries.sort_by(|a, b| {
            b.busy_ns
                .cmp(&a.busy_ns)
                .then_with(|| a.category.cmp(&b.category))
                .then_with(|| a.subject.cmp(&b.subject))
        });
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfl_trace::ids::{FileId, TaskId};

    fn task(id: u32, name: &str, start: u64, end: u64) -> TaskRecord {
        TaskRecord {
            task: TaskId(id),
            name: name.to_owned(),
            logical: name.split('-').next().unwrap_or(name).to_owned(),
            start_ns: start,
            end_ns: end,
        }
    }

    fn file(id: u32, path: &str, size: u64) -> FileRecord {
        FileRecord { file: FileId(id), path: path.to_owned(), size, block_size: 4096 }
    }

    fn record(t: u32, f: u32, read: u64, written: u64) -> TaskFileRecord {
        TaskFileRecord {
            task: TaskId(t),
            task_name: format!("t{t}"),
            file: FileId(f),
            file_path: format!("f{f}"),
            opens: 1,
            read_ops: u64::from(read > 0),
            write_ops: u64::from(written > 0),
            bytes_read: read,
            bytes_written: written,
            read_ns: read / 100,
            write_ns: written / 100,
            open_span_ns: 1_000,
            first_open_ns: 0,
            last_close_ns: 1_000,
            file_size: read.max(written),
            read_distance: Default::default(),
            write_distance: Default::default(),
            histogram: dfl_trace::histogram::BlockHistogram::new(
                4096,
                1,
                dfl_trace::SpatialSampler::keep_all(1),
            ),
        }
    }

    /// gen writes f0; use reads f0, writes f1; sum reads f1.
    fn chain_set() -> MeasurementSet {
        MeasurementSet {
            tasks: vec![
                task(0, "gen-0", 0, 1_000),
                task(1, "use-0", 1_000, 2_000),
                task(2, "sum-0", 2_000, 3_000),
            ],
            files: vec![file(0, "f0", 1 << 20), file(1, "f1", 1 << 19)],
            records: vec![
                record(0, 0, 0, 1 << 20),
                record(1, 0, 1 << 20, 0),
                record(1, 1, 0, 1 << 19),
                record(2, 1, 1 << 19, 0),
            ],
        }
    }

    fn assert_paths_identical(a: &CriticalPath, b: &CriticalPath) {
        assert_eq!(a.vertices, b.vertices);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits(), "cost bit-identical");
    }

    #[test]
    fn full_fold_matches_batch_bit_for_bit() {
        let set = chain_set();
        let batch_g = DflGraph::from_measurements(&set);
        let batch_cp = critical_path(&batch_g, &CostModel::Volume);

        let mut live = LiveDfl::new(CostModel::Volume);
        for f in &set.files {
            live.fold_file(f);
        }
        for t in &set.tasks {
            let recs: Vec<_> =
                set.records.iter().filter(|r| r.task == t.task).cloned().collect();
            live.fold_task(t, &recs);
        }
        assert_paths_identical(live.critical_path(), &batch_cp);
        let live_cat = live.caterpillar(CaterpillarRule::Dfl);
        let batch_cat = caterpillar(&batch_g, &batch_cp, CaterpillarRule::Dfl);
        assert_eq!(live_cat.spine, batch_cat.spine);
        assert_eq!(live_cat.legs, batch_cat.legs);
        assert_eq!(live_cat.extended, batch_cat.extended);
        assert_eq!(live_cat.edges, batch_cat.edges);
    }

    #[test]
    fn fold_order_is_irrelevant() {
        let set = chain_set();
        let batch_cp = critical_path(&DflGraph::from_measurements(&set), &CostModel::Volume);

        // Completion order reversed, files folded late.
        let mut live = LiveDfl::new(CostModel::Volume);
        for t in set.tasks.iter().rev() {
            let recs: Vec<_> =
                set.records.iter().filter(|r| r.task == t.task).cloned().collect();
            live.fold_task(t, &recs);
        }
        for f in set.files.iter().rev() {
            live.fold_file(f);
        }
        assert_paths_identical(live.critical_path(), &batch_cp);
    }

    #[test]
    fn refolding_a_task_replaces_it() {
        let set = chain_set();
        let mut live = LiveDfl::new(CostModel::Volume);
        for f in &set.files {
            live.fold_file(f);
        }
        // Fold gen-0 twice: once with bogus records, then the real ones.
        live.fold_task(&set.tasks[0], &[record(0, 1, 7, 7)]);
        for t in &set.tasks {
            let recs: Vec<_> =
                set.records.iter().filter(|r| r.task == t.task).cloned().collect();
            live.fold_task(t, &recs);
        }
        let batch_cp = critical_path(&DflGraph::from_measurements(&set), &CostModel::Volume);
        assert_paths_identical(live.critical_path(), &batch_cp);
        assert_eq!(live.record_count(), set.records.len());
    }

    #[test]
    fn head_names_the_path_endpoint() {
        let set = chain_set();
        let mut live = LiveDfl::new(CostModel::Volume);
        for f in &set.files {
            live.fold_file(f);
        }
        assert!(live.head().is_none(), "empty fold has no head");
        for t in &set.tasks {
            let recs: Vec<_> =
                set.records.iter().filter(|r| r.task == t.task).cloned().collect();
            live.fold_task(t, &recs);
        }
        let head = live.head().expect("non-empty");
        assert!(head.total_cost > 0.0);
        assert!(head.path_len >= 3, "chain spans tasks and data");
    }

    #[test]
    fn blame_sorts_desc_and_resets() {
        let mut b = Blame::new();
        b.observe("flow", "tier:beegfs", 0, 300);
        b.observe("run", "node:0", 0, 500);
        b.observe("flow", "tier:beegfs", 300, 400);
        b.observe("queued", "node:1", 0, 0); // zero duration ignored
        let w = b.take_window();
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].category.as_str(), w[0].busy_ns), ("run", 500));
        assert_eq!((w[1].subject.as_str(), w[1].busy_ns), ("tier:beegfs", 400));
        assert!(b.take_window().is_empty(), "window close resets");
    }

    #[test]
    fn blame_ties_break_deterministically() {
        let mut b = Blame::new();
        b.observe("run", "node:1", 0, 100);
        b.observe("run", "node:0", 0, 100);
        b.observe("flow", "tier:x", 0, 100);
        let w = b.take_window();
        let labels: Vec<_> =
            w.iter().map(|e| format!("{}:{}", e.category, e.subject)).collect();
        assert_eq!(labels, ["flow:tier:x", "run:node:0", "run:node:1"]);
    }
}
