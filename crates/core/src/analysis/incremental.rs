//! Incremental GCPA: a critical-path engine that absorbs graph edits and
//! recomputes only the affected cone (§5.1, made in-situ).
//!
//! The batch [`critical_path`](crate::analysis::critical_path::critical_path)
//! resweeps the whole DAG per query. During a live run the DFL changes by
//! small deltas — one task's lifetime, a handful of edges — so
//! [`IncrementalGcpa`] keeps the longest-path DP state (`dist`/`pred`) and a
//! maintained topological order, and on each edit marks only the edit's
//! target dirty. A query drains the dirty set in position order; a vertex
//! whose recomputed distance is bit-identical to before stops the wave, so
//! the refresh cost is proportional to the cone the edit actually changed.
//!
//! Edge inserts that violate the maintained order are repaired with the
//! Pearce–Kelly restricted double DFS: only vertices whose positions fall
//! between the new edge's endpoints are discovered and permuted, leaving the
//! rest of the order (and the DP state outside the cone) untouched.
//!
//! # Tie-break keys
//!
//! The batch DP breaks cost ties by *canonical* vertex id (the
//! measurement-order id the post-hoc builder assigns). The engine's own ids
//! are allocation-order and therefore fold-order dependent, so every vertex
//! carries an external 64-bit `key` supplied by the caller; ties compare
//! keys instead of engine ids. A caller that keys vertices in canonical
//! order (see [`LiveDfl`](crate::analysis::live::LiveDfl)) gets results
//! bit-identical to the batch DP regardless of fold order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::analysis::cost::CostModel;
use crate::graph::{DflGraph, EdgeId, Vertex, VertexId};
use crate::props::{EdgeProps, FlowDir};

const NONE: u32 = u32::MAX;

/// A critical path in *engine* ids (allocation order). Callers that need
/// canonical ids translate via the keys they supplied.
#[derive(Debug, Clone, PartialEq)]
pub struct EnginePath {
    /// Vertices in flow order (source first), as engine [`VertexId`]s.
    pub vertices: Vec<VertexId>,
    /// Edges in flow order, as engine [`EdgeId`]s.
    pub edges: Vec<EdgeId>,
    /// Total path cost; bit-identical to the batch DP on the same DAG.
    pub total_cost: f64,
}

/// Incremental generalized critical path analysis over an owned [`DflGraph`].
///
/// See the module docs for the dirty-cone and ordering invariants.
#[derive(Debug)]
pub struct IncrementalGcpa {
    g: DflGraph,
    model: CostModel,
    /// Caller-supplied tie-break key per vertex (canonical order).
    key: Vec<u64>,
    /// Whether the vertex participates in endpoint selection. Inactive
    /// vertices (e.g. files whose records were all refolded away) keep
    /// their DP slots but can never end the reported path.
    active: Vec<bool>,
    /// Maintained topological order and its inverse.
    order: Vec<u32>,
    pos: Vec<u32>,
    /// DP state: best path cost ending at v (inclusive of v's vertex cost)
    /// and the chosen in-edge (NONE for sources).
    dist: Vec<f64>,
    pred_v: Vec<u32>,
    pred_e: Vec<u32>,
    /// Memoized per-vertex and per-edge costs under `model`.
    seed: Vec<f64>,
    ecost: Vec<f64>,
    /// Dirty worklist, keyed by position at enqueue time (stale entries are
    /// skipped at pop; Pearce–Kelly re-enqueues anything it moves).
    dirty: BinaryHeap<Reverse<(u32, u32)>>,
    in_dirty: Vec<bool>,
    /// Set when an insert closed a cycle; the next query re-sorts from
    /// scratch (and panics like the batch DP if the cycle persists).
    poisoned: bool,
    /// DFS epoch marks, reused across Pearce–Kelly repairs.
    mark: Vec<u32>,
    epoch: u32,
}

impl IncrementalGcpa {
    pub fn new(model: CostModel) -> Self {
        IncrementalGcpa {
            g: DflGraph::new(),
            model,
            key: Vec::new(),
            active: Vec::new(),
            order: Vec::new(),
            pos: Vec::new(),
            dist: Vec::new(),
            pred_v: Vec::new(),
            pred_e: Vec::new(),
            seed: Vec::new(),
            ecost: Vec::new(),
            dirty: BinaryHeap::new(),
            in_dirty: Vec::new(),
            poisoned: false,
            mark: Vec::new(),
            epoch: 0,
        }
    }

    /// The engine's cost model.
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// The engine's graph (engine ids; read-only — all mutation goes
    /// through the edit methods so the DP state stays consistent).
    pub fn graph(&self) -> &DflGraph {
        &self.g
    }

    /// The canonical tie-break key `v` was added with.
    pub fn key_of(&self, v: VertexId) -> u64 {
        self.key[v.0 as usize]
    }

    /// Adds a vertex with its canonical tie-break key. New vertices have no
    /// edges, so appending to the order keeps it valid and the DP slot is
    /// exact immediately (`dist = vertex cost`).
    pub fn add_vertex(&mut self, v: Vertex, key: u64) -> VertexId {
        let id = self.g.add_vertex(v);
        let vi = id.0;
        self.key.push(key);
        self.active.push(true);
        self.order.push(vi);
        self.pos.push(self.order.len() as u32 - 1);
        self.seed.push(self.model.vertex_cost(&self.g, id));
        self.dist.push(self.seed[vi as usize]);
        self.pred_v.push(NONE);
        self.pred_e.push(NONE);
        self.in_dirty.push(false);
        self.mark.push(0);
        id
    }

    /// Includes/excludes `v` from endpoint selection.
    pub fn set_active(&mut self, v: VertexId, active: bool) {
        self.active[v.0 as usize] = active;
    }

    /// Replaces `v`'s properties (e.g. a refolded task lifetime) and marks
    /// the cone dirty.
    pub fn set_vertex_props(&mut self, v: VertexId, props: crate::graph::VertexProps) {
        self.g.set_vertex_props(v, props);
        self.reseed(v.0);
    }

    /// Adds an edge, repairing the maintained order if the insert runs
    /// backwards through it.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, dir: FlowDir, props: EdgeProps) -> EdgeId {
        let e = self.g.add_edge(src, dst, dir, props);
        self.ecost.push(self.model.edge_cost_props(&self.g.edge(e).props));
        if !self.poisoned && self.pos[src.0 as usize] > self.pos[dst.0 as usize] {
            self.pearce_kelly(src.0, dst.0);
        }
        // Degrees changed at both endpoints (BranchJoin/TaskFanIn vertex
        // costs read them); the destination additionally gained a relaxation
        // candidate.
        self.reseed(src.0);
        self.reseed(dst.0);
        self.mark_dirty(dst.0);
        e
    }

    /// Unlinks an edge (tombstone; engine edge ids are never reused).
    /// Removing an edge can never invalidate a topological order, so only
    /// the DP cone refreshes.
    pub fn unlink_edge(&mut self, e: EdgeId) {
        if !self.g.edge_live(e) {
            return;
        }
        let (s, d) = (self.g.edge(e).src, self.g.edge(e).dst);
        self.g.unlink_edge(e);
        self.reseed(s.0);
        self.reseed(d.0);
        self.mark_dirty(d.0);
    }

    /// Recomputes `v`'s vertex cost and dirties it if the cost moved.
    fn reseed(&mut self, vi: u32) {
        let s = self.model.vertex_cost(&self.g, VertexId(vi));
        if s.to_bits() != self.seed[vi as usize].to_bits() {
            self.seed[vi as usize] = s;
        }
        // Even an unchanged seed needs a dirty mark when called from an
        // edge edit (the relaxation set changed); reseed is only ever
        // called from edits, so always mark.
        self.mark_dirty(vi);
    }

    fn mark_dirty(&mut self, vi: u32) {
        if !self.in_dirty[vi as usize] {
            self.in_dirty[vi as usize] = true;
            self.dirty.push(Reverse((self.pos[vi as usize], vi)));
        }
    }

    /// Pearce–Kelly order repair for a violating insert `u → v`
    /// (`pos[u] > pos[v]`): discover the affected region with two
    /// position-bounded DFS passes, then permute only those slots.
    fn pearce_kelly(&mut self, u: u32, v: u32) {
        let ub = self.pos[u as usize];
        let lb = self.pos[v as usize];
        self.epoch += 1;
        let epoch = self.epoch;

        // Forward from v, restricted to pos ≤ ub. Reaching u means the new
        // edge closed a cycle: poison and let the next query re-sort.
        let mut fwd: Vec<u32> = Vec::new();
        let mut stack = vec![v];
        self.mark[v as usize] = epoch;
        while let Some(w) = stack.pop() {
            fwd.push(w);
            for e in self.g.out_edges(VertexId(w)) {
                let x = self.g.edge(e).dst.0;
                if x == u {
                    self.poisoned = true;
                    return;
                }
                if self.pos[x as usize] <= ub && self.mark[x as usize] != epoch {
                    self.mark[x as usize] = epoch;
                    stack.push(x);
                }
            }
        }

        // Backward from u, restricted to pos ≥ lb.
        let mut bwd: Vec<u32> = Vec::new();
        stack.push(u);
        self.mark[u as usize] = epoch;
        while let Some(w) = stack.pop() {
            bwd.push(w);
            for e in self.g.in_edges(VertexId(w)) {
                let x = self.g.edge(e).src.0;
                if self.pos[x as usize] >= lb && self.mark[x as usize] != epoch {
                    self.mark[x as usize] = epoch;
                    stack.push(x);
                }
            }
        }

        // Permute: the union of both regions' slots, in ascending order,
        // receives first the backward set then the forward set (each in
        // their existing relative order).
        fwd.sort_unstable_by_key(|&w| self.pos[w as usize]);
        bwd.sort_unstable_by_key(|&w| self.pos[w as usize]);
        let mut slots: Vec<u32> =
            bwd.iter().chain(fwd.iter()).map(|&w| self.pos[w as usize]).collect();
        slots.sort_unstable();
        for (slot, &w) in slots.iter().zip(bwd.iter().chain(fwd.iter())) {
            self.order[*slot as usize] = w;
            self.pos[w as usize] = *slot;
            // Dirty entries keyed by a stale position would drain out of
            // order; re-enqueue moved vertices under their new position.
            if self.in_dirty[w as usize] {
                self.dirty.push(Reverse((*slot, w)));
            }
        }
    }

    /// Relaxes `v` over its live in-edges under the batch tie-break
    /// (max cost, then min key; unique keys make this order-independent).
    fn relax(&self, vi: u32) -> (f64, u32, u32) {
        let mut best = f64::NEG_INFINITY;
        let mut best_u = NONE;
        let mut best_e = NONE;
        for e in self.g.in_edges(VertexId(vi)) {
            let ei = e.0 as usize;
            let u = self.g.edge(e).src.0;
            let cand = self.dist[u as usize] + self.ecost[ei];
            if cand > best
                || (cand == best
                    && best_u != NONE
                    && self.key[u as usize] < self.key[best_u as usize])
            {
                best = cand;
                best_u = u;
                best_e = ei as u32;
            }
        }
        if best_e == NONE {
            (self.seed[vi as usize], NONE, NONE)
        } else {
            (best + self.seed[vi as usize], best_u, best_e)
        }
    }

    /// Drains the dirty set in position order. A vertex whose recomputed
    /// distance is bit-identical stops the wave there (its pred may still
    /// be updated — path shape can change at equal cost).
    fn refresh(&mut self) {
        if self.poisoned {
            self.resort();
        }
        while let Some(Reverse((p, vi))) = self.dirty.pop() {
            if !self.in_dirty[vi as usize] || p != self.pos[vi as usize] {
                continue; // stale entry; the live one is elsewhere in the heap
            }
            self.in_dirty[vi as usize] = false;
            let (dv, pu, pe) = self.relax(vi);
            let changed = dv.to_bits() != self.dist[vi as usize].to_bits();
            self.dist[vi as usize] = dv;
            self.pred_v[vi as usize] = pu;
            self.pred_e[vi as usize] = pe;
            if changed {
                let succs: Vec<u32> =
                    self.g.successors(VertexId(vi)).map(|s| s.0).collect();
                for s in succs {
                    self.mark_dirty(s);
                }
            }
        }
    }

    /// Full re-sort fallback after a suspected cycle: recompute the order
    /// from scratch and resweep everything.
    ///
    /// # Panics
    /// Panics if the graph is (still) cyclic — mirroring the batch
    /// [`critical_path`](crate::analysis::critical_path::critical_path).
    fn resort(&mut self) {
        let order = self
            .g
            .topo_flat()
            .expect("critical path requires an acyclic graph")
            .to_vec();
        for (p, &vi) in order.iter().enumerate() {
            self.pos[vi as usize] = p as u32;
        }
        self.order = order;
        self.dirty.clear();
        self.in_dirty.iter_mut().for_each(|b| *b = false);
        for idx in 0..self.order.len() {
            let vi = self.order[idx];
            let (dv, pu, pe) = self.relax(vi);
            self.dist[vi as usize] = dv;
            self.pred_v[vi as usize] = pu;
            self.pred_e[vi as usize] = pe;
        }
        self.poisoned = false;
    }

    /// The current critical path in engine ids, refreshing any pending
    /// dirty cone first. Empty when no vertex is active.
    ///
    /// # Panics
    /// Panics if the folded graph is cyclic (as the batch DP does).
    pub fn critical_path(&mut self) -> EnginePath {
        self.refresh();
        // Endpoint: max dist, ties to the lowest key — identical to the
        // batch DP's ascending-id scan under canonical keys.
        let mut end = NONE;
        let mut end_d = f64::NEG_INFINITY;
        for vi in 0..self.dist.len() as u32 {
            if !self.active[vi as usize] {
                continue;
            }
            let dv = self.dist[vi as usize];
            if end == NONE
                || dv > end_d
                || (dv == end_d && self.key[vi as usize] < self.key[end as usize])
            {
                end = vi;
                end_d = dv;
            }
        }
        if end == NONE {
            return EnginePath { vertices: vec![], edges: vec![], total_cost: 0.0 };
        }
        let mut vertices = vec![VertexId(end)];
        let mut edges = Vec::new();
        let mut cur = end;
        while self.pred_v[cur as usize] != NONE {
            let (u, e) = (self.pred_v[cur as usize], self.pred_e[cur as usize]);
            vertices.push(VertexId(u));
            edges.push(EdgeId(e));
            cur = u;
        }
        vertices.reverse();
        edges.reverse();
        EnginePath { vertices, edges, total_cost: end_d }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::critical_path::critical_path;
    use crate::graph::VertexKind;
    use crate::graph::VertexProps;
    use crate::props::{DataProps, TaskProps};

    fn task(name: &str, life: u64) -> Vertex {
        Vertex {
            kind: VertexKind::Task,
            name: name.into(),
            logical: name.into(),
            props: VertexProps::Task(TaskProps { lifetime_ns: life, ..Default::default() }),
        }
    }

    fn data(name: &str) -> Vertex {
        Vertex {
            kind: VertexKind::Data,
            name: name.into(),
            logical: name.into(),
            props: VertexProps::Data(DataProps::default()),
        }
    }

    fn vol(volume: u64) -> EdgeProps {
        EdgeProps { volume, ..Default::default() }
    }

    /// After every edit, the engine must agree bit-for-bit with a batch
    /// sweep over its own graph (keys = engine ids here, so canonical and
    /// engine order coincide).
    fn assert_matches_batch(eng: &mut IncrementalGcpa) {
        let model = eng.model();
        let batch = critical_path(eng.graph(), &model);
        let inc = eng.critical_path();
        assert_eq!(inc.vertices, batch.vertices);
        assert_eq!(inc.edges, batch.edges);
        assert_eq!(inc.total_cost.to_bits(), batch.total_cost.to_bits());
    }

    #[test]
    fn incremental_tracks_edits() {
        let mut eng = IncrementalGcpa::new(CostModel::Volume);
        let t0 = eng.add_vertex(task("t0", 10), 0);
        let d0 = eng.add_vertex(data("d0"), 1);
        let t1 = eng.add_vertex(task("t1", 20), 2);
        assert_matches_batch(&mut eng);
        eng.add_edge(t0, d0, FlowDir::Producer, vol(100));
        assert_matches_batch(&mut eng);
        let e = eng.add_edge(d0, t1, FlowDir::Consumer, vol(50));
        assert_matches_batch(&mut eng);
        eng.unlink_edge(e);
        assert_matches_batch(&mut eng);
    }

    #[test]
    fn backward_insert_repairs_order() {
        let mut eng = IncrementalGcpa::new(CostModel::Volume);
        // Allocation order puts the consumer before its input file, so the
        // consumer edge runs backwards through the maintained order.
        let t1 = eng.add_vertex(task("t1", 0), 2);
        let t0 = eng.add_vertex(task("t0", 0), 0);
        let d0 = eng.add_vertex(data("d0"), 1);
        eng.add_edge(t0, d0, FlowDir::Producer, vol(7));
        eng.add_edge(d0, t1, FlowDir::Consumer, vol(7));
        assert_matches_batch(&mut eng);
        assert_eq!(eng.critical_path().total_cost, 14.0);
        // The repaired order must still topologically sort the chain.
        let (p0, pd, p1) =
            (eng.pos[t0.0 as usize], eng.pos[d0.0 as usize], eng.pos[t1.0 as usize]);
        assert!(p0 < pd && pd < p1, "pos {p0} {pd} {p1}");
    }

    #[test]
    fn lifetime_update_moves_the_path() {
        let mut eng = IncrementalGcpa::new(CostModel::Time);
        let t0 = eng.add_vertex(task("t0", 1_000_000_000), 0);
        let d0 = eng.add_vertex(data("d0"), 2);
        let t1 = eng.add_vertex(task("t1", 1_000_000_000), 1);
        eng.add_edge(t0, d0, FlowDir::Producer, EdgeProps::default());
        eng.add_edge(d0, t1, FlowDir::Consumer, EdgeProps::default());
        let before = eng.critical_path().total_cost;
        eng.set_vertex_props(
            t1,
            VertexProps::Task(TaskProps { lifetime_ns: 5_000_000_000, ..Default::default() }),
        );
        assert_matches_batch(&mut eng);
        assert!(eng.critical_path().total_cost > before);
    }

    #[test]
    fn inactive_vertices_cannot_end_the_path() {
        let mut eng = IncrementalGcpa::new(CostModel::Volume);
        let t0 = eng.add_vertex(task("t0", 0), 0);
        let d0 = eng.add_vertex(data("orphan"), 1);
        let _ = t0;
        eng.set_active(d0, false);
        let p = eng.critical_path();
        assert_eq!(p.vertices, vec![t0]);
    }

    #[test]
    fn cycle_panics_like_batch() {
        let mut eng = IncrementalGcpa::new(CostModel::Volume);
        let t = eng.add_vertex(task("t", 0), 0);
        let d = eng.add_vertex(data("d"), 1);
        eng.add_edge(t, d, FlowDir::Producer, vol(1));
        eng.add_edge(d, t, FlowDir::Consumer, vol(1));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| eng.critical_path()));
        assert!(r.is_err(), "cyclic engine graph must panic like the batch DP");
    }
}
