//! DFL analysis: generalized critical paths, caterpillar trees, entity
//! projections/rankings, and opportunity (pattern) detection.

pub mod advisor;
pub mod caterpillar;
pub mod cost;
pub mod critical_path;
pub mod entities;
pub mod incremental;
pub mod live;
pub mod near_critical;
pub mod patterns;
pub mod ranking;
pub mod stats;

pub use advisor::{advise, CoordinationAdvice};
pub use caterpillar::{Caterpillar, VertexRole};
pub use cost::CostModel;
pub use critical_path::{critical_path, CriticalPath};
pub use incremental::IncrementalGcpa;
pub use live::{Blame, BlameEntry, LiveDfl, LiveHead};
pub use near_critical::k_disjoint_paths;
pub use patterns::{analyze, AnalysisConfig, Opportunity, PatternKind, Remediation};
pub use stats::{graph_stats, GraphStats};
