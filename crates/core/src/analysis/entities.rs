//! Lifecycle entities and projections (§4.3).
//!
//! Entities are graph constructs and relations between them: data/task
//! vertices, data/task *relations* (a vertex plus its incident edges),
//! producer/consumer relations (single edges), and producer-consumer
//! composites (producer task → data → consumer task). Projections extract
//! one entity type from the DFL-G for ranking.

use crate::graph::{DflGraph, EdgeId, VertexId};
use crate::props::FlowDir;

/// Shape of a vertex relation, by in/out degree (§5.2, §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelationShape {
    /// One in, one out.
    Regular,
    /// Many in, at most one out.
    FanIn,
    /// At most one in, many out.
    FanOut,
    /// Many in, many out.
    FanInOut,
    /// No incoming edges (workflow input / pure producer).
    Source,
    /// No outgoing edges (workflow output / pure consumer or data leaf).
    Sink,
    /// No edges at all.
    Isolated,
}

/// Classifies a relation by its degrees.
pub fn relation_shape(in_deg: usize, out_deg: usize) -> RelationShape {
    match (in_deg, out_deg) {
        (0, 0) => RelationShape::Isolated,
        (0, _) => RelationShape::Source,
        (_, 0) => RelationShape::Sink,
        (1, 1) => RelationShape::Regular,
        (i, o) if i > 1 && o > 1 => RelationShape::FanInOut,
        (i, _) if i > 1 => RelationShape::FanIn,
        _ => RelationShape::FanOut,
    }
}

impl DflGraph {
    /// Shape of vertex `v`'s relation.
    pub fn shape_of(&self, v: VertexId) -> RelationShape {
        relation_shape(self.in_degree(v), self.out_degree(v))
    }
}

/// A producer-consumer composite relation: producer task → data → consumer
/// task (§4.3). The Fig. 2f ranking is a projection of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProducerConsumer {
    pub producer: VertexId,
    pub data: VertexId,
    pub consumer: VertexId,
    pub producer_edge: EdgeId,
    pub consumer_edge: EdgeId,
}

impl ProducerConsumer {
    /// The flow volume delivered through this composite: the consumer edge's
    /// volume (what the consumer actually moved).
    pub fn volume(&self, g: &DflGraph) -> u64 {
        g.edge(self.consumer_edge).props.volume
    }
}

/// Projects all producer-consumer composites. Linear in Σ over data vertices
/// of (in-degree × out-degree) — in practice modest because producer
/// fan-in per file is small.
pub fn producer_consumer_relations(g: &DflGraph) -> Vec<ProducerConsumer> {
    let mut out = Vec::new();
    for d in g.data_vertices() {
        for pe in g.in_edges(d) {
            for ce in g.out_edges(d) {
                out.push(ProducerConsumer {
                    producer: g.edge(pe).src,
                    data: d,
                    consumer: g.edge(ce).dst,
                    producer_edge: pe,
                    consumer_edge: ce,
                });
            }
        }
    }
    out
}

/// Projects all producer relations (task→data edges).
pub fn producer_relations(g: &DflGraph) -> Vec<EdgeId> {
    g.edges()
        .filter(|(_, e)| e.dir == FlowDir::Producer)
        .map(|(id, _)| id)
        .collect()
}

/// Projects all consumer relations (data→task edges).
pub fn consumer_relations(g: &DflGraph) -> Vec<EdgeId> {
    g.edges()
        .filter(|(_, e)| e.dir == FlowDir::Consumer)
        .map(|(id, _)| id)
        .collect()
}

/// Data vertices never read by any consumer — whole-file *data non-use*.
pub fn data_leaves(g: &DflGraph) -> Vec<VertexId> {
    g.data_vertices()
        .filter(|&d| g.out_degree(d) == 0 && g.in_degree(d) > 0)
        .collect()
}

/// Task relations with fan-in ≥ `k` data inputs (aggregator candidates).
pub fn task_fan_ins(g: &DflGraph, k: usize) -> Vec<VertexId> {
    g.task_vertices().filter(|&t| g.in_degree(t) >= k).collect()
}

/// Data relations with ≥ `k` distinct consumers (fan-out / shared data).
pub fn data_fan_outs(g: &DflGraph, k: usize) -> Vec<VertexId> {
    g.data_vertices().filter(|&d| g.out_degree(d) >= k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, TaskProps};

    /// p1, p2 → d → c1, c2, plus an unused output d_leaf from p1.
    fn composite_graph() -> (DflGraph, VertexId) {
        let mut g = DflGraph::new();
        let p1 = g.add_task("p1", "p", TaskProps::default());
        let p2 = g.add_task("p2", "p", TaskProps::default());
        let d = g.add_data("d", "d", DataProps::default());
        let c1 = g.add_task("c1", "c", TaskProps::default());
        let c2 = g.add_task("c2", "c", TaskProps::default());
        g.add_edge(p1, d, FlowDir::Producer, EdgeProps { volume: 10, ..Default::default() });
        g.add_edge(p2, d, FlowDir::Producer, EdgeProps { volume: 20, ..Default::default() });
        g.add_edge(d, c1, FlowDir::Consumer, EdgeProps { volume: 30, ..Default::default() });
        g.add_edge(d, c2, FlowDir::Consumer, EdgeProps { volume: 5, ..Default::default() });
        let leaf = g.add_data("leaf", "d", DataProps::default());
        g.add_edge(p1, leaf, FlowDir::Producer, EdgeProps { volume: 1, ..Default::default() });
        (g, d)
    }

    #[test]
    fn shapes() {
        assert_eq!(relation_shape(1, 1), RelationShape::Regular);
        assert_eq!(relation_shape(3, 1), RelationShape::FanIn);
        assert_eq!(relation_shape(1, 3), RelationShape::FanOut);
        assert_eq!(relation_shape(2, 2), RelationShape::FanInOut);
        assert_eq!(relation_shape(0, 2), RelationShape::Source);
        assert_eq!(relation_shape(2, 0), RelationShape::Sink);
        assert_eq!(relation_shape(0, 0), RelationShape::Isolated);
    }

    #[test]
    fn composites_are_cross_product_per_data() {
        let (g, d) = composite_graph();
        let pcs = producer_consumer_relations(&g);
        // 2 producers × 2 consumers through d; leaf contributes none.
        assert_eq!(pcs.iter().filter(|pc| pc.data == d).count(), 4);
        assert_eq!(pcs.len(), 4);
        let max_vol = pcs.iter().map(|pc| pc.volume(&g)).max().unwrap();
        assert_eq!(max_vol, 30);
    }

    #[test]
    fn producer_and_consumer_projections() {
        let (g, _) = composite_graph();
        assert_eq!(producer_relations(&g).len(), 3);
        assert_eq!(consumer_relations(&g).len(), 2);
    }

    #[test]
    fn leaf_detection() {
        let (g, _) = composite_graph();
        let leaves = data_leaves(&g);
        assert_eq!(leaves.len(), 1);
        assert_eq!(g.vertex(leaves[0]).name, "leaf");
    }

    #[test]
    fn fan_projections() {
        let (g, d) = composite_graph();
        assert_eq!(data_fan_outs(&g, 2), vec![d]);
        assert!(task_fan_ins(&g, 2).is_empty(), "no aggregator in this graph");
        let c1 = g.find_vertex("c1").unwrap();
        assert!(task_fan_ins(&g, 1).contains(&c1));
    }

    #[test]
    fn shape_of_data_vertex() {
        let (g, d) = composite_graph();
        assert_eq!(g.shape_of(d), RelationShape::FanInOut);
    }
}
