//! Entity rankings (§4.3): project an entity type, sort by a property, and
//! render a report table (the Fig. 2f producer-consumer ranking).

use std::fmt;

use crate::analysis::entities::producer_consumer_relations;
use crate::graph::{DflGraph, VertexId};
use crate::props::{fmt_bytes, FlowDir};

/// A sortable report table.
#[derive(Debug, Clone)]
pub struct RankTable {
    pub title: String,
    pub columns: Vec<String>,
    /// Rows: label cells plus the numeric sort key (descending).
    pub rows: Vec<RankRow>,
}

/// One ranked row.
#[derive(Debug, Clone)]
pub struct RankRow {
    pub cells: Vec<String>,
    pub key: f64,
}

impl RankTable {
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push(&mut self, cells: Vec<String>, key: f64) {
        self.rows.push(RankRow { cells, key });
    }

    /// Sorts rows by key, descending, with a stable deterministic tie-break
    /// on the first cell.
    pub fn sort(&mut self) {
        self.rows.sort_by(|a, b| {
            b.key
                .partial_cmp(&a.key)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cells.first().cmp(&b.cells.first()))
        });
    }

    /// Keeps only the top `n` rows.
    pub fn truncate(&mut self, n: usize) {
        self.rows.truncate(n);
    }
}

impl fmt::Display for RankTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Compute column widths over header + cells (+ rank column).
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.cells.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        write!(f, "{:>4}  ", "#")?;
        for (c, w) in self.columns.iter().zip(&widths) {
            write!(f, "{c:<w$}  ")?;
        }
        writeln!(f)?;
        for (i, row) in self.rows.iter().enumerate() {
            write!(f, "{:>4}  ", i + 1)?;
            for (c, w) in row.cells.iter().zip(&widths) {
                write!(f, "{c:<w$}  ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Property selecting the ranking key for data vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMetric {
    /// Bytes flowing out (consumption).
    OutVolume,
    /// Bytes flowing in (production).
    InVolume,
    /// In + out.
    TotalVolume,
    /// File size.
    Size,
}

/// Ranks data vertices, e.g. to prioritize files for storage and flow
/// resources.
pub fn rank_data_vertices(g: &DflGraph, metric: DataMetric) -> RankTable {
    let mut t = RankTable::new(
        &format!("data vertices by {metric:?}"),
        &["file", "size", "in volume", "out volume", "consumers"],
    );
    for d in g.data_vertices() {
        let v = g.vertex(d);
        let size = v.props.as_data().map_or(0, |p| p.size);
        let (iv, ov) = (g.in_volume(d), g.out_volume(d));
        let key = match metric {
            DataMetric::OutVolume => ov as f64,
            DataMetric::InVolume => iv as f64,
            DataMetric::TotalVolume => (iv + ov) as f64,
            DataMetric::Size => size as f64,
        };
        t.push(
            vec![
                v.name.clone(),
                fmt_bytes(size as f64),
                fmt_bytes(iv as f64),
                fmt_bytes(ov as f64),
                g.out_degree(d).to_string(),
            ],
            key,
        );
    }
    t.sort();
    t
}

/// Property selecting the ranking key for task vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskMetric {
    Lifetime,
    ReadVolume,
    WriteVolume,
    TotalVolume,
}

/// Ranks task vertices.
pub fn rank_task_vertices(g: &DflGraph, metric: TaskMetric) -> RankTable {
    let mut t = RankTable::new(
        &format!("task vertices by {metric:?}"),
        &["task", "lifetime", "read volume", "write volume"],
    );
    for tv in g.task_vertices() {
        let v = g.vertex(tv);
        let life = v.props.as_task().map_or(0, |p| p.lifetime_ns);
        let rv = g.in_volume(tv);
        let wv = g.out_volume(tv);
        let key = match metric {
            TaskMetric::Lifetime => life as f64,
            TaskMetric::ReadVolume => rv as f64,
            TaskMetric::WriteVolume => wv as f64,
            TaskMetric::TotalVolume => (rv + wv) as f64,
        };
        t.push(
            vec![
                v.name.clone(),
                crate::props::fmt_secs(life),
                fmt_bytes(rv as f64),
                fmt_bytes(wv as f64),
            ],
            key,
        );
    }
    t.sort();
    t
}

/// Ranks producer-consumer composite relations by delivered volume —
/// the paper's Fig. 2f table for DDMD.
pub fn rank_producer_consumer(g: &DflGraph) -> RankTable {
    let mut t = RankTable::new(
        "producer-consumer relations by volume",
        &["producer", "data", "consumer", "volume"],
    );
    for pc in producer_consumer_relations(g) {
        let vol = pc.volume(g);
        t.push(
            vec![
                g.vertex(pc.producer).name.clone(),
                g.vertex(pc.data).name.clone(),
                g.vertex(pc.consumer).name.clone(),
                fmt_bytes(vol as f64),
            ],
            vol as f64,
        );
    }
    t.sort();
    t
}

/// Ranks flow edges of one direction by volume.
pub fn rank_edges(g: &DflGraph, dir: FlowDir) -> RankTable {
    let mut t = RankTable::new(
        &format!("{} relations by volume", dir.label()),
        &["source", "sink", "volume", "footprint", "rate"],
    );
    for (_, e) in g.edges().filter(|(_, e)| e.dir == dir) {
        t.push(
            vec![
                g.vertex(e.src).name.clone(),
                g.vertex(e.dst).name.clone(),
                fmt_bytes(e.props.volume as f64),
                fmt_bytes(e.props.footprint),
                format!("{}/s", fmt_bytes(e.props.data_rate)),
            ],
            e.props.volume as f64,
        );
    }
    t.sort();
    t
}

/// Helper for tests and reports: name of the top-ranked vertex in a
/// projection over vertices.
pub fn top_vertex_by<F: Fn(VertexId) -> f64>(
    g: &DflGraph,
    candidates: impl Iterator<Item = VertexId>,
    key: F,
) -> Option<VertexId> {
    candidates.max_by(|&a, &b| {
        key(a)
            .partial_cmp(&key(b))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.cmp(&a)) // ties to lower id
    })
    .filter(|&v| (v.0 as usize) < g.vertex_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, TaskProps};

    fn ddmd_like() -> DflGraph {
        // aggregate → combined → {train (2.4 GB), lof (0.88 GB)}
        let mut g = DflGraph::new();
        let agg = g.add_task("aggregate", "aggregate", TaskProps::default());
        let comb = g.add_data("combined.h5", "combined.h5", DataProps { size: 1 << 30, ..Default::default() });
        let train = g.add_task("train", "train", TaskProps::default());
        let lof = g.add_task("lof", "lof", TaskProps::default());
        g.add_edge(agg, comb, FlowDir::Producer, EdgeProps { volume: 1_200_000_000, ..Default::default() });
        g.add_edge(comb, train, FlowDir::Consumer, EdgeProps { volume: 2_400_000_000, ..Default::default() });
        g.add_edge(comb, lof, FlowDir::Consumer, EdgeProps { volume: 880_000_000, ..Default::default() });
        g
    }

    #[test]
    fn producer_consumer_ranking_orders_by_volume() {
        let g = ddmd_like();
        let t = rank_producer_consumer(&g);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows[0].cells[2].contains("train"), "train ranks first: {:?}", t.rows[0]);
        assert!(t.rows[1].cells[2].contains("lof"));
        assert!(t.rows[0].key > t.rows[1].key);
    }

    #[test]
    fn data_ranking_keys() {
        let g = ddmd_like();
        let t = rank_data_vertices(&g, DataMetric::OutVolume);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0].key, (2_400_000_000u64 + 880_000_000) as f64);
    }

    #[test]
    fn task_ranking_by_read_volume() {
        let g = ddmd_like();
        let t = rank_task_vertices(&g, TaskMetric::ReadVolume);
        assert_eq!(t.rows[0].cells[0], "train");
    }

    #[test]
    fn table_display_is_aligned_and_numbered() {
        let g = ddmd_like();
        let s = rank_producer_consumer(&g).to_string();
        assert!(s.contains("== producer-consumer relations by volume =="));
        assert!(s.contains("   1  "));
        assert!(s.contains("   2  "));
    }

    #[test]
    fn truncate_keeps_top_rows() {
        let g = ddmd_like();
        let mut t = rank_producer_consumer(&g);
        t.truncate(1);
        assert_eq!(t.rows.len(), 1);
        assert!(t.rows[0].cells[2].contains("train"));
    }

    #[test]
    fn edge_ranking_filters_direction() {
        let g = ddmd_like();
        assert_eq!(rank_edges(&g, FlowDir::Producer).rows.len(), 1);
        assert_eq!(rank_edges(&g, FlowDir::Consumer).rows.len(), 2);
    }
}
