//! Cost models for generalized critical path analysis (GCPA, §5.1).
//!
//! "Our analysis performs CPA with respect to several different properties…
//! By exploring the properties footprint, volume, and flow rate, the
//! analysis identifies potential bottlenecks corresponding, respectively, to
//! storage capacity, transfer volume, and transfer speed."

use crate::graph::{DflGraph, EdgeId, VertexId, VertexKind};

/// Nanoseconds → seconds as a reciprocal multiply: the GCPA sweeps convert
/// one value per vertex and per edge, and an fdiv per element is measurably
/// slower than fmul on the hot path.
const NS_TO_S: f64 = 1.0 / 1e9;

/// A pluggable property under which the critical path is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModel {
    /// Flow volume (bytes moved): transfer-volume bottlenecks. Used for the
    /// DDMD, Belle II, and Montage critical paths in Fig. 2.
    Volume,
    /// Unique footprint (bytes touched): storage-capacity bottlenecks.
    Footprint,
    /// Transfer time implied by volume/rate (seconds): transfer-speed
    /// bottlenecks.
    TransferTime,
    /// Measured I/O latency on edges plus task lifetimes on vertices:
    /// classic response-time critical path.
    Time,
    /// Instances of data branches (fan-out > `branch_threshold`) and task
    /// joins (fan-in ≥ 2): the 1000 Genomes critical path of Fig. 2a.
    BranchJoin {
        /// Minimum data fan-out that counts as a branch (paper uses > 2).
        branch_threshold: usize,
    },
    /// Instances of task fan-in only: the Seismic critical path of Fig. 2e.
    TaskFanIn,
}

impl CostModel {
    /// Cost contributed by traversing edge `e`.
    pub fn edge_cost(&self, g: &DflGraph, e: EdgeId) -> f64 {
        self.edge_cost_props(&g.edge(e).props)
    }

    /// [`CostModel::edge_cost`] over the properties alone — the hot DP
    /// sweeps call this with an already-fetched property block so the edge
    /// struct is read at most once per edge.
    #[inline]
    pub fn edge_cost_props(&self, props: &crate::props::EdgeProps) -> f64 {
        match self {
            CostModel::Volume => props.volume as f64,
            CostModel::Footprint => props.footprint,
            CostModel::TransferTime => props.transfer_time_s(),
            CostModel::Time => props.latency_ns as f64 * NS_TO_S,
            CostModel::BranchJoin { .. } | CostModel::TaskFanIn => 0.0,
        }
    }

    /// Cost contributed by visiting vertex `v`.
    ///
    /// Reads only the graph's flat kind/lifetime/degree mirrors, never the
    /// AoS vertex record, so the per-vertex DP cost stays cache-friendly.
    #[inline]
    pub fn vertex_cost(&self, g: &DflGraph, v: VertexId) -> f64 {
        match self {
            CostModel::Volume | CostModel::Footprint | CostModel::TransferTime => 0.0,
            CostModel::Time => match g.vertex_kind(v) {
                VertexKind::Task => g.vlife_raw()[v.0 as usize] as f64 * NS_TO_S,
                VertexKind::Data => 0.0,
            },
            CostModel::BranchJoin { branch_threshold } => {
                let mut c = 0.0;
                match g.vertex_kind(v) {
                    VertexKind::Data => {
                        if g.out_degree(v) > *branch_threshold {
                            c += 1.0; // a data branch
                        }
                    }
                    VertexKind::Task => {
                        if g.in_degree(v) >= 2 {
                            c += 1.0; // a task join
                        }
                    }
                }
                c
            }
            CostModel::TaskFanIn => {
                if g.vertex_kind(v) == VertexKind::Task && g.in_degree(v) >= 2 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Human-readable name for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CostModel::Volume => "volume",
            CostModel::Footprint => "footprint",
            CostModel::TransferTime => "transfer-time",
            CostModel::Time => "time",
            CostModel::BranchJoin { .. } => "branches+joins",
            CostModel::TaskFanIn => "task fan-in",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    fn star() -> (DflGraph, VertexId, VertexId) {
        // d0 fans out to 3 tasks; t_join has fan-in 2 from d1, d2.
        let mut g = DflGraph::new();
        let d0 = g.add_data("d0", "d", DataProps::default());
        for i in 0..3 {
            let t = g.add_task(&format!("t{i}"), "t", TaskProps { lifetime_ns: 2_000_000_000, ..Default::default() });
            g.add_edge(d0, t, FlowDir::Consumer, EdgeProps { volume: 100, ..Default::default() });
        }
        let d1 = g.add_data("d1", "d", DataProps::default());
        let d2 = g.add_data("d2", "d", DataProps::default());
        let tj = g.add_task("tj", "t", TaskProps::default());
        g.add_edge(d1, tj, FlowDir::Consumer, EdgeProps::default());
        g.add_edge(d2, tj, FlowDir::Consumer, EdgeProps::default());
        (g, d0, tj)
    }

    #[test]
    fn branch_join_vertex_costs() {
        let (g, d0, tj) = star();
        let m = CostModel::BranchJoin { branch_threshold: 2 };
        assert_eq!(m.vertex_cost(&g, d0), 1.0, "fan-out 3 > 2 is a branch");
        assert_eq!(m.vertex_cost(&g, tj), 1.0, "fan-in 2 is a join");
        let m_high = CostModel::BranchJoin { branch_threshold: 3 };
        assert_eq!(m_high.vertex_cost(&g, d0), 0.0);
    }

    #[test]
    fn volume_is_edge_only() {
        let (g, d0, _) = star();
        let e = g.out_edges(d0).next().unwrap();
        assert_eq!(CostModel::Volume.edge_cost(&g, e), 100.0);
        assert_eq!(CostModel::Volume.vertex_cost(&g, d0), 0.0);
    }

    #[test]
    fn time_counts_task_lifetimes() {
        let (g, _, _) = star();
        let t0 = g.find_vertex("t0").unwrap();
        assert!((CostModel::Time.vertex_cost(&g, t0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn task_fan_in_ignores_data_branches() {
        let (g, d0, tj) = star();
        assert_eq!(CostModel::TaskFanIn.vertex_cost(&g, d0), 0.0);
        assert_eq!(CostModel::TaskFanIn.vertex_cost(&g, tj), 1.0);
    }
}

#[cfg(test)]
mod transfer_time_tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    #[test]
    fn transfer_time_uses_rate_and_falls_back_to_latency() {
        let mut g = DflGraph::new();
        let t = g.add_task("t", "t", TaskProps::default());
        let d1 = g.add_data("fast", "d", DataProps::default());
        let d2 = g.add_data("slow", "d", DataProps::default());
        // 100 bytes at 50 B/s = 2 s.
        g.add_edge(t, d1, FlowDir::Producer, EdgeProps { volume: 100, data_rate: 50.0, ..Default::default() });
        // No rate: fall back to 5 s of measured latency.
        g.add_edge(t, d2, FlowDir::Producer, EdgeProps { volume: 100, latency_ns: 5_000_000_000, ..Default::default() });
        let m = CostModel::TransferTime;
        let e0 = g.edges().next().unwrap().0;
        let e1 = g.edges().nth(1).unwrap().0;
        assert!((m.edge_cost(&g, e0) - 2.0).abs() < 1e-9);
        assert!((m.edge_cost(&g, e1) - 5.0).abs() < 1e-9);
        assert_eq!(m.label(), "transfer-time");
    }
}
