//! Data non-use pattern (Table 1, row 3): data unused by consumers in whole
//! (data leaf vertices) or in part (consumed footprint smaller than the
//! file) — both imply unnecessary data movement.

use crate::analysis::entities::data_leaves;
use crate::graph::DflGraph;
use crate::props::{fmt_bytes, FlowDir};

use super::{AnalysisConfig, AnalysisContext, Opportunity, PatternKind, Remediation, Subject};

/// Detects whole-file non-use (leaves) and partial non-use (subset reads).
pub fn detect(g: &DflGraph, cfg: &AnalysisConfig, ctx: &AnalysisContext) -> Vec<Opportunity> {
    let mut out = Vec::new();

    // Whole-file: produced but never consumed.
    for d in data_leaves(g) {
        let size = g.vertex(d).props.as_data().map_or(0, |p| p.size);
        let produced = g.in_volume(d);
        out.push(Opportunity {
            pattern: PatternKind::DataNonUse,
            subject: Subject::Vertex(d),
            severity: produced.max(size) as f64,
            evidence: format!(
                "data leaf: {} produced, no consumers",
                fmt_bytes(produced as f64)
            ),
            remediations: vec![Remediation::OnDemandCaching, Remediation::DataFilteringCompression],
            must_validate: false,
            on_caterpillar: ctx.on_caterpillar(d),
        });
    }

    // Partial: a consumer's unique footprint covers less than the file.
    for (eid, e) in g.edges() {
        if e.dir != FlowDir::Consumer {
            continue;
        }
        let size = g.vertex(e.src).props.as_data().map_or(0, |p| p.size);
        if size == 0 {
            continue;
        }
        let frac = e.props.subset_fraction;
        if frac <= 0.0 || frac > cfg.non_use_fraction {
            continue;
        }
        let unused = size as f64 * (1.0 - frac);
        out.push(Opportunity {
            pattern: PatternKind::DataNonUse,
            subject: Subject::Edge(eid),
            severity: unused,
            evidence: format!(
                "consumer uses {:.0}% of {} ({} unused)",
                frac * 100.0,
                fmt_bytes(size as f64),
                fmt_bytes(unused)
            ),
            remediations: vec![Remediation::OnDemandCaching, Remediation::DataFilteringCompression],
            must_validate: false,
            on_caterpillar: ctx.on_caterpillar(e.src) && ctx.on_caterpillar(e.dst),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, TaskProps};

    #[test]
    fn leaf_and_subset_detected() {
        let mut g = DflGraph::new();
        let p = g.add_task("p", "p", TaskProps::default());
        let leaf = g.add_data("leaf", "d", DataProps { size: 500, ..Default::default() });
        g.add_edge(p, leaf, FlowDir::Producer, EdgeProps { volume: 500, ..Default::default() });

        let shared = g.add_data("shared", "d", DataProps { size: 1000, ..Default::default() });
        let c = g.add_task("c", "c", TaskProps::default());
        g.add_edge(p, shared, FlowDir::Producer, EdgeProps { volume: 1000, ..Default::default() });
        g.add_edge(shared, c, FlowDir::Consumer, EdgeProps {
            volume: 400,
            footprint: 400.0,
            subset_fraction: 0.4,
            ..Default::default()
        });

        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        let ops = detect(&g, &cfg, &ctx);
        assert_eq!(ops.len(), 2);
        let leaf_op = ops.iter().find(|o| matches!(o.subject, Subject::Vertex(_))).unwrap();
        assert!(leaf_op.evidence.contains("no consumers"));
        let subset_op = ops.iter().find(|o| matches!(o.subject, Subject::Edge(_))).unwrap();
        assert!((subset_op.severity - 600.0).abs() < 1e-6, "60% of 1000 unused");
    }

    #[test]
    fn full_use_not_flagged() {
        let mut g = DflGraph::new();
        let p = g.add_task("p", "p", TaskProps::default());
        let d = g.add_data("d", "d", DataProps { size: 1000, ..Default::default() });
        let c = g.add_task("c", "c", TaskProps::default());
        g.add_edge(p, d, FlowDir::Producer, EdgeProps { volume: 1000, ..Default::default() });
        g.add_edge(d, c, FlowDir::Consumer, EdgeProps {
            volume: 1000,
            footprint: 1000.0,
            subset_fraction: 1.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        assert!(detect(&g, &cfg, &ctx).is_empty());
    }

    #[test]
    fn pure_input_files_are_not_leaves() {
        // A file only read (no producer) is a workflow input, not non-use.
        let mut g = DflGraph::new();
        let d = g.add_data("input", "d", DataProps { size: 100, ..Default::default() });
        let c = g.add_task("c", "c", TaskProps::default());
        g.add_edge(d, c, FlowDir::Consumer, EdgeProps {
            volume: 100,
            footprint: 100.0,
            subset_fraction: 1.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        assert!(detect(&g, &cfg, &ctx).is_empty());
    }
}
