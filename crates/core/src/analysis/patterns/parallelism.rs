//! Task/data parallelism trade-off pattern (Table 1, row 7).
//!
//! The in-degree of a consumer task — the number of neighboring data
//! vertices — implicitly specifies how many producer tasks executed
//! concurrently. High in-degree trades response time (more parallelism
//! upstream) against overhead (I/O contention from many flows). Marked
//! "[Must validate]" in the paper.

use crate::graph::DflGraph;
use crate::props::fmt_bytes;

use super::{AnalysisConfig, AnalysisContext, Opportunity, PatternKind, Remediation, Subject};

/// Flags consumer tasks whose in-degree meets the configured threshold.
pub fn detect(g: &DflGraph, cfg: &AnalysisConfig, ctx: &AnalysisContext) -> Vec<Opportunity> {
    let mut out = Vec::new();
    for t in g.task_vertices() {
        let indeg = g.in_degree(t);
        if indeg < cfg.parallelism_threshold {
            continue;
        }
        let volume = g.in_volume(t);
        out.push(Opportunity {
            pattern: PatternKind::ParallelismTradeoff,
            subject: Subject::Vertex(t),
            severity: indeg as f64,
            evidence: format!(
                "consumer in-degree {indeg} (≈{indeg} concurrent producers), {} inflow",
                fmt_bytes(volume as f64)
            ),
            remediations: vec![Remediation::CoordinateParallelism],
            must_validate: true,
            on_caterpillar: ctx.on_caterpillar(t),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    fn fan_in(n: usize) -> DflGraph {
        let mut g = DflGraph::new();
        let t = g.add_task("merge", "merge", TaskProps::default());
        for i in 0..n {
            let d = g.add_data(&format!("in{i}"), "in#", DataProps::default());
            g.add_edge(d, t, FlowDir::Consumer, EdgeProps { volume: 100, ..Default::default() });
        }
        g
    }

    #[test]
    fn high_in_degree_flagged_and_must_validate() {
        let g = fan_in(8);
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        let ops = detect(&g, &cfg, &ctx);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].severity, 8.0);
        assert!(ops[0].must_validate);
    }

    #[test]
    fn low_in_degree_ignored() {
        let g = fan_in(2);
        let cfg = AnalysisConfig::default(); // threshold 4
        let ctx = AnalysisContext::new(&g, &cfg);
        assert!(detect(&g, &cfg, &ctx).is_empty());
    }
}
