//! Data volume pattern (Table 1, row 1): tasks read/write large data
//! volumes — "DFL-G flows with volumes exceeding storage or network ability".

use crate::graph::DflGraph;
use crate::props::fmt_bytes;

use super::{AnalysisConfig, AnalysisContext, Opportunity, PatternKind, Remediation, Subject};

/// Flags every flow edge whose volume meets the configured threshold.
pub fn detect(g: &DflGraph, cfg: &AnalysisConfig, ctx: &AnalysisContext) -> Vec<Opportunity> {
    let mut out = Vec::new();
    for (eid, e) in g.edges() {
        if e.props.volume < cfg.volume_threshold {
            continue;
        }
        let on_cat = ctx.on_caterpillar(e.src) && ctx.on_caterpillar(e.dst);
        out.push(Opportunity {
            pattern: PatternKind::DataVolume,
            subject: Subject::Edge(eid),
            severity: e.props.volume as f64,
            evidence: format!(
                "{} flow of {} at {}/s",
                e.dir.label(),
                fmt_bytes(e.props.volume as f64),
                fmt_bytes(e.props.data_rate)
            ),
            remediations: vec![
                Remediation::PairTasksAndStorage,
                Remediation::WriteBuffering,
                Remediation::AnticipatoryDataMovement,
            ],
            must_validate: false,
            on_caterpillar: on_cat,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    fn graph_with_volumes(volumes: &[u64]) -> DflGraph {
        let mut g = DflGraph::new();
        let t = g.add_task("t", "t", TaskProps::default());
        for (i, &v) in volumes.iter().enumerate() {
            let d = g.add_data(&format!("d{i}"), "d", DataProps::default());
            g.add_edge(t, d, FlowDir::Producer, EdgeProps { volume: v, ..Default::default() });
        }
        g
    }

    #[test]
    fn only_large_flows_flagged() {
        let g = graph_with_volumes(&[1 << 20, 1 << 30]);
        let cfg = AnalysisConfig::default(); // threshold 256 MiB
        let ctx = AnalysisContext::new(&g, &cfg);
        let ops = detect(&g, &cfg, &ctx);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].severity, (1u64 << 30) as f64);
        assert!(!ops[0].must_validate);
    }

    #[test]
    fn threshold_is_configurable() {
        let g = graph_with_volumes(&[100, 200, 300]);
        let cfg = AnalysisConfig { volume_threshold: 200, ..Default::default() };
        let ctx = AnalysisContext::new(&g, &cfg);
        assert_eq!(detect(&g, &cfg, &ctx).len(), 2);
    }

    #[test]
    fn remediations_match_table1() {
        let g = graph_with_volumes(&[1 << 30]);
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        let ops = detect(&g, &cfg, &ctx);
        assert!(ops[0].remediations.contains(&Remediation::WriteBuffering));
        assert!(ops[0].remediations.contains(&Remediation::PairTasksAndStorage));
    }
}
