//! Locality patterns (Table 1, rows 4–5).
//!
//! *Intra-task* locality: spatio-temporal access locality within a file —
//! consecutive access distances below the block size (0 = temporal), or
//! block reuse (volume > footprint). Remediation: caching and prefetching.
//!
//! *Inter-task* locality: the same data used by multiple tasks or instances
//! — (1) producer and consumer share a file, (2) a logical task re-reads a
//! file across instances, (3) a file is read by multiple consumers.

use std::collections::HashMap;

use crate::graph::{DflGraph, VertexId};
use crate::props::{fmt_bytes, FlowDir};

use super::{AnalysisConfig, AnalysisContext, Opportunity, PatternKind, Remediation, Subject};

/// Intra-task locality: consumer edges with high locality fraction or
/// significant reuse.
pub fn detect_intra(g: &DflGraph, cfg: &AnalysisConfig, ctx: &AnalysisContext) -> Vec<Opportunity> {
    let mut out = Vec::new();
    for (eid, e) in g.edges() {
        if e.dir != FlowDir::Consumer || e.props.volume == 0 {
            continue;
        }
        let spatial = e.props.locality_fraction >= cfg.locality_threshold && e.props.ops >= 2;
        let temporal = e.props.reuse_factor >= cfg.reuse_threshold;
        if !spatial && !temporal {
            continue;
        }
        let mut kinds = Vec::new();
        if temporal {
            kinds.push(format!("{:.1}x block reuse", e.props.reuse_factor));
        }
        if spatial {
            kinds.push(format!(
                "{:.0}% accesses within block distance (mean {})",
                e.props.locality_fraction * 100.0,
                fmt_bytes(e.props.mean_distance)
            ));
        }
        out.push(Opportunity {
            pattern: PatternKind::IntraTaskLocality,
            subject: Subject::Edge(eid),
            severity: e.props.volume as f64 * e.props.reuse_factor.max(1.0),
            evidence: kinds.join("; "),
            remediations: if temporal {
                vec![Remediation::Caching, Remediation::BlockPrefetching]
            } else {
                vec![Remediation::BlockPrefetching, Remediation::Caching]
            },
            must_validate: false,
            on_caterpillar: ctx.on_caterpillar(e.src) && ctx.on_caterpillar(e.dst),
        });
    }
    out
}

/// Inter-task locality: shared data across tasks or task instances.
pub fn detect_inter(g: &DflGraph, cfg: &AnalysisConfig, ctx: &AnalysisContext) -> Vec<Opportunity> {
    let mut out = Vec::new();

    for d in g.data_vertices() {
        let consumers: Vec<VertexId> = g.successors(d).collect();

        // (3) multiple distinct consumers read the same data.
        if consumers.len() >= cfg.fan_out_threshold {
            let shared: u64 = g.out_volume(d);
            out.push(Opportunity {
                pattern: PatternKind::InterTaskLocality,
                subject: Subject::Vertex(d),
                severity: shared as f64 * consumers.len() as f64,
                evidence: format!(
                    "{} consumers read {} total from one file",
                    consumers.len(),
                    fmt_bytes(shared as f64)
                ),
                remediations: vec![
                    Remediation::CoScheduling,
                    Remediation::DataPlacement,
                    Remediation::Caching,
                ],
                must_validate: false,
                on_caterpillar: ctx.on_caterpillar(d),
            });
        }

        // (1) producer-consumer pairs over the same file (pipeline reuse):
        // flagged at composite granularity only when the pair is on the
        // caterpillar, to keep the report focused.
        let first_producer = g.in_edges(d).next();
        if let (Some(pe), Some(&c)) = (first_producer, consumers.first()) {
            if ctx.on_caterpillar(d) {
                let p = g.edge(pe).src;
                out.push(Opportunity {
                    pattern: PatternKind::InterTaskLocality,
                    subject: Subject::Composite(p, d, c),
                    severity: g.out_volume(d).min(g.in_volume(d)) as f64,
                    evidence: "producer and consumer exchange the same file on the caterpillar"
                        .into(),
                    remediations: vec![Remediation::Caching, Remediation::CoScheduling],
                    must_validate: false,
                    on_caterpillar: true,
                });
            }
        }

        // (2) a logical task re-reads the same data across instances
        // (loops): multiple consumers sharing a logical name.
        let mut by_logical: HashMap<&str, (u32, u64)> = HashMap::new();
        for ce in g.out_edges(d) {
            let e = g.edge(ce);
            let entry = by_logical.entry(g.vertex(e.dst).logical.as_str()).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += e.props.volume;
        }
        for (logical, (n, vol)) in by_logical {
            if n >= 2 && consumers.len() < cfg.fan_out_threshold {
                out.push(Opportunity {
                    pattern: PatternKind::InterTaskLocality,
                    subject: Subject::Vertex(d),
                    severity: vol as f64,
                    evidence: format!("{n} instances of task '{logical}' access the same data"),
                    remediations: vec![Remediation::DataRetention, Remediation::Caching],
                    must_validate: false,
                    on_caterpillar: ctx.on_caterpillar(d),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, TaskProps};

    #[test]
    fn temporal_reuse_flagged() {
        let mut g = DflGraph::new();
        let d = g.add_data("d", "d", DataProps { size: 100, ..Default::default() });
        let t = g.add_task("train-0", "train", TaskProps::default());
        g.add_edge(d, t, FlowDir::Consumer, EdgeProps {
            volume: 500,
            footprint: 100.0,
            reuse_factor: 5.0,
            ops: 5,
            ..Default::default()
        });
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        let ops = detect_intra(&g, &cfg, &ctx);
        assert_eq!(ops.len(), 1);
        assert!(ops[0].evidence.contains("5.0x block reuse"));
        assert_eq!(ops[0].remediations[0], Remediation::Caching);
    }

    #[test]
    fn spatial_locality_flagged() {
        let mut g = DflGraph::new();
        let d = g.add_data("d", "d", DataProps::default());
        let t = g.add_task("t", "t", TaskProps::default());
        g.add_edge(d, t, FlowDir::Consumer, EdgeProps {
            volume: 500,
            footprint: 500.0,
            reuse_factor: 1.0,
            locality_fraction: 0.9,
            mean_distance: 128.0,
            ops: 10,
            ..Default::default()
        });
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        let ops = detect_intra(&g, &cfg, &ctx);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].remediations[0], Remediation::BlockPrefetching);
    }

    #[test]
    fn random_single_pass_not_flagged() {
        let mut g = DflGraph::new();
        let d = g.add_data("d", "d", DataProps::default());
        let t = g.add_task("t", "t", TaskProps::default());
        g.add_edge(d, t, FlowDir::Consumer, EdgeProps {
            volume: 500,
            footprint: 500.0,
            reuse_factor: 1.0,
            locality_fraction: 0.1,
            ops: 10,
            ..Default::default()
        });
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        assert!(detect_intra(&g, &cfg, &ctx).is_empty());
    }

    #[test]
    fn shared_file_many_consumers() {
        let mut g = DflGraph::new();
        let d = g.add_data("dataset", "d", DataProps { size: 1000, ..Default::default() });
        for i in 0..4 {
            let t = g.add_task(&format!("mc-{i}"), "mc", TaskProps::default());
            g.add_edge(d, t, FlowDir::Consumer, EdgeProps { volume: 1000, ..Default::default() });
        }
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        let ops = detect_inter(&g, &cfg, &ctx);
        let fanout = ops
            .iter()
            .find(|o| o.evidence.contains("4 consumers"))
            .expect("fan-out opportunity");
        assert_eq!(fanout.severity, 4000.0 * 4.0);
        assert!(fanout.remediations.contains(&Remediation::CoScheduling));
    }

    #[test]
    fn instance_rereads_flagged_as_retention() {
        // Two instances of the same logical task read the same file (loop).
        let mut g = DflGraph::new();
        let d = g.add_data("state", "d", DataProps::default());
        for i in 0..2 {
            let t = g.add_task(&format!("iter-{i}"), "iter", TaskProps::default());
            g.add_edge(d, t, FlowDir::Consumer, EdgeProps { volume: 100, ..Default::default() });
        }
        let cfg = AnalysisConfig { fan_out_threshold: 3, ..Default::default() };
        let ctx = AnalysisContext::new(&g, &cfg);
        let ops = detect_inter(&g, &cfg, &ctx);
        let re = ops.iter().find(|o| o.evidence.contains("instances of task 'iter'")).unwrap();
        assert!(re.remediations.contains(&Remediation::DataRetention));
    }
}
