//! Opportunity analysis (§5, Table 1).
//!
//! Every pattern of the paper's Table 1 has a detector here, each linear in
//! vertices and edges: detection relies only on a vertex, its incident
//! edges, and precomputed path/caterpillar membership — never on graph
//! pattern matching (which would be NP-complete in general).
//!
//! [`analyze`] runs all detectors, ranks the opportunities by severity, and
//! returns them for reporting or automated remediation.

pub mod critical_flow;
pub mod data_volume;
pub mod locality;
pub mod non_use;
pub mod parallelism;
pub mod rate_mismatch;
pub mod structural;

use serde::{Deserialize, Serialize};

use crate::analysis::caterpillar::{caterpillar, Caterpillar, CaterpillarRule};
use crate::analysis::cost::CostModel;
use crate::analysis::critical_path::{critical_path, CriticalPath};
use crate::graph::{DflGraph, EdgeId, VertexId};

/// The Table 1 pattern taxonomy (plus the §5.2–§5.4 structural patterns used
/// to identify them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// Tasks read/write large data volumes.
    DataVolume,
    /// Mismatch between production and consumption rates.
    MismatchedDataRate,
    /// Data not used by consumers, in whole or part.
    DataNonUse,
    /// Spatio-temporal access locality within a file.
    IntraTaskLocality,
    /// Same data used by multiple tasks or instances.
    InterTaskLocality,
    /// Flow that must improve (critical) to improve response time.
    CriticalDataFlow,
    /// Flow that could relax (non-critical) to free resources.
    NonCriticalDataFlow,
    /// Task/data parallelism trade-off via consumer in-degree.
    ParallelismTradeoff,
    /// Aggregator task (fan-in) with data parallelism (§5.3).
    Aggregator,
    /// Aggregator that also compresses (output ≪ input) (§5.3).
    CompressorAggregator,
    /// Splitter: data fan-out with disjoint partitions (§5.2, §5.4).
    Splitter,
    /// Composition: aggregator whose output feeds a single regular task.
    AggregatorThenRegular,
    /// Composition: aggregator whose output is scattered over consumers.
    AggregatorThenSplitter,
}

impl PatternKind {
    pub fn label(&self) -> &'static str {
        match self {
            PatternKind::DataVolume => "data volume",
            PatternKind::MismatchedDataRate => "mismatched data rate",
            PatternKind::DataNonUse => "data non-use",
            PatternKind::IntraTaskLocality => "intra-task data locality",
            PatternKind::InterTaskLocality => "inter-task data locality",
            PatternKind::CriticalDataFlow => "critical data flow",
            PatternKind::NonCriticalDataFlow => "non-critical data flow",
            PatternKind::ParallelismTradeoff => "task/data parallelism trade-off",
            PatternKind::Aggregator => "aggregator",
            PatternKind::CompressorAggregator => "compressor-aggregator",
            PatternKind::Splitter => "splitter",
            PatternKind::AggregatorThenRegular => "aggregator → regular task",
            PatternKind::AggregatorThenSplitter => "aggregator → splitter",
        }
    }
}

/// Remediation strategies from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Remediation {
    PairTasksAndStorage,
    WriteBuffering,
    AnticipatoryDataMovement,
    AdjustGenerationRate,
    DataFilteringCompression,
    OnDemandCaching,
    Caching,
    BlockPrefetching,
    CoScheduling,
    DataRetention,
    DataPlacement,
    BiasResourcesCriticalVsNot,
    ChangeTaskDataSynchronization,
    CoordinateParallelism,
    PipelineAggregation,
    SubAggregators,
}

impl Remediation {
    pub fn label(&self) -> &'static str {
        match self {
            Remediation::PairTasksAndStorage => "pair tasks & storage resources",
            Remediation::WriteBuffering => "write buffering",
            Remediation::AnticipatoryDataMovement => "anticipatory data movement",
            Remediation::AdjustGenerationRate => "adjust data generation rate",
            Remediation::DataFilteringCompression => "data filtering/compression",
            Remediation::OnDemandCaching => "selective movement (on-demand caching)",
            Remediation::Caching => "caching",
            Remediation::BlockPrefetching => "block prefetching",
            Remediation::CoScheduling => "co-scheduling",
            Remediation::DataRetention => "data retention",
            Remediation::DataPlacement => "data placement",
            Remediation::BiasResourcesCriticalVsNot => "bias resources critical vs non-critical",
            Remediation::ChangeTaskDataSynchronization => "change task-data synchronization",
            Remediation::CoordinateParallelism => "coordinate parallelism & placement",
            Remediation::PipelineAggregation => "pipeline the aggregation",
            Remediation::SubAggregators => "add sub-aggregators per locality domain",
        }
    }
}

/// The graph entity an opportunity concerns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Subject {
    Vertex(VertexId),
    Edge(EdgeId),
    /// Producer task, data, consumer task.
    Composite(VertexId, VertexId, VertexId),
}

/// One detected opportunity, rankable by severity.
#[derive(Debug, Clone)]
pub struct Opportunity {
    pub pattern: PatternKind,
    pub subject: Subject,
    /// Ranking metric; larger is more severe. Units depend on the pattern
    /// (bytes for volume-type patterns, ratios for rates, counts for
    /// parallelism) — rankings are within-pattern.
    pub severity: f64,
    /// Human-readable evidence ("what the DFL-G shows").
    pub evidence: String,
    pub remediations: Vec<Remediation>,
    /// Whether the paper marks the pattern "[Must validate]".
    pub must_validate: bool,
    /// Whether the subject lies on the critical caterpillar.
    pub on_caterpillar: bool,
}

/// Thresholds and knobs for the detectors.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Cost model for the critical path / caterpillar used to prioritize.
    pub cost: CostModel,
    /// Edges with volume ≥ this are "large" (bytes). Default 256 MiB.
    pub volume_threshold: u64,
    /// Producer/consumer rate ratio ≥ this is a mismatch. Default 4×.
    pub rate_mismatch_ratio: f64,
    /// Subset fraction ≤ this flags partial non-use. Default 0.9.
    pub non_use_fraction: f64,
    /// Reuse factor ≥ this flags intra-task temporal reuse. Default 1.5.
    pub reuse_threshold: f64,
    /// Locality fraction ≥ this flags spatial locality. Default 0.5.
    pub locality_threshold: f64,
    /// Data fan-out ≥ this flags inter-task sharing. Default 2.
    pub fan_out_threshold: usize,
    /// Task fan-in ≥ this flags an aggregator. Default 3.
    pub fan_in_threshold: usize,
    /// Consumer in-degree ≥ this flags a parallelism trade-off. Default 4.
    pub parallelism_threshold: usize,
    /// Output/input ratio ≤ this flags a compressor-aggregator. Default 0.5.
    pub compression_ratio: f64,
    /// Blocking fraction ≥ this makes a critical-path flow stall-worthy.
    pub blocking_threshold: f64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            cost: CostModel::Volume,
            volume_threshold: 256 << 20,
            rate_mismatch_ratio: 4.0,
            non_use_fraction: 0.9,
            reuse_threshold: 1.5,
            locality_threshold: 0.5,
            fan_out_threshold: 2,
            fan_in_threshold: 3,
            parallelism_threshold: 4,
            compression_ratio: 0.5,
            blocking_threshold: 0.3,
        }
    }
}

/// Shared context handed to detectors: the critical path and DFL caterpillar
/// under the configured cost model, plus membership masks.
pub struct AnalysisContext {
    pub path: CriticalPath,
    pub caterpillar: Caterpillar,
    pub cat_membership: Vec<bool>,
    pub path_edge_membership: Vec<bool>,
}

impl AnalysisContext {
    /// Builds the context for `g` (DAG required).
    pub fn new(g: &DflGraph, cfg: &AnalysisConfig) -> Self {
        let path = critical_path(g, &cfg.cost);
        let cat = caterpillar(g, &path, CaterpillarRule::Dfl);
        let cat_membership = cat.membership(g.vertex_count());
        let mut path_edge_membership = vec![false; g.edge_count()];
        for &e in &path.edges {
            path_edge_membership[e.0 as usize] = true;
        }
        Self { path, caterpillar: cat, cat_membership, path_edge_membership }
    }

    pub fn on_caterpillar(&self, v: VertexId) -> bool {
        self.cat_membership[v.0 as usize]
    }

    pub fn edge_on_path(&self, e: EdgeId) -> bool {
        self.path_edge_membership[e.0 as usize]
    }
}

/// Runs every detector and returns opportunities sorted by
/// (on-caterpillar first, severity descending).
pub fn analyze(g: &DflGraph, cfg: &AnalysisConfig) -> Vec<Opportunity> {
    let ctx = AnalysisContext::new(g, cfg);
    let mut out = Vec::new();
    out.extend(data_volume::detect(g, cfg, &ctx));
    out.extend(rate_mismatch::detect(g, cfg, &ctx));
    out.extend(non_use::detect(g, cfg, &ctx));
    out.extend(locality::detect_intra(g, cfg, &ctx));
    out.extend(locality::detect_inter(g, cfg, &ctx));
    out.extend(critical_flow::detect(g, cfg, &ctx));
    out.extend(parallelism::detect(g, cfg, &ctx));
    out.extend(structural::detect(g, cfg, &ctx));
    rank_opportunities(&mut out);
    out
}

/// Sorts opportunities: caterpillar members first, then by severity.
pub fn rank_opportunities(ops: &mut [Opportunity]) {
    ops.sort_by(|a, b| {
        b.on_caterpillar
            .cmp(&a.on_caterpillar)
            .then_with(|| b.severity.partial_cmp(&a.severity).unwrap_or(std::cmp::Ordering::Equal))
            .then_with(|| a.evidence.cmp(&b.evidence))
    });
}

/// Renders opportunities as a report table.
pub fn report(g: &DflGraph, ops: &[Opportunity]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "== opportunity report: {} candidates ==", ops.len());
    for (i, o) in ops.iter().enumerate() {
        let subject = match &o.subject {
            Subject::Vertex(v) => g.vertex(*v).name.clone(),
            Subject::Edge(e) => {
                let edge = g.edge(*e);
                format!("{} → {}", g.vertex(edge.src).name, g.vertex(edge.dst).name)
            }
            Subject::Composite(p, d, c) => format!(
                "{} → {} → {}",
                g.vertex(*p).name,
                g.vertex(*d).name,
                g.vertex(*c).name
            ),
        };
        let _ = writeln!(
            s,
            "{:>3}. [{}{}] {} — {} (severity {:.3e})",
            i + 1,
            o.pattern.label(),
            if o.must_validate { ", must validate" } else { "" },
            subject,
            o.evidence,
            o.severity,
        );
        let rems: Vec<&str> = o.remediations.iter().map(|r| r.label()).collect();
        let _ = writeln!(s, "      remediations: {}", rems.join("; "));
    }
    s
}
