//! Structural task/data relation patterns (§5.2–§5.4): aggregators,
//! compressor-aggregators, splitters, and their compositions.
//!
//! These relations are identified with only a vertex and its incident edges,
//! so detection is linear in vertices and edges.

use crate::graph::{DflGraph, VertexId};
use crate::props::fmt_bytes;

use super::{AnalysisConfig, AnalysisContext, Opportunity, PatternKind, Remediation, Subject};

/// Whether `t` is an aggregator: a task with ≥ `fan_in_threshold` data
/// inputs and at most a couple of outputs.
fn is_aggregator(g: &DflGraph, t: VertexId, cfg: &AnalysisConfig) -> bool {
    g.vertex(t).is_task() && g.in_degree(t) >= cfg.fan_in_threshold && g.out_degree(t) >= 1
}

/// Detects aggregator / compressor-aggregator / splitter relations and
/// their §5.4 compositions.
pub fn detect(g: &DflGraph, cfg: &AnalysisConfig, ctx: &AnalysisContext) -> Vec<Opportunity> {
    let mut out = Vec::new();

    for t in g.task_vertices() {
        // --- Aggregators (task fan-in, §5.3) ---
        if is_aggregator(g, t, cfg) {
            let in_vol = g.in_volume(t);
            let out_vol = g.out_volume(t);
            let compresses =
                in_vol > 0 && (out_vol as f64) / (in_vol as f64) <= cfg.compression_ratio;
            let (pattern, remediations) = if compresses {
                (
                    PatternKind::CompressorAggregator,
                    vec![Remediation::PairTasksAndStorage, Remediation::DataFilteringCompression],
                )
            } else {
                (
                    PatternKind::Aggregator,
                    vec![Remediation::PipelineAggregation, Remediation::SubAggregators],
                )
            };
            out.push(Opportunity {
                pattern,
                subject: Subject::Vertex(t),
                severity: in_vol as f64,
                evidence: format!(
                    "{} inputs totalling {}, output {}{}",
                    g.in_degree(t),
                    fmt_bytes(in_vol as f64),
                    fmt_bytes(out_vol as f64),
                    if compresses { " (compressing)" } else { "" }
                ),
                remediations,
                must_validate: false,
                on_caterpillar: ctx.on_caterpillar(t),
            });

            // --- Compositions (§5.4) ---
            // Follow each output file of the aggregator to its consumers.
            for pe in g.out_edges(t) {
                let d = g.edge(pe).dst;
                let consumers: Vec<VertexId> = g.successors(d).collect();
                match consumers.len() {
                    0 => {}
                    1 => out.push(Opportunity {
                        pattern: PatternKind::AggregatorThenRegular,
                        subject: Subject::Composite(t, d, consumers[0]),
                        severity: g.out_volume(d) as f64,
                        evidence: format!(
                            "aggregator output consumed by single task '{}' — coalescing candidate",
                            g.vertex(consumers[0]).name
                        ),
                        remediations: vec![Remediation::CoScheduling, Remediation::PipelineAggregation],
                        must_validate: false,
                        on_caterpillar: ctx.on_caterpillar(t) && ctx.on_caterpillar(d),
                    }),
                    n => out.push(Opportunity {
                        pattern: PatternKind::AggregatorThenSplitter,
                        subject: Subject::Vertex(d),
                        severity: g.out_volume(d) as f64 * n as f64,
                        evidence: format!(
                            "aggregator '{}' gathers then scatters over {n} consumers",
                            g.vertex(t).name
                        ),
                        remediations: vec![
                            Remediation::SubAggregators,
                            Remediation::DataPlacement,
                            Remediation::CoScheduling,
                        ],
                        must_validate: false,
                        on_caterpillar: ctx.on_caterpillar(d),
                    }),
                }
            }
        }
    }

    // --- Splitters / data parallelism (§5.2 multiple distinct consumers) ---
    for d in g.data_vertices() {
        let consumers: Vec<VertexId> = g.successors(d).collect();
        if consumers.len() < cfg.fan_out_threshold {
            continue;
        }
        let size = g.vertex(d).props.as_data().map_or(0, |p| p.size);
        if size == 0 {
            continue;
        }
        // Data-parallel partitioning: every consumer reads a strict subset,
        // and the subsets together cover roughly the file.
        let fracs: Vec<f64> = g
            .out_edges(d)
            .map(|e| g.edge(e).props.subset_fraction)
            .collect();
        let all_partial = fracs.iter().all(|&f| f > 0.0 && f < 0.9);
        let coverage: f64 = fracs.iter().sum();
        if all_partial && (0.5..=1.5).contains(&coverage) {
            out.push(Opportunity {
                pattern: PatternKind::Splitter,
                subject: Subject::Vertex(d),
                severity: size as f64,
                evidence: format!(
                    "{} consumers each read a disjoint-looking partition (coverage {:.0}%) — data parallelism",
                    consumers.len(),
                    coverage * 100.0
                ),
                remediations: vec![
                    Remediation::CoScheduling,
                    Remediation::PairTasksAndStorage,
                    Remediation::CoordinateParallelism,
                ],
                must_validate: false,
                on_caterpillar: ctx.on_caterpillar(d),
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    /// n inputs → aggregator → out file → consumer(s).
    fn aggregator_graph(n: usize, out_vol: u64, consumers: usize) -> DflGraph {
        let mut g = DflGraph::new();
        let agg = g.add_task("agg", "agg", TaskProps::default());
        for i in 0..n {
            let d = g.add_data(&format!("in{i}"), "in#", DataProps { size: 100, ..Default::default() });
            g.add_edge(d, agg, FlowDir::Consumer, EdgeProps { volume: 100, ..Default::default() });
        }
        let o = g.add_data("out", "out", DataProps { size: out_vol, ..Default::default() });
        g.add_edge(agg, o, FlowDir::Producer, EdgeProps { volume: out_vol, ..Default::default() });
        for i in 0..consumers {
            let c = g.add_task(&format!("c{i}"), "c", TaskProps::default());
            g.add_edge(o, c, FlowDir::Consumer, EdgeProps { volume: out_vol, ..Default::default() });
        }
        g
    }

    #[test]
    fn plain_aggregator_detected() {
        let g = aggregator_graph(4, 400, 0);
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        let ops = detect(&g, &cfg, &ctx);
        assert!(ops.iter().any(|o| o.pattern == PatternKind::Aggregator));
        assert!(ops.iter().all(|o| o.pattern != PatternKind::CompressorAggregator));
    }

    #[test]
    fn compressor_aggregator_when_output_shrinks() {
        // 400 in, 100 out → ratio 0.25 ≤ 0.5.
        let g = aggregator_graph(4, 100, 0);
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        let ops = detect(&g, &cfg, &ctx);
        let ca = ops.iter().find(|o| o.pattern == PatternKind::CompressorAggregator).unwrap();
        assert!(ca.evidence.contains("compressing"));
    }

    #[test]
    fn aggregator_then_regular_composition() {
        let g = aggregator_graph(4, 400, 1);
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        let ops = detect(&g, &cfg, &ctx);
        assert!(ops.iter().any(|o| o.pattern == PatternKind::AggregatorThenRegular));
    }

    #[test]
    fn aggregator_then_splitter_composition() {
        let g = aggregator_graph(4, 400, 3);
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        let ops = detect(&g, &cfg, &ctx);
        let s = ops.iter().find(|o| o.pattern == PatternKind::AggregatorThenSplitter).unwrap();
        assert!(s.evidence.contains("3 consumers"));
    }

    #[test]
    fn data_parallel_partitions_detected_as_splitter() {
        let mut g = DflGraph::new();
        let d = g.add_data("chr1", "chr#", DataProps { size: 1000, ..Default::default() });
        for i in 0..4 {
            let t = g.add_task(&format!("indiv-{i}"), "indiv", TaskProps::default());
            g.add_edge(d, t, FlowDir::Consumer, EdgeProps {
                volume: 250,
                footprint: 250.0,
                subset_fraction: 0.25,
                ..Default::default()
            });
        }
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        let ops = detect(&g, &cfg, &ctx);
        let sp = ops.iter().find(|o| o.pattern == PatternKind::Splitter).unwrap();
        assert!(sp.evidence.contains("coverage 100%"));
    }

    #[test]
    fn full_file_readers_are_not_a_splitter() {
        let mut g = DflGraph::new();
        let d = g.add_data("whole", "d", DataProps { size: 1000, ..Default::default() });
        for i in 0..3 {
            let t = g.add_task(&format!("t{i}"), "t", TaskProps::default());
            g.add_edge(d, t, FlowDir::Consumer, EdgeProps {
                volume: 1000,
                footprint: 1000.0,
                subset_fraction: 1.0,
                ..Default::default()
            });
        }
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        assert!(detect(&g, &cfg, &ctx).iter().all(|o| o.pattern != PatternKind::Splitter));
    }
}
