//! Mismatched data rate pattern (Table 1, row 2): data produced and
//! consumed at very different rates causes stalls, likely on the critical
//! path.

use crate::graph::DflGraph;
use crate::props::fmt_bytes;

use super::{AnalysisConfig, AnalysisContext, Opportunity, PatternKind, Remediation, Subject};

/// For each data vertex with both producers and consumers, compares the
/// aggregate production rate with each consumer's rate; ratios beyond the
/// configured threshold are flagged.
pub fn detect(g: &DflGraph, cfg: &AnalysisConfig, ctx: &AnalysisContext) -> Vec<Opportunity> {
    let mut out = Vec::new();
    for d in g.data_vertices() {
        if g.in_degree(d) == 0 || g.out_degree(d) == 0 {
            continue;
        }
        let prod_rate: f64 = g.in_edges(d).map(|e| g.edge(e).props.data_rate).sum();
        if prod_rate <= 0.0 {
            continue;
        }
        // The degree guard above ensures a producer edge exists.
        let Some(first_producer) = g.in_edges(d).next() else {
            continue;
        };
        for ce in g.out_edges(d) {
            let cons = g.edge(ce);
            if cons.props.data_rate <= 0.0 {
                continue;
            }
            let ratio = if prod_rate > cons.props.data_rate {
                prod_rate / cons.props.data_rate
            } else {
                cons.props.data_rate / prod_rate
            };
            if ratio < cfg.rate_mismatch_ratio {
                continue;
            }
            let (p, c) = (g.edge(first_producer).src, cons.dst);
            out.push(Opportunity {
                pattern: PatternKind::MismatchedDataRate,
                subject: Subject::Composite(p, d, c),
                severity: ratio * cons.props.volume as f64,
                evidence: format!(
                    "produced at {}/s, consumed at {}/s ({ratio:.1}x mismatch)",
                    fmt_bytes(prod_rate),
                    fmt_bytes(cons.props.data_rate)
                ),
                remediations: vec![
                    Remediation::PairTasksAndStorage,
                    Remediation::AdjustGenerationRate,
                    Remediation::DataFilteringCompression,
                ],
                must_validate: false,
                on_caterpillar: ctx.on_caterpillar(d),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    fn rates(prod: f64, cons: f64) -> DflGraph {
        let mut g = DflGraph::new();
        let p = g.add_task("p", "p", TaskProps::default());
        let d = g.add_data("d", "d", DataProps::default());
        let c = g.add_task("c", "c", TaskProps::default());
        g.add_edge(p, d, FlowDir::Producer, EdgeProps { volume: 1000, data_rate: prod, ..Default::default() });
        g.add_edge(d, c, FlowDir::Consumer, EdgeProps { volume: 1000, data_rate: cons, ..Default::default() });
        g
    }

    #[test]
    fn mismatch_detected_in_both_directions() {
        let cfg = AnalysisConfig::default(); // 4x
        for (p, c) in [(1000.0, 100.0), (100.0, 1000.0)] {
            let g = rates(p, c);
            let ctx = AnalysisContext::new(&g, &cfg);
            let ops = detect(&g, &cfg, &ctx);
            assert_eq!(ops.len(), 1, "prod {p} cons {c}");
            assert!(ops[0].evidence.contains("10.0x"));
        }
    }

    #[test]
    fn matched_rates_not_flagged() {
        let g = rates(500.0, 400.0);
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        assert!(detect(&g, &cfg, &ctx).is_empty());
    }

    #[test]
    fn zero_rates_skipped() {
        let g = rates(0.0, 100.0);
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        assert!(detect(&g, &cfg, &ctx).is_empty());
    }

    #[test]
    fn severity_scales_with_volume_and_ratio() {
        let g = rates(800.0, 100.0);
        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        let ops = detect(&g, &cfg, &ctx);
        assert!((ops[0].severity - 8.0 * 1000.0).abs() < 1e-6);
    }
}
