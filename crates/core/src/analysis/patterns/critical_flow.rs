//! Critical / non-critical data flow pattern (Table 1, row 6).
//!
//! (1) Flows on the caterpillar that cause stalling (high blocking fraction)
//! must improve to improve response time. (2) Flows where a consumer could
//! proceed without all inputs could relax their synchronization — marked
//! "[Must validate]" per the paper, since only the user knows whether the
//! consumer is semantically able to start early.

use crate::graph::DflGraph;
use crate::props::fmt_bytes;

use super::{AnalysisConfig, AnalysisContext, Opportunity, PatternKind, Remediation, Subject};

/// Detects stalling critical flows and relaxable non-critical flows.
pub fn detect(g: &DflGraph, cfg: &AnalysisConfig, ctx: &AnalysisContext) -> Vec<Opportunity> {
    let mut out = Vec::new();

    for (eid, e) in g.edges() {
        let on_path = ctx.edge_on_path(eid);
        let stalls = e.props.blocking_fraction >= cfg.blocking_threshold;
        if on_path && stalls {
            out.push(Opportunity {
                pattern: PatternKind::CriticalDataFlow,
                subject: Subject::Edge(eid),
                severity: e.props.blocking_fraction * e.props.volume as f64,
                evidence: format!(
                    "critical-path flow blocks {:.0}% of open-stream time ({})",
                    e.props.blocking_fraction * 100.0,
                    fmt_bytes(e.props.volume as f64)
                ),
                remediations: vec![
                    Remediation::BiasResourcesCriticalVsNot,
                    Remediation::AnticipatoryDataMovement,
                ],
                must_validate: false,
                on_caterpillar: true,
            });
        }
    }

    // Relaxable synchronization: a consumer task with several inputs where
    // one input dominates — the task might start on the dominant input
    // before the rest arrive.
    for t in g.task_vertices() {
        if g.in_degree(t) < 2 {
            continue;
        }
        let volumes: Vec<u64> = g.in_edges(t).map(|e| g.edge(e).props.volume).collect();
        let total: u64 = volumes.iter().sum();
        let max = volumes.iter().copied().max().unwrap_or(0);
        if total == 0 {
            continue;
        }
        // One input ≥ 70% of the total: the remaining inputs are candidates
        // for push/pull pipelining.
        if (max as f64) / (total as f64) >= 0.7 {
            out.push(Opportunity {
                pattern: PatternKind::NonCriticalDataFlow,
                subject: Subject::Vertex(t),
                severity: (total - max) as f64,
                evidence: format!(
                    "consumer has {} inputs but one carries {:.0}% of volume; others may pipeline",
                    volumes.len(),
                    max as f64 / total as f64 * 100.0
                ),
                remediations: vec![Remediation::ChangeTaskDataSynchronization],
                must_validate: true,
                on_caterpillar: ctx.on_caterpillar(t),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    #[test]
    fn stalling_critical_flow_detected() {
        let mut g = DflGraph::new();
        let p = g.add_task("p", "p", TaskProps::default());
        let d = g.add_data("d", "d", DataProps::default());
        let c = g.add_task("c", "c", TaskProps::default());
        g.add_edge(p, d, FlowDir::Producer, EdgeProps { volume: 1000, blocking_fraction: 0.8, ..Default::default() });
        g.add_edge(d, c, FlowDir::Consumer, EdgeProps { volume: 1000, blocking_fraction: 0.05, ..Default::default() });

        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        let ops = detect(&g, &cfg, &ctx);
        let crit: Vec<_> = ops.iter().filter(|o| o.pattern == PatternKind::CriticalDataFlow).collect();
        assert_eq!(crit.len(), 1);
        assert!(crit[0].evidence.contains("80%"));
        assert!(!crit[0].must_validate);
    }

    #[test]
    fn dominant_input_suggests_relaxation() {
        let mut g = DflGraph::new();
        let d1 = g.add_data("big", "d", DataProps::default());
        let d2 = g.add_data("small", "d", DataProps::default());
        let t = g.add_task("t", "t", TaskProps::default());
        g.add_edge(d1, t, FlowDir::Consumer, EdgeProps { volume: 900, ..Default::default() });
        g.add_edge(d2, t, FlowDir::Consumer, EdgeProps { volume: 100, ..Default::default() });

        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        let ops = detect(&g, &cfg, &ctx);
        let relax: Vec<_> = ops.iter().filter(|o| o.pattern == PatternKind::NonCriticalDataFlow).collect();
        assert_eq!(relax.len(), 1);
        assert!(relax[0].must_validate, "paper marks this [Must validate]");
        assert_eq!(relax[0].severity, 100.0);
    }

    #[test]
    fn balanced_inputs_not_relaxable() {
        let mut g = DflGraph::new();
        let d1 = g.add_data("a", "d", DataProps::default());
        let d2 = g.add_data("b", "d", DataProps::default());
        let t = g.add_task("t", "t", TaskProps::default());
        g.add_edge(d1, t, FlowDir::Consumer, EdgeProps { volume: 500, ..Default::default() });
        g.add_edge(d2, t, FlowDir::Consumer, EdgeProps { volume: 500, ..Default::default() });

        let cfg = AnalysisConfig::default();
        let ctx = AnalysisContext::new(&g, &cfg);
        assert!(detect(&g, &cfg, &ctx)
            .iter()
            .all(|o| o.pattern != PatternKind::NonCriticalDataFlow));
    }
}
