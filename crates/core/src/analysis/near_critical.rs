//! Near-critical path enumeration (§5.1).
//!
//! "We then find opportunities by identifying patterns in the critical and
//! *near-critical* CTs." Beyond the single critical path, analysts want the
//! next-most-expensive independent threads of execution. This module
//! enumerates vertex-disjoint paths greedily: find the critical path, remove
//! its vertices, repeat — each iteration is one linear GCPA sweep, so k
//! paths cost O(k·(V+E)).

use std::collections::HashMap;

use crate::analysis::cost::CostModel;
use crate::analysis::critical_path::{try_critical_path, CriticalPath};
use crate::graph::{DflGraph, EdgeId, VertexId};

/// Up to `k` vertex-disjoint paths in descending cost order. The first
/// entry is the critical path; later entries are the near-critical threads
/// that remain after earlier paths' vertices are removed.
///
/// Stops early when the residual graph has no edges or a path's cost drops
/// to zero (nothing bottleneck-relevant remains).
pub fn k_disjoint_paths(g: &DflGraph, cost: &CostModel, k: usize) -> Vec<CriticalPath> {
    let mut removed = vec![false; g.vertex_count()];
    let mut out = Vec::new();

    for _ in 0..k {
        // Residual subgraph of non-removed vertices.
        let mut sub = DflGraph::new();
        let mut back: Vec<VertexId> = Vec::new();
        let mut map: HashMap<VertexId, VertexId> = HashMap::new();
        for (v, vx) in g.vertices() {
            if !removed[v.0 as usize] {
                let nv = sub.add_vertex(vx.clone());
                map.insert(v, nv);
                back.push(v);
            }
        }
        let mut eback: Vec<EdgeId> = Vec::new();
        for (eid, e) in g.edges() {
            if let (Some(&s), Some(&d)) = (map.get(&e.src), map.get(&e.dst)) {
                sub.add_edge(s, d, e.dir, e.props);
                eback.push(eid);
            }
        }
        if sub.vertex_count() == 0 {
            break;
        }
        let Ok(cp) = try_critical_path(&sub, cost) else { break };
        if cp.vertices.is_empty() || (cp.total_cost <= 0.0 && !out.is_empty()) {
            break;
        }
        let mapped = CriticalPath {
            vertices: cp.vertices.iter().map(|v| back[v.0 as usize]).collect(),
            edges: cp.edges.iter().map(|e| eback[e.0 as usize]).collect(),
            total_cost: cp.total_cost,
        };
        for &v in &mapped.vertices {
            removed[v.0 as usize] = true;
        }
        let stop = mapped.vertices.len() < 2;
        out.push(mapped);
        if stop {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    /// Three disjoint pipelines with volumes 300, 200, 100.
    fn three_pipelines() -> DflGraph {
        let mut g = DflGraph::new();
        for (i, vol) in [(0u32, 300u64), (1, 200), (2, 100)] {
            let t = g.add_task(&format!("t{i}"), "t", TaskProps::default());
            let d = g.add_data(&format!("d{i}"), "d", DataProps::default());
            let c = g.add_task(&format!("c{i}"), "c", TaskProps::default());
            g.add_edge(t, d, FlowDir::Producer, EdgeProps { volume: vol, ..Default::default() });
            g.add_edge(d, c, FlowDir::Consumer, EdgeProps { volume: vol, ..Default::default() });
        }
        g
    }

    #[test]
    fn paths_come_out_in_cost_order_and_disjoint() {
        let g = three_pipelines();
        let paths = k_disjoint_paths(&g, &CostModel::Volume, 3);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].total_cost, 600.0);
        assert_eq!(paths[1].total_cost, 400.0);
        assert_eq!(paths[2].total_cost, 200.0);
        // Vertex-disjointness.
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            for v in &p.vertices {
                assert!(seen.insert(*v), "vertex reused across paths");
            }
        }
    }

    #[test]
    fn k_larger_than_available_paths() {
        let g = three_pipelines();
        let paths = k_disjoint_paths(&g, &CostModel::Volume, 10);
        assert!(paths.len() >= 3);
        assert!(paths.len() <= 4, "at most one degenerate tail");
    }

    #[test]
    fn second_path_avoids_first_in_shared_graph() {
        // Shared source: t0 feeds both d_big and d_small.
        let mut g = DflGraph::new();
        let t0 = g.add_task("t0", "t", TaskProps::default());
        let big = g.add_data("big", "d", DataProps::default());
        let small = g.add_data("small", "d", DataProps::default());
        let c1 = g.add_task("c1", "c", TaskProps::default());
        let c2 = g.add_task("c2", "c", TaskProps::default());
        g.add_edge(t0, big, FlowDir::Producer, EdgeProps { volume: 500, ..Default::default() });
        g.add_edge(t0, small, FlowDir::Producer, EdgeProps { volume: 100, ..Default::default() });
        g.add_edge(big, c1, FlowDir::Consumer, EdgeProps { volume: 500, ..Default::default() });
        g.add_edge(small, c2, FlowDir::Consumer, EdgeProps { volume: 100, ..Default::default() });

        let paths = k_disjoint_paths(&g, &CostModel::Volume, 2);
        assert_eq!(paths[0].total_cost, 1000.0, "t0→big→c1");
        // Second path cannot reuse t0; it is the residual small→c2 edge.
        assert!(paths[1].vertices.iter().all(|&v| g.vertex(v).name != "t0"));
    }

    #[test]
    fn empty_graph() {
        let g = DflGraph::new();
        assert!(k_disjoint_paths(&g, &CostModel::Volume, 3).is_empty());
    }
}
