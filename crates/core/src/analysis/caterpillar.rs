//! DFL caterpillar trees (§5.1).
//!
//! A *caterpillar tree* is a tree in which every vertex is within distance
//! one of a central path — here, the critical path. Caterpillars capture all
//! distance-one fan-in/fan-out relations of critical vertices, narrowing the
//! opportunity search while keeping the relations pattern detection needs.
//!
//! Because DFL-Gs have two vertex types, a plain caterpillar can sever
//! producer/consumer relations. The **DFL caterpillar** adds the paper's
//! rule: when a leg task *produces data on the path* (making data vertices
//! the roots of caterpillar branches), the data vertices that task consumes
//! — at distance two — are also included, preserving the producer relation
//! (`d9`/`d11` feeding `t7`/`t9` in Fig. 3b).

use crate::analysis::critical_path::CriticalPath;
use crate::graph::{DflGraph, EdgeId, VertexId};

/// Why a vertex belongs to a caterpillar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VertexRole {
    /// On the central (critical) path.
    Spine,
    /// Distance-one neighbor of the spine.
    Leg,
    /// Distance-two vertex added by the DFL producer-relation rule.
    Extended,
}

/// A DFL caterpillar tree.
#[derive(Debug, Clone)]
pub struct Caterpillar {
    /// Spine vertices, in path order.
    pub spine: Vec<VertexId>,
    /// Distance-one members (not on the spine).
    pub legs: Vec<VertexId>,
    /// Distance-two members from the DFL rule.
    pub extended: Vec<VertexId>,
    /// Edges of the induced caterpillar subgraph.
    pub edges: Vec<EdgeId>,
}

impl Caterpillar {
    /// Role of `v`, or `None` if not a member.
    pub fn role(&self, v: VertexId) -> Option<VertexRole> {
        if self.spine.contains(&v) {
            Some(VertexRole::Spine)
        } else if self.legs.contains(&v) {
            Some(VertexRole::Leg)
        } else if self.extended.contains(&v) {
            Some(VertexRole::Extended)
        } else {
            None
        }
    }

    /// All members (spine + legs + extended).
    pub fn members(&self) -> Vec<VertexId> {
        let mut v = self.spine.clone();
        v.extend_from_slice(&self.legs);
        v.extend_from_slice(&self.extended);
        v
    }

    /// Membership mask for a graph with `n` vertices.
    pub fn membership(&self, n: usize) -> Vec<bool> {
        let mut m = vec![false; n];
        for v in self.members() {
            m[v.0 as usize] = true;
        }
        m
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        self.spine.len() + self.legs.len() + self.extended.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spine.is_empty()
    }
}

/// Whether to apply the DFL distance-two producer-relation rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaterpillarRule {
    /// Plain caterpillar: spine + distance-one legs.
    Plain,
    /// DFL caterpillar: additionally include, for each leg task that
    /// produces a spine data vertex, the data vertices that leg consumes.
    Dfl,
}

/// Builds the caterpillar tree of `path` in `g`.
///
/// Linear in edges and vertices: each edge is inspected a constant number of
/// times.
pub fn caterpillar(g: &DflGraph, path: &CriticalPath, rule: CaterpillarRule) -> Caterpillar {
    let n = g.vertex_count();
    let on_spine = path.membership(n);
    let mut member = on_spine.clone();

    let mut legs = Vec::new();
    let mut edges = Vec::new();

    // Distance-one sweep: every edge incident to the spine joins the
    // caterpillar; its off-spine endpoint becomes a leg.
    for (eid, e) in g.edges() {
        let s_on = on_spine[e.src.0 as usize];
        let d_on = on_spine[e.dst.0 as usize];
        if !(s_on || d_on) {
            continue;
        }
        edges.push(eid);
        for v in [e.src, e.dst] {
            if !member[v.0 as usize] {
                member[v.0 as usize] = true;
                legs.push(v);
            }
        }
    }

    // DFL rule: preserve producer relations of leg tasks feeding the spine.
    let mut extended = Vec::new();
    if rule == CaterpillarRule::Dfl {
        let leg_mask = {
            let mut m = vec![false; n];
            for &v in &legs {
                m[v.0 as usize] = true;
            }
            m
        };
        for &leg in &legs {
            if !g.vertex(leg).is_task() {
                continue;
            }
            // Does this leg produce data on the spine?
            let produces_spine_data = g
                .out_edges(leg)
                .any(|e| on_spine[g.edge(e).dst.0 as usize]);
            if !produces_spine_data {
                continue;
            }
            // Include its input data (distance two) and connecting edges.
            for e in g.in_edges(leg) {
                let d = g.edge(e).src;
                if member[d.0 as usize] {
                    if !leg_mask[d.0 as usize] {
                        continue;
                    }
                    // Already a member (spine or leg) — edge already added if
                    // spine-incident; add if it connects two legs.
                    if !edges.contains(&e) {
                        edges.push(e);
                    }
                    continue;
                }
                member[d.0 as usize] = true;
                extended.push(d);
                edges.push(e);
            }
        }
    }

    legs.sort_unstable();
    extended.sort_unstable();
    Caterpillar { spine: path.vertices.clone(), legs, extended, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::cost::CostModel;
    use crate::analysis::critical_path::critical_path;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    /// Fig. 3b-style graph:
    ///   spine: t1 → d1 → t2 → d2 → t3
    ///   leg:   t7 (producer of d1), which itself consumes d9 (distance 2)
    ///   leg:   t8 (extra consumer of d2)
    fn fig3() -> (DflGraph, [VertexId; 8]) {
        let mut g = DflGraph::new();
        let t1 = g.add_task("t1", "t", TaskProps::default());
        let d1 = g.add_data("d1", "d", DataProps::default());
        let t2 = g.add_task("t2", "t", TaskProps::default());
        let d2 = g.add_data("d2", "d", DataProps::default());
        let t3 = g.add_task("t3", "t", TaskProps::default());
        g.add_edge(t1, d1, FlowDir::Producer, EdgeProps { volume: 100, ..Default::default() });
        g.add_edge(d1, t2, FlowDir::Consumer, EdgeProps { volume: 100, ..Default::default() });
        g.add_edge(t2, d2, FlowDir::Producer, EdgeProps { volume: 100, ..Default::default() });
        g.add_edge(d2, t3, FlowDir::Consumer, EdgeProps { volume: 100, ..Default::default() });

        let t7 = g.add_task("t7", "t", TaskProps::default());
        let d9 = g.add_data("d9", "d", DataProps::default());
        g.add_edge(t7, d1, FlowDir::Producer, EdgeProps { volume: 5, ..Default::default() });
        g.add_edge(d9, t7, FlowDir::Consumer, EdgeProps { volume: 5, ..Default::default() });

        let t8 = g.add_task("t8", "t", TaskProps::default());
        g.add_edge(d2, t8, FlowDir::Consumer, EdgeProps { volume: 1, ..Default::default() });

        (g, [t1, d1, t2, d2, t3, t7, d9, t8])
    }

    #[test]
    fn plain_caterpillar_has_distance_one_legs_only() {
        let (g, [_, _, _, _, _, t7, d9, t8]) = fig3();
        let cp = critical_path(&g, &CostModel::Volume);
        let cat = caterpillar(&g, &cp, CaterpillarRule::Plain);
        assert_eq!(cat.spine.len(), 5);
        assert!(cat.legs.contains(&t7));
        assert!(cat.legs.contains(&t8));
        assert!(!cat.legs.contains(&d9), "distance-2 excluded by plain rule");
        assert!(cat.extended.is_empty());
    }

    #[test]
    fn dfl_rule_preserves_producer_relation() {
        let (g, [_, _, _, _, _, t7, d9, _]) = fig3();
        let cp = critical_path(&g, &CostModel::Volume);
        let cat = caterpillar(&g, &cp, CaterpillarRule::Dfl);
        assert_eq!(cat.role(t7), Some(VertexRole::Leg));
        assert_eq!(cat.role(d9), Some(VertexRole::Extended));
        // The d9 → t7 edge is part of the caterpillar.
        let has_edge = cat
            .edges
            .iter()
            .any(|&e| g.edge(e).src == d9 && g.edge(e).dst == t7);
        assert!(has_edge);
    }

    #[test]
    fn consumer_legs_do_not_trigger_extension() {
        let (g, [_, _, _, _, _, _, _, t8]) = fig3();
        let cp = critical_path(&g, &CostModel::Volume);
        let cat = caterpillar(&g, &cp, CaterpillarRule::Dfl);
        // t8 only consumes from the spine; nothing upstream of t8 enters.
        assert_eq!(cat.role(t8), Some(VertexRole::Leg));
        assert_eq!(cat.extended.len(), 1, "only d9");
    }

    #[test]
    fn caterpillar_superset_of_path() {
        let (g, _) = fig3();
        let cp = critical_path(&g, &CostModel::Volume);
        let cat = caterpillar(&g, &cp, CaterpillarRule::Dfl);
        for v in &cp.vertices {
            assert_eq!(cat.role(*v), Some(VertexRole::Spine));
        }
        assert!(cat.len() >= cp.vertices.len());
    }

    #[test]
    fn membership_counts() {
        let (g, _) = fig3();
        let cp = critical_path(&g, &CostModel::Volume);
        let cat = caterpillar(&g, &cp, CaterpillarRule::Dfl);
        let m = cat.membership(g.vertex_count());
        assert_eq!(m.iter().filter(|&&b| b).count(), cat.len());
        assert_eq!(cat.len(), 8, "whole fig3 graph is within the caterpillar");
    }

    #[test]
    fn empty_path_empty_caterpillar() {
        let g = DflGraph::new();
        let cp = CriticalPath { vertices: vec![], edges: vec![], total_cost: 0.0 };
        let cat = caterpillar(&g, &cp, CaterpillarRule::Dfl);
        assert!(cat.is_empty());
        assert_eq!(cat.len(), 0);
    }
}
