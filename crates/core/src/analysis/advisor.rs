//! Automated coordination advice — the paper's stated future work ("our
//! future work includes exploring ways to automate suggestions for improved
//! scheduling and resource assignment", §8).
//!
//! The advisor turns ranked [`Opportunity`]s into a concrete
//! [`CoordinationAdvice`]: which input files to stage node-locally, whether
//! intermediates belong on node-local tiers, whether consumers of the same
//! data should co-locate, and whether caching or write buffering applies.
//! A workflow engine can apply the advice mechanically (see
//! `dfl-workflows::engine`).

use std::collections::BTreeSet;

use crate::analysis::patterns::{Opportunity, PatternKind, Subject};
use crate::graph::{DflGraph, VertexId};

/// Machine-applicable coordination suggestions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoordinationAdvice {
    /// Input files (no producer in the graph) worth staging to node-local
    /// storage before consumers run — from fan-out / splitter / inter-task
    /// locality patterns.
    pub stage_inputs: BTreeSet<String>,
    /// Whether intermediates (produced-and-consumed files) should live on
    /// node-local tiers — from producer-consumer locality on the caterpillar.
    pub local_intermediates: bool,
    /// Whether consumers sharing data should be co-scheduled (group-aware
    /// placement) — from inter-task locality and splitter patterns.
    pub colocate_consumers: bool,
    /// Files whose repeated reads justify caching — from intra/inter-task
    /// reuse.
    pub cache_files: BTreeSet<String>,
    /// Whether producers on the critical path stall in writes long enough
    /// that write buffering is worth trying.
    pub buffer_writes: bool,
    /// Human-readable rationale, one line per decision.
    pub rationale: Vec<String>,
}

impl CoordinationAdvice {
    /// Whether the advisor found anything actionable.
    pub fn is_empty(&self) -> bool {
        self.stage_inputs.is_empty()
            && !self.local_intermediates
            && !self.colocate_consumers
            && self.cache_files.is_empty()
            && !self.buffer_writes
    }
}

fn is_input(g: &DflGraph, d: VertexId) -> bool {
    g.vertex(d).is_data() && g.in_degree(d) == 0
}

/// Derives coordination advice from an opportunity report.
///
/// Only high-confidence, mechanically-applicable remediations are emitted;
/// "[Must validate]" patterns (pipeline relaxation, parallelism trade-offs)
/// are surfaced in the rationale but never auto-applied — matching the
/// paper's requirement for human validation.
pub fn advise(g: &DflGraph, opportunities: &[Opportunity]) -> CoordinationAdvice {
    let mut advice = CoordinationAdvice::default();

    for o in opportunities {
        match o.pattern {
            PatternKind::InterTaskLocality | PatternKind::Splitter => {
                if let Subject::Vertex(d) = o.subject {
                    if g.vertex(d).is_data() {
                        if is_input(g, d) {
                            if advice.stage_inputs.insert(g.vertex(d).name.clone()) {
                                advice.rationale.push(format!(
                                    "stage '{}' locally: {}",
                                    g.vertex(d).name, o.evidence
                                ));
                            }
                        } else {
                            if !advice.local_intermediates {
                                advice.rationale.push(format!(
                                    "keep intermediates node-local: '{}' — {}",
                                    g.vertex(d).name, o.evidence
                                ));
                            }
                            advice.local_intermediates = true;
                        }
                        if g.out_degree(d) >= 2 {
                            if !advice.colocate_consumers {
                                advice.rationale.push(format!(
                                    "co-schedule consumers of '{}' ({} readers)",
                                    g.vertex(d).name,
                                    g.out_degree(d)
                                ));
                            }
                            advice.colocate_consumers = true;
                        }
                    }
                }
                if let Subject::Composite(_, d, _) = o.subject {
                    if !is_input(g, d) {
                        advice.local_intermediates = true;
                    }
                }
            }
            PatternKind::IntraTaskLocality => {
                if let Subject::Edge(e) = o.subject {
                    let d = g.edge(e).src;
                    if g.vertex(d).is_data()
                        && advice.cache_files.insert(g.vertex(d).name.clone())
                    {
                        advice.rationale.push(format!(
                            "cache '{}': {}",
                            g.vertex(d).name, o.evidence
                        ));
                    }
                }
            }
            PatternKind::CriticalDataFlow => {
                if let Subject::Edge(e) = o.subject {
                    let edge = g.edge(e);
                    // A producer flow stalling on the critical path → buffer.
                    if edge.dir == crate::props::FlowDir::Producer && !advice.buffer_writes {
                        advice.buffer_writes = true;
                        advice.rationale.push(format!(
                            "buffer writes of '{}': {}",
                            g.vertex(edge.src).name, o.evidence
                        ));
                    }
                }
            }
            PatternKind::Aggregator
            | PatternKind::CompressorAggregator
            | PatternKind::AggregatorThenRegular
            | PatternKind::AggregatorThenSplitter => {
                // Aggregation chains benefit from keeping the gathered data
                // near its consumers.
                advice.local_intermediates = true;
            }
            _ => {
                if o.must_validate {
                    advice.rationale.push(format!(
                        "[needs validation, not auto-applied] {}: {}",
                        o.pattern.label(),
                        o.evidence
                    ));
                }
            }
        }
    }
    advice
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::patterns::{analyze, AnalysisConfig};
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    /// Input file fanned out to 4 partition readers feeding an aggregator
    /// whose output is re-read by a trainer.
    fn workloadish() -> DflGraph {
        let mut g = DflGraph::new();
        let input = g.add_data("input.dat", "input", DataProps { size: 400 << 20, ..Default::default() });
        let agg = g.add_task("agg-0", "agg", TaskProps::default());
        for i in 0..4 {
            let t = g.add_task(&format!("part-{i}"), "part", TaskProps::default());
            g.add_edge(input, t, FlowDir::Consumer, EdgeProps {
                volume: 100 << 20,
                footprint: (100u64 << 20) as f64,
                subset_fraction: 0.25,
                ops: 8,
                ..Default::default()
            });
            let o = g.add_data(&format!("part-{i}.out"), "part#.out", DataProps { size: 50 << 20, ..Default::default() });
            g.add_edge(t, o, FlowDir::Producer, EdgeProps { volume: 50 << 20, ops: 8, ..Default::default() });
            g.add_edge(o, agg, FlowDir::Consumer, EdgeProps { volume: 50 << 20, ops: 8, ..Default::default() });
        }
        let combined = g.add_data("combined.h5", "combined", DataProps { size: 200 << 20, ..Default::default() });
        g.add_edge(agg, combined, FlowDir::Producer, EdgeProps { volume: 200 << 20, ops: 8, ..Default::default() });
        let train = g.add_task("train-0", "train", TaskProps::default());
        g.add_edge(combined, train, FlowDir::Consumer, EdgeProps {
            volume: 800 << 20,
            footprint: (200u64 << 20) as f64,
            reuse_factor: 4.0,
            ops: 32,
            ..Default::default()
        });
        g
    }

    fn advice_for(g: &DflGraph) -> CoordinationAdvice {
        let cfg = AnalysisConfig {
            volume_threshold: 64 << 20,
            fan_in_threshold: 3,
            ..Default::default()
        };
        advise(g, &analyze(g, &cfg))
    }

    #[test]
    fn stages_shared_inputs_and_localizes_intermediates() {
        let g = workloadish();
        let a = advice_for(&g);
        assert!(a.stage_inputs.contains("input.dat"), "{a:?}");
        assert!(a.local_intermediates, "aggregation chain present");
        assert!(a.colocate_consumers, "input has 4 readers");
        assert!(!a.is_empty());
    }

    #[test]
    fn caches_reused_files() {
        let g = workloadish();
        let a = advice_for(&g);
        assert!(a.cache_files.contains("combined.h5"), "train re-reads 4x: {a:?}");
    }

    #[test]
    fn rationale_lines_accompany_decisions() {
        let g = workloadish();
        let a = advice_for(&g);
        assert!(a.rationale.iter().any(|r| r.contains("input.dat")));
        assert!(a.rationale.iter().any(|r| r.contains("cache 'combined.h5'")));
    }

    #[test]
    fn empty_graph_yields_no_advice() {
        let g = DflGraph::new();
        let a = advise(&g, &[]);
        assert!(a.is_empty());
        assert!(a.rationale.is_empty());
    }

    #[test]
    fn must_validate_patterns_not_auto_applied() {
        // A consumer with a dominant input triggers NonCriticalDataFlow
        // (must-validate): it should appear only in the rationale.
        let mut g = DflGraph::new();
        let d1 = g.add_data("big", "d", DataProps { size: 1000, ..Default::default() });
        let d2 = g.add_data("small", "d", DataProps { size: 10, ..Default::default() });
        let t = g.add_task("t-0", "t", TaskProps::default());
        g.add_edge(d1, t, FlowDir::Consumer, EdgeProps { volume: 900, ..Default::default() });
        g.add_edge(d2, t, FlowDir::Consumer, EdgeProps { volume: 100, ..Default::default() });
        let cfg = AnalysisConfig::default();
        let a = advise(&g, &analyze(&g, &cfg));
        assert!(a.rationale.iter().any(|r| r.contains("needs validation")));
    }
}
