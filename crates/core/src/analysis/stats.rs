//! Whole-graph summary statistics: the first thing an analyst looks at
//! before drilling into rankings and patterns.

use std::collections::BTreeMap;

use crate::analysis::entities::RelationShape;
use crate::graph::{DflGraph, VertexKind};
use crate::props::{fmt_bytes, FlowDir};

/// Summary of a DFL graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub tasks: usize,
    pub data: usize,
    pub producer_edges: usize,
    pub consumer_edges: usize,
    /// Total bytes written (producer volume).
    pub write_volume: u64,
    /// Total bytes read (consumer volume).
    pub read_volume: u64,
    /// Total unique bytes read (consumer footprint estimate).
    pub read_footprint: f64,
    /// Relation shape histogram per vertex kind.
    pub task_shapes: BTreeMap<String, usize>,
    pub data_shapes: BTreeMap<String, usize>,
    pub max_task_fan_in: usize,
    pub max_data_fan_out: usize,
    /// Aggregate read reuse: read volume / read footprint.
    pub global_reuse: f64,
}

fn shape_label(s: RelationShape) -> &'static str {
    match s {
        RelationShape::Regular => "regular",
        RelationShape::FanIn => "fan-in",
        RelationShape::FanOut => "fan-out",
        RelationShape::FanInOut => "fan-in/out",
        RelationShape::Source => "source",
        RelationShape::Sink => "sink",
        RelationShape::Isolated => "isolated",
    }
}

/// Computes summary statistics in one pass over vertices and edges.
pub fn graph_stats(g: &DflGraph) -> GraphStats {
    let mut s = GraphStats {
        tasks: 0,
        data: 0,
        producer_edges: 0,
        consumer_edges: 0,
        write_volume: 0,
        read_volume: 0,
        read_footprint: 0.0,
        task_shapes: BTreeMap::new(),
        data_shapes: BTreeMap::new(),
        max_task_fan_in: 0,
        max_data_fan_out: 0,
        global_reuse: 0.0,
    };
    for (v, vx) in g.vertices() {
        let shape = shape_label(g.shape_of(v));
        match vx.kind {
            VertexKind::Task => {
                s.tasks += 1;
                *s.task_shapes.entry(shape.to_owned()).or_insert(0) += 1;
                s.max_task_fan_in = s.max_task_fan_in.max(g.in_degree(v));
            }
            VertexKind::Data => {
                s.data += 1;
                *s.data_shapes.entry(shape.to_owned()).or_insert(0) += 1;
                s.max_data_fan_out = s.max_data_fan_out.max(g.out_degree(v));
            }
        }
    }
    for (_, e) in g.edges() {
        match e.dir {
            FlowDir::Producer => {
                s.producer_edges += 1;
                s.write_volume += e.props.volume;
            }
            FlowDir::Consumer => {
                s.consumer_edges += 1;
                s.read_volume += e.props.volume;
                s.read_footprint += e.props.footprint;
            }
        }
    }
    s.global_reuse = if s.read_footprint > 0.0 {
        s.read_volume as f64 / s.read_footprint
    } else {
        0.0
    };
    s
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "vertices: {} tasks + {} data; edges: {} producer + {} consumer",
            self.tasks, self.data, self.producer_edges, self.consumer_edges
        )?;
        writeln!(
            f,
            "volume: {} written, {} read ({} unique; global reuse {:.2}x)",
            fmt_bytes(self.write_volume as f64),
            fmt_bytes(self.read_volume as f64),
            fmt_bytes(self.read_footprint),
            self.global_reuse
        )?;
        writeln!(
            f,
            "max task fan-in {}, max data fan-out {}",
            self.max_task_fan_in, self.max_data_fan_out
        )?;
        let fmt_shapes = |m: &BTreeMap<String, usize>| {
            m.iter().map(|(k, v)| format!("{k}: {v}")).collect::<Vec<_>>().join(", ")
        };
        writeln!(f, "task relations: {}", fmt_shapes(&self.task_shapes))?;
        writeln!(f, "data relations: {}", fmt_shapes(&self.data_shapes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, TaskProps};

    fn sample() -> DflGraph {
        let mut g = DflGraph::new();
        let p = g.add_task("p", "p", TaskProps::default());
        let d = g.add_data("d", "d", DataProps { size: 1000, ..Default::default() });
        g.add_edge(p, d, FlowDir::Producer, EdgeProps { volume: 1000, footprint: 1000.0, ..Default::default() });
        for i in 0..3 {
            let c = g.add_task(&format!("c{i}"), "c", TaskProps::default());
            g.add_edge(d, c, FlowDir::Consumer, EdgeProps { volume: 1000, footprint: 500.0, ..Default::default() });
        }
        g
    }

    #[test]
    fn counts_and_volumes() {
        let s = graph_stats(&sample());
        assert_eq!(s.tasks, 4);
        assert_eq!(s.data, 1);
        assert_eq!(s.producer_edges, 1);
        assert_eq!(s.consumer_edges, 3);
        assert_eq!(s.write_volume, 1000);
        assert_eq!(s.read_volume, 3000);
        assert!((s.global_reuse - 2.0).abs() < 1e-9, "3000 read over 1500 unique");
        assert_eq!(s.max_data_fan_out, 3);
    }

    #[test]
    fn shape_histograms() {
        let s = graph_stats(&sample());
        assert_eq!(s.data_shapes["fan-out"], 1);
        assert_eq!(s.task_shapes["source"], 1, "producer has no inputs");
        assert_eq!(s.task_shapes["sink"], 3, "consumers have no outputs");
    }

    #[test]
    fn display_mentions_key_numbers() {
        let text = graph_stats(&sample()).to_string();
        assert!(text.contains("4 tasks + 1 data"));
        assert!(text.contains("reuse 2.00x"));
    }

    #[test]
    fn empty_graph() {
        let s = graph_stats(&DflGraph::new());
        assert_eq!(s.tasks + s.data, 0);
        assert_eq!(s.global_reuse, 0.0);
    }
}
