//! Generalized critical path analysis (GCPA, §5.1).
//!
//! The critical path is the maximum-cost source→sink path in the DFL-DAG
//! under a chosen [`CostModel`]. Computation is a single dynamic-programming
//! sweep over a topological order — linear in vertices and edges — with a
//! deterministic tie-break (lowest predecessor id).

use crate::analysis::cost::CostModel;
use crate::error::GraphError;
use crate::graph::{DflGraph, EdgeId, VertexId};

/// A critical path: alternating task/data vertices and the edges between
/// them, plus the accumulated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Vertices in flow order (source first).
    pub vertices: Vec<VertexId>,
    /// Edges in flow order; `edges.len() == vertices.len() - 1`.
    pub edges: Vec<EdgeId>,
    /// Total path cost under the cost model used.
    pub total_cost: f64,
}

impl CriticalPath {
    /// Whether `v` lies on the path. O(len) — paths are short; use
    /// [`CriticalPath::membership`] for repeated queries.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// A dense membership mask over a graph with `n` vertices.
    pub fn membership(&self, n: usize) -> Vec<bool> {
        let mut m = vec![false; n];
        for v in &self.vertices {
            m[v.0 as usize] = true;
        }
        m
    }
}

/// Computes the critical path of `g` under `cost`.
///
/// Panics only if `g` is cyclic — call on DFL-DAGs (or check
/// [`DflGraph::is_dag`] for templates first). Empty graphs yield an empty
/// path with zero cost.
pub fn critical_path(g: &DflGraph, cost: &CostModel) -> CriticalPath {
    try_critical_path(g, cost).expect("critical path requires an acyclic graph")
}

/// Fallible variant of [`critical_path`], returning
/// [`GraphError::CycleDetected`] for cyclic graphs.
pub fn try_critical_path(g: &DflGraph, cost: &CostModel) -> Result<CriticalPath, GraphError> {
    let n = g.vertex_count();
    if n == 0 {
        return Ok(CriticalPath { vertices: vec![], edges: vec![], total_cost: 0.0 });
    }

    const NONE: u32 = u32::MAX;

    // The memoized order also carries the cycle check; computing it is paid
    // once per graph mutation, not once per analysis.
    let Some(order) = g.topo_flat() else {
        return Err(GraphError::CycleDetected);
    };

    let esrc = g.edge_src_raw();
    let m = esrc.len();

    // Hoist the cost-model dispatch out of the DP sweep: one sequential pass
    // fills a flat cost array per edge and seeds dist with the per-vertex
    // costs (structural models get a zero-filled edge array and vice versa —
    // calloc, effectively free), so the worklist loop below is pure array
    // arithmetic with no enum matches and no AoS struct fetches.
    //
    // dist[v] starts as v's own vertex cost and is finalized to the best
    // cost of a path ending at v (inclusive of that vertex cost) when v is
    // popped; a vertex's dist is only ever read after it is finalized.
    let ecost: Vec<f64> = if matches!(cost, CostModel::BranchJoin { .. } | CostModel::TaskFanIn) {
        vec![0.0; m]
    } else {
        (0..m as u32).map(|ei| cost.edge_cost_props(&g.edge(EdgeId(ei)).props)).collect()
    };
    let mut dist: Vec<f64> =
        if matches!(cost, CostModel::Volume | CostModel::Footprint | CostModel::TransferTime) {
            vec![0.0; n]
        } else {
            (0..n as u32).map(|vi| cost.vertex_cost(g, VertexId(vi))).collect()
        };
    // pred_v/pred_e record the chosen in-edge (NONE for sources); packed in
    // one word so finalizing a vertex touches one cache line, not two.
    let mut pred: Vec<u64> = vec![u64::MAX; n];

    // One pass over the memoized order: every predecessor's dist is final
    // by the time a vertex is visited, and all tie-breaks below are pure id
    // comparisons, so dist/pred and the endpoint choice are independent of
    // which valid order the cache holds.
    // Best endpoint so far (ties to the lowest vertex id).
    let mut end = 0u32;
    let mut end_d = f64::NEG_INFINITY;
    for &vi in order {
        let mut best = f64::NEG_INFINITY;
        let mut best_u = NONE;
        let mut best_e = NONE;
        for e in g.in_edges(VertexId(vi)) {
            let ei = e.0 as usize;
            let u = esrc[ei];
            let cand = dist[u as usize] + ecost[ei];
            // Deterministic tie-break: strictly greater, or equal with a
            // lower predecessor id.
            if cand > best || (cand == best && best_u != NONE && u < best_u) {
                best = cand;
                best_u = u;
                best_e = ei as u32;
            }
        }
        // Sources (no in-edge chosen) keep their seeded vertex cost.
        let dv = if best_e == NONE { dist[vi as usize] } else { best + dist[vi as usize] };
        dist[vi as usize] = dv;
        pred[vi as usize] = (u64::from(best_u) << 32) | u64::from(best_e);
        if dv > end_d || (dv == end_d && vi < end) {
            end_d = dv;
            end = vi;
        }
    }
    let end = VertexId(end);

    // Backtrack.
    let mut vertices = vec![end];
    let mut edges = Vec::new();
    let mut cur = end;
    while pred[cur.0 as usize] != u64::MAX {
        let p = pred[cur.0 as usize];
        let (u, e) = ((p >> 32) as u32, p as u32);
        vertices.push(VertexId(u));
        edges.push(EdgeId(e));
        cur = VertexId(u);
    }
    vertices.reverse();
    edges.reverse();

    Ok(CriticalPath { vertices, edges, total_cost: dist[end.0 as usize] })
}

/// Computes critical paths for each weakly-connected component and returns
/// them sorted by descending cost — "near-critical" paths for wider
/// opportunity searches (§5.1).
pub fn component_critical_paths(g: &DflGraph, cost: &CostModel) -> Vec<CriticalPath> {
    // Union-find over weak connectivity.
    let n = g.vertex_count();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for (_, e) in g.edges() {
        let (a, b) = (find(&mut parent, e.src.0), find(&mut parent, e.dst.0));
        if a != b {
            parent[a as usize] = b;
        }
    }

    // Group vertices and edges by component root in one pass each (BTreeMap
    // keyed by root id keeps the grouping deterministic).
    use std::collections::BTreeMap;
    let mut comps: BTreeMap<u32, (Vec<VertexId>, Vec<EdgeId>)> = BTreeMap::new();
    for i in 0..n as u32 {
        comps.entry(find(&mut parent, i)).or_default().0.push(VertexId(i));
    }
    for (eid, e) in g.edges() {
        // Every edge source is a vertex, so its root was inserted by the
        // vertex pass above; or_default keeps this panic-free regardless.
        let root = find(&mut parent, e.src.0);
        comps.entry(root).or_default().1.push(eid);
    }

    let mut paths: Vec<CriticalPath> = Vec::new();
    // Dense original-id → subgraph-id mapping, reused across components.
    let mut map: Vec<u32> = vec![u32::MAX; n];
    for (members, edge_ids) in comps.values() {
        // A singleton component still carries a path of one vertex when
        // that vertex has cost under the model (e.g. a task's lifetime);
        // only zero-cost isolated vertices are noise.
        if members.len() == 1 && cost.vertex_cost(g, members[0]) == 0.0 {
            continue;
        }
        let mut sub = DflGraph::new();
        let mut back: Vec<VertexId> = Vec::new();
        for &v in members {
            let nv = sub.add_vertex(g.vertex(v).clone());
            map[v.0 as usize] = nv.0;
            back.push(v);
        }
        let mut eback: Vec<EdgeId> = Vec::new();
        for &eid in edge_ids {
            let e = g.edge(eid);
            sub.add_edge(
                VertexId(map[e.src.0 as usize]),
                VertexId(map[e.dst.0 as usize]),
                e.dir,
                e.props,
            );
            eback.push(eid);
        }
        if let Ok(cp) = try_critical_path(&sub, cost) {
            paths.push(CriticalPath {
                vertices: cp.vertices.iter().map(|v| back[v.0 as usize]).collect(),
                edges: cp.edges.iter().map(|e| eback[e.0 as usize]).collect(),
                total_cost: cp.total_cost,
            });
        }
    }
    paths.sort_by(|a, b| b.total_cost.partial_cmp(&a.total_cost).unwrap_or(std::cmp::Ordering::Equal));
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    /// t0 → d_small → t1 and t0 → d_big → t1: critical path takes the big
    /// edge under Volume.
    fn two_route() -> DflGraph {
        let mut g = DflGraph::new();
        let t0 = g.add_task("t0", "t", TaskProps::default());
        let ds = g.add_data("small", "d", DataProps::default());
        let db = g.add_data("big", "d", DataProps::default());
        let t1 = g.add_task("t1", "t", TaskProps::default());
        g.add_edge(t0, ds, FlowDir::Producer, EdgeProps { volume: 10, ..Default::default() });
        g.add_edge(t0, db, FlowDir::Producer, EdgeProps { volume: 1000, ..Default::default() });
        g.add_edge(ds, t1, FlowDir::Consumer, EdgeProps { volume: 10, ..Default::default() });
        g.add_edge(db, t1, FlowDir::Consumer, EdgeProps { volume: 1000, ..Default::default() });
        g
    }

    #[test]
    fn volume_path_prefers_heavy_route() {
        let g = two_route();
        let cp = critical_path(&g, &CostModel::Volume);
        assert_eq!(cp.total_cost, 2000.0);
        let names: Vec<&str> = cp.vertices.iter().map(|&v| g.vertex(v).name.as_str()).collect();
        assert_eq!(names, vec!["t0", "big", "t1"]);
        assert_eq!(cp.edges.len(), 2);
    }

    #[test]
    fn path_is_contiguous() {
        let g = two_route();
        let cp = critical_path(&g, &CostModel::Volume);
        for (i, &e) in cp.edges.iter().enumerate() {
            assert_eq!(g.edge(e).src, cp.vertices[i]);
            assert_eq!(g.edge(e).dst, cp.vertices[i + 1]);
        }
    }

    #[test]
    fn empty_graph_yields_empty_path() {
        let g = DflGraph::new();
        let cp = critical_path(&g, &CostModel::Volume);
        assert!(cp.vertices.is_empty());
        assert_eq!(cp.total_cost, 0.0);
    }

    #[test]
    fn singleton_graph() {
        let mut g = DflGraph::new();
        g.add_task("only", "t", TaskProps { lifetime_ns: 3_000_000_000, ..Default::default() });
        let cp = critical_path(&g, &CostModel::Time);
        assert_eq!(cp.vertices.len(), 1);
        assert!((cp.total_cost - 3.0).abs() < 1e-9);
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Two identical routes; the lower vertex id wins.
        let g = two_route();
        let cp1 = critical_path(&g, &CostModel::Time);
        let cp2 = critical_path(&g, &CostModel::Time);
        assert_eq!(cp1, cp2);
    }

    #[test]
    fn cyclic_graph_errors() {
        let mut g = DflGraph::new();
        let t = g.add_task("t", "t", TaskProps::default());
        let d = g.add_data("d", "d", DataProps::default());
        g.add_edge(t, d, FlowDir::Producer, EdgeProps::default());
        g.add_edge(d, t, FlowDir::Consumer, EdgeProps::default());
        assert_eq!(try_critical_path(&g, &CostModel::Volume), Err(GraphError::CycleDetected));
    }

    #[test]
    fn component_paths_sorted_by_cost() {
        // Two disjoint pipelines with different volumes.
        let mut g = DflGraph::new();
        for (name, vol) in [("a", 100u64), ("b", 900)] {
            let t = g.add_task(&format!("t_{name}"), "t", TaskProps::default());
            let d = g.add_data(&format!("d_{name}"), "d", DataProps::default());
            g.add_edge(t, d, FlowDir::Producer, EdgeProps { volume: vol, ..Default::default() });
        }
        let paths = component_critical_paths(&g, &CostModel::Volume);
        assert_eq!(paths.len(), 2);
        assert!(paths[0].total_cost >= paths[1].total_cost);
        assert_eq!(paths[0].total_cost, 900.0);
    }

    #[test]
    fn endpoint_tie_break_prefers_lowest_id() {
        // Two sinks with equal path cost, arranged so the *higher*-id sink
        // is visited first in topological order (it sits at depth 1 while
        // the lower-id sink hangs off a deeper chain). Regression: the
        // endpoint scan used to keep the first maximum in topo order, which
        // here is the higher id — the documented contract is lowest id.
        let mut g = DflGraph::new();
        let d_low = g.add_data("d_low", "d", DataProps::default()); // id 0
        let s = g.add_task("s", "t", TaskProps::default()); // id 1
        let hi = g.add_data("d_hi", "d", DataProps::default()); // id 2
        let m1 = g.add_task("m1", "t", TaskProps::default()); // id 3
        let m2 = g.add_data("m2", "d", DataProps::default()); // id 4
        g.add_edge(s, hi, FlowDir::Producer, EdgeProps { volume: 10, ..Default::default() });
        g.add_edge(s, m2, FlowDir::Producer, EdgeProps { volume: 3, ..Default::default() });
        g.add_edge(m2, m1, FlowDir::Consumer, EdgeProps { volume: 3, ..Default::default() });
        g.add_edge(m1, d_low, FlowDir::Producer, EdgeProps { volume: 4, ..Default::default() });
        // Both sinks cost 10; topo order visits d_hi (id 2) before d_low
        // (id 0), so a first-max scan would end at d_hi.
        let order = g.topo_order().unwrap();
        let pos = |v: VertexId| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(hi) < pos(d_low), "construction must keep the high id earlier in topo order");
        let cp = critical_path(&g, &CostModel::Volume);
        assert_eq!(cp.total_cost, 10.0);
        assert_eq!(*cp.vertices.last().unwrap(), d_low);
    }

    #[test]
    fn singleton_component_with_cost_is_kept() {
        // An isolated task with a real lifetime is a legitimate (trivial)
        // critical path; only zero-cost isolated vertices are dropped.
        let mut g = DflGraph::new();
        let lone = g.add_task("lone", "t", TaskProps { lifetime_ns: 3_000_000_000, ..Default::default() });
        g.add_data("zero", "d", DataProps::default());
        let t = g.add_task("t", "t", TaskProps { lifetime_ns: 1_000_000_000, ..Default::default() });
        let d = g.add_data("d", "d", DataProps::default());
        g.add_edge(t, d, FlowDir::Producer, EdgeProps::default());
        let paths = component_critical_paths(&g, &CostModel::Time);
        assert_eq!(paths.len(), 2, "lone task kept, zero-cost data dropped: {paths:?}");
        assert_eq!(paths[0].vertices, vec![lone]);
        assert!((paths[0].total_cost - 3.0).abs() < 1e-9);
    }

    #[test]
    fn component_path_edges_map_back_to_parent_graph() {
        // With edges partitioned per component, every returned path must
        // still reference valid parent-graph edge ids that connect its
        // vertices in order.
        let mut g = DflGraph::new();
        for (name, vol) in [("a", 100u64), ("b", 900), ("c", 500)] {
            let t = g.add_task(&format!("t_{name}"), "t", TaskProps::default());
            let d = g.add_data(&format!("d_{name}"), "d", DataProps::default());
            let t2 = g.add_task(&format!("u_{name}"), "t", TaskProps::default());
            g.add_edge(t, d, FlowDir::Producer, EdgeProps { volume: vol, ..Default::default() });
            g.add_edge(d, t2, FlowDir::Consumer, EdgeProps { volume: vol, ..Default::default() });
        }
        let paths = component_critical_paths(&g, &CostModel::Volume);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].total_cost, 1800.0);
        for cp in &paths {
            assert_eq!(cp.edges.len(), cp.vertices.len() - 1);
            for (i, &e) in cp.edges.iter().enumerate() {
                assert_eq!(g.edge(e).src, cp.vertices[i]);
                assert_eq!(g.edge(e).dst, cp.vertices[i + 1]);
            }
        }
    }

    #[test]
    fn membership_mask() {
        let g = two_route();
        let cp = critical_path(&g, &CostModel::Volume);
        let m = cp.membership(g.vertex_count());
        assert_eq!(m.iter().filter(|&&b| b).count(), 3);
    }
}
