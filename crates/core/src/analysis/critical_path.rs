//! Generalized critical path analysis (GCPA, §5.1).
//!
//! The critical path is the maximum-cost source→sink path in the DFL-DAG
//! under a chosen [`CostModel`]. Computation is a single dynamic-programming
//! sweep over a topological order — linear in vertices and edges — with a
//! deterministic tie-break (lowest predecessor id).

use crate::analysis::cost::CostModel;
use crate::error::GraphError;
use crate::graph::{DflGraph, EdgeId, VertexId};

/// A critical path: alternating task/data vertices and the edges between
/// them, plus the accumulated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Vertices in flow order (source first).
    pub vertices: Vec<VertexId>,
    /// Edges in flow order; `edges.len() == vertices.len() - 1`.
    pub edges: Vec<EdgeId>,
    /// Total path cost under the cost model used.
    pub total_cost: f64,
}

impl CriticalPath {
    /// Whether `v` lies on the path. O(len) — paths are short; use
    /// [`CriticalPath::membership`] for repeated queries.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// A dense membership mask over a graph with `n` vertices.
    pub fn membership(&self, n: usize) -> Vec<bool> {
        let mut m = vec![false; n];
        for v in &self.vertices {
            m[v.0 as usize] = true;
        }
        m
    }
}

/// Computes the critical path of `g` under `cost`.
///
/// Panics only if `g` is cyclic — call on DFL-DAGs (or check
/// [`DflGraph::is_dag`] for templates first). Empty graphs yield an empty
/// path with zero cost.
pub fn critical_path(g: &DflGraph, cost: &CostModel) -> CriticalPath {
    try_critical_path(g, cost).expect("critical path requires an acyclic graph")
}

/// Fallible variant of [`critical_path`], returning
/// [`GraphError::CycleDetected`] for cyclic graphs.
pub fn try_critical_path(g: &DflGraph, cost: &CostModel) -> Result<CriticalPath, GraphError> {
    let order = g.topo_order()?;
    if order.is_empty() {
        return Ok(CriticalPath { vertices: vec![], edges: vec![], total_cost: 0.0 });
    }

    let n = g.vertex_count();
    // dist[v] = best cost of a path ending at v (inclusive of v's cost).
    let mut dist = vec![f64::NEG_INFINITY; n];
    let mut pred: Vec<Option<(VertexId, EdgeId)>> = vec![None; n];

    for &v in &order {
        let vi = v.0 as usize;
        let vcost = cost.vertex_cost(g, v);
        if g.in_degree(v) == 0 {
            dist[vi] = vcost;
            continue;
        }
        let mut best = f64::NEG_INFINITY;
        let mut best_pred = None;
        for &e in g.in_edges(v) {
            let u = g.edge(e).src;
            let cand = dist[u.0 as usize] + cost.edge_cost(g, e);
            // Deterministic tie-break: strictly greater, or equal with a
            // lower predecessor id.
            let better = cand > best
                || (cand == best
                    && best_pred.is_some_and(|(bu, _): (VertexId, EdgeId)| u < bu));
            if better {
                best = cand;
                best_pred = Some((u, e));
            }
        }
        dist[vi] = best + vcost;
        pred[vi] = best_pred;
    }

    // Pick the best endpoint (ties to the lowest id).
    let mut end = order[0];
    for &v in &order {
        if dist[v.0 as usize] > dist[end.0 as usize] {
            end = v;
        }
    }

    // Backtrack.
    let mut vertices = vec![end];
    let mut edges = Vec::new();
    let mut cur = end;
    while let Some((u, e)) = pred[cur.0 as usize] {
        vertices.push(u);
        edges.push(e);
        cur = u;
    }
    vertices.reverse();
    edges.reverse();

    Ok(CriticalPath { vertices, edges, total_cost: dist[end.0 as usize] })
}

/// Computes critical paths for each weakly-connected component and returns
/// them sorted by descending cost — "near-critical" paths for wider
/// opportunity searches (§5.1).
pub fn component_critical_paths(g: &DflGraph, cost: &CostModel) -> Vec<CriticalPath> {
    // Union-find over weak connectivity.
    let n = g.vertex_count();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for (_, e) in g.edges() {
        let (a, b) = (find(&mut parent, e.src.0), find(&mut parent, e.dst.0));
        if a != b {
            parent[a as usize] = b;
        }
    }

    // Build one subgraph per component, remembering the id mapping.
    use std::collections::HashMap;
    let mut comp_of: HashMap<u32, Vec<VertexId>> = HashMap::new();
    for i in 0..n as u32 {
        comp_of.entry(find(&mut parent, i)).or_default().push(VertexId(i));
    }

    let mut paths: Vec<CriticalPath> = Vec::new();
    for members in comp_of.values() {
        if members.len() < 2 {
            continue;
        }
        let mut sub = DflGraph::new();
        let mut map: HashMap<VertexId, VertexId> = HashMap::new();
        let mut back: Vec<VertexId> = Vec::new();
        for &v in members {
            let nv = sub.add_vertex(g.vertex(v).clone());
            map.insert(v, nv);
            back.push(v);
        }
        let mut eback: Vec<EdgeId> = Vec::new();
        for (eid, e) in g.edges() {
            if let (Some(&s), Some(&d)) = (map.get(&e.src), map.get(&e.dst)) {
                sub.add_edge(s, d, e.dir, e.props);
                eback.push(eid);
            }
        }
        if let Ok(cp) = try_critical_path(&sub, cost) {
            paths.push(CriticalPath {
                vertices: cp.vertices.iter().map(|v| back[v.0 as usize]).collect(),
                edges: cp.edges.iter().map(|e| eback[e.0 as usize]).collect(),
                total_cost: cp.total_cost,
            });
        }
    }
    paths.sort_by(|a, b| b.total_cost.partial_cmp(&a.total_cost).unwrap_or(std::cmp::Ordering::Equal));
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    /// t0 → d_small → t1 and t0 → d_big → t1: critical path takes the big
    /// edge under Volume.
    fn two_route() -> DflGraph {
        let mut g = DflGraph::new();
        let t0 = g.add_task("t0", "t", TaskProps::default());
        let ds = g.add_data("small", "d", DataProps::default());
        let db = g.add_data("big", "d", DataProps::default());
        let t1 = g.add_task("t1", "t", TaskProps::default());
        g.add_edge(t0, ds, FlowDir::Producer, EdgeProps { volume: 10, ..Default::default() });
        g.add_edge(t0, db, FlowDir::Producer, EdgeProps { volume: 1000, ..Default::default() });
        g.add_edge(ds, t1, FlowDir::Consumer, EdgeProps { volume: 10, ..Default::default() });
        g.add_edge(db, t1, FlowDir::Consumer, EdgeProps { volume: 1000, ..Default::default() });
        g
    }

    #[test]
    fn volume_path_prefers_heavy_route() {
        let g = two_route();
        let cp = critical_path(&g, &CostModel::Volume);
        assert_eq!(cp.total_cost, 2000.0);
        let names: Vec<&str> = cp.vertices.iter().map(|&v| g.vertex(v).name.as_str()).collect();
        assert_eq!(names, vec!["t0", "big", "t1"]);
        assert_eq!(cp.edges.len(), 2);
    }

    #[test]
    fn path_is_contiguous() {
        let g = two_route();
        let cp = critical_path(&g, &CostModel::Volume);
        for (i, &e) in cp.edges.iter().enumerate() {
            assert_eq!(g.edge(e).src, cp.vertices[i]);
            assert_eq!(g.edge(e).dst, cp.vertices[i + 1]);
        }
    }

    #[test]
    fn empty_graph_yields_empty_path() {
        let g = DflGraph::new();
        let cp = critical_path(&g, &CostModel::Volume);
        assert!(cp.vertices.is_empty());
        assert_eq!(cp.total_cost, 0.0);
    }

    #[test]
    fn singleton_graph() {
        let mut g = DflGraph::new();
        g.add_task("only", "t", TaskProps { lifetime_ns: 3_000_000_000, ..Default::default() });
        let cp = critical_path(&g, &CostModel::Time);
        assert_eq!(cp.vertices.len(), 1);
        assert!((cp.total_cost - 3.0).abs() < 1e-9);
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Two identical routes; the lower vertex id wins.
        let g = two_route();
        let cp1 = critical_path(&g, &CostModel::Time);
        let cp2 = critical_path(&g, &CostModel::Time);
        assert_eq!(cp1, cp2);
    }

    #[test]
    fn cyclic_graph_errors() {
        let mut g = DflGraph::new();
        let t = g.add_task("t", "t", TaskProps::default());
        let d = g.add_data("d", "d", DataProps::default());
        g.add_edge(t, d, FlowDir::Producer, EdgeProps::default());
        g.add_edge(d, t, FlowDir::Consumer, EdgeProps::default());
        assert_eq!(try_critical_path(&g, &CostModel::Volume), Err(GraphError::CycleDetected));
    }

    #[test]
    fn component_paths_sorted_by_cost() {
        // Two disjoint pipelines with different volumes.
        let mut g = DflGraph::new();
        for (name, vol) in [("a", 100u64), ("b", 900)] {
            let t = g.add_task(&format!("t_{name}"), "t", TaskProps::default());
            let d = g.add_data(&format!("d_{name}"), "d", DataProps::default());
            g.add_edge(t, d, FlowDir::Producer, EdgeProps { volume: vol, ..Default::default() });
        }
        let paths = component_critical_paths(&g, &CostModel::Volume);
        assert_eq!(paths.len(), 2);
        assert!(paths[0].total_cost >= paths[1].total_cost);
        assert_eq!(paths[0].total_cost, 900.0);
    }

    #[test]
    fn membership_mask() {
        let g = two_route();
        let cp = critical_path(&g, &CostModel::Volume);
        let m = cp.membership(g.vertex_count());
        assert_eq!(m.iter().filter(|&&b| b).count(), 3);
    }
}
