//! Lifecycle properties (§4.2) annotating DFL-G vertices and edges.
//!
//! Three classes: *base* properties (lifetimes, frequencies, volumes,
//! footprints, latencies), *ratios* (rates and blocking fractions), and
//! *access patterns* (consecutive access distance, reuse/subset, use
//! concurrency). All are derived from the constant-size measurement
//! histograms of `dfl-trace`.

use serde::{Deserialize, Serialize};

/// Direction of a flow edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowDir {
    /// Task → data (writes).
    Producer,
    /// Data → task (reads).
    Consumer,
}

impl FlowDir {
    pub fn label(self) -> &'static str {
        match self {
            FlowDir::Producer => "producer",
            FlowDir::Consumer => "consumer",
        }
    }
}

/// Properties of a task vertex.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskProps {
    /// Task lifetime: execution time (ns).
    pub lifetime_ns: u64,
    pub start_ns: u64,
    pub end_ns: u64,
    /// Number of aggregated instances (1 for DFL-DAG vertices; >1 in a
    /// DFL template).
    pub instances: u32,
}

impl TaskProps {
    /// Task lifetime in seconds.
    pub fn lifetime_s(&self) -> f64 {
        self.lifetime_ns as f64 / 1e9
    }
}

/// Properties of a data vertex.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DataProps {
    /// File size in bytes (maximum observed).
    pub size: u64,
    /// File lifetime: first open to last close across all tasks (ns).
    pub lifetime_ns: u64,
    pub first_open_ns: u64,
    pub last_close_ns: u64,
    /// Access resolution of the measurement histograms.
    pub block_size: u64,
    /// Number of aggregated instances (DFL templates).
    pub instances: u32,
}

/// Properties of a flow edge (one producer or consumer relation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EdgeProps {
    /// Total (non-unique) data volume moved, bytes.
    pub volume: u64,
    /// Unique bytes touched (sampling-scaled estimate).
    pub footprint: f64,
    /// I/O operation count.
    pub ops: u64,
    /// Total blocked time inside I/O calls (read or write latency), ns.
    pub latency_ns: u64,
    /// Data rate: volume / task lifetime, bytes per second.
    pub data_rate: f64,
    /// Operation rate: ops / task lifetime, ops per second.
    pub op_rate: f64,
    /// Fraction of open-stream time blocked in this direction's I/O.
    pub blocking_fraction: f64,
    /// Mean consecutive access ("seek") distance, bytes.
    pub mean_distance: f64,
    /// Fraction of accesses with distance < block size (spatial locality);
    /// includes zero-distance accesses.
    pub locality_fraction: f64,
    /// Fraction of accesses with distance exactly 0 (temporal locality).
    pub zero_distance_fraction: f64,
    /// Volume / footprint; > 1 means the same bytes moved repeatedly
    /// (intra-task reuse).
    pub reuse_factor: f64,
    /// Footprint / file size; < 1 means only a subset was used.
    pub subset_fraction: f64,
    /// Number of merged parallel edges (1 in a DFL-DAG; ≥ 1 in templates
    /// and averaged graphs).
    pub instances: u32,
}

impl EdgeProps {
    /// Effective transfer time implied by volume at the observed rate, in
    /// seconds; falls back to measured latency if no rate is available.
    pub fn transfer_time_s(&self) -> f64 {
        if self.data_rate > 0.0 {
            self.volume as f64 / self.data_rate
        } else {
            self.latency_ns as f64 / 1e9
        }
    }

    /// Merges a parallel edge (template / averaged-graph construction).
    /// Volumes and counts add; fractions and distances average weighted by
    /// operation count.
    pub fn merge(&mut self, other: &EdgeProps) {
        let w_self = self.ops.max(1) as f64;
        let w_other = other.ops.max(1) as f64;
        let w = w_self + w_other;
        self.mean_distance = (self.mean_distance * w_self + other.mean_distance * w_other) / w;
        self.locality_fraction =
            (self.locality_fraction * w_self + other.locality_fraction * w_other) / w;
        self.zero_distance_fraction =
            (self.zero_distance_fraction * w_self + other.zero_distance_fraction * w_other) / w;
        self.blocking_fraction =
            (self.blocking_fraction * w_self + other.blocking_fraction * w_other) / w;

        self.volume += other.volume;
        self.footprint += other.footprint;
        self.ops += other.ops;
        self.latency_ns += other.latency_ns;
        self.data_rate += other.data_rate;
        self.op_rate += other.op_rate;
        self.instances += other.instances;

        self.reuse_factor = if self.footprint > 0.0 {
            self.volume as f64 / self.footprint
        } else {
            0.0
        };
        // Subset fraction re-derived by callers that know file size; keep a
        // weighted average as the template-level approximation.
        self.subset_fraction =
            (self.subset_fraction * w_self + other.subset_fraction * w_other) / w;
    }
}

/// Formats a byte count with binary units, for reports.
pub fn fmt_bytes(bytes: f64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut v = bytes;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{:.0} {}", v, UNITS[u])
    } else {
        format!("{:.2} {}", v, UNITS[u])
    }
}

/// Formats nanoseconds as seconds with sensible precision.
pub fn fmt_secs(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.2} ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_and_averages() {
        let mut a = EdgeProps {
            volume: 100,
            footprint: 100.0,
            ops: 10,
            latency_ns: 5,
            data_rate: 50.0,
            op_rate: 1.0,
            blocking_fraction: 0.2,
            mean_distance: 10.0,
            locality_fraction: 1.0,
            zero_distance_fraction: 0.0,
            reuse_factor: 1.0,
            subset_fraction: 1.0,
            instances: 1,
        };
        let b = EdgeProps {
            volume: 300,
            footprint: 100.0,
            ops: 30,
            latency_ns: 15,
            data_rate: 150.0,
            op_rate: 3.0,
            blocking_fraction: 0.6,
            mean_distance: 50.0,
            locality_fraction: 0.0,
            zero_distance_fraction: 0.4,
            reuse_factor: 3.0,
            subset_fraction: 0.5,
            instances: 1,
        };
        a.merge(&b);
        assert_eq!(a.volume, 400);
        assert_eq!(a.ops, 40);
        assert_eq!(a.instances, 2);
        assert!((a.reuse_factor - 2.0).abs() < 1e-9, "400 volume / 200 footprint");
        assert!((a.mean_distance - 40.0).abs() < 1e-9, "ops-weighted mean");
        assert!((a.blocking_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_prefers_rate() {
        let e = EdgeProps { volume: 100, data_rate: 50.0, latency_ns: 999, ..Default::default() };
        assert!((e.transfer_time_s() - 2.0).abs() < 1e-9);
        let e2 = EdgeProps { volume: 100, latency_ns: 2_000_000_000, ..Default::default() };
        assert!((e2.transfer_time_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512.0), "512 B");
        assert_eq!(fmt_bytes(2048.0), "2.00 KiB");
        assert_eq!(fmt_bytes(2.5 * 1024.0 * 1024.0 * 1024.0), "2.50 GiB");
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(fmt_secs(1_500_000), "1.50 ms");
        assert_eq!(fmt_secs(2_500_000_000), "2.50 s");
        assert_eq!(fmt_secs(150_000_000_000), "150 s");
    }
}
