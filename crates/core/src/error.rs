//! Errors for graph construction and analysis.

use std::fmt;

/// Errors surfaced by DFL graph operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An operation requiring a DAG found a cycle (e.g. a DFL template after
    /// aggregating loop iterations).
    CycleDetected,
    /// Operation on an empty graph.
    EmptyGraph,
    /// A vertex id out of range for this graph.
    BadVertex(u32),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::CycleDetected => write!(f, "graph contains a cycle"),
            GraphError::EmptyGraph => write!(f, "graph is empty"),
            GraphError::BadVertex(v) => write!(f, "vertex {v} does not exist"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(GraphError::CycleDetected.to_string(), "graph contains a cycle");
        assert_eq!(GraphError::BadVertex(5).to_string(), "vertex 5 does not exist");
    }
}
