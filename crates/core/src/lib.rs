//! # dfl-core — data flow lifecycle graphs and opportunity analysis
//!
//! The primary contribution of *"Data Flow Lifecycles for Optimizing
//! Workflow Coordination"* (SC '23): workflow task DAGs enriched with data
//! vertices and flow properties, analyzed for optimization opportunities.
//!
//! Pipeline (paper §2):
//!
//! 1. **Measure** a workflow with [`dfl_trace`] → a
//!    [`MeasurementSet`](dfl_trace::MeasurementSet).
//! 2. **Build** a [`graph::DflGraph`] — a property graph whose
//!    vertices are tasks (red) and data files (blue), and whose directed
//!    edges are producer (task→data) and consumer (data→task) flow relations
//!    annotated with volumes, footprints, rates, and locality ([`props`]).
//! 3. **Analyze**: generalized critical path analysis
//!    ([`analysis::critical_path()`]) under pluggable cost models
//!    ([`analysis::cost`]), widened into *DFL caterpillar trees*
//!    ([`analysis::caterpillar`]); entity projections and rankings
//!    ([`analysis::entities`], [`analysis::ranking`]); and linear-time
//!    opportunity detection for every pattern of the paper's Table 1
//!    ([`analysis::patterns`]).
//! 4. **Visualize** as Sankey JSON, Graphviz DOT, or ASCII ([`viz`]).
//!
//! ```
//! use dfl_trace::{Monitor, MonitorConfig, OpenMode, IoTiming};
//! use dfl_core::graph::DflGraph;
//! use dfl_core::analysis::cost::CostModel;
//!
//! // Measure a 2-task pipeline…
//! let m = Monitor::new(MonitorConfig::default());
//! let p = m.begin_task("producer", 0);
//! let fd = p.open("a.dat", OpenMode::Write, None, 0);
//! p.write(fd, 1 << 20, IoTiming::new(0, 100)).unwrap();
//! p.close(fd, 200).unwrap();
//! p.finish(200);
//! let c = m.begin_task("consumer", 200);
//! let fd = c.open("a.dat", OpenMode::Read, Some(1 << 20), 200);
//! c.read(fd, 1 << 20, IoTiming::new(250, 100)).unwrap();
//! c.close(fd, 400).unwrap();
//! c.finish(400);
//!
//! // …build and analyze the lifecycle graph.
//! let g = DflGraph::from_measurements(&m.snapshot());
//! assert_eq!(g.vertex_count(), 3); // producer, a.dat, consumer
//! let cp = dfl_core::analysis::critical_path::critical_path(&g, &CostModel::Volume);
//! assert_eq!(cp.vertices.len(), 3);
//! ```

pub mod analysis;
pub mod error;
pub mod graph;
pub mod props;
pub mod viz;

pub use error::GraphError;
pub use graph::{DflGraph, EdgeId, VertexId, VertexKind};
