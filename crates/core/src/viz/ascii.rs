//! Terminal rendering of a DFL graph: topological layers left-to-right,
//! tasks in `[brackets]`, data in `(parens)`, flows listed per layer with
//! volume bars.

use crate::analysis::critical_path::CriticalPath;
use crate::graph::{DflGraph, VertexKind};
use crate::props::fmt_bytes;

/// Renders `g` as indented text grouped by topological layer; edges print
/// under their source vertex with a width bar proportional to volume.
/// Critical-path members are marked `*`.
pub fn render_ascii(g: &DflGraph, critical: Option<&CriticalPath>) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();

    let Ok(layers) = g.layers() else {
        return "<cyclic graph: no layered rendering>".to_owned();
    };
    let on_path = critical
        .map(|cp| cp.membership(g.vertex_count()))
        .unwrap_or_else(|| vec![false; g.vertex_count()]);

    let max_layer = layers.iter().copied().max().unwrap_or(0);
    let max_vol = g.edges().map(|(_, e)| e.props.volume).max().unwrap_or(0).max(1);

    for layer in 0..=max_layer {
        let members: Vec<_> = g
            .vertices()
            .filter(|(id, _)| layers[id.0 as usize] == layer)
            .collect();
        if members.is_empty() {
            continue;
        }
        let _ = writeln!(s, "layer {layer}:");
        for (id, v) in members {
            let mark = if on_path[id.0 as usize] { "*" } else { " " };
            let decorated = match v.kind {
                VertexKind::Task => format!("[{}]", v.name),
                VertexKind::Data => format!("({})", v.name),
            };
            let _ = writeln!(s, " {mark} {decorated}");
            for e in g.out_edges(id) {
                let edge = g.edge(e);
                let bar_len = 1 + (edge.props.volume as f64 / max_vol as f64 * 20.0) as usize;
                let _ = writeln!(
                    s,
                    "      ={}=> {}  {}",
                    "=".repeat(bar_len.min(21)),
                    g.vertex(edge.dst).name,
                    fmt_bytes(edge.props.volume as f64)
                );
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::cost::CostModel;
    use crate::analysis::critical_path::critical_path;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    #[test]
    fn renders_layers_and_marks_critical() {
        let mut g = DflGraph::new();
        let t = g.add_task("gen", "gen", TaskProps::default());
        let d = g.add_data("out.dat", "out", DataProps::default());
        let c = g.add_task("use", "use", TaskProps::default());
        g.add_edge(t, d, FlowDir::Producer, EdgeProps { volume: 2048, ..Default::default() });
        g.add_edge(d, c, FlowDir::Consumer, EdgeProps { volume: 2048, ..Default::default() });

        let cp = critical_path(&g, &CostModel::Volume);
        let out = render_ascii(&g, Some(&cp));
        assert!(out.contains("layer 0:"));
        assert!(out.contains("* [gen]"));
        assert!(out.contains("(out.dat)"));
        assert!(out.contains("2.00 KiB"));
    }

    #[test]
    fn cyclic_graph_handled() {
        let mut g = DflGraph::new();
        let t = g.add_task("t", "t", TaskProps::default());
        let d = g.add_data("d", "d", DataProps::default());
        g.add_edge(t, d, FlowDir::Producer, EdgeProps::default());
        g.add_edge(d, t, FlowDir::Consumer, EdgeProps::default());
        assert!(render_ascii(&g, None).contains("cyclic"));
    }
}
