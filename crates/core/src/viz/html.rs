//! Self-contained HTML visualization: a static SVG Sankey-style layout with
//! no external dependencies — open the file in any browser.
//!
//! Layout: topological layers left-to-right (as in the paper's diagrams),
//! vertices as rounded rectangles (tasks red, data blue), flows as cubic
//! Bézier ribbons whose stroke width scales with the chosen property, and
//! critical-path flows in purple.

use crate::analysis::critical_path::CriticalPath;
use crate::graph::{DflGraph, VertexKind};
use crate::props::fmt_bytes;

const LAYER_W: f64 = 220.0;
const NODE_H: f64 = 26.0;
const NODE_W: f64 = 150.0;
const V_GAP: f64 = 14.0;
const MARGIN: f64 = 30.0;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

/// Renders `g` as a standalone HTML document.
pub fn to_html(g: &DflGraph, title: &str, critical: Option<&CriticalPath>) -> String {
    use std::fmt::Write as _;

    let Ok(layers) = g.layers() else {
        return format!(
            "<!DOCTYPE html><html><body><p>{} is cyclic; no layered rendering.</p></body></html>",
            esc(title)
        );
    };

    // Position vertices: x by layer, y by slot within layer.
    let max_layer = layers.iter().copied().max().unwrap_or(0) as usize;
    let mut slot_count = vec![0usize; max_layer + 1];
    let mut pos = vec![(0.0f64, 0.0f64); g.vertex_count()];
    for (v, _) in g.vertices() {
        let l = layers[v.0 as usize] as usize;
        let slot = slot_count[l];
        slot_count[l] += 1;
        pos[v.0 as usize] = (
            MARGIN + l as f64 * LAYER_W,
            MARGIN + slot as f64 * (NODE_H + V_GAP),
        );
    }
    let height = MARGIN * 2.0
        + slot_count.iter().copied().max().unwrap_or(1) as f64 * (NODE_H + V_GAP);
    let width = MARGIN * 2.0 + (max_layer as f64 + 1.0) * LAYER_W;

    let on_path = {
        let mut m = vec![false; g.edge_count()];
        if let Some(cp) = critical {
            for &e in &cp.edges {
                m[e.0 as usize] = true;
            }
        }
        m
    };
    let max_vol = g.edges().map(|(_, e)| e.props.volume).max().unwrap_or(1).max(1);

    let mut svg = String::new();
    // Edges under nodes.
    for (eid, e) in g.edges() {
        let (x1, y1) = pos[e.src.0 as usize];
        let (x2, y2) = pos[e.dst.0 as usize];
        let (sx, sy) = (x1 + NODE_W, y1 + NODE_H / 2.0);
        let (tx, ty) = (x2, y2 + NODE_H / 2.0);
        let mid = (sx + tx) / 2.0;
        let w = 1.0 + 9.0 * e.props.volume as f64 / max_vol as f64;
        let color = if on_path[eid.0 as usize] { "#7b2d8b" } else { "#9aa0a6" };
        let _ = writeln!(
            svg,
            r##"<path d="M {sx:.0} {sy:.0} C {mid:.0} {sy:.0}, {mid:.0} {ty:.0}, {tx:.0} {ty:.0}" stroke="{color}" stroke-width="{w:.1}" fill="none" opacity="0.65"><title>{}</title></path>"##,
            esc(&format!(
                "{} → {}: {}",
                g.vertex(e.src).name,
                g.vertex(e.dst).name,
                fmt_bytes(e.props.volume as f64)
            ))
        );
    }
    // Nodes.
    for (v, vx) in g.vertices() {
        let (x, y) = pos[v.0 as usize];
        let fill = match vx.kind {
            VertexKind::Task => "#d7453d",
            VertexKind::Data => "#2f6fd6",
        };
        let _ = writeln!(
            svg,
            r##"<g><rect x="{x:.0}" y="{y:.0}" rx="5" width="{NODE_W}" height="{NODE_H}" fill="{fill}" opacity="0.9"/><text x="{:.0}" y="{:.0}" font-size="11" fill="white" text-anchor="middle" dominant-baseline="middle">{}</text><title>{}</title></g>"##,
            x + NODE_W / 2.0,
            y + NODE_H / 2.0,
            esc(&truncate(&vx.name, 22)),
            esc(&vx.name),
        );
    }

    format!(
        r##"<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{t}</title>
<style>body{{font-family:sans-serif;background:#fafafa;margin:1em}}</style></head>
<body><h2>{t}</h2>
<p>tasks <span style="color:#d7453d">&#9632;</span> &nbsp; data <span style="color:#2f6fd6">&#9632;</span> &nbsp; critical path <span style="color:#7b2d8b">&#9632;</span>; edge width &#8733; volume</p>
<svg width="{width:.0}" height="{height:.0}" xmlns="http://www.w3.org/2000/svg">
{svg}</svg></body></html>
"##,
        t = esc(title),
    )
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_owned()
    } else {
        let cut: String = s.chars().take(n - 1).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::cost::CostModel;
    use crate::analysis::critical_path::critical_path;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    fn g3() -> DflGraph {
        let mut g = DflGraph::new();
        let t = g.add_task("producer <&>", "p", TaskProps::default());
        let d = g.add_data("a-very-long-file-name-that-needs-truncation.dat", "d", DataProps::default());
        let c = g.add_task("consumer", "c", TaskProps::default());
        g.add_edge(t, d, FlowDir::Producer, EdgeProps { volume: 1 << 20, ..Default::default() });
        g.add_edge(d, c, FlowDir::Consumer, EdgeProps { volume: 1 << 19, ..Default::default() });
        g
    }

    #[test]
    fn produces_valid_looking_html() {
        let g = g3();
        let cp = critical_path(&g, &CostModel::Volume);
        let html = to_html(&g, "demo <title>", Some(&cp));
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("#7b2d8b"), "critical path colored");
        assert!(html.contains("demo &lt;title&gt;"), "title escaped");
        assert!(html.contains("producer &lt;&amp;&gt;"), "names escaped");
        assert_eq!(html.matches("<rect").count(), 3);
        assert_eq!(html.matches("<path").count(), 2);
    }

    #[test]
    fn long_names_truncated_in_label_but_full_in_tooltip() {
        let g = g3();
        let html = to_html(&g, "t", None);
        assert!(html.contains("…"));
        assert!(html.contains("a-very-long-file-name-that-needs-truncation.dat"));
    }

    #[test]
    fn cyclic_graph_falls_back() {
        let mut g = DflGraph::new();
        let t = g.add_task("t", "t", TaskProps::default());
        let d = g.add_data("d", "d", DataProps::default());
        g.add_edge(t, d, FlowDir::Producer, EdgeProps::default());
        g.add_edge(d, t, FlowDir::Consumer, EdgeProps::default());
        assert!(to_html(&g, "x", None).contains("cyclic"));
    }
}
