//! Sankey diagram export (§4.4).
//!
//! Produces the node/link JSON shape consumed by Plotly-style Sankey
//! renderers (the paper's artifact uses Plotly): task nodes are red, data
//! nodes blue, flow edges scale with a chosen property, and critical-path
//! edges are purple.

use serde::{Deserialize, Serialize};

use crate::analysis::critical_path::CriticalPath;
use crate::graph::{DflGraph, VertexKind};

/// One Sankey node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SankeyNode {
    pub name: String,
    /// `task` or `file` (matching the artifact's `ntype`).
    pub ntype: String,
    pub color: String,
}

/// One Sankey link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SankeyLink {
    /// Index into `nodes`.
    pub source: usize,
    pub target: usize,
    /// Scaled property (edge width).
    pub value: f64,
    pub color: String,
}

/// A complete Sankey diagram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SankeyDiagram {
    pub title: String,
    pub nodes: Vec<SankeyNode>,
    pub links: Vec<SankeyLink>,
}

/// Which edge property scales link widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkValue {
    #[default]
    Volume,
    Footprint,
    Ops,
    Latency,
}

/// Rendering options.
#[derive(Debug, Clone, Default)]
pub struct SankeyOptions {
    pub title: String,
    pub value: LinkValue,
    /// Edges on this path render purple.
    pub critical_path: Option<CriticalPath>,
}

const TASK_COLOR: &str = "red";
const DATA_COLOR: &str = "blue";
const FLOW_COLOR: &str = "gray";
const CRITICAL_COLOR: &str = "purple";

impl SankeyDiagram {
    /// Builds a diagram from a DFL graph.
    pub fn from_graph(g: &DflGraph, opts: &SankeyOptions) -> Self {
        let nodes = g
            .vertices()
            .map(|(_, v)| SankeyNode {
                name: v.name.clone(),
                ntype: match v.kind {
                    VertexKind::Task => "task".into(),
                    VertexKind::Data => "file".into(),
                },
                color: match v.kind {
                    VertexKind::Task => TASK_COLOR.into(),
                    VertexKind::Data => DATA_COLOR.into(),
                },
            })
            .collect();

        let on_path: Vec<bool> = {
            let mut m = vec![false; g.edge_count()];
            if let Some(cp) = &opts.critical_path {
                for &e in &cp.edges {
                    m[e.0 as usize] = true;
                }
            }
            m
        };

        let links = g
            .edges()
            .map(|(eid, e)| SankeyLink {
                source: e.src.0 as usize,
                target: e.dst.0 as usize,
                value: match opts.value {
                    LinkValue::Volume => e.props.volume as f64,
                    LinkValue::Footprint => e.props.footprint,
                    LinkValue::Ops => e.props.ops as f64,
                    LinkValue::Latency => e.props.latency_ns as f64 / 1e9,
                },
                color: if on_path[eid.0 as usize] {
                    CRITICAL_COLOR.into()
                } else {
                    FLOW_COLOR.into()
                },
            })
            .collect();

        Self { title: opts.title.clone(), nodes, links }
    }

    /// Serializes to the JSON consumed by Sankey renderers.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::cost::CostModel;
    use crate::analysis::critical_path::critical_path;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    fn g3() -> DflGraph {
        let mut g = DflGraph::new();
        let t = g.add_task("t", "t", TaskProps::default());
        let d = g.add_data("d", "d", DataProps::default());
        let c = g.add_task("c", "c", TaskProps::default());
        g.add_edge(t, d, FlowDir::Producer, EdgeProps { volume: 100, ..Default::default() });
        g.add_edge(d, c, FlowDir::Consumer, EdgeProps { volume: 100, ..Default::default() });
        g
    }

    #[test]
    fn node_colors_by_kind() {
        let g = g3();
        let s = SankeyDiagram::from_graph(&g, &SankeyOptions::default());
        assert_eq!(s.nodes[0].color, "red");
        assert_eq!(s.nodes[1].color, "blue");
        assert_eq!(s.nodes[1].ntype, "file");
    }

    #[test]
    fn critical_edges_purple() {
        let g = g3();
        let cp = critical_path(&g, &CostModel::Volume);
        let s = SankeyDiagram::from_graph(&g, &SankeyOptions {
            critical_path: Some(cp),
            ..Default::default()
        });
        assert!(s.links.iter().all(|l| l.color == "purple"));
    }

    #[test]
    fn json_round_trips() {
        let g = g3();
        let s = SankeyDiagram::from_graph(&g, &SankeyOptions::default());
        let json = s.to_json().unwrap();
        let back: SankeyDiagram = serde_json::from_str(&json).unwrap();
        assert_eq!(back.nodes.len(), 3);
        assert_eq!(back.links.len(), 2);
        assert_eq!(back.links[0].value, 100.0);
    }
}

#[cfg(test)]
mod link_value_tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    #[test]
    fn each_link_value_selects_its_property() {
        let mut g = DflGraph::new();
        let t = g.add_task("t", "t", TaskProps::default());
        let d = g.add_data("d", "d", DataProps::default());
        g.add_edge(t, d, FlowDir::Producer, EdgeProps {
            volume: 100,
            footprint: 80.0,
            ops: 7,
            latency_ns: 3_000_000_000,
            ..Default::default()
        });
        let value_of = |v: LinkValue| {
            SankeyDiagram::from_graph(&g, &SankeyOptions { value: v, ..Default::default() })
                .links[0]
                .value
        };
        assert_eq!(value_of(LinkValue::Volume), 100.0);
        assert_eq!(value_of(LinkValue::Footprint), 80.0);
        assert_eq!(value_of(LinkValue::Ops), 7.0);
        assert!((value_of(LinkValue::Latency) - 3.0).abs() < 1e-9);
    }
}
