//! Graphviz DOT export: tasks as red ellipses, data as blue boxes, edge pen
//! width scaled by volume, critical-path edges purple.

use crate::analysis::critical_path::CriticalPath;
use crate::graph::{DflGraph, VertexKind};

/// Renders `g` as a DOT digraph. `critical` edges draw purple and bold.
pub fn to_dot(g: &DflGraph, title: &str, critical: Option<&CriticalPath>) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", escape(title));
    let _ = writeln!(s, "  rankdir=LR;");
    let _ = writeln!(s, "  label=\"{}\";", escape(title));

    for (id, v) in g.vertices() {
        let (shape, color) = match v.kind {
            VertexKind::Task => ("ellipse", "red"),
            VertexKind::Data => ("box", "blue"),
        };
        let _ = writeln!(
            s,
            "  v{} [label=\"{}\", shape={shape}, color={color}];",
            id.0,
            escape(&v.name)
        );
    }

    let max_vol = g
        .edges()
        .map(|(_, e)| e.props.volume)
        .max()
        .unwrap_or(0)
        .max(1);
    let on_path: Vec<bool> = {
        let mut m = vec![false; g.edge_count()];
        if let Some(cp) = critical {
            for &e in &cp.edges {
                m[e.0 as usize] = true;
            }
        }
        m
    };

    for (eid, e) in g.edges() {
        let width = 1.0 + 4.0 * (e.props.volume as f64 / max_vol as f64);
        let color = if on_path[eid.0 as usize] { "purple" } else { "gray40" };
        let _ = writeln!(
            s,
            "  v{} -> v{} [penwidth={width:.2}, color={color}, label=\"{}\"];",
            e.src.0,
            e.dst.0,
            crate::props::fmt_bytes(e.props.volume as f64)
        );
    }
    s.push_str("}\n");
    s
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::cost::CostModel;
    use crate::analysis::critical_path::critical_path;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    #[test]
    fn dot_structure() {
        let mut g = DflGraph::new();
        let t = g.add_task("task \"x\"", "t", TaskProps::default());
        let d = g.add_data("d", "d", DataProps::default());
        g.add_edge(t, d, FlowDir::Producer, EdgeProps { volume: 1024, ..Default::default() });

        let cp = critical_path(&g, &CostModel::Volume);
        let dot = to_dot(&g, "demo", Some(&cp));
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("shape=ellipse, color=red"));
        assert!(dot.contains("shape=box, color=blue"));
        assert!(dot.contains("color=purple"));
        assert!(dot.contains("task \\\"x\\\""), "quotes escaped");
        assert!(dot.contains("1.00 KiB"));
    }

    #[test]
    fn empty_graph_is_valid_dot() {
        let g = DflGraph::new();
        let dot = to_dot(&g, "empty", None);
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
