//! Lifecycle visualization (§4.4): Sankey diagrams (the paper's Fig. 2
//! rendering), Graphviz DOT, and a terminal-friendly ASCII view.

pub mod ascii;
pub mod dot;
pub mod html;
pub mod sankey;

pub use ascii::render_ascii;
pub use dot::to_dot;
pub use html::to_html;
pub use sankey::{SankeyDiagram, SankeyOptions};
