//! DFL templates (DFL-T): aggregating instances of the same logical vertex
//! (§4.1).
//!
//! A common example is a control loop: parallel (or iterated) instances of
//! the same task collapse into one template vertex, and their parallel edges
//! merge with summed volumes and instance counts. The result may contain
//! cycles (e.g. `sim → data → train → model → sim` across iterations), so
//! templates are general DFL-Gs rather than DAGs.

use std::collections::HashMap;

use crate::graph::{DflGraph, VertexId, VertexProps};
use crate::props::{DataProps, TaskProps};

/// Result of template aggregation.
pub struct Template {
    /// The aggregated graph.
    pub graph: DflGraph,
    /// Mapping from original vertex id to template vertex id.
    pub mapping: Vec<VertexId>,
}

impl DflGraph {
    /// Aggregates vertices by their `logical` name (per kind), producing a
    /// DFL template. Vertex properties sum lifetimes and instance counts;
    /// parallel edges merge via [`EdgeProps::merge`](crate::props::EdgeProps::merge).
    pub fn to_template(&self) -> Template {
        self.aggregate_by(|g, v| g.vertex(v).logical.clone())
    }

    /// Aggregates vertices by an arbitrary key function (vertices of
    /// different kinds never merge even when keys collide).
    pub fn aggregate_by(&self, key: impl Fn(&DflGraph, VertexId) -> String) -> Template {
        let mut g = DflGraph::new();
        let mut by_key: HashMap<(crate::graph::VertexKind, String), VertexId> = HashMap::new();
        let mut mapping = Vec::with_capacity(self.vertex_count());

        for (vid, v) in self.vertices() {
            let k = (v.kind, key(self, vid));
            let tv = *by_key.entry(k.clone()).or_insert_with(|| match &v.props {
                VertexProps::Task(_) => g.add_task(&k.1, &k.1, TaskProps::default()),
                VertexProps::Data(_) => g.add_data(&k.1, &k.1, DataProps::default()),
            });
            // Fold this instance's properties into the template vertex
            // (read-modify-write so the graph's SoA cost mirrors stay
            // coherent).
            let mut agg_props = g.vertex(tv).props;
            match (&mut agg_props, &v.props) {
                (VertexProps::Task(agg), VertexProps::Task(t)) => {
                    agg.lifetime_ns += t.lifetime_ns;
                    agg.start_ns = if agg.instances == 0 {
                        t.start_ns
                    } else {
                        agg.start_ns.min(t.start_ns)
                    };
                    agg.end_ns = agg.end_ns.max(t.end_ns);
                    agg.instances += t.instances.max(1);
                }
                (VertexProps::Data(agg), VertexProps::Data(d)) => {
                    agg.size += d.size;
                    agg.lifetime_ns = agg.lifetime_ns.max(d.lifetime_ns);
                    agg.first_open_ns = if agg.instances == 0 {
                        d.first_open_ns
                    } else {
                        agg.first_open_ns.min(d.first_open_ns)
                    };
                    agg.last_close_ns = agg.last_close_ns.max(d.last_close_ns);
                    agg.block_size = agg.block_size.max(d.block_size);
                    agg.instances += d.instances.max(1);
                }
                _ => unreachable!("kinds match by construction"),
            }
            g.set_vertex_props(tv, agg_props);
            mapping.push(tv);
        }

        // Merge parallel edges between the same template endpoints and
        // direction.
        let mut edge_map: HashMap<(VertexId, VertexId, crate::props::FlowDir), crate::graph::EdgeId> =
            HashMap::new();
        for (_, e) in self.edges() {
            let src = mapping[e.src.0 as usize];
            let dst = mapping[e.dst.0 as usize];
            match edge_map.entry((src, dst, e.dir)) {
                std::collections::hash_map::Entry::Occupied(entry) => {
                    let eid = *entry.get();
                    let mut merged = g.edge(eid).props;
                    merged.merge(&e.props);
                    // Rewrite the stored edge's props.
                    g.set_edge_props(eid, merged);
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    let eid = g.add_edge(src, dst, e.dir, e.props);
                    entry.insert(eid);
                }
            }
        }

        Template { graph: g, mapping }
    }

    /// Replaces the properties of an existing edge (template construction).
    pub(crate) fn set_edge_props(&mut self, e: crate::graph::EdgeId, props: crate::props::EdgeProps) {
        self.edges[e.0 as usize].props = props;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{EdgeProps, FlowDir};

    /// 3 instances of task `indiv` each read the same file and write their
    /// own output file `out#`.
    fn fan_graph() -> DflGraph {
        let mut g = DflGraph::new();
        let d = g.add_data("chr1", "chr#", DataProps { size: 3000, ..Default::default() });
        for i in 0..3 {
            let t = g.add_task(&format!("indiv-{i}"), "indiv", TaskProps {
                lifetime_ns: 100,
                instances: 1,
                ..Default::default()
            });
            let o = g.add_data(&format!("out{i}"), "out#", DataProps { size: 10, instances: 1, ..Default::default() });
            g.add_edge(d, t, FlowDir::Consumer, EdgeProps { volume: 1000, ops: 1, instances: 1, ..Default::default() });
            g.add_edge(t, o, FlowDir::Producer, EdgeProps { volume: 10, ops: 1, instances: 1, ..Default::default() });
        }
        g
    }

    #[test]
    fn template_merges_instances() {
        let g = fan_graph();
        let t = g.to_template();
        // chr#, indiv, out# → 3 vertices.
        assert_eq!(t.graph.vertex_count(), 3);
        assert_eq!(t.graph.edge_count(), 2);
        let indiv = t.graph.find_vertex("indiv").unwrap();
        let props = t.graph.vertex(indiv).props.as_task().unwrap();
        assert_eq!(props.instances, 3);
        assert_eq!(props.lifetime_ns, 300);
        // Consumer edge volume summed: 3 × 1000.
        let e = t.graph.edge(t.graph.in_edges(indiv).next().unwrap());
        assert_eq!(e.props.volume, 3000);
        assert_eq!(e.props.instances, 3);
    }

    #[test]
    fn mapping_covers_all_vertices() {
        let g = fan_graph();
        let t = g.to_template();
        assert_eq!(t.mapping.len(), g.vertex_count());
        for &tv in &t.mapping {
            assert!((tv.0 as usize) < t.graph.vertex_count());
        }
    }

    #[test]
    fn template_of_loop_graph_may_cycle() {
        // iteration i: sim-i → data-i → train-i, and train-i → model-i → sim-(i+1)
        let mut g = DflGraph::new();
        let mut prev_model: Option<VertexId> = None;
        for i in 0..2 {
            let sim = g.add_task(&format!("sim-{i}"), "sim", TaskProps::default());
            if let Some(m) = prev_model {
                g.add_edge(m, sim, FlowDir::Consumer, EdgeProps::default());
            }
            let data = g.add_data(&format!("data-{i}"), "data#", DataProps::default());
            let train = g.add_task(&format!("train-{i}"), "train", TaskProps::default());
            let model = g.add_data(&format!("model-{i}"), "model#", DataProps::default());
            g.add_edge(sim, data, FlowDir::Producer, EdgeProps::default());
            g.add_edge(data, train, FlowDir::Consumer, EdgeProps::default());
            g.add_edge(train, model, FlowDir::Producer, EdgeProps::default());
            prev_model = Some(model);
        }
        assert!(g.is_dag());
        let t = g.to_template();
        assert!(!t.graph.is_dag(), "aggregated loop should form a cycle");
    }

    #[test]
    fn aggregate_by_custom_key() {
        let g = fan_graph();
        // Collapse everything to a single task and single data vertex.
        let t = g.aggregate_by(|g, v| {
            if g.vertex(v).is_task() { "T".into() } else { "D".into() }
        });
        assert_eq!(t.graph.vertex_count(), 2);
    }
}
