//! Averaged DFL graphs over several executions (§2).
//!
//! "We generalize either DFL-DAGs or DFL-Ts by varying a key input parameter
//! and forming averaged graphs from several executions." Vertices match by
//! `(kind, name)`; matched vertex and edge properties average, and each
//! averaged edge also records a per-run histogram of the chosen property.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::graph::{DflGraph, VertexKind, VertexProps};
use crate::props::FlowDir;

/// An averaged graph plus per-edge distribution of volumes across runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AveragedGraph {
    pub graph: DflGraph,
    /// For each edge of `graph` (by index), the volume observed in each run
    /// that contained the edge.
    pub volume_histograms: Vec<Vec<u64>>,
    /// Number of runs merged.
    pub runs: u32,
}

/// Averages several structurally-compatible graphs. Vertices and edges found
/// in only some runs keep their summed-then-averaged values over the runs
/// that contain them; the histogram records the observed distribution.
///
/// Returns `None` when `graphs` is empty.
pub fn average_graphs(graphs: &[DflGraph]) -> Option<AveragedGraph> {
    let first = graphs.first()?;
    let mut out = DflGraph::new();
    let mut vkey: HashMap<(VertexKind, String), crate::graph::VertexId> = HashMap::new();

    // Union of vertices across runs.
    for g in graphs {
        for (_, v) in g.vertices() {
            let key = (v.kind, v.name.clone());
            vkey.entry(key).or_insert_with(|| out.add_vertex(v.clone()));
        }
    }

    // Union of edges; collect per-run volumes, keyed by (src, dst, dir)
    // and carrying (merged edge id, per-run volumes, occurrence count).
    type EdgeAcc = (crate::graph::EdgeId, Vec<u64>, u32);
    let mut ekey: HashMap<(u32, u32, FlowDir), EdgeAcc> = HashMap::new();
    for g in graphs {
        for (_, e) in g.edges() {
            let src = vkey[&(g.vertex(e.src).kind, g.vertex(e.src).name.clone())];
            let dst = vkey[&(g.vertex(e.dst).kind, g.vertex(e.dst).name.clone())];
            match ekey.entry((src.0, dst.0, e.dir)) {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let (eid, hist, n) = o.get_mut();
                    hist.push(e.props.volume);
                    *n += 1;
                    let mut p = out.edge(*eid).props;
                    p.merge(&e.props);
                    out.set_edge_props(*eid, p);
                }
                std::collections::hash_map::Entry::Vacant(vac) => {
                    let eid = out.add_edge(src, dst, e.dir, e.props);
                    vac.insert((eid, vec![e.props.volume], 1));
                }
            }
        }
    }

    // Convert sums to means over the runs that contained each edge.
    let mut hist_by_edge = vec![Vec::new(); out.edge_count()];
    for (_, (eid, hist, n)) in ekey {
        let mut p = out.edge(eid).props;
        let n64 = u64::from(n);
        p.volume /= n64;
        p.footprint /= n as f64;
        p.ops /= n64;
        p.latency_ns /= n64;
        p.data_rate /= n as f64;
        p.op_rate /= n as f64;
        p.instances = n;
        out.set_edge_props(eid, p);
        hist_by_edge[eid.0 as usize] = hist;
    }

    // Average task lifetimes for vertices present in multiple runs: they were
    // inserted once (first run's values); refine with the mean across runs.
    let mut life_sum: HashMap<(VertexKind, String), (u64, u32)> = HashMap::new();
    for g in graphs {
        for (_, v) in g.vertices() {
            if let VertexProps::Task(t) = &v.props {
                let e = life_sum.entry((v.kind, v.name.clone())).or_insert((0, 0));
                e.0 += t.lifetime_ns;
                e.1 += 1;
            }
        }
    }
    for ((kind, name), (sum, n)) in life_sum {
        let vid = vkey[&(kind, name)];
        if let VertexProps::Task(t) = &out.vertex(vid).props {
            let mut t = *t;
            t.lifetime_ns = sum / u64::from(n);
            out.set_vertex_props(vid, VertexProps::Task(t));
        }
    }

    let _ = first;
    Some(AveragedGraph {
        volume_histograms: hist_by_edge,
        runs: graphs.len() as u32,
        graph: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, TaskProps};

    fn run(volume: u64, lifetime: u64) -> DflGraph {
        let mut g = DflGraph::new();
        let t = g.add_task("t", "t", TaskProps { lifetime_ns: lifetime, instances: 1, ..Default::default() });
        let d = g.add_data("d", "d", DataProps { size: volume, instances: 1, ..Default::default() });
        g.add_edge(t, d, FlowDir::Producer, EdgeProps { volume, ops: 1, instances: 1, ..Default::default() });
        g
    }

    #[test]
    fn averages_volumes_and_lifetimes() {
        let avg = average_graphs(&[run(100, 10), run(300, 30)]).unwrap();
        assert_eq!(avg.runs, 2);
        assert_eq!(avg.graph.edge_count(), 1);
        let e = avg.graph.edge(crate::graph::EdgeId(0));
        assert_eq!(e.props.volume, 200);
        assert_eq!(avg.volume_histograms[0], vec![100, 300]);
        let t = avg.graph.find_vertex("t").unwrap();
        assert_eq!(avg.graph.vertex(t).props.as_task().unwrap().lifetime_ns, 20);
    }

    #[test]
    fn empty_input_returns_none() {
        assert!(average_graphs(&[]).is_none());
    }

    #[test]
    fn edge_present_in_one_run_kept() {
        let mut g2 = run(100, 10);
        let extra = g2.add_data("x", "x", DataProps::default());
        let t = g2.find_vertex("t").unwrap();
        g2.add_edge(t, extra, FlowDir::Producer, EdgeProps { volume: 50, ops: 1, instances: 1, ..Default::default() });

        let avg = average_graphs(&[run(100, 10), g2]).unwrap();
        assert_eq!(avg.graph.edge_count(), 2);
        let xe = avg
            .graph
            .edges()
            .find(|(_, e)| avg.graph.vertex(e.dst).name == "x")
            .unwrap();
        assert_eq!(xe.1.props.volume, 50, "single-run edge keeps its value");
    }
}
