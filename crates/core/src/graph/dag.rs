//! DAG utilities: topological order and acyclicity checks.

use crate::error::GraphError;
use crate::graph::{DflGraph, VertexId};

impl DflGraph {
    /// Kahn topological sort. Returns vertices in an order where every edge
    /// runs forward; deterministic (lowest-id-first among ready vertices).
    ///
    /// Errors with [`GraphError::CycleDetected`] if the graph has a cycle
    /// (possible for DFL templates, never for DFL-DAGs).
    pub fn topo_order(&self) -> Result<Vec<VertexId>, GraphError> {
        self.topo_flat()
            .map(|o| o.iter().map(|&v| VertexId(v)).collect())
            .ok_or(GraphError::CycleDetected)
    }

    /// The memoized flat topological order: computed on first use, reused
    /// until the next structural mutation (`None` for cyclic graphs). The
    /// analysis kernels sweep straight over this, so repeated GCPA calls on
    /// an unchanged graph skip the sort entirely.
    pub(crate) fn topo_flat(&self) -> Option<&[u32]> {
        self.topo.get_or_init(|| self.compute_topo_flat()).as_deref()
    }

    fn compute_topo_flat(&self) -> Option<Vec<u32>> {
        use std::cmp::Reverse;
        let n = self.vertex_count();
        let mut indeg: Vec<u32> = self.in_deg_raw().to_vec();
        // Lowest-id-first among ready vertices keeps the order
        // deterministic; a min-heap over the flat degree array does that
        // without per-step tree rebalancing.
        let mut ready: std::collections::BinaryHeap<Reverse<u32>> = (0..n as u32)
            .filter(|&i| indeg[i as usize] == 0)
            .map(Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        let edst = self.edge_dst_raw();
        while let Some(Reverse(v)) = ready.pop() {
            order.push(v);
            for e in self.out_edges(VertexId(v)) {
                let succ = edst[e.0 as usize] as usize;
                indeg[succ] -= 1;
                if indeg[succ] == 0 {
                    ready.push(Reverse(succ as u32));
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Whether the graph is acyclic.
    pub fn is_dag(&self) -> bool {
        self.topo_order().is_ok()
    }

    /// Source vertices (no incoming edges).
    pub fn sources(&self) -> Vec<VertexId> {
        self.vertices()
            .filter(|(id, _)| self.in_degree(*id) == 0)
            .map(|(id, _)| id)
            .collect()
    }

    /// Sink vertices (no outgoing edges).
    pub fn sinks(&self) -> Vec<VertexId> {
        self.vertices()
            .filter(|(id, _)| self.out_degree(*id) == 0)
            .map(|(id, _)| id)
            .collect()
    }

    /// Assigns each vertex a topological "layer": sources are layer 0 and
    /// every edge goes to a strictly higher layer. Used by the ASCII and
    /// Sankey renderers for left-to-right flow layout.
    pub fn layers(&self) -> Result<Vec<u32>, GraphError> {
        let order = self.topo_order()?;
        let mut layer = vec![0u32; self.vertex_count()];
        for v in order {
            for succ in self.successors(v) {
                layer[succ.0 as usize] = layer[succ.0 as usize].max(layer[v.0 as usize] + 1);
            }
        }
        Ok(layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

    fn chain(len: usize) -> DflGraph {
        // t0 → d0 → t1 → d1 → …
        let mut g = DflGraph::new();
        let mut prev: Option<VertexId> = None;
        for i in 0..len {
            let v = if i % 2 == 0 {
                g.add_task(&format!("t{}", i / 2), "t", TaskProps::default())
            } else {
                g.add_data(&format!("d{}", i / 2), "d", DataProps::default())
            };
            if let Some(p) = prev {
                let dir = if i % 2 == 1 { FlowDir::Producer } else { FlowDir::Consumer };
                g.add_edge(p, v, dir, EdgeProps::default());
            }
            prev = Some(v);
        }
        g
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = chain(7);
        let order = g.topo_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.vertex_count()];
            for (i, v) in order.iter().enumerate() {
                p[v.0 as usize] = i;
            }
            p
        };
        for (_, e) in g.edges() {
            assert!(pos[e.src.0 as usize] < pos[e.dst.0 as usize]);
        }
    }

    #[test]
    fn cycle_detected_in_template_like_graph() {
        let mut g = chain(3); // t0 → d0 → t1
        // Close the loop: t1 → d0 would make in-edge on d0… producer t1→d0 is
        // legal kind-wise and creates a cycle d0 → t1 → d0.
        let d0 = g.find_vertex("d0").unwrap();
        let t1 = g.find_vertex("t1").unwrap();
        g.add_edge(t1, d0, FlowDir::Producer, EdgeProps::default());
        assert!(!g.is_dag());
        assert_eq!(g.topo_order(), Err(GraphError::CycleDetected));
    }

    #[test]
    fn sources_and_sinks() {
        let g = chain(5);
        assert_eq!(g.sources(), vec![VertexId(0)]);
        assert_eq!(g.sinks(), vec![VertexId(4)]);
    }

    #[test]
    fn layers_are_monotone_along_edges() {
        let g = chain(6);
        let layers = g.layers().unwrap();
        for (_, e) in g.edges() {
            assert!(layers[e.src.0 as usize] < layers[e.dst.0 as usize]);
        }
        assert_eq!(layers[0], 0);
        assert_eq!(layers[5], 5);
    }

    #[test]
    fn empty_graph_is_a_dag() {
        let g = DflGraph::new();
        assert!(g.is_dag());
        assert!(g.topo_order().unwrap().is_empty());
    }
}
