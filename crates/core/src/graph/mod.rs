//! The DFL property graph (§4.1).
//!
//! Vertices are tasks and data files; directed edges are producer
//! (task→data) and consumer (data→task) flow relations. A graph built from
//! one execution's measurements is a **DFL-DAG** (acyclic, since each task
//! instance is a distinct vertex). Aggregating instances yields a **DFL
//! template** ([`template`]), which may contain cycles.

pub mod build;
pub mod dag;
pub mod merge;
pub mod template;

use serde::{Deserialize, Serialize};

use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

/// Dense vertex identifier within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexId(pub u32);

/// Dense edge identifier within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// What a vertex represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VertexKind {
    Task,
    Data,
}

/// Per-kind vertex properties.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VertexProps {
    Task(TaskProps),
    Data(DataProps),
}

impl VertexProps {
    pub fn as_task(&self) -> Option<&TaskProps> {
        match self {
            VertexProps::Task(t) => Some(t),
            VertexProps::Data(_) => None,
        }
    }

    pub fn as_data(&self) -> Option<&DataProps> {
        match self {
            VertexProps::Data(d) => Some(d),
            VertexProps::Task(_) => None,
        }
    }
}

/// A DFL-G vertex.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vertex {
    pub kind: VertexKind,
    /// Instance name: task instance (e.g. `indiv-chr1-3`) or file path.
    pub name: String,
    /// Logical (template) name, e.g. `indiv` or a path with indices
    /// abstracted. Used for DFL-T aggregation.
    pub logical: String,
    pub props: VertexProps,
}

impl Vertex {
    pub fn is_task(&self) -> bool {
        self.kind == VertexKind::Task
    }

    pub fn is_data(&self) -> bool {
        self.kind == VertexKind::Data
    }
}

/// A DFL-G directed flow edge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Edge {
    pub src: VertexId,
    pub dst: VertexId,
    pub dir: FlowDir,
    pub props: EdgeProps,
}

/// The DFL property graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DflGraph {
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
}

impl DflGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task vertex and returns its id.
    pub fn add_task(&mut self, name: &str, logical: &str, props: TaskProps) -> VertexId {
        self.add_vertex(Vertex {
            kind: VertexKind::Task,
            name: name.to_owned(),
            logical: logical.to_owned(),
            props: VertexProps::Task(props),
        })
    }

    /// Adds a data vertex and returns its id.
    pub fn add_data(&mut self, name: &str, logical: &str, props: DataProps) -> VertexId {
        self.add_vertex(Vertex {
            kind: VertexKind::Data,
            name: name.to_owned(),
            logical: logical.to_owned(),
            props: VertexProps::Data(props),
        })
    }

    pub fn add_vertex(&mut self, v: Vertex) -> VertexId {
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(v);
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Adds a flow edge. Producer edges must run task→data and consumer
    /// edges data→task.
    ///
    /// # Panics
    /// Panics if endpoint kinds do not match the flow direction (a DFL-G is
    /// bipartite between tasks and data).
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, dir: FlowDir, props: EdgeProps) -> EdgeId {
        let (sk, dk) = (self.vertices[src.0 as usize].kind, self.vertices[dst.0 as usize].kind);
        match dir {
            FlowDir::Producer => {
                assert!(sk == VertexKind::Task && dk == VertexKind::Data, "producer edges are task→data")
            }
            FlowDir::Consumer => {
                assert!(sk == VertexKind::Data && dk == VertexKind::Task, "consumer edges are data→task")
            }
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { src, dst, dir, props });
        self.out_edges[src.0 as usize].push(id);
        self.in_edges[dst.0 as usize].push(id);
        id
    }

    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    pub fn vertex(&self, v: VertexId) -> &Vertex {
        &self.vertices[v.0 as usize]
    }

    pub fn vertex_mut(&mut self, v: VertexId) -> &mut Vertex {
        &mut self.vertices[v.0 as usize]
    }

    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.0 as usize]
    }

    pub fn vertices(&self) -> impl Iterator<Item = (VertexId, &Vertex)> {
        self.vertices.iter().enumerate().map(|(i, v)| (VertexId(i as u32), v))
    }

    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i as u32), e))
    }

    pub fn out_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.out_edges[v.0 as usize]
    }

    pub fn in_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.in_edges[v.0 as usize]
    }

    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_edges[v.0 as usize].len()
    }

    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_edges[v.0 as usize].len()
    }

    /// Successor vertex ids of `v`.
    pub fn successors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.out_edges[v.0 as usize].iter().map(|&e| self.edges[e.0 as usize].dst)
    }

    /// Predecessor vertex ids of `v`.
    pub fn predecessors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.in_edges[v.0 as usize].iter().map(|&e| self.edges[e.0 as usize].src)
    }

    /// All task vertex ids.
    pub fn task_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices().filter(|(_, v)| v.is_task()).map(|(id, _)| id)
    }

    /// All data vertex ids.
    pub fn data_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices().filter(|(_, v)| v.is_data()).map(|(id, _)| id)
    }

    /// Finds a vertex by exact name.
    pub fn find_vertex(&self, name: &str) -> Option<VertexId> {
        self.vertices()
            .find(|(_, v)| v.name == name)
            .map(|(id, _)| id)
    }

    /// Total volume flowing into `v` (sum of in-edge volumes), bytes.
    pub fn in_volume(&self, v: VertexId) -> u64 {
        self.in_edges(v).iter().map(|&e| self.edge(e).props.volume).sum()
    }

    /// Total volume flowing out of `v`, bytes.
    pub fn out_volume(&self, v: VertexId) -> u64 {
        self.out_edges(v).iter().map(|&e| self.edge(e).props.volume).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn diamond() -> (DflGraph, [VertexId; 4]) {
        // t0 → d0 → {t1, t2}
        let mut g = DflGraph::new();
        let t0 = g.add_task("t0", "t", TaskProps { lifetime_ns: 100, ..Default::default() });
        let d0 = g.add_data("d0", "d", DataProps { size: 1000, ..Default::default() });
        let t1 = g.add_task("t1", "t", TaskProps::default());
        let t2 = g.add_task("t2", "t", TaskProps::default());
        g.add_edge(t0, d0, FlowDir::Producer, EdgeProps { volume: 1000, ..Default::default() });
        g.add_edge(d0, t1, FlowDir::Consumer, EdgeProps { volume: 600, ..Default::default() });
        g.add_edge(d0, t2, FlowDir::Consumer, EdgeProps { volume: 400, ..Default::default() });
        (g, [t0, d0, t1, t2])
    }

    #[test]
    fn degrees_and_adjacency() {
        let (g, [t0, d0, t1, _t2]) = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(t0), 1);
        assert_eq!(g.out_degree(d0), 2);
        assert_eq!(g.in_degree(t1), 1);
        let succ: Vec<_> = g.successors(d0).collect();
        assert_eq!(succ.len(), 2);
        let pred: Vec<_> = g.predecessors(d0).collect();
        assert_eq!(pred, vec![t0]);
    }

    #[test]
    fn volumes_flow_through_data_vertex() {
        let (g, [_, d0, ..]) = diamond();
        assert_eq!(g.in_volume(d0), 1000);
        assert_eq!(g.out_volume(d0), 1000);
    }

    #[test]
    #[should_panic(expected = "producer edges are task→data")]
    fn bipartite_enforced() {
        let mut g = DflGraph::new();
        let t0 = g.add_task("t0", "t", TaskProps::default());
        let t1 = g.add_task("t1", "t", TaskProps::default());
        g.add_edge(t0, t1, FlowDir::Producer, EdgeProps::default());
    }

    #[test]
    fn find_by_name() {
        let (g, [_, d0, ..]) = diamond();
        assert_eq!(g.find_vertex("d0"), Some(d0));
        assert_eq!(g.find_vertex("nope"), None);
    }
}

impl DflGraph {
    /// Serializes the graph (vertices, edges, properties) to JSON — the
    /// interchange format for saved lifecycle graphs.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a graph from [`DflGraph::to_json`] output.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod json_tests {
    use super::tests::diamond;
    use super::*;

    #[test]
    fn graph_json_round_trip() {
        let (g, [_, d0, ..]) = diamond();
        let json = g.to_json().unwrap();
        let back = DflGraph::from_json(&json).unwrap();
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.in_volume(d0), g.in_volume(d0));
        assert_eq!(back.vertex(d0).name, "d0");
        // Adjacency rebuilt correctly.
        assert_eq!(back.out_degree(d0), 2);
    }
}
