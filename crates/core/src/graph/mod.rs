//! The DFL property graph (§4.1).
//!
//! Vertices are tasks and data files; directed edges are producer
//! (task→data) and consumer (data→task) flow relations. A graph built from
//! one execution's measurements is a **DFL-DAG** (acyclic, since each task
//! instance is a distinct vertex). Aggregating instances yields a **DFL
//! template** ([`template`]), which may contain cycles.
//!
//! # Memory layout
//!
//! Storage is arena/SoA: vertices and edges live in flat `Vec` arenas
//! addressed by dense integer ids, and adjacency is intrusive singly-linked
//! lists threaded through parallel `next_out`/`next_in` arrays (one link
//! slot per edge, head/tail per vertex). Traversal touches only flat arrays
//! — no per-vertex heap allocation, no hashing — and adjacency lists
//! preserve edge insertion order, which the critical-path tie-break
//! contract relies on.
//!
//! # Id stability
//!
//! [`VertexId`]s and [`EdgeId`]s are assigned densely in insertion order
//! and are **never reused or renumbered**: [`DflGraph::unlink_edge`]
//! tombstones an edge (detaching it from adjacency, degrees, and
//! iteration) without moving any other edge. Serialization compacts
//! tombstones away, so edge ids are only stable within one in-memory
//! graph, not across a JSON round trip of a graph with unlinked edges.

pub mod build;
pub mod dag;
pub mod merge;
pub mod template;

use serde::{Deserialize, Serialize};

use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

/// Sentinel terminating intrusive adjacency lists.
const NIL: u32 = u32::MAX;

/// Dense vertex identifier within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexId(pub u32);

/// Dense edge identifier within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// What a vertex represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VertexKind {
    Task,
    Data,
}

/// Per-kind vertex properties.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VertexProps {
    Task(TaskProps),
    Data(DataProps),
}

impl VertexProps {
    pub fn as_task(&self) -> Option<&TaskProps> {
        match self {
            VertexProps::Task(t) => Some(t),
            VertexProps::Data(_) => None,
        }
    }

    pub fn as_data(&self) -> Option<&DataProps> {
        match self {
            VertexProps::Data(d) => Some(d),
            VertexProps::Task(_) => None,
        }
    }
}

/// A DFL-G vertex.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vertex {
    pub kind: VertexKind,
    /// Instance name: task instance (e.g. `indiv-chr1-3`) or file path.
    pub name: String,
    /// Logical (template) name, e.g. `indiv` or a path with indices
    /// abstracted. Used for DFL-T aggregation.
    pub logical: String,
    pub props: VertexProps,
}

impl Vertex {
    pub fn is_task(&self) -> bool {
        self.kind == VertexKind::Task
    }

    pub fn is_data(&self) -> bool {
        self.kind == VertexKind::Data
    }
}

/// A DFL-G directed flow edge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Edge {
    pub src: VertexId,
    pub dst: VertexId,
    pub dir: FlowDir,
    pub props: EdgeProps,
}

/// The DFL property graph (see module docs for the memory layout).
#[derive(Debug, Clone, Default)]
pub struct DflGraph {
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
    // Per-vertex adjacency list heads/tails, NIL-terminated.
    first_out: Vec<u32>,
    last_out: Vec<u32>,
    first_in: Vec<u32>,
    last_in: Vec<u32>,
    // Per-edge successor links for the two lists.
    next_out: Vec<u32>,
    next_in: Vec<u32>,
    // SoA copies of edge endpoints: topology-only traversals (topo sort,
    // DP sweeps) read these 4-byte entries instead of dragging the full
    // `Edge` struct (with its property block) through the cache.
    esrc: Vec<u32>,
    edst: Vec<u32>,
    // Live (non-tombstoned) degree counters.
    out_deg: Vec<u32>,
    in_deg: Vec<u32>,
    // SoA mirrors of the cost-relevant vertex fields (kind, task lifetime)
    // so DP sweeps never page in the full `Vertex` (name/logical strings).
    // Kept in sync by `add_vertex`/`set_vertex_props`.
    vkind: Vec<VertexKind>,
    vlife: Vec<u64>,
    // Tombstone marks for unlinked edges; `live_edges` counts the rest.
    dead: Vec<bool>,
    live_edges: u32,
    // Memoized topological order (flat ids, lowest-id-first tie-break;
    // `None` inside = cyclic). Structural mutations reset the cell, so
    // repeated analyses over an unchanged graph sort once. Thread-safe and
    // invisible to serialization/equality.
    topo: std::sync::OnceLock<Option<Vec<u32>>>,
}

/// Iterator over one vertex's adjacency list (live edges, insertion order).
#[derive(Clone)]
pub struct EdgeIter<'a> {
    next: &'a [u32],
    cur: u32,
}

impl Iterator for EdgeIter<'_> {
    type Item = EdgeId;

    #[inline]
    fn next(&mut self) -> Option<EdgeId> {
        if self.cur == NIL {
            return None;
        }
        let e = self.cur;
        self.cur = self.next[e as usize];
        Some(EdgeId(e))
    }
}

impl DflGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task vertex and returns its id.
    pub fn add_task(&mut self, name: &str, logical: &str, props: TaskProps) -> VertexId {
        self.add_vertex(Vertex {
            kind: VertexKind::Task,
            name: name.to_owned(),
            logical: logical.to_owned(),
            props: VertexProps::Task(props),
        })
    }

    /// Adds a data vertex and returns its id.
    pub fn add_data(&mut self, name: &str, logical: &str, props: DataProps) -> VertexId {
        self.add_vertex(Vertex {
            kind: VertexKind::Data,
            name: name.to_owned(),
            logical: logical.to_owned(),
            props: VertexProps::Data(props),
        })
    }

    pub fn add_vertex(&mut self, v: Vertex) -> VertexId {
        self.topo = std::sync::OnceLock::new();
        let id = VertexId(self.vertices.len() as u32);
        self.vkind.push(v.kind);
        self.vlife.push(match &v.props {
            VertexProps::Task(t) => t.lifetime_ns,
            VertexProps::Data(_) => 0,
        });
        self.vertices.push(v);
        self.first_out.push(NIL);
        self.last_out.push(NIL);
        self.first_in.push(NIL);
        self.last_in.push(NIL);
        self.out_deg.push(0);
        self.in_deg.push(0);
        id
    }

    /// Replaces the properties of `v`. The props kind must match the
    /// vertex kind (task props on a task vertex, data props on a data
    /// vertex).
    ///
    /// # Panics
    /// Panics on a kind mismatch.
    pub fn set_vertex_props(&mut self, v: VertexId, props: VertexProps) {
        let vi = v.0 as usize;
        match (&props, self.vkind[vi]) {
            (VertexProps::Task(t), VertexKind::Task) => self.vlife[vi] = t.lifetime_ns,
            (VertexProps::Data(_), VertexKind::Data) => {}
            _ => panic!("vertex props kind must match the vertex kind"),
        }
        self.vertices[vi].props = props;
    }

    /// Adds a flow edge. Producer edges must run task→data and consumer
    /// edges data→task.
    ///
    /// # Panics
    /// Panics if endpoint kinds do not match the flow direction (a DFL-G is
    /// bipartite between tasks and data).
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, dir: FlowDir, props: EdgeProps) -> EdgeId {
        let (sk, dk) = (self.vertices[src.0 as usize].kind, self.vertices[dst.0 as usize].kind);
        match dir {
            FlowDir::Producer => {
                assert!(sk == VertexKind::Task && dk == VertexKind::Data, "producer edges are task→data")
            }
            FlowDir::Consumer => {
                assert!(sk == VertexKind::Data && dk == VertexKind::Task, "consumer edges are data→task")
            }
        }
        self.topo = std::sync::OnceLock::new();
        let id = self.edges.len() as u32;
        let (s, d) = (src.0 as usize, dst.0 as usize);
        self.edges.push(Edge { src, dst, dir, props });
        self.next_out.push(NIL);
        self.next_in.push(NIL);
        self.esrc.push(src.0);
        self.edst.push(dst.0);
        self.dead.push(false);
        if self.last_out[s] == NIL {
            self.first_out[s] = id;
        } else {
            self.next_out[self.last_out[s] as usize] = id;
        }
        self.last_out[s] = id;
        if self.last_in[d] == NIL {
            self.first_in[d] = id;
        } else {
            self.next_in[self.last_in[d] as usize] = id;
        }
        self.last_in[d] = id;
        self.out_deg[s] += 1;
        self.in_deg[d] += 1;
        self.live_edges += 1;
        EdgeId(id)
    }

    /// Tombstones an edge: detaches it from adjacency, degrees, and
    /// [`DflGraph::edges`] iteration. Its id is retired — never reused —
    /// and every other vertex/edge id is unaffected. No-op if `e` is
    /// already unlinked or out of range.
    pub fn unlink_edge(&mut self, e: EdgeId) {
        let ei = e.0 as usize;
        if ei >= self.edges.len() || self.dead[ei] {
            return;
        }
        self.topo = std::sync::OnceLock::new();
        let (s, d) = (self.edges[ei].src.0 as usize, self.edges[ei].dst.0 as usize);
        Self::list_remove(&mut self.first_out, &mut self.last_out, &mut self.next_out, s, e.0);
        Self::list_remove(&mut self.first_in, &mut self.last_in, &mut self.next_in, d, e.0);
        self.dead[ei] = true;
        self.out_deg[s] -= 1;
        self.in_deg[d] -= 1;
        self.live_edges -= 1;
    }

    /// Removes `target` from the singly-linked list rooted at `first[v]`
    /// (O(degree) walk; unlinking is off the hot path).
    fn list_remove(first: &mut [u32], last: &mut [u32], next: &mut [u32], v: usize, target: u32) {
        let mut prev = NIL;
        let mut cur = first[v];
        while cur != NIL {
            if cur == target {
                if prev == NIL {
                    first[v] = next[cur as usize];
                } else {
                    next[prev as usize] = next[cur as usize];
                }
                if last[v] == target {
                    last[v] = prev;
                }
                next[cur as usize] = NIL;
                return;
            }
            prev = cur;
            cur = next[cur as usize];
        }
    }

    /// Whether `e` is in range and not tombstoned.
    pub fn edge_live(&self, e: EdgeId) -> bool {
        (e.0 as usize) < self.edges.len() && !self.dead[e.0 as usize]
    }

    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Live (non-tombstoned) edge count.
    pub fn edge_count(&self) -> usize {
        self.live_edges as usize
    }

    pub fn vertex(&self, v: VertexId) -> &Vertex {
        &self.vertices[v.0 as usize]
    }

    /// Vertex kind without touching the AoS `Vertex` record.
    pub fn vertex_kind(&self, v: VertexId) -> VertexKind {
        self.vkind[v.0 as usize]
    }

    /// Flat task-lifetime mirror (ns; 0 for data vertices).
    pub(crate) fn vlife_raw(&self) -> &[u64] {
        &self.vlife
    }

    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.0 as usize]
    }

    /// Mutable edge properties. Endpoints and direction are fixed at
    /// insertion; only the measured properties may change.
    pub fn edge_props_mut(&mut self, e: EdgeId) -> &mut EdgeProps {
        &mut self.edges[e.0 as usize].props
    }

    pub fn vertices(&self) -> impl Iterator<Item = (VertexId, &Vertex)> {
        self.vertices.iter().enumerate().map(|(i, v)| (VertexId(i as u32), v))
    }

    /// Live edges in id (insertion) order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.dead[i])
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Out-edges of `v` in insertion order.
    pub fn out_edges(&self, v: VertexId) -> EdgeIter<'_> {
        EdgeIter { next: &self.next_out, cur: self.first_out[v.0 as usize] }
    }

    /// In-edges of `v` in insertion order.
    pub fn in_edges(&self, v: VertexId) -> EdgeIter<'_> {
        EdgeIter { next: &self.next_in, cur: self.first_in[v.0 as usize] }
    }

    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_deg[v.0 as usize] as usize
    }

    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_deg[v.0 as usize] as usize
    }

    /// Flat live in-degree counters, indexed by vertex id (for the
    /// analysis kernels, which seed Kahn worklists straight off this).
    pub(crate) fn in_deg_raw(&self) -> &[u32] {
        &self.in_deg
    }

    /// Flat edge source ids, indexed by edge id (SoA traversal mirror).
    pub(crate) fn edge_src_raw(&self) -> &[u32] {
        &self.esrc
    }

    /// Flat edge destination ids, indexed by edge id.
    pub(crate) fn edge_dst_raw(&self) -> &[u32] {
        &self.edst
    }

    /// Successor vertex ids of `v`.
    pub fn successors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.out_edges(v).map(|e| VertexId(self.edst[e.0 as usize]))
    }

    /// Predecessor vertex ids of `v`.
    pub fn predecessors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.in_edges(v).map(|e| VertexId(self.esrc[e.0 as usize]))
    }

    /// All task vertex ids.
    pub fn task_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices().filter(|(_, v)| v.is_task()).map(|(id, _)| id)
    }

    /// All data vertex ids.
    pub fn data_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices().filter(|(_, v)| v.is_data()).map(|(id, _)| id)
    }

    /// Finds a vertex by exact name.
    pub fn find_vertex(&self, name: &str) -> Option<VertexId> {
        self.vertices()
            .find(|(_, v)| v.name == name)
            .map(|(id, _)| id)
    }

    /// Total volume flowing into `v` (sum of in-edge volumes), bytes.
    pub fn in_volume(&self, v: VertexId) -> u64 {
        self.in_edges(v).map(|e| self.edge(e).props.volume).sum()
    }

    /// Total volume flowing out of `v`, bytes.
    pub fn out_volume(&self, v: VertexId) -> u64 {
        self.out_edges(v).map(|e| self.edge(e).props.volume).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn diamond() -> (DflGraph, [VertexId; 4]) {
        // t0 → d0 → {t1, t2}
        let mut g = DflGraph::new();
        let t0 = g.add_task("t0", "t", TaskProps { lifetime_ns: 100, ..Default::default() });
        let d0 = g.add_data("d0", "d", DataProps { size: 1000, ..Default::default() });
        let t1 = g.add_task("t1", "t", TaskProps::default());
        let t2 = g.add_task("t2", "t", TaskProps::default());
        g.add_edge(t0, d0, FlowDir::Producer, EdgeProps { volume: 1000, ..Default::default() });
        g.add_edge(d0, t1, FlowDir::Consumer, EdgeProps { volume: 600, ..Default::default() });
        g.add_edge(d0, t2, FlowDir::Consumer, EdgeProps { volume: 400, ..Default::default() });
        (g, [t0, d0, t1, t2])
    }

    #[test]
    fn degrees_and_adjacency() {
        let (g, [t0, d0, t1, _t2]) = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(t0), 1);
        assert_eq!(g.out_degree(d0), 2);
        assert_eq!(g.in_degree(t1), 1);
        let succ: Vec<_> = g.successors(d0).collect();
        assert_eq!(succ.len(), 2);
        let pred: Vec<_> = g.predecessors(d0).collect();
        assert_eq!(pred, vec![t0]);
    }

    #[test]
    fn volumes_flow_through_data_vertex() {
        let (g, [_, d0, ..]) = diamond();
        assert_eq!(g.in_volume(d0), 1000);
        assert_eq!(g.out_volume(d0), 1000);
    }

    #[test]
    fn adjacency_preserves_insertion_order() {
        let (g, [_, d0, t1, t2]) = diamond();
        let out: Vec<VertexId> = g.successors(d0).collect();
        assert_eq!(out, vec![t1, t2], "out-edges iterate in insertion order");
        let eids: Vec<EdgeId> = g.out_edges(d0).collect();
        assert_eq!(eids, vec![EdgeId(1), EdgeId(2)]);
    }

    #[test]
    fn unlink_edge_tombstones_without_renumbering() {
        let (mut g, [t0, d0, t1, t2]) = diamond();
        g.unlink_edge(EdgeId(1)); // d0 → t1
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(d0), 1);
        assert_eq!(g.in_degree(t1), 0);
        assert!(!g.edge_live(EdgeId(1)));
        // Remaining ids unchanged; iteration skips the tombstone.
        let ids: Vec<EdgeId> = g.edges().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![EdgeId(0), EdgeId(2)]);
        assert_eq!(g.successors(d0).collect::<Vec<_>>(), vec![t2]);
        assert_eq!(g.out_volume(d0), 400);
        // Double-unlink is a no-op; unlinking the rest empties the lists.
        g.unlink_edge(EdgeId(1));
        g.unlink_edge(EdgeId(0));
        g.unlink_edge(EdgeId(2));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.out_degree(t0), 0);
        assert!(g.out_edges(d0).next().is_none() && g.in_edges(d0).next().is_none());
        // Appending after tombstoning keeps allocating fresh ids.
        let e = g.add_edge(d0, t1, FlowDir::Consumer, EdgeProps { volume: 7, ..Default::default() });
        assert_eq!(e, EdgeId(3));
        assert_eq!(g.successors(d0).collect::<Vec<_>>(), vec![t1]);
    }

    #[test]
    #[should_panic(expected = "producer edges are task→data")]
    fn bipartite_enforced() {
        let mut g = DflGraph::new();
        let t0 = g.add_task("t0", "t", TaskProps::default());
        let t1 = g.add_task("t1", "t", TaskProps::default());
        g.add_edge(t0, t1, FlowDir::Producer, EdgeProps::default());
    }

    #[test]
    fn find_by_name() {
        let (g, [_, d0, ..]) = diamond();
        assert_eq!(g.find_vertex("d0"), Some(d0));
        assert_eq!(g.find_vertex("nope"), None);
    }
}

impl DflGraph {
    /// Serializes the graph (vertices, edges, properties) to JSON — the
    /// interchange format for saved lifecycle graphs. Tombstoned edges are
    /// compacted away (see module docs on id stability).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a graph from [`DflGraph::to_json`] output.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }
}

// Adjacency is derived state: serialize only vertices and live edges, and
// rebuild the intrusive lists on load (this also keeps old saved graphs,
// which carried explicit adjacency vectors, loadable — unknown fields are
// ignored).
impl Serialize for DflGraph {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "vertices".to_owned(),
                serde::Value::Array(self.vertices.iter().map(|v| v.to_value()).collect()),
            ),
            (
                "edges".to_owned(),
                serde::Value::Array(self.edges().map(|(_, e)| e.to_value()).collect()),
            ),
        ])
    }
}

impl Deserialize for DflGraph {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let vertices: Vec<Vertex> = serde::de_field(v, "vertices")?;
        let edges: Vec<Edge> = serde::de_field(v, "edges")?;
        let mut g = DflGraph::new();
        for vert in vertices {
            g.add_vertex(vert);
        }
        let n = g.vertex_count() as u32;
        for e in edges {
            if e.src.0 >= n || e.dst.0 >= n {
                return Err(serde::Error::msg("graph edge references a missing vertex"));
            }
            let (sk, dk) = (g.vertex(e.src).kind, g.vertex(e.dst).kind);
            let ok = match e.dir {
                FlowDir::Producer => sk == VertexKind::Task && dk == VertexKind::Data,
                FlowDir::Consumer => sk == VertexKind::Data && dk == VertexKind::Task,
            };
            if !ok {
                return Err(serde::Error::msg("graph edge direction does not match vertex kinds"));
            }
            g.add_edge(e.src, e.dst, e.dir, e.props);
        }
        Ok(g)
    }
}

#[cfg(test)]
mod json_tests {
    use super::tests::diamond;
    use super::*;

    #[test]
    fn graph_json_round_trip() {
        let (g, [_, d0, ..]) = diamond();
        let json = g.to_json().unwrap();
        let back = DflGraph::from_json(&json).unwrap();
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.in_volume(d0), g.in_volume(d0));
        assert_eq!(back.vertex(d0).name, "d0");
        // Adjacency rebuilt correctly.
        assert_eq!(back.out_degree(d0), 2);
    }

    #[test]
    fn round_trip_compacts_tombstones() {
        let (mut g, [_, d0, ..]) = diamond();
        g.unlink_edge(EdgeId(0)); // t0 → d0
        let back = DflGraph::from_json(&g.to_json().unwrap()).unwrap();
        assert_eq!(back.edge_count(), 2);
        assert_eq!(back.in_degree(d0), 0);
        assert_eq!(back.out_degree(d0), 2);
    }

    #[test]
    fn corrupt_edge_is_a_parse_error_not_a_panic() {
        let json = r#"{
          "vertices": [
            {"kind": "Task", "name": "t", "logical": "t",
             "props": {"Task": {"lifetime_ns": 0, "start_ns": 0, "end_ns": 0, "instances": 1}}}
          ],
          "edges": [
            {"src": 0, "dst": 9, "dir": "Producer",
             "props": {"volume": 0, "footprint": 0.0, "ops": 0, "latency_ns": 0,
                       "data_rate": 0.0, "op_rate": 0.0, "blocking_fraction": 0.0,
                       "mean_distance": 0.0, "locality_fraction": 0.0,
                       "zero_distance_fraction": 0.0, "reuse_factor": 0.0,
                       "subset_fraction": 0.0, "instances": 1}}
          ]
        }"#;
        assert!(DflGraph::from_json(json).is_err());
    }
}
