//! DFL-DAG construction from measurement records (§4.1).
//!
//! "Since measurement histograms capture all graph edges, the DFL-G is built
//! by connecting all edges." Each `TaskFileRecord` contributes a producer
//! edge (writes), a consumer edge (reads), or both. Construction is linear
//! in records and can be parallelized; property derivation per record is
//! independent, so we compute edge properties with rayon and connect
//! sequentially (vertex updates stay trivially atomic).

use std::collections::HashMap;

use rayon::prelude::*;

use dfl_trace::stats::TaskFileRecord;
use dfl_trace::{FlowKind, MeasurementSet};

use crate::graph::{DflGraph, VertexId};
use crate::props::{DataProps, EdgeProps, FlowDir, TaskProps};

/// Abstracts a file path into a logical name for template aggregation:
/// runs of ASCII digits collapse to `#`, so `chr1n-3-4.tar.gz` and
/// `chr2n-7-8.tar.gz` share the logical name `chr#n-#-#.tar.gz`.
pub fn logical_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len());
    let mut in_digits = false;
    for c in path.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('#');
                in_digits = true;
            }
        } else {
            in_digits = false;
            out.push(c);
        }
    }
    out
}

/// Derives one flow edge's properties from a record (shared by the batch
/// builder and the live incremental engine so both produce identical
/// property blocks).
pub(crate) fn edge_props_for(rec: &TaskFileRecord, kind: FlowKind, task_lifetime_ns: u64) -> EdgeProps {
    let lifetime_s = (task_lifetime_ns.max(1)) as f64 / 1e9;
    match kind {
        FlowKind::Consumer => EdgeProps {
            volume: rec.bytes_read,
            footprint: rec.read_footprint(),
            ops: rec.read_ops,
            latency_ns: rec.read_ns,
            data_rate: rec.bytes_read as f64 / lifetime_s,
            op_rate: rec.read_ops as f64 / lifetime_s,
            blocking_fraction: rec.read_blocking_fraction(),
            mean_distance: rec.read_distance.mean(),
            locality_fraction: rec.read_distance.locality_fraction(),
            zero_distance_fraction: if rec.read_distance.count == 0 {
                0.0
            } else {
                rec.read_distance.zero as f64 / rec.read_distance.count as f64
            },
            reuse_factor: rec.read_reuse_factor(),
            subset_fraction: rec.read_subset_fraction(),
            instances: 1,
        },
        FlowKind::Producer => EdgeProps {
            volume: rec.bytes_written,
            footprint: rec.write_footprint(),
            ops: rec.write_ops,
            latency_ns: rec.write_ns,
            data_rate: rec.bytes_written as f64 / lifetime_s,
            op_rate: rec.write_ops as f64 / lifetime_s,
            blocking_fraction: rec.write_blocking_fraction(),
            mean_distance: rec.write_distance.mean(),
            locality_fraction: rec.write_distance.locality_fraction(),
            zero_distance_fraction: if rec.write_distance.count == 0 {
                0.0
            } else {
                rec.write_distance.zero as f64 / rec.write_distance.count as f64
            },
            reuse_factor: {
                let fp = rec.write_footprint();
                if fp > 0.0 { rec.bytes_written as f64 / fp } else { 0.0 }
            },
            subset_fraction: if rec.file_size > 0 {
                (rec.write_footprint() / rec.file_size as f64).min(1.0)
            } else {
                0.0
            },
            instances: 1,
        },
    }
}

impl DflGraph {
    /// Builds a DFL-DAG from one execution's measurements.
    ///
    /// Tasks become task vertices; every file touched by at least one record
    /// becomes a data vertex; records become producer/consumer edges with
    /// properties derived from the histograms. The result is acyclic because
    /// each task instance is a distinct vertex and (in a single execution) a
    /// file's producer precedes its consumers.
    pub fn from_measurements(set: &MeasurementSet) -> Self {
        let mut g = DflGraph::new();

        // Task vertices, keyed by trace TaskId.
        let mut task_vertex: HashMap<dfl_trace::TaskId, VertexId> = HashMap::new();
        let mut task_lifetime: HashMap<dfl_trace::TaskId, u64> = HashMap::new();
        for t in &set.tasks {
            let v = g.add_task(
                &t.name,
                &t.logical,
                TaskProps {
                    lifetime_ns: t.lifetime_ns(),
                    start_ns: t.start_ns,
                    end_ns: t.end_ns,
                    instances: 1,
                },
            );
            task_vertex.insert(t.task, v);
            task_lifetime.insert(t.task, t.lifetime_ns());
        }

        // Data vertices for files referenced by records.
        let mut file_vertex: HashMap<dfl_trace::FileId, VertexId> = HashMap::new();
        let mut file_span: HashMap<dfl_trace::FileId, (u64, u64)> = HashMap::new();
        for r in &set.records {
            let span = file_span.entry(r.file).or_insert((u64::MAX, 0));
            span.0 = span.0.min(r.first_open_ns);
            span.1 = span.1.max(r.last_close_ns);
        }
        for f in &set.files {
            if let Some(&(first, last)) = file_span.get(&f.file) {
                let v = g.add_data(
                    &f.path,
                    &logical_path(&f.path),
                    DataProps {
                        size: f.size,
                        lifetime_ns: last.saturating_sub(first),
                        first_open_ns: first,
                        last_close_ns: last,
                        block_size: f.block_size,
                        instances: 1,
                    },
                );
                file_vertex.insert(f.file, v);
            }
        }

        // Edge property derivation is independent per record: parallelize.
        let derived: Vec<(dfl_trace::TaskId, dfl_trace::FileId, FlowKind, EdgeProps)> = set
            .records
            .par_iter()
            .flat_map_iter(|r| {
                let lifetime = task_lifetime.get(&r.task).copied().unwrap_or(0);
                r.flow_kinds()
                    .into_iter()
                    .map(move |k| (r.task, r.file, k, edge_props_for(r, k, lifetime)))
                    .collect::<Vec<_>>()
            })
            .collect();

        for (task, file, kind, props) in derived {
            let (Some(&tv), Some(&dv)) = (task_vertex.get(&task), file_vertex.get(&file)) else {
                continue;
            };
            match kind {
                FlowKind::Producer => {
                    g.add_edge(tv, dv, FlowDir::Producer, props);
                }
                FlowKind::Consumer => {
                    g.add_edge(dv, tv, FlowDir::Consumer, props);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfl_trace::{IoTiming, Monitor, MonitorConfig, OpenMode};

    fn pipeline_measurements() -> MeasurementSet {
        let m = Monitor::new(MonitorConfig::default());
        // producer writes 1 MiB; two consumers read parts of it.
        let p = m.begin_task("gen-1", 0);
        let fd = p.open("mid.dat", OpenMode::Write, None, 0);
        p.write(fd, 1 << 20, IoTiming::new(0, 100_000)).unwrap();
        p.close(fd, 1_000_000).unwrap();
        p.finish(1_000_000);

        for (i, frac) in [(1u32, 1u64), (2, 2)] {
            let c = m.begin_task(&format!("use-{i}"), 1_000_000);
            let fd = c.open("mid.dat", OpenMode::Read, Some(1 << 20), 1_000_000);
            c.read(fd, (1 << 20) / frac, IoTiming::new(1_100_000, 50_000)).unwrap();
            c.close(fd, 2_000_000).unwrap();
            c.finish(2_000_000);
        }
        m.snapshot()
    }

    #[test]
    fn builds_expected_topology() {
        let g = DflGraph::from_measurements(&pipeline_measurements());
        assert_eq!(g.vertex_count(), 4); // 3 tasks + 1 file
        assert_eq!(g.edge_count(), 3); // 1 producer + 2 consumer
        let d = g.find_vertex("mid.dat").unwrap();
        assert_eq!(g.in_degree(d), 1);
        assert_eq!(g.out_degree(d), 2);
        assert_eq!(g.in_volume(d), 1 << 20);
        assert_eq!(g.out_volume(d), (1 << 20) + (1 << 19));
    }

    #[test]
    fn consumer_edge_props_reflect_subset() {
        let g = DflGraph::from_measurements(&pipeline_measurements());
        let d = g.find_vertex("mid.dat").unwrap();
        let half_reader = g
            .out_edges(d)
            .map(|e| g.edge(e))
            .find(|e| e.props.volume == 1 << 19)
            .unwrap();
        assert!(half_reader.props.subset_fraction < 0.6);
        assert!(half_reader.props.subset_fraction > 0.4);
    }

    #[test]
    fn rates_use_task_lifetime() {
        let g = DflGraph::from_measurements(&pipeline_measurements());
        let p = g.find_vertex("gen-1").unwrap();
        let e = g.edge(g.out_edges(p).next().unwrap());
        // 1 MiB over 1 ms lifetime = ~1 GiB/s.
        let expect = (1u64 << 20) as f64 / 1e-3;
        assert!((e.props.data_rate - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn logical_path_abstracts_digits() {
        assert_eq!(logical_path("chr1n-3-4.tar.gz"), "chr#n-#-#.tar.gz");
        assert_eq!(logical_path("no_digits.txt"), "no_digits.txt");
        assert_eq!(logical_path("run123/file456"), "run#/file#");
    }

    #[test]
    fn file_without_records_gets_no_vertex() {
        let m = Monitor::new(MonitorConfig::default());
        let t = m.begin_task("t-1", 0);
        t.finish(10);
        let set = m.snapshot();
        let g = DflGraph::from_measurements(&set);
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}
