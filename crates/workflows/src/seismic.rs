//! Seismic Cross Correlation (§6.1; Figs. 2e, 4e): a data-intensive
//! multi-stage aggregation.
//!
//! Station signals are preprocessed per station, cross-correlated in groups,
//! and the good fits compressed into a single output file — the DFL
//! signature is repeated task fan-in (a multi-stage aggregator), with the
//! critical path defined by instances of task joins.

use serde::{Deserialize, Serialize};

use crate::spec::{FileProduce, FileUse, TaskSpec, WorkflowSpec};

const MB: u64 = 1 << 20;

/// Generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeismicConfig {
    /// Number of seismic stations.
    pub stations: u32,
    /// Stations per first-level correlation group.
    pub group_size: u32,
    /// Signal file size per station.
    pub signal_bytes: u64,
    /// Preprocessed output per station.
    pub processed_bytes: u64,
    /// Partial correlation output per group.
    pub partial_bytes: u64,
    pub preprocess_compute_ms: u64,
    pub correlate_compute_ms: u64,
    pub compress_compute_ms: u64,
}

impl Default for SeismicConfig {
    fn default() -> Self {
        SeismicConfig {
            stations: 60,
            group_size: 10,
            signal_bytes: 30 * MB,
            processed_bytes: 20 * MB,
            partial_bytes: 40 * MB,
            preprocess_compute_ms: 2_000,
            correlate_compute_ms: 8_000,
            compress_compute_ms: 5_000,
        }
    }
}

impl SeismicConfig {
    pub fn tiny() -> Self {
        SeismicConfig {
            stations: 8,
            group_size: 4,
            signal_bytes: 2 * MB,
            processed_bytes: MB,
            partial_bytes: 2 * MB,
            preprocess_compute_ms: 10,
            correlate_compute_ms: 20,
            compress_compute_ms: 10,
        }
    }

    pub fn groups(&self) -> u32 {
        self.stations.div_ceil(self.group_size)
    }
}

/// Generates the workflow.
pub fn generate(cfg: &SeismicConfig) -> WorkflowSpec {
    let mut w = WorkflowSpec::new("seismic");
    for s in 0..cfg.stations {
        w.input(&format!("signals/station-{s:03}.sac"), cfg.signal_bytes);
    }

    // Stage 1: per-station preprocessing (decimation/whitening).
    for s in 0..cfg.stations {
        w.task(
            TaskSpec::new(&format!("preprocess-{s}"), "preprocess", 1)
                .read(FileUse::whole(&format!("signals/station-{s:03}.sac")).ops(4))
                .write(FileProduce::new(&format!("proc/station-{s:03}.dat"), cfg.processed_bytes))
                .compute_ms(cfg.preprocess_compute_ms)
                .group(s / cfg.group_size),
        );
    }

    // Stage 2: group correlators — first-level aggregators (task fan-in).
    for g in 0..cfg.groups() {
        let lo = g * cfg.group_size;
        let hi = (lo + cfg.group_size).min(cfg.stations);
        let mut t = TaskSpec::new(&format!("correlate-{g}"), "correlate", 2)
            .write(FileProduce::new(&format!("xcorr/partial-{g:02}.dat"), cfg.partial_bytes))
            .compute_ms(cfg.correlate_compute_ms)
            .group(g);
        for s in lo..hi {
            t = t.read(FileUse::whole(&format!("proc/station-{s:03}.dat")).ops(4));
        }
        w.task(t);
    }

    // Stage 3: final compressor-aggregator producing the single output.
    let mut fin = TaskSpec::new("compress-0", "compress", 3)
        .write(FileProduce::new("xcorr/result.tar.gz", cfg.partial_bytes * u64::from(cfg.groups()) / 4))
        .compute_ms(cfg.compress_compute_ms);
    for g in 0..cfg.groups() {
        fin = fin.read(FileUse::whole(&format!("xcorr/partial-{g:02}.dat")).ops(4));
    }
    w.task(fin);

    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, RunConfig};

    #[test]
    fn structure() {
        let cfg = SeismicConfig::default();
        let w = generate(&cfg);
        w.validate().unwrap();
        assert_eq!(w.tasks.len(), 60 + 6 + 1);
        assert_eq!(cfg.groups(), 6);
    }

    #[test]
    fn critical_path_by_fan_in_traverses_aggregators() {
        use dfl_core::analysis::cost::CostModel;
        use dfl_core::analysis::critical_path::critical_path;

        let w = generate(&SeismicConfig::tiny());
        let r = run(&w, &RunConfig::default_gpu(2)).unwrap();
        let g = dfl_core::DflGraph::from_measurements(&r.measurements);
        let cp = critical_path(&g, &CostModel::TaskFanIn);
        // Both levels of aggregation are joins: cost ≥ 2.
        assert!(cp.total_cost >= 2.0, "fan-in instances on path: {}", cp.total_cost);
        let names: Vec<&str> = cp.vertices.iter().map(|&v| g.vertex(v).name.as_str()).collect();
        assert!(names.iter().any(|n| n.starts_with("correlate")));
        assert!(names.iter().any(|n| n.starts_with("compress")));
    }

    #[test]
    fn final_task_is_compressor_aggregator() {
        use dfl_core::analysis::{analyze, AnalysisConfig, PatternKind};
        let w = generate(&SeismicConfig::tiny());
        let r = run(&w, &RunConfig::default_gpu(2)).unwrap();
        let g = dfl_core::DflGraph::from_measurements(&r.measurements);
        let cfg = AnalysisConfig { fan_in_threshold: 2, ..AnalysisConfig::default() };
        let ops = analyze(&g, &cfg);
        assert!(ops.iter().any(|o| o.pattern == PatternKind::CompressorAggregator));
    }
}
