//! Live run monitoring: a windowed driver around the workflow engine.
//!
//! [`run_watched`] executes a workflow exactly like [`engine::run`] — same
//! incident loop, same checkpoint policy, same final [`RunResult`] — but
//! additionally pauses the simulator at a fixed sim-time cadence and, at
//! each window boundary, drains a live [`EventStream`] subscriber, folds
//! the monitor's completed-task measurements into an incremental
//! [`LiveDfl`], and hands the caller a [`WindowSummary`]: progress, blame
//! breakdown, current critical-path head, fresh watchdog diagnoses, and
//! fault counters. The `datalife watch` dashboard and its `--headless
//! --jsonl` mode are thin renderers over this stream.
//!
//! # Window semantics
//!
//! Windows are half-open sim-time intervals `[k·W, (k+1)·W)`. A window's
//! summary is emitted when the simulator clock first reaches its right
//! edge; quiet windows (no events) are still emitted, so window indices
//! are gapless. The run's tail past the last full boundary is emitted as
//! one final summary with `final_window = true` — that summary's live
//! analysis folds the *complete* measurement set, so its critical path is
//! bit-identical to the batch analysis of [`RunResult::measurements`].
//!
//! # Blame attribution
//!
//! Every span retiring inside a window contributes its full duration to
//! its `(span kind, track)` bucket — a transfer is blamed on the window in
//! which it completes (spans are emitted at close time). Buckets sort by
//! descending busy time; ties break lexicographically, so summaries are
//! deterministic for a fixed seed.

use dfl_core::analysis::{Blame, BlameEntry, CostModel, LiveDfl, LiveHead};
use dfl_iosim::sim::{RunOutcome, Simulation};
use dfl_obs::export::span_kind_label;
use dfl_obs::{Diagnosis, EventStream, ObsConfig, TimelineEvent};
use serde::Serialize;

use crate::checkpoint::{load_latest_tolerant, CheckpointError, TornManifest};
use crate::engine::{
    checkpoint_due, finalize, handle_failures, init_run, restore_for_resume, take_checkpoint,
    validate_run, EngineCtx, EngineError, EngineState, RunConfig, RunResult,
};
use crate::spec::WorkflowSpec;

/// Tuning for [`run_watched`].
#[derive(Debug, Clone)]
pub struct WatchOptions {
    /// Sim-time window width in ns. One [`WindowSummary`] is emitted per
    /// window boundary crossed.
    pub window_ns: u64,
    /// Ring capacity of the live event subscriber; when a window retires
    /// more events than this, the oldest are dropped and counted in
    /// [`WindowSummary::stream_dropped`].
    pub stream_capacity: usize,
    /// Cost model for the live critical path.
    pub cost: CostModel,
}

impl Default for WatchOptions {
    fn default() -> Self {
        WatchOptions {
            window_ns: 100_000_000, // 100 ms of sim-time
            stream_capacity: 1 << 16,
            cost: CostModel::Volume,
        }
    }
}

/// One window's digest of the live stream (serializable — the `--headless
/// --jsonl` schema is exactly this struct).
#[derive(Debug, Clone, Serialize)]
pub struct WindowSummary {
    /// Gapless window index, starting at 0.
    pub window: u64,
    /// Window bounds in sim-time ns (`[t0, t1)`; the final window's `t1`
    /// is the makespan).
    pub t0_ns: u64,
    pub t1_ns: u64,
    /// True for the closing summary emitted at run completion.
    pub final_window: bool,
    /// Workflow tasks whose latest attempt has completed.
    pub tasks_done: usize,
    pub tasks_total: usize,
    /// Timeline events drained from the subscriber this window.
    pub events: u64,
    /// Cumulative events dropped at the subscriber's ring (stream
    /// overflow, not recorder overflow).
    pub stream_dropped: u64,
    /// Blame buckets for this window, descending by busy time.
    pub blame: Vec<BlameEntry>,
    /// Current critical-path head under the live fold, when the folded
    /// graph is non-empty.
    pub head: Option<LiveHead>,
    /// Watchdog diagnoses that fired during this window.
    pub diagnoses: Vec<Diagnosis>,
    /// Fault counters so far (cumulative).
    pub failed_attempts: u32,
    pub crashes: u32,
    /// Bytes moved so far (cumulative).
    pub moved_bytes: u64,
    /// Bytes of failed attempts' traffic so far (cumulative) — work that
    /// did not survive, corruption-quarantined bytes included.
    pub wasted_bytes: u64,
    /// Bytes moved by lineage-recovery re-runs so far (cumulative).
    pub recovery_bytes: u64,
    /// File versions quarantined by integrity recovery so far (cumulative).
    pub quarantined_files: u32,
}

/// Per-run state of the window loop.
struct WindowCtx {
    stream: EventStream,
    blame: Blame,
    live: LiveDfl,
    track_names: Vec<String>,
    next_window: u64,
    idx: u64,
    diag_seen: usize,
}

impl WindowCtx {
    fn subject(&self, track: u32) -> String {
        self.track_names
            .get(track as usize)
            .cloned()
            .unwrap_or_else(|| format!("track:{track}"))
    }
}

/// Runs `spec` under `cfg`, invoking `on_window` with a [`WindowSummary`]
/// at every `opts.window_ns` boundary of sim-time and once more at
/// completion (see module docs). Observability is forced on (with default
/// settings) if `cfg.obs` is `None`; everything else — fault handling,
/// retries, checkpoints — behaves exactly as in [`crate::engine::run`].
pub fn run_watched(
    spec: &WorkflowSpec,
    cfg: &RunConfig,
    opts: &WatchOptions,
    on_window: impl FnMut(&WindowSummary),
) -> Result<RunResult, EngineError> {
    let copts = ControlledOptions { watch: opts.clone(), deadline_ns: None };
    match run_controlled(spec, cfg, &copts, on_window, || StepControl::Continue)? {
        ControlledOutcome::Completed(r) => Ok(*r),
        ControlledOutcome::Preempted { .. } => {
            Err(EngineError::Internal("uncontrolled watch can never preempt"))
        }
    }
}

/// What the controller wants at a pause point of a controlled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepControl {
    /// Keep running to the next pause point.
    Continue,
    /// Stop now: park the state in a checkpoint and return
    /// [`ControlledOutcome::Preempted`].
    Preempt,
}

/// Why a controlled run was preempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PreemptCause {
    /// The sim-time deadline in [`ControlledOptions::deadline_ns`] was
    /// reached.
    Deadline,
    /// The control callback asked for it (cancellation, drain, …).
    Control,
}

/// Tuning for [`run_controlled`] / [`resume_controlled`].
#[derive(Debug, Clone)]
pub struct ControlledOptions {
    pub watch: WatchOptions,
    /// Absolute sim-time deadline (ns). When the clock reaches it, the run
    /// is checkpointed and preempted with [`PreemptCause::Deadline`]
    /// instead of being killed — no completed attempt is lost.
    pub deadline_ns: Option<u64>,
}

/// How a controlled run ended.
#[derive(Debug)]
pub enum ControlledOutcome {
    /// Ran to completion; identical to what [`run_watched`] returns.
    Completed(Box<RunResult>),
    /// Stopped early at a quiescent pause point. When the run has a
    /// checkpoint policy, the full paused state (attempt ledger included)
    /// was parked in manifest `parked_seq` and [`resume_controlled`] can
    /// continue it; without one, the work is abandoned.
    Preempted {
        cause: PreemptCause,
        /// Sim time at preemption.
        sim_time_ns: u64,
        tasks_done: usize,
        tasks_total: usize,
        /// Sequence of the manifest holding the parked state, if any.
        parked_seq: Option<u64>,
    },
}

/// [`run_watched`] plus preemption: `control` is polled at every pause
/// point (window edges and checkpoint deadlines) and may stop the run;
/// `opts.deadline_ns` preempts it when the sim clock reaches the deadline.
/// Preemption goes through the checkpoint path — the state is parked in a
/// manifest, not discarded — which is how the serve daemon implements
/// cancellation, per-job deadlines, and graceful drain.
pub fn run_controlled(
    spec: &WorkflowSpec,
    cfg: &RunConfig,
    opts: &ControlledOptions,
    on_window: impl FnMut(&WindowSummary),
    control: impl FnMut() -> StepControl,
) -> Result<ControlledOutcome, EngineError> {
    if opts.watch.window_ns == 0 {
        return Err(EngineError::InvalidSpec("watch window width must be positive".into()));
    }
    validate_run(spec, cfg)?;
    let mut cfg = cfg.clone();
    if cfg.obs.is_none() {
        cfg.obs = Some(ObsConfig::default());
    }
    let ctx = EngineCtx::new(spec, &cfg);
    let (mut sim, mut st) = init_run(&ctx);
    if cfg.checkpoint.is_some() {
        take_checkpoint(&mut sim, &ctx, &mut st)?;
    }
    drive_controlled(sim, &ctx, st, opts, on_window, control)
}

/// Resumes the highest-sequence *readable* manifest in the configured
/// checkpoint directory and continues it under the controlled loop —
/// the serve daemon's kill-9 recovery path. Torn manifests are skipped
/// with typed warnings exactly as in
/// [`crate::engine::resume_latest_with_warnings`]; windows restart aligned
/// to the restored sim clock, so summaries emitted after resume carry the
/// window indices an uninterrupted run would have used.
pub fn resume_controlled(
    spec: &WorkflowSpec,
    cfg: &RunConfig,
    opts: &ControlledOptions,
    on_window: impl FnMut(&WindowSummary),
    control: impl FnMut() -> StepControl,
) -> Result<(ControlledOutcome, Vec<TornManifest>), EngineError> {
    if opts.watch.window_ns == 0 {
        return Err(EngineError::InvalidSpec("watch window width must be positive".into()));
    }
    let mut cfg = cfg.clone();
    if cfg.obs.is_none() {
        cfg.obs = Some(ObsConfig::default());
    }
    let dir = cfg.checkpoint.as_ref().map(|c| c.dir.clone());
    let (manifest, torn) =
        load_latest_tolerant(&dir.ok_or(CheckpointError::NoCheckpointConfig)?)?;
    let (sim, st) = restore_for_resume(spec, &cfg, manifest)?;
    let ctx = EngineCtx::new(spec, &cfg);
    let outcome = drive_controlled(sim, &ctx, st, opts, on_window, control)?;
    Ok((outcome, torn))
}

/// The windowed incident loop shared by fresh and resumed controlled runs.
fn drive_controlled(
    mut sim: Simulation,
    ctx: &EngineCtx,
    mut st: EngineState,
    opts: &ControlledOptions,
    mut on_window: impl FnMut(&WindowSummary),
    mut control: impl FnMut() -> StepControl,
) -> Result<ControlledOutcome, EngineError> {
    let wopts = &opts.watch;
    let stream = sim
        .subscribe(wopts.stream_capacity)
        .ok_or(EngineError::Internal("observability forced on, but no recorder attached"))?;
    let track_names: Vec<String> = sim
        .obs()
        .map(|o| o.rec.tracks().iter().map(|t| t.name.clone()).collect())
        .unwrap_or_default();
    // Align the window cursor to the (possibly restored) sim clock so a
    // resumed run picks up at the window an uninterrupted run would be in.
    let start_idx = sim.time().ns() / wopts.window_ns;
    let mut w = WindowCtx {
        stream,
        blame: Blame::new(),
        live: LiveDfl::new(wopts.cost),
        track_names,
        next_window: (start_idx + 1).saturating_mul(wopts.window_ns),
        idx: start_idx,
        diag_seen: sim.diagnoses().len(),
    };

    // Parks the paused state in a manifest (when checkpointing is on) and
    // reports the preemption. `fresh_seq` is the sequence of a checkpoint
    // taken at this very pause, which already holds the parked state.
    let park = |sim: &mut Simulation,
                st: &mut EngineState,
                cause: PreemptCause,
                fresh_seq: Option<u64>|
     -> Result<ControlledOutcome, EngineError> {
        let parked_seq = match fresh_seq {
            Some(seq) => Some(seq),
            None if ctx.cfg.checkpoint.is_some() => {
                let seq = st.ckpt_seq;
                take_checkpoint(sim, ctx, st)?;
                Some(seq)
            }
            None => None,
        };
        let tasks_done = (0..ctx.spec.tasks.len())
            .filter(|&ti| sim.job_done(st.cur_job_of_task[ti]))
            .count();
        Ok(ControlledOutcome::Preempted {
            cause,
            sim_time_ns: sim.time().ns(),
            tasks_done,
            tasks_total: ctx.spec.tasks.len(),
            parked_seq,
        })
    };

    // The engine's incident loop, with window boundaries and the job
    // deadline folded into the pause schedule. `set_pause_at` is one-shot,
    // so each iteration re-arms it with the nearest of the next checkpoint
    // deadline, the next window edge, and the deadline; which one fired is
    // disambiguated by the clock.
    let ckpt = ctx.cfg.checkpoint.as_ref();
    if ckpt.is_some_and(|c| c.every_stages.is_some()) {
        sim.set_pause_on_job_complete(true);
    }
    loop {
        // A restored run may already sit past its deadline; preempt before
        // dispatching anything further.
        if opts.deadline_ns.is_some_and(|d| sim.time().ns() >= d) {
            return park(&mut sim, &mut st, PreemptCause::Deadline, None);
        }
        let mut deadline = w.next_window;
        if ckpt.is_some_and(|c| c.every_sim_ns.is_some()) {
            if let Some(next) = st.next_ckpt_ns {
                deadline = deadline.min(next);
            }
        }
        if let Some(d) = opts.deadline_ns {
            deadline = deadline.min(d);
        }
        sim.set_pause_at(Some(deadline));
        match sim.run_to_incident()? {
            RunOutcome::Completed => break,
            RunOutcome::Paused => {
                let mut fresh_seq = None;
                if checkpoint_due(&sim, ctx, &st) {
                    fresh_seq = Some(st.ckpt_seq);
                    take_checkpoint(&mut sim, ctx, &mut st)?;
                }
                while sim.time().ns() >= w.next_window {
                    let summary = close_window(&mut w, &sim, ctx, &st, wopts, false);
                    on_window(&summary);
                }
                if opts.deadline_ns.is_some_and(|d| sim.time().ns() >= d) {
                    return park(&mut sim, &mut st, PreemptCause::Deadline, fresh_seq);
                }
                if control() == StepControl::Preempt {
                    return park(&mut sim, &mut st, PreemptCause::Control, fresh_seq);
                }
            }
            RunOutcome::Failures(failures) => {
                handle_failures(&mut sim, ctx, &mut st, failures)?;
                if ckpt.is_some_and(|c| c.on_incident) && !sim.has_pending_failures() {
                    take_checkpoint(&mut sim, ctx, &mut st)?;
                }
            }
        }
    }

    // Closing summary over the run's tail; folds the complete measurement
    // set so the live critical path matches the batch analysis exactly.
    let summary = close_window(&mut w, &sim, ctx, &st, wopts, true);
    on_window(&summary);

    Ok(ControlledOutcome::Completed(Box::new(finalize(sim, ctx, &st))))
}

/// Drains the stream, folds fresh measurements, and builds the summary for
/// the window ending at `w.next_window` (or at the clock, for the final
/// window). Advances the window cursor.
fn close_window(
    w: &mut WindowCtx,
    sim: &Simulation,
    ctx: &EngineCtx,
    st: &EngineState,
    opts: &WatchOptions,
    final_window: bool,
) -> WindowSummary {
    let t0 = w.idx * opts.window_ns;
    let t1 = if final_window { sim.time().ns() } else { w.next_window };

    let drained = w.stream.drain();
    let events = drained.len() as u64;
    for ev in &drained {
        if let TimelineEvent::Span(s) = ev {
            let subject = w.subject(s.track);
            w.blame.observe(span_kind_label(s.kind), &subject, s.start_ns, s.end_ns);
        }
    }

    // Fold measurements: completed tasks only mid-run (the monitor keeps
    // `end_ns == start_ns` until a task finishes), everything on the final
    // window so the fold covers the exact batch input.
    let set = sim.measurements().unwrap_or_default();
    for f in &set.files {
        w.live.fold_file(f);
    }
    for t in &set.tasks {
        if final_window || t.end_ns > t.start_ns {
            let recs: Vec<_> = set.records.iter().filter(|r| r.task == t.task).cloned().collect();
            w.live.fold_task(t, &recs);
        }
    }

    let all_diag = sim.diagnoses();
    let diagnoses = all_diag[w.diag_seen.min(all_diag.len())..].to_vec();
    w.diag_seen = all_diag.len();

    let tasks_done = (0..ctx.spec.tasks.len())
        .filter(|&ti| sim.job_done(st.cur_job_of_task[ti]))
        .count();
    let fr = sim.failure_report();

    let summary = WindowSummary {
        window: w.idx,
        t0_ns: t0,
        t1_ns: t1,
        final_window,
        tasks_done,
        tasks_total: ctx.spec.tasks.len(),
        events,
        stream_dropped: w.stream.dropped(),
        blame: w.blame.take_window(),
        head: w.live.head(),
        diagnoses,
        failed_attempts: fr.failed_attempts,
        crashes: fr.crashes,
        moved_bytes: fr.total_bytes,
        wasted_bytes: fr.wasted_bytes,
        recovery_bytes: fr.recovery_bytes,
        quarantined_files: fr.quarantined_files,
    };
    w.idx += 1;
    w.next_window = w.next_window.saturating_add(opts.window_ns);
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::genomes::{self, GenomesConfig};
    use dfl_core::analysis::critical_path;
    use dfl_core::DflGraph;

    fn spec() -> WorkflowSpec {
        genomes::generate(&GenomesConfig::tiny())
    }

    fn ckpt_cfg(tag: &str) -> (RunConfig, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("dfl-watch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = RunConfig::default_gpu(2);
        cfg.checkpoint =
            Some(crate::checkpoint::CheckpointConfig::to_dir(&dir).every_sim_ns(30_000_000));
        (cfg, dir)
    }

    #[test]
    fn deadline_preempts_then_resume_completes_identically() {
        let s = spec();
        let (cfg, dir) = ckpt_cfg("deadline");
        let opts = ControlledOptions { watch: WatchOptions::default(), deadline_ns: None };
        let golden = match run_controlled(&s, &cfg, &opts, |_| {}, || StepControl::Continue)
            .unwrap()
        {
            ControlledOutcome::Completed(r) => r,
            other => panic!("golden run preempted: {other:?}"),
        };

        // Same run with a mid-run sim-time deadline: preempted, attempt
        // ledger parked in a manifest.
        let _ = std::fs::remove_dir_all(&dir);
        let deadline = (golden.makespan_s * 1e9 / 2.0) as u64;
        let dopts =
            ControlledOptions { watch: WatchOptions::default(), deadline_ns: Some(deadline) };
        let (cause, parked) =
            match run_controlled(&s, &cfg, &dopts, |_| {}, || StepControl::Continue).unwrap() {
                ControlledOutcome::Preempted { cause, sim_time_ns, parked_seq, .. } => {
                    assert!(sim_time_ns >= deadline, "preempted at {sim_time_ns}");
                    (cause, parked_seq)
                }
                ControlledOutcome::Completed(_) => panic!("deadline did not preempt"),
            };
        assert_eq!(cause, PreemptCause::Deadline);
        let parked = parked.expect("checkpoint policy parks the state");
        let m = crate::checkpoint::load_latest(&dir).unwrap();
        assert_eq!(m.seq, parked);
        assert!(!m.ledger.is_empty(), "attempt ledger preserved across preemption");

        // Resuming the parked state runs the job to the same answer.
        let (out, torn) =
            resume_controlled(&s, &cfg, &opts, |_| {}, || StepControl::Continue).unwrap();
        assert!(torn.is_empty());
        match out {
            ControlledOutcome::Completed(r) => {
                assert_eq!(golden.makespan_s, r.makespan_s);
                assert_eq!(golden.events_dispatched, r.events_dispatched);
                let pairs = |r: &RunResult| -> Vec<(String, u64, bool)> {
                    r.reports.iter().map(|j| (j.name.clone(), j.end_ns, j.failed)).collect()
                };
                assert_eq!(pairs(&golden), pairs(&r));
            }
            other => panic!("resume preempted: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn control_preempt_parks_and_windows_align_after_resume() {
        let s = spec();
        let (cfg, dir) = ckpt_cfg("cancel");
        let wopts = WatchOptions { window_ns: 20_000_000, ..WatchOptions::default() };
        let opts = ControlledOptions { watch: wopts, deadline_ns: None };

        // Preempt via the control callback after the second window closes.
        let windows = std::cell::Cell::new(0u64);
        let mut last_idx = None;
        let out = run_controlled(
            &s,
            &cfg,
            &opts,
            |w| {
                windows.set(windows.get() + 1);
                last_idx = Some(w.window);
            },
            || if windows.get() >= 2 { StepControl::Preempt } else { StepControl::Continue },
        )
        .unwrap();
        let preempt_t = match out {
            ControlledOutcome::Preempted { cause, sim_time_ns, parked_seq, .. } => {
                assert_eq!(cause, PreemptCause::Control);
                assert!(parked_seq.is_some());
                sim_time_ns
            }
            ControlledOutcome::Completed(_) => panic!("control preempt ignored"),
        };

        // Resume: the first window index seen continues the pre-preempt
        // numbering instead of restarting at zero.
        let pre_idx = last_idx.unwrap();
        let mut first_resumed = None;
        let (out, _) = resume_controlled(
            &s,
            &cfg,
            &opts,
            |w| {
                if first_resumed.is_none() {
                    first_resumed = Some(w.window);
                }
            },
            || StepControl::Continue,
        )
        .unwrap();
        assert!(matches!(out, ControlledOutcome::Completed(_)));
        let first = first_resumed.expect("resumed run emits windows");
        assert!(
            first > pre_idx,
            "windows continue past the preempt point (pre {pre_idx}, resumed {first}, t={preempt_t})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watched_run_matches_plain_run() {
        let s = spec();
        let cfg = RunConfig::default_gpu(2);
        let plain = run(&s, &cfg).unwrap();
        let mut summaries = Vec::new();
        let watched =
            run_watched(&s, &cfg, &WatchOptions::default(), |w| summaries.push(w.clone()))
                .unwrap();
        assert_eq!(plain.makespan_s, watched.makespan_s);
        assert_eq!(plain.events_dispatched, watched.events_dispatched);
        assert!(!summaries.is_empty());
        let last = summaries.last().unwrap();
        assert!(last.final_window);
        assert_eq!(last.tasks_done, last.tasks_total);
    }

    #[test]
    fn windows_are_gapless_and_ordered() {
        let s = spec();
        let mut summaries = Vec::new();
        let opts = WatchOptions { window_ns: 50_000_000, ..WatchOptions::default() };
        run_watched(&s, &RunConfig::default_gpu(2), &opts, |w| summaries.push(w.clone()))
            .unwrap();
        for (i, w) in summaries.iter().enumerate() {
            assert_eq!(w.window, i as u64);
            assert_eq!(w.t0_ns, i as u64 * opts.window_ns);
            assert!(w.t1_ns >= w.t0_ns);
        }
        assert_eq!(summaries.iter().filter(|w| w.final_window).count(), 1);
    }

    #[test]
    fn final_window_head_is_bit_identical_to_batch() {
        let s = spec();
        let mut last_head = None;
        let result = run_watched(
            &s,
            &RunConfig::default_gpu(2),
            &WatchOptions::default(),
            |w| last_head = w.head.clone(),
        )
        .unwrap();
        let g = DflGraph::from_measurements(&result.measurements);
        let cp = critical_path(&g, &CostModel::Volume);
        let head = last_head.expect("non-empty run");
        assert_eq!(head.total_cost.to_bits(), cp.total_cost.to_bits());
        assert_eq!(head.path_len, cp.vertices.len());
    }

    #[test]
    fn blame_covers_run_activity() {
        let s = spec();
        let mut total_blame = 0u64;
        run_watched(&s, &RunConfig::default_gpu(2), &WatchOptions::default(), |w| {
            total_blame += w.blame.iter().map(|b| b.busy_ns).sum::<u64>();
        })
        .unwrap();
        assert!(total_blame > 0, "a real run retires spans");
    }
}
