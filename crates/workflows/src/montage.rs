//! Montage (§6.1; Figs. 2d, 4d): compute-intensive astronomical image
//! mosaicking.
//!
//! Many small input images are re-projected through a common frame
//! (`mProject`), overlaps are fitted (`mDiffFit` / `mConcatFit`),
//! backgrounds corrected (`mBackground`), and everything is assembled into
//! one mosaic (`mAdd`). The computational component yields low effective
//! data rates and low I/O operation counts — the DFL signature the paper
//! contrasts against the data-intensive workflows.

use serde::{Deserialize, Serialize};

use crate::spec::{FileProduce, FileUse, TaskSpec, WorkflowSpec};

const MB: u64 = 1 << 20;

/// Generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MontageConfig {
    /// Number of input images. Paper's instances use dozens–hundreds.
    pub images: u32,
    /// Input image size.
    pub image_bytes: u64,
    /// Re-projected image size.
    pub projected_bytes: u64,
    /// Overlap pairs analyzed per image (neighbors).
    pub overlaps_per_image: u32,
    /// Compute per mProject task (the dominant cost), ms.
    pub project_compute_ms: u64,
    pub diff_compute_ms: u64,
    pub background_compute_ms: u64,
    pub add_compute_ms: u64,
}

impl Default for MontageConfig {
    fn default() -> Self {
        MontageConfig {
            images: 50,
            image_bytes: 4 * MB,
            projected_bytes: 8 * MB,
            overlaps_per_image: 2,
            project_compute_ms: 20_000,
            diff_compute_ms: 3_000,
            background_compute_ms: 4_000,
            add_compute_ms: 30_000,
        }
    }
}

impl MontageConfig {
    pub fn tiny() -> Self {
        MontageConfig {
            images: 6,
            image_bytes: MB,
            projected_bytes: 2 * MB,
            overlaps_per_image: 1,
            project_compute_ms: 50,
            diff_compute_ms: 10,
            background_compute_ms: 10,
            add_compute_ms: 50,
        }
    }
}

/// Generates the workflow.
pub fn generate(cfg: &MontageConfig) -> WorkflowSpec {
    let mut w = WorkflowSpec::new("montage");
    for i in 0..cfg.images {
        w.input(&format!("raw/img-{i:03}.fits"), cfg.image_bytes);
    }
    w.input("region.hdr", MB / 4);

    // Stage 1: mProject, one per image (compute heavy, small I/O).
    for i in 0..cfg.images {
        w.task(
            TaskSpec::new(&format!("mProject-{i}"), "mProject", 1)
                .read(FileUse::whole(&format!("raw/img-{i:03}.fits")).ops(2))
                .read(FileUse::whole("region.hdr").ops(1))
                .write(FileProduce::new(&format!("proj/img-{i:03}.fits"), cfg.projected_bytes))
                .compute_ms(cfg.project_compute_ms),
        );
    }

    // Stage 2: mDiffFit per overlapping pair of adjacent images.
    let mut fit_files = Vec::new();
    for i in 0..cfg.images {
        for k in 1..=cfg.overlaps_per_image {
            let j = (i + k) % cfg.images;
            if i >= j {
                continue;
            }
            let fit = format!("diff/fit-{i:03}-{j:03}.txt");
            w.task(
                TaskSpec::new(&format!("mDiffFit-{i}-{j}"), "mDiffFit", 2)
                    .read(FileUse::whole(&format!("proj/img-{i:03}.fits")).ops(2))
                    .read(FileUse::whole(&format!("proj/img-{j:03}.fits")).ops(2))
                    .write(FileProduce::new(&fit, MB / 10))
                    .compute_ms(cfg.diff_compute_ms),
            );
            fit_files.push(fit);
        }
    }

    // Stage 3: mConcatFit/mBgModel — one aggregator over all fit files.
    let mut concat = TaskSpec::new("mConcatFit-0", "mConcatFit", 3)
        .write(FileProduce::new("corrections.tbl", MB / 2))
        .compute_ms(cfg.diff_compute_ms);
    for f in &fit_files {
        concat = concat.read(FileUse::whole(f).ops(1));
    }
    w.task(concat);

    // Stage 4: mBackground per image, consuming the shared corrections.
    for i in 0..cfg.images {
        w.task(
            TaskSpec::new(&format!("mBackground-{i}"), "mBackground", 4)
                .read(FileUse::whole(&format!("proj/img-{i:03}.fits")).ops(2))
                .read(FileUse::whole("corrections.tbl").ops(1))
                .write(FileProduce::new(&format!("corr/img-{i:03}.fits"), cfg.projected_bytes))
                .compute_ms(cfg.background_compute_ms),
        );
    }

    // Stage 5: mAdd — final aggregator building the mosaic.
    let mosaic_bytes = u64::from(cfg.images) * cfg.projected_bytes / 2;
    let mut add = TaskSpec::new("mAdd-0", "mAdd", 5)
        .write(FileProduce::new("mosaic.fits", mosaic_bytes).ops(16))
        .compute_ms(cfg.add_compute_ms);
    for i in 0..cfg.images {
        add = add.read(FileUse::whole(&format!("corr/img-{i:03}.fits")).ops(2));
    }
    w.task(add);

    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, RunConfig};

    #[test]
    fn structure_counts() {
        let cfg = MontageConfig::default();
        let w = generate(&cfg);
        w.validate().unwrap();
        assert_eq!(w.tasks.iter().filter(|t| t.logical == "mProject").count(), 50);
        assert_eq!(w.tasks.iter().filter(|t| t.logical == "mBackground").count(), 50);
        assert_eq!(w.tasks.iter().filter(|t| t.logical == "mAdd").count(), 1);
        // Many small intermediate files.
        assert!(w.tasks.iter().flat_map(|t| &t.writes).count() > 100);
    }

    #[test]
    fn compute_dominates_io_time() {
        // The paper's Montage signature: low effective data rates because
        // compute dominates.
        let w = generate(&MontageConfig::tiny());
        let r = run(&w, &RunConfig::default_gpu(2)).unwrap();
        use dfl_iosim::breakdown::FlowTag;
        let b = &r.total_breakdown;
        assert!(b.get(FlowTag::Compute) > b.data_access(), "compute-bound");
    }

    #[test]
    fn graph_has_two_aggregators() {
        let w = generate(&MontageConfig::tiny());
        let r = run(&w, &RunConfig::default_gpu(2)).unwrap();
        let g = dfl_core::DflGraph::from_measurements(&r.measurements);
        let concat = g.find_vertex("mConcatFit-0").unwrap();
        let add = g.find_vertex("mAdd-0").unwrap();
        assert!(g.in_degree(concat) >= 3, "fan-in aggregator");
        assert!(g.in_degree(add) >= 6);
    }
}
