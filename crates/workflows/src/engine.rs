//! The workflow engine: binds a [`WorkflowSpec`] to a simulated cluster
//! under placement and staging policies, runs it, and returns stage timings
//! plus DFL measurements.
//!
//! This is the coordination layer whose decisions the paper's opportunity
//! analysis informs: which node each task runs on ([`Placement`]), which
//! tier intermediate files land on, and whether inputs are staged to
//! node-local storage first ([`Staging`]).

use std::collections::{BTreeMap, HashMap};

use dfl_iosim::breakdown::{Breakdown, FlowTag};
use dfl_iosim::cache::CacheConfig;
use dfl_iosim::cluster::ClusterSpec;
use dfl_iosim::sim::{Action, CacheOrigins, JobId, JobReport, JobSpec, SimConfig, Simulation};
use dfl_iosim::storage::{TierKind, TierRef};
use dfl_iosim::SimError;
use dfl_trace::MeasurementSet;

use crate::spec::WorkflowSpec;

/// Task-to-node assignment policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Task index modulo node count.
    RoundRobin,
    /// Tasks with the same group (caterpillar) share a node
    /// (`group % nodes`); ungrouped tasks fall back to round-robin.
    ByGroup,
    /// Each task goes to the node with the fewest tasks assigned so far
    /// (ties to the lowest node id) — a simple load balancer that ignores
    /// data locality, useful as a baseline against `ByGroup`.
    LeastLoaded,
    /// Explicit node per task (same length as `tasks`).
    Explicit(Vec<u32>),
}

/// File placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Staging {
    /// Shared tier for inputs and non-local intermediates.
    pub shared: TierKind,
    /// Write task outputs to this node-local tier instead of the shared one.
    pub intermediates_local: Option<TierKind>,
    /// Add a stage-0 job per node copying that node's input files to this
    /// node-local tier before any consumer runs.
    pub stage_inputs: Option<TierKind>,
    /// Force staging copies to come from the original placement (a plain
    /// FTP-from-the-source baseline) instead of the closest replica.
    pub stage_from_origin: bool,
}

impl Staging {
    pub fn all_shared(shared: TierKind) -> Self {
        Staging {
            shared,
            intermediates_local: None,
            stage_inputs: None,
            stage_from_origin: false,
        }
    }

    pub fn local_intermediates(shared: TierKind, local: TierKind) -> Self {
        Staging { intermediates_local: Some(local), ..Staging::all_shared(shared) }
    }

    pub fn staged(shared: TierKind, local: TierKind) -> Self {
        Staging {
            intermediates_local: Some(local),
            stage_inputs: Some(local),
            ..Staging::all_shared(shared)
        }
    }
}

/// One complete run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub cluster: ClusterSpec,
    pub placement: Placement,
    pub staging: Staging,
    pub cache: Option<CacheConfig>,
    pub cache_origins: CacheOrigins,
    /// Buffered (asynchronous) writes — the Table 1 "write buffering"
    /// remediation.
    pub write_buffering: bool,
    pub monitor: dfl_trace::MonitorConfig,
}

impl RunConfig {
    /// GPU cluster (Table 2) with BeeGFS shared storage, round-robin
    /// placement, no staging or caching.
    pub fn default_gpu(nodes: usize) -> Self {
        RunConfig {
            cluster: ClusterSpec::gpu_cluster(nodes),
            placement: Placement::RoundRobin,
            staging: Staging::all_shared(TierKind::Beegfs),
            cache: None,
            cache_origins: CacheOrigins::default(),
            write_buffering: false,
            monitor: dfl_trace::MonitorConfig::default(),
        }
    }

    /// CPU cluster with NFS shared storage.
    pub fn default_cpu(nodes: usize) -> Self {
        RunConfig {
            cluster: ClusterSpec::cpu_cluster(nodes),
            placement: Placement::RoundRobin,
            staging: Staging::all_shared(TierKind::Nfs),
            cache: None,
            cache_origins: CacheOrigins::default(),
            write_buffering: false,
            monitor: dfl_trace::MonitorConfig::default(),
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub makespan_s: f64,
    /// Per-stage `(first start, last end)` in seconds.
    pub stage_spans: BTreeMap<u32, (f64, f64)>,
    pub reports: Vec<JobReport>,
    pub total_breakdown: Breakdown,
    pub measurements: MeasurementSet,
}

impl RunResult {
    /// Duration of one stage, seconds.
    pub fn stage_time(&self, stage: u32) -> f64 {
        self.stage_spans.get(&stage).map_or(0.0, |(s, e)| e - s)
    }

    /// A printable per-stage summary.
    pub fn stage_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (&stage, &(start, end)) in &self.stage_spans {
            let _ = writeln!(s, "stage {stage}: {:.2}s (t={start:.2}..{end:.2})", end - start);
        }
        let _ = writeln!(s, "makespan: {:.2}s", self.makespan_s);
        s
    }
}

/// Computes each task's node under the placement policy.
fn place_tasks(placement: &Placement, tasks: &[crate::spec::TaskSpec], nodes: u32) -> Vec<u32> {
    let mut load = vec![0u32; nodes as usize];
    tasks
        .iter()
        .enumerate()
        .map(|(idx, t)| {
            let node = match placement {
                Placement::RoundRobin => (idx as u32) % nodes,
                Placement::ByGroup => match t.group {
                    Some(g) => g % nodes,
                    None => (idx as u32) % nodes,
                },
                Placement::LeastLoaded => {
                    let (node, _) = load
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, &l)| (l, i))
                        .expect("at least one node");
                    node as u32
                }
                Placement::Explicit(v) => v[idx],
            };
            load[node as usize] += 1;
            node
        })
        .collect()
}

/// Runs `spec` under `cfg`. Panics if the spec fails validation (programmer
/// error in a generator); returns simulator errors otherwise.
pub fn run(spec: &WorkflowSpec, cfg: &RunConfig) -> Result<RunResult, SimError> {
    if let Err(e) = spec.validate() {
        panic!("invalid workflow spec: {e}");
    }
    let nodes = cfg.cluster.node_count() as u32;
    assert!(nodes > 0);
    let shared = TierRef::shared(cfg.staging.shared);

    let mut sim = Simulation::new(
        cfg.cluster.clone(),
        SimConfig {
            monitor: Some(cfg.monitor.clone()),
            cache: cfg.cache.clone(),
            cache_origins: cfg.cache_origins,
            write_buffering: cfg.write_buffering,
        },
    );

    // Resolve file sizes: inputs plus declared outputs.
    let mut size_of: HashMap<&str, u64> = HashMap::new();
    for i in &spec.inputs {
        size_of.insert(&i.path, i.size);
        sim.fs_mut().create_external(&i.path, i.size, shared);
    }
    let mut producers: HashMap<&str, Vec<usize>> = HashMap::new();
    for (ti, t) in spec.tasks.iter().enumerate() {
        for w in &t.writes {
            *size_of.entry(&w.file).or_insert(0) += w.bytes;
            producers.entry(&w.file).or_default().push(ti);
        }
    }

    // Placement.
    let node_for: Vec<u32> = place_tasks(&cfg.placement, &spec.tasks, nodes);

    // Input staging: one stage-0 job per node copying the inputs its tasks
    // read.
    let mut stage_job_of_node: HashMap<u32, JobId> = HashMap::new();
    if let Some(kind) = cfg.staging.stage_inputs {
        assert!(cfg.cluster.has_tier(kind), "staging tier missing from cluster");
        let mut per_node: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for (ti, t) in spec.tasks.iter().enumerate() {
            for r in &t.reads {
                if spec.inputs.iter().any(|i| i.path == r.file) {
                    let v = per_node.entry(node_for[ti]).or_default();
                    if !v.contains(&r.file.as_str()) {
                        v.push(&r.file);
                    }
                }
            }
        }
        for (node, files) in per_node {
            let mut job = JobSpec::new(&format!("staging-{node}"), node).logical("staging");
            for f in files {
                job = job.action(Action::Stage {
                    file: f.to_owned(),
                    to: TierRef::node(kind, node),
                    from: cfg.staging.stage_from_origin.then_some(shared),
                    tag: FlowTag::Stage,
                });
            }
            stage_job_of_node.insert(node, sim.submit(job));
        }
    }

    // Submit tasks.
    let mut job_of_task: Vec<JobId> = Vec::with_capacity(spec.tasks.len());
    for (ti, t) in spec.tasks.iter().enumerate() {
        let node = node_for[ti];
        let mut job = JobSpec::new(&t.name, node).logical(&t.logical);

        // Dependencies: explicit, data (producers of read files), staging.
        for &a in &t.after {
            job = job.dep(job_of_task[a]);
        }
        let mut reads_staged_input = false;
        for r in &t.reads {
            if let Some(ps) = producers.get(r.file.as_str()) {
                for &p in ps {
                    assert!(p != ti, "task {} reads its own output", t.name);
                    assert!(p < ti, "producers must precede consumers in spec order");
                    job = job.dep(job_of_task[p]);
                }
            }
            if spec.inputs.iter().any(|i| i.path == r.file) {
                reads_staged_input = true;
            }
        }
        if reads_staged_input {
            if let Some(&sj) = stage_job_of_node.get(&node) {
                job = job.dep(sj);
            }
        }

        // Actions: open+read inputs, compute, write outputs, close.
        for r in &t.reads {
            job = job.action(Action::Open { file: r.file.clone(), write: false });
            let total = if r.bytes == 0 {
                size_of[r.file.as_str()].saturating_sub(r.offset)
            } else {
                r.bytes
            };
            let ops = u64::from(r.ops.max(1));
            let op_len = (total / ops).max(1);
            for _pass in 0..r.passes.max(1) {
                for k in 0..ops {
                    let off = r.offset + k * op_len;
                    let len = if k == ops - 1 { total - op_len * (ops - 1) } else { op_len };
                    if len == 0 {
                        continue;
                    }
                    job = job.action(Action::Read { file: r.file.clone(), offset: Some(off), len });
                }
            }
        }
        if t.compute_ns > 0 {
            job = job.action(Action::Compute { ns: t.compute_ns });
        }
        for w in &t.writes {
            let tier = match cfg.staging.intermediates_local {
                Some(kind) => TierRef::node(kind, node),
                None => shared,
            };
            job = job.action(Action::Open { file: w.file.clone(), write: true });
            let ops = u64::from(w.ops.max(1));
            let op_len = (w.bytes / ops).max(1);
            for k in 0..ops {
                let len = if k == ops - 1 { w.bytes - op_len * (ops - 1) } else { op_len };
                if len == 0 {
                    continue;
                }
                job = job.action(Action::Write { file: w.file.clone(), len, tier: Some(tier) });
            }
        }
        for r in &t.reads {
            job = job.action(Action::Close { file: r.file.clone() });
        }
        for w in &t.writes {
            job = job.action(Action::Close { file: w.file.clone() });
        }

        job_of_task.push(sim.submit(job));
    }

    sim.run()?;

    // Stage spans from reports (staging jobs are stage 0).
    let reports = sim.reports();
    let mut stage_spans: BTreeMap<u32, (f64, f64)> = BTreeMap::new();
    let n_stage_jobs = stage_job_of_node.len();
    for (i, r) in reports.iter().enumerate() {
        let stage = if i < n_stage_jobs {
            0
        } else {
            spec.tasks[i - n_stage_jobs].stage
        };
        let entry = stage_spans
            .entry(stage)
            .or_insert((f64::INFINITY, f64::NEG_INFINITY));
        entry.0 = entry.0.min(r.start_ns as f64 / 1e9);
        entry.1 = entry.1.max(r.end_ns as f64 / 1e9);
    }

    Ok(RunResult {
        makespan_s: sim.time().secs(),
        stage_spans,
        total_breakdown: sim.total_breakdown(),
        measurements: sim.measurements().expect("monitor attached"),
        reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FileProduce, FileUse, TaskSpec};

    fn two_stage() -> WorkflowSpec {
        let mut w = WorkflowSpec::new("t");
        w.input("in.dat", 64 << 20);
        let a = w.task(
            TaskSpec::new("gen-0", "gen", 1)
                .read(FileUse::whole("in.dat"))
                .write(FileProduce::new("mid.dat", 32 << 20))
                .compute_ms(50)
                .group(0),
        );
        w.task(
            TaskSpec::new("use-0", "use", 2)
                .read(FileUse::whole("mid.dat"))
                .compute_ms(50)
                .after(a)
                .group(0),
        );
        w
    }

    #[test]
    fn runs_and_reports_stages() {
        let r = run(&two_stage(), &RunConfig::default_gpu(2)).unwrap();
        assert!(r.makespan_s > 0.1);
        assert!(r.stage_time(1) > 0.0);
        assert!(r.stage_time(2) > 0.0);
        let (s1_end, s2_start) = (r.stage_spans[&1].1, r.stage_spans[&2].0);
        assert!(s2_start >= s1_end, "data dependency enforces stage order");
    }

    #[test]
    fn measurements_build_a_graph() {
        let r = run(&two_stage(), &RunConfig::default_gpu(1)).unwrap();
        let g = dfl_core::DflGraph::from_measurements(&r.measurements);
        // gen, use tasks + in.dat, mid.dat.
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3, "in→gen, gen→mid, mid→use");
    }

    #[test]
    fn data_deps_inferred_without_explicit_after() {
        let mut w = WorkflowSpec::new("t");
        w.input("in.dat", 1 << 20);
        w.task(
            TaskSpec::new("gen-0", "gen", 1)
                .read(FileUse::whole("in.dat"))
                .write(FileProduce::new("mid.dat", 1 << 20)),
        );
        // No .after(): dependency comes from reading mid.dat.
        w.task(TaskSpec::new("use-0", "use", 2).read(FileUse::whole("mid.dat")));
        let r = run(&w, &RunConfig::default_gpu(2)).unwrap();
        assert!(r.reports[1].start_ns >= r.reports[0].end_ns);
    }

    #[test]
    fn staging_adds_stage0_and_speeds_reads() {
        let mut cfg = RunConfig::default_gpu(1);
        let base = run(&two_stage(), &cfg).unwrap();

        cfg.staging.stage_inputs = Some(TierKind::Ramdisk);
        cfg.staging.intermediates_local = Some(TierKind::Ramdisk);
        let staged = run(&two_stage(), &cfg).unwrap();
        assert!(staged.stage_spans.contains_key(&0), "stage-0 staging job present");
        // All I/O local after staging: shared reads only during staging.
        let shared_reads: u64 = staged
            .reports
            .iter()
            .skip(1)
            .map(|r| r.breakdown.get(FlowTag::SharedRead))
            .sum();
        assert_eq!(shared_reads, 0);
        assert!(staged.makespan_s <= base.makespan_s * 1.05);
    }

    #[test]
    fn by_group_placement_colocates() {
        let mut w = WorkflowSpec::new("t");
        w.input("a", 1 << 20);
        for g in 0..4u32 {
            w.task(
                TaskSpec::new(&format!("t-{g}"), "t", 1)
                    .read(FileUse::whole("a"))
                    .group(g % 2),
            );
        }
        let mut cfg = RunConfig::default_gpu(2);
        cfg.placement = Placement::ByGroup;
        let r = run(&w, &cfg).unwrap();
        assert_eq!(r.reports[0].node, r.reports[2].node, "same group, same node");
        assert_ne!(r.reports[0].node, r.reports[1].node);
    }

    #[test]
    #[should_panic(expected = "invalid workflow spec")]
    fn invalid_spec_panics() {
        let mut w = WorkflowSpec::new("bad");
        w.task(TaskSpec::new("t-0", "t", 1).read(FileUse::whole("ghost")));
        let _ = run(&w, &RunConfig::default_gpu(1));
    }

    #[test]
    fn multi_pass_reads_show_reuse_in_graph() {
        let mut w = WorkflowSpec::new("t");
        w.input("data", 16 << 20);
        w.task(
            TaskSpec::new("train-0", "train", 1).read(FileUse::whole("data").passes(4)),
        );
        let r = run(&w, &RunConfig::default_gpu(1)).unwrap();
        let g = dfl_core::DflGraph::from_measurements(&r.measurements);
        let d = g.find_vertex("data").unwrap();
        let e = g.edge(g.out_edges(d)[0]);
        assert!(e.props.reuse_factor > 3.5, "4 passes ⇒ reuse ≈ 4: {}", e.props.reuse_factor);
        assert_eq!(e.props.volume, 64 << 20);
    }
}

#[cfg(test)]
mod placement_tests {
    use super::*;
    use crate::spec::{FileProduce, FileUse, TaskSpec};

    fn n_task_spec(n: usize) -> WorkflowSpec {
        let mut w = WorkflowSpec::new("p");
        w.input("in", 1 << 20);
        for i in 0..n {
            w.task(
                TaskSpec::new(&format!("t-{i}"), "t", 1)
                    .read(FileUse::whole("in"))
                    .write(FileProduce::new(&format!("o{i}"), 1024)),
            );
        }
        w
    }

    #[test]
    fn least_loaded_balances_counts() {
        let w = n_task_spec(10);
        let nodes = place_tasks(&Placement::LeastLoaded, &w.tasks, 4);
        let mut counts = [0u32; 4];
        for n in &nodes {
            counts[*n as usize] += 1;
        }
        assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
    }

    #[test]
    fn least_loaded_is_deterministic() {
        let w = n_task_spec(9);
        assert_eq!(
            place_tasks(&Placement::LeastLoaded, &w.tasks, 3),
            place_tasks(&Placement::LeastLoaded, &w.tasks, 3)
        );
    }

    #[test]
    fn explicit_placement_respected() {
        let w = n_task_spec(3);
        let explicit = vec![2u32, 0, 1];
        let nodes = place_tasks(&Placement::Explicit(explicit.clone()), &w.tasks, 3);
        assert_eq!(nodes, explicit);
    }

    #[test]
    fn least_loaded_runs_end_to_end() {
        let w = n_task_spec(8);
        let mut cfg = RunConfig::default_gpu(4);
        cfg.placement = Placement::LeastLoaded;
        let r = run(&w, &cfg).unwrap();
        let mut per_node = [0u32; 4];
        for rep in &r.reports {
            per_node[rep.node as usize] += 1;
        }
        assert_eq!(per_node, [2, 2, 2, 2]);
    }
}

/// Applies [`CoordinationAdvice`](dfl_core::analysis::CoordinationAdvice)
/// derived from a measured run to a run configuration — the automated
/// measure → analyze → remediate loop the paper sketches as future work.
///
/// Conservative mapping: co-location advice switches to group-aware
/// placement (only effective when the spec carries groups), staging advice
/// enables stage-0 input staging on the given node-local tier, locality
/// advice moves intermediates to that tier, and stall advice enables write
/// buffering. Cache advice enables the Table 4 hierarchy for remote
/// origins.
pub fn apply_advice(
    cfg: &mut RunConfig,
    advice: &dfl_core::analysis::CoordinationAdvice,
    local_tier: TierKind,
) {
    assert!(local_tier.is_node_local(), "advice staging targets a node-local tier");
    if advice.colocate_consumers {
        cfg.placement = Placement::ByGroup;
    }
    if !advice.stage_inputs.is_empty() {
        cfg.staging.stage_inputs = Some(local_tier);
    }
    if advice.local_intermediates {
        cfg.staging.intermediates_local = Some(local_tier);
    }
    if advice.buffer_writes {
        cfg.write_buffering = true;
    }
    if !advice.cache_files.is_empty() && cfg.cluster.has_tier(TierKind::Wan) {
        cfg.cache = Some(dfl_iosim::cache::CacheConfig::tazer_table4());
    }
}
