//! The workflow engine: binds a [`WorkflowSpec`] to a simulated cluster
//! under placement and staging policies, runs it, and returns stage timings
//! plus DFL measurements.
//!
//! This is the coordination layer whose decisions the paper's opportunity
//! analysis informs: which node each task runs on ([`Placement`]), which
//! tier intermediate files land on, and whether inputs are staged to
//! node-local storage first ([`Staging`]).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use dfl_iosim::breakdown::{Breakdown, FlowTag};
use dfl_iosim::cache::CacheConfig;
use dfl_iosim::cluster::ClusterSpec;
use dfl_iosim::fault::{unit_hash, FailureCause, FailureReport, FaultPlan, JobFailure};
use dfl_iosim::shard::ShardPlan;
use dfl_iosim::sim::{
    Action, CacheOrigins, JobId, JobReport, JobSpec, JobState, RunOutcome, SimConfig, Simulation,
    VerifyPolicy,
};
use dfl_iosim::storage::{TierKind, TierRef};
use dfl_iosim::SimError;
use dfl_obs::{ObsConfig, Timeline};
use dfl_trace::MeasurementSet;
use serde::{Deserialize, Serialize};

use crate::checkpoint::{
    config_hash, load_latest_tolerant, write_manifest, AttemptRecord, CheckpointConfig,
    CheckpointError, CheckpointManifest, TornManifest, MANIFEST_VERSION,
};
use crate::spec::{TaskSpec, WorkflowSpec};
use crate::taint::taint_cone;

/// Everything a workflow run can fail with, as one typed error.
///
/// Invalid specs and unusable configurations used to panic inside the
/// engine; they now surface as [`EngineError::InvalidSpec`] so callers
/// (CLI, services, tests) can report them without catching unwinds.
/// Simulator and checkpoint errors pass through transparently — the
/// `Display` text of a wrapped [`SimError`] is unchanged, so substring
/// matching on e.g. chaos kills keeps working.
#[derive(Debug)]
pub enum EngineError {
    /// Simulator-level failure: retries exhausted, chaos kill, integrity
    /// violation, snapshot trouble.
    Sim(SimError),
    /// Checkpoint validation or I/O failure on resume.
    Checkpoint(CheckpointError),
    /// The spec or run configuration cannot be executed as given.
    InvalidSpec(String),
    /// An engine-internal invariant broke — a bug, not a user error.
    Internal(&'static str),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Sim(e) => write!(f, "{e}"),
            EngineError::Checkpoint(e) => write!(f, "{e}"),
            EngineError::InvalidSpec(m) => write!(f, "{m}"),
            EngineError::Internal(m) => write!(f, "engine invariant violated: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Sim(e)
    }
}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        match e {
            // Unwrap the checkpoint layer's sim passthrough so callers can
            // match simulator errors uniformly.
            CheckpointError::Sim(s) => EngineError::Sim(s),
            other => EngineError::Checkpoint(other),
        }
    }
}

/// Task-to-node assignment policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Task index modulo node count.
    RoundRobin,
    /// Tasks with the same group (caterpillar) share a node
    /// (`group % nodes`); ungrouped tasks fall back to round-robin.
    ByGroup,
    /// Each task goes to the node with the fewest tasks assigned so far
    /// (ties to the lowest node id) — a simple load balancer that ignores
    /// data locality, useful as a baseline against `ByGroup`.
    LeastLoaded,
    /// Explicit node per task (same length as `tasks`).
    Explicit(Vec<u32>),
}

/// File placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Staging {
    /// Shared tier for inputs and non-local intermediates.
    pub shared: TierKind,
    /// Write task outputs to this node-local tier instead of the shared one.
    pub intermediates_local: Option<TierKind>,
    /// Add a stage-0 job per node copying that node's input files to this
    /// node-local tier before any consumer runs.
    pub stage_inputs: Option<TierKind>,
    /// Force staging copies to come from the original placement (a plain
    /// FTP-from-the-source baseline) instead of the closest replica.
    pub stage_from_origin: bool,
}

impl Staging {
    pub fn all_shared(shared: TierKind) -> Self {
        Staging {
            shared,
            intermediates_local: None,
            stage_inputs: None,
            stage_from_origin: false,
        }
    }

    pub fn local_intermediates(shared: TierKind, local: TierKind) -> Self {
        Staging { intermediates_local: Some(local), ..Staging::all_shared(shared) }
    }

    pub fn staged(shared: TierKind, local: TierKind) -> Self {
        Staging {
            intermediates_local: Some(local),
            stage_inputs: Some(local),
            ..Staging::all_shared(shared)
        }
    }
}

/// Retry/backoff policy for failed task attempts.
///
/// An *attempt* is one execution of a task's job (the first run or any
/// retry). When an attempt fails — node crash, transient I/O error, lost
/// input — the engine first repairs lost inputs through lineage recovery
/// (see [`run`]) and then resubmits the task after an exponential-backoff
/// delay with deterministic, seeded jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per work unit (first run included). `1` disables
    /// retries: the first failure aborts the run.
    pub max_attempts: u32,
    /// Base backoff before the first retry, ns.
    pub backoff_ns: u64,
    /// Multiplier applied per additional attempt (exponential backoff).
    pub backoff_mult: f64,
    /// Jitter fraction in `[0, 1]`: the delay is scaled by a deterministic
    /// factor in `[1 - jitter, 1 + jitter]` derived from the fault-plan
    /// seed, so identical seeds give identical schedules.
    pub jitter: f64,
    /// Optional cap on total retries charged to any one workflow stage;
    /// exceeding it aborts the run with
    /// [`SimError::RetriesExhausted`].
    pub stage_budget: Option<u32>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_ns: 50_000_000, // 50 ms
            backoff_mult: 2.0,
            jitter: 0.5,
            stage_budget: None,
        }
    }
}

impl RetryPolicy {
    /// No retries: the first failed attempt aborts the run.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// Backoff before retry number `attempt` (1-based) of work unit
    /// `unit`, with seeded jitter. Pure: same inputs, same delay.
    pub fn delay_ns(&self, seed: u64, unit: u64, attempt: u32) -> u64 {
        let base = self.backoff_ns as f64
            * self.backoff_mult.powi(attempt.saturating_sub(1) as i32);
        let h = unit_hash(seed ^ 0xb0ff_0ff5, unit, u64::from(attempt));
        let factor = 1.0 + self.jitter * (2.0 * h - 1.0);
        (base * factor.max(0.0)) as u64
    }
}

/// One complete run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub cluster: ClusterSpec,
    pub placement: Placement,
    pub staging: Staging,
    pub cache: Option<CacheConfig>,
    pub cache_origins: CacheOrigins,
    /// Buffered (asynchronous) writes — the Table 1 "write buffering"
    /// remediation.
    pub write_buffering: bool,
    pub monitor: dfl_trace::MonitorConfig,
    /// Deterministic fault injection; [`FaultPlan::none`] (the default)
    /// leaves the run byte-identical to a fault-free one.
    pub faults: FaultPlan,
    /// Checksum verification policy. [`VerifyPolicy::Off`] (the default)
    /// skips all digest checks and keeps fault-free runs byte-identical to
    /// pre-integrity builds; any other policy charges simulated verification
    /// latency and turns silent corruption into detected
    /// [`FailureCause::CorruptData`] incidents the engine repairs through
    /// taint-cone recovery.
    pub verify: VerifyPolicy,
    /// How failed attempts are retried.
    pub retry: RetryPolicy,
    /// Timeline recording. `None` (the default) disables observability
    /// entirely — the run allocates no recorder and pays only a dead branch
    /// per potential emission.
    pub obs: Option<ObsConfig>,
    /// Crash-consistent checkpointing. `None` (the default) writes nothing;
    /// with a policy set, the engine writes versioned
    /// [`CheckpointManifest`]s that [`resume_from`] can continue from after
    /// a coordinator crash, byte-identical to an uninterrupted run.
    pub checkpoint: Option<CheckpointConfig>,
    /// Event-core shard count (see [`dfl_iosim::shard::ShardPlan`]). The
    /// dispatch order — and therefore every observable, checkpoint, and
    /// timeline — is byte-identical at any shard count, so this is purely a
    /// performance knob; it is canonicalized out of the checkpoint config
    /// hash, and a manifest may be resumed under a different shard count.
    pub shards: u32,
}

impl RunConfig {
    /// GPU cluster (Table 2) with BeeGFS shared storage, round-robin
    /// placement, no staging or caching.
    pub fn default_gpu(nodes: usize) -> Self {
        RunConfig {
            cluster: ClusterSpec::gpu_cluster(nodes),
            placement: Placement::RoundRobin,
            staging: Staging::all_shared(TierKind::Beegfs),
            cache: None,
            cache_origins: CacheOrigins::default(),
            write_buffering: false,
            monitor: dfl_trace::MonitorConfig::default(),
            faults: FaultPlan::none(),
            verify: VerifyPolicy::Off,
            retry: RetryPolicy::default(),
            obs: None,
            checkpoint: None,
            shards: 1,
        }
    }

    /// CPU cluster with NFS shared storage.
    pub fn default_cpu(nodes: usize) -> Self {
        RunConfig {
            cluster: ClusterSpec::cpu_cluster(nodes),
            placement: Placement::RoundRobin,
            staging: Staging::all_shared(TierKind::Nfs),
            cache: None,
            cache_origins: CacheOrigins::default(),
            write_buffering: false,
            monitor: dfl_trace::MonitorConfig::default(),
            faults: FaultPlan::none(),
            verify: VerifyPolicy::Off,
            retry: RetryPolicy::default(),
            obs: None,
            checkpoint: None,
            shards: 1,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub makespan_s: f64,
    /// Per-stage `(first start, last end)` in seconds.
    pub stage_spans: BTreeMap<u32, (f64, f64)>,
    pub reports: Vec<JobReport>,
    pub total_breakdown: Breakdown,
    pub measurements: MeasurementSet,
    /// What faults happened and what they cost. [`FailureReport::is_clean`]
    /// on a fault-free run.
    pub failure: FailureReport,
    /// Recorded timeline when [`RunConfig::obs`] was set; export with
    /// [`dfl_obs::chrome_trace`] / [`dfl_obs::jsonl`] / [`dfl_obs::ascii_summary`].
    pub timeline: Option<Timeline>,
    /// Total simulator dispatches over the run — the clock chaos plans are
    /// expressed in ([`dfl_iosim::ChaosKind::CoordinatorCrash`]), so a chaos
    /// driver can derive seeded kill points from a golden run's total.
    pub events_dispatched: u64,
    /// Watchdog diagnoses fired during the run, in firing order (empty
    /// unless [`ObsConfig::watchdogs`] was configured and a detector fired).
    pub diagnoses: Vec<dfl_obs::Diagnosis>,
}

impl RunResult {
    /// Duration of one stage, seconds.
    pub fn stage_time(&self, stage: u32) -> f64 {
        self.stage_spans.get(&stage).map_or(0.0, |(s, e)| e - s)
    }

    /// A printable per-stage summary.
    pub fn stage_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (&stage, &(start, end)) in &self.stage_spans {
            let _ = writeln!(s, "stage {stage}: {:.2}s (t={start:.2}..{end:.2})", end - start);
        }
        let _ = writeln!(s, "makespan: {:.2}s", self.makespan_s);
        s
    }
}

/// Computes each task's node under the placement policy.
fn place_tasks(placement: &Placement, tasks: &[crate::spec::TaskSpec], nodes: u32) -> Vec<u32> {
    let mut load = vec![0u32; nodes as usize];
    tasks
        .iter()
        .enumerate()
        .map(|(idx, t)| {
            let node = match placement {
                Placement::RoundRobin => (idx as u32) % nodes,
                Placement::ByGroup => match t.group {
                    Some(g) => g % nodes,
                    None => (idx as u32) % nodes,
                },
                Placement::LeastLoaded => load
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &l)| (l, i))
                    .map_or(0, |(node, _)| node as u32),
                Placement::Explicit(v) => v[idx],
            };
            load[node as usize] += 1;
            node
        })
        .collect()
}

/// What a submitted job is, engine-side: lets failure handling and stage
/// accounting work off job ids even after retries and recovery jobs are
/// appended mid-run. Public only for checkpoint transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobKind {
    /// Stage-0 input staging job for a node.
    Staging(u32),
    /// First attempt of task `ti`.
    Task(usize),
    /// Retry attempt of task `ti`.
    Retry(usize),
    /// Lineage-recovery re-run of producer task `ti`.
    Recovery(usize),
}

impl JobKind {
    fn task(self) -> Option<usize> {
        match self {
            JobKind::Task(ti) | JobKind::Retry(ti) | JobKind::Recovery(ti) => Some(ti),
            JobKind::Staging(_) => None,
        }
    }

    fn retry_of(self) -> JobKind {
        match self {
            JobKind::Task(ti) | JobKind::Retry(ti) => JobKind::Retry(ti),
            other => other,
        }
    }
}

/// Builds the action list for one attempt of `t` on `node`: open + chunked
/// reads of inputs, compute, open + chunked writes of outputs (to the
/// staging policy's tier), closes. Re-running the same list re-creates the
/// task's outputs from scratch (writes truncate), which is what makes
/// attempts idempotent and lineage recovery sound.
fn task_actions(
    t: &TaskSpec,
    node: u32,
    staging: &Staging,
    shared: TierRef,
    size_of: &HashMap<&str, u64>,
) -> Vec<Action> {
    let mut actions = Vec::new();
    for r in &t.reads {
        actions.push(Action::Open { file: r.file.clone(), write: false });
        let total = if r.bytes == 0 {
            // Whole-file read: validated specs declare every read file, so a
            // miss can only mean an unvalidated caller — treat as empty.
            size_of.get(r.file.as_str()).copied().unwrap_or(0).saturating_sub(r.offset)
        } else {
            r.bytes
        };
        let ops = u64::from(r.ops.max(1));
        let op_len = (total / ops).max(1);
        for _pass in 0..r.passes.max(1) {
            for k in 0..ops {
                let off = r.offset + k * op_len;
                let len = if k == ops - 1 { total - op_len * (ops - 1) } else { op_len };
                if len == 0 {
                    continue;
                }
                actions.push(Action::Read { file: r.file.clone(), offset: Some(off), len });
            }
        }
    }
    if t.compute_ns > 0 {
        actions.push(Action::Compute { ns: t.compute_ns });
    }
    for w in &t.writes {
        let tier = match staging.intermediates_local {
            Some(kind) => TierRef::node(kind, node),
            None => shared,
        };
        actions.push(Action::Open { file: w.file.clone(), write: true });
        let ops = u64::from(w.ops.max(1));
        let op_len = (w.bytes / ops).max(1);
        for k in 0..ops {
            let len = if k == ops - 1 { w.bytes - op_len * (ops - 1) } else { op_len };
            if len == 0 {
                continue;
            }
            actions.push(Action::Write { file: w.file.clone(), len, tier: Some(tier) });
        }
    }
    for r in &t.reads {
        actions.push(Action::Close { file: r.file.clone() });
    }
    for w in &t.writes {
        actions.push(Action::Close { file: w.file.clone() });
    }
    actions
}

/// Action list for a node's stage-0 input staging job.
fn staging_actions(
    files: &[String],
    node: u32,
    kind: TierKind,
    shared: TierRef,
    from_origin: bool,
) -> Vec<Action> {
    files
        .iter()
        .map(|f| Action::Stage {
            file: f.clone(),
            to: TierRef::node(kind, node),
            from: from_origin.then_some(shared),
            tag: FlowTag::Stage,
        })
        .collect()
}

/// True when `path` exists in the simulated filesystem but every replica is
/// gone (e.g. it lived only on a crashed node's local tier).
fn file_lost(sim: &Simulation, path: &str) -> bool {
    sim.fs().lookup(path).is_some_and(|idx| sim.fs().is_lost(idx))
}

/// Rejects specs and configurations the engine cannot execute, before any
/// simulator state is built. Every check here used to be a panic or an
/// out-of-bounds index deep inside the run.
pub(crate) fn validate_run(spec: &WorkflowSpec, cfg: &RunConfig) -> Result<(), EngineError> {
    spec.validate()
        .map_err(|e| EngineError::InvalidSpec(format!("invalid workflow spec: {e}")))?;
    if cfg.cluster.node_count() == 0 {
        return Err(EngineError::InvalidSpec("cluster has zero nodes".into()));
    }
    if let Err(e) = ShardPlan::partition(cfg.cluster.node_count(), cfg.shards) {
        return Err(EngineError::InvalidSpec(format!("invalid shard count: {e}")));
    }
    if cfg.staging.shared.is_node_local() {
        return Err(EngineError::InvalidSpec(format!(
            "staging.shared must be a shared tier, got node-local {:?}",
            cfg.staging.shared
        )));
    }
    for kind in [cfg.staging.stage_inputs, cfg.staging.intermediates_local]
        .into_iter()
        .flatten()
    {
        if !kind.is_node_local() {
            return Err(EngineError::InvalidSpec(format!(
                "staging tier {kind:?} is not node-local"
            )));
        }
        if !cfg.cluster.has_tier(kind) {
            return Err(EngineError::InvalidSpec(format!(
                "staging tier {kind:?} missing from cluster"
            )));
        }
    }
    if let Placement::Explicit(v) = &cfg.placement {
        if v.len() != spec.tasks.len() {
            return Err(EngineError::InvalidSpec(format!(
                "explicit placement lists {} nodes for {} tasks",
                v.len(),
                spec.tasks.len()
            )));
        }
        if let Some(&n) = v.iter().find(|&&n| (n as usize) >= cfg.cluster.node_count()) {
            return Err(EngineError::InvalidSpec(format!(
                "explicit placement node {n} out of range"
            )));
        }
    }
    Ok(())
}

/// Runs `spec` under `cfg`. Invalid specs and configurations are typed
/// [`EngineError::InvalidSpec`] errors; simulator failures pass through as
/// [`EngineError::Sim`].
///
/// # Fault handling
///
/// With a non-trivial [`RunConfig::faults`] plan the run proceeds
/// incident-by-incident: the simulator pauses at each failed attempt
/// ([`Simulation::run_to_incident`]), the engine repairs lost inputs and
/// resubmits work, and the clock continues. Repair is *lineage-based*: for
/// every lost input file of the failed task, the engine walks the producer
/// graph (transitively, in case a producer's own inputs are also gone) and
/// re-runs the minimal producer set as `name~recK` jobs flagged
/// [`JobSpec::recovery`], so their traffic shows up under
/// [`FlowTag::Recovery`]. The failed task is then resubmitted as `name~rN`
/// after the [`RetryPolicy`] backoff, depending on those recovery jobs.
/// Inputs that survive on a shared tier are simply re-read — no recovery
/// job is scheduled for them.
pub fn run(spec: &WorkflowSpec, cfg: &RunConfig) -> Result<RunResult, EngineError> {
    validate_run(spec, cfg)?;
    let ctx = EngineCtx::new(spec, cfg);
    let (mut sim, mut st) = init_run(&ctx);
    if cfg.checkpoint.is_some() {
        // Baseline manifest at t=0: however early the coordinator dies,
        // there is always a manifest to resume from.
        take_checkpoint(&mut sim, &ctx, &mut st)?;
    }
    drive(&mut sim, &ctx, &mut st)?;
    Ok(finalize(sim, &ctx, &st))
}

/// Resumes a checkpointed run from `manifest`, revalidating the manifest
/// version and the `(spec, cfg)` hash before touching any state. Nothing is
/// replayed: the simulator restores to the exact quiescent point the
/// manifest captured — mid-stage, in-flight I/O and all — and the engine
/// continues from there. Because the simulator is deterministic, the final
/// [`RunResult`] (timeline included) is byte-identical to the same
/// configuration run without interruption.
///
/// `cfg` must be the run's original configuration, checkpoint cadence
/// included so future checkpoints land at the original points. Only the
/// chaos clause, the checkpoint directory, and the shard count are excluded
/// from the hash — a crash-killed run may resume with its kill switch still
/// armed (or disarmed) and under a different shard count, but any other
/// config drift is a typed [`CheckpointError::HashMismatch`], never a
/// silently wrong answer.
pub fn resume_from(
    spec: &WorkflowSpec,
    cfg: &RunConfig,
    manifest: CheckpointManifest,
) -> Result<RunResult, EngineError> {
    let (mut sim, mut st) = restore_for_resume(spec, cfg, manifest)?;
    let ctx = EngineCtx::new(spec, cfg);
    drive(&mut sim, &ctx, &mut st)?;
    Ok(finalize(sim, &ctx, &st))
}

/// The shared front half of every resume path: validate the manifest
/// version and config hash, rebuild the simulator from the snapshot under
/// the *offered* shard plan, and re-arm chaos. The caller supplies its own
/// drive loop (the batch incident loop, or the watch/serve windowed one).
pub(crate) fn restore_for_resume(
    spec: &WorkflowSpec,
    cfg: &RunConfig,
    manifest: CheckpointManifest,
) -> Result<(Simulation, EngineState), EngineError> {
    if manifest.version != MANIFEST_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: manifest.version,
            expected: MANIFEST_VERSION,
        }
        .into());
    }
    let expected = config_hash(spec, cfg);
    if manifest.config_hash != expected {
        return Err(CheckpointError::HashMismatch {
            manifest: manifest.config_hash,
            config: expected,
        }
        .into());
    }
    validate_run(spec, cfg)?;
    // Snapshots are shard-invariant (per-node cursors), so a manifest may be
    // resumed under any shard count that fits the cluster — the plan is
    // rebuilt from the *offered* config, and a plan that does not fit fails
    // with a typed error instead of a wrong answer.
    let plan = ShardPlan::partition(cfg.cluster.node_count(), cfg.shards)
        .expect("shard count validated by validate_run");
    let mut sim = Simulation::restore_sharded(manifest.sim, plan)?;
    // Snapshots are chaos-free by construction; re-arm the kill switch from
    // the *offered* config so a chaos driver can schedule further crashes.
    sim.set_chaos(cfg.faults.chaos);
    Ok((sim, manifest.engine))
}

/// [`resume_from`] the highest-sequence *readable* manifest in the
/// configured checkpoint directory, returning a typed [`TornManifest`]
/// warning for every torn (truncated / trailing-garbage) manifest that was
/// skipped on the way to a good one. Recovery paths that answer to a user —
/// the CLI, the serve daemon — surface the warnings; determinism is
/// unaffected because any good manifest resumes byte-identically.
pub fn resume_latest_with_warnings(
    spec: &WorkflowSpec,
    cfg: &RunConfig,
) -> Result<(RunResult, Vec<TornManifest>), EngineError> {
    let dir = cfg.checkpoint.as_ref().map(|c| c.dir.clone());
    let (manifest, torn) =
        load_latest_tolerant(&dir.ok_or(CheckpointError::NoCheckpointConfig)?)?;
    Ok((resume_from(spec, cfg, manifest)?, torn))
}

/// [`resume_from`] the highest-sequence readable manifest in the configured
/// checkpoint directory. Torn manifests are skipped (see
/// [`resume_latest_with_warnings`] to observe which).
pub fn resume_latest(spec: &WorkflowSpec, cfg: &RunConfig) -> Result<RunResult, EngineError> {
    resume_latest_with_warnings(spec, cfg).map(|(r, _)| r)
}

/// The engine's dynamic bookkeeping, parallel to the simulator's job table:
/// `root_of[j]` is the first attempt of `j`'s retry chain (attempts are
/// counted per chain); `kind_of_job[j]` says what work unit `j` is.
/// Serializable so a [`CheckpointManifest`] can carry it — restoring it
/// alongside the matching [`dfl_iosim::SimSnapshot`] resumes a run
/// mid-stage with no replay. Public only for checkpoint transport.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineState {
    pub kind_of_job: Vec<JobKind>,
    pub root_of: Vec<u32>,
    /// Latest staging-job attempt per node.
    pub stage_job_of_node: HashMap<u32, JobId>,
    /// Latest attempt of each task — retries of its consumers depend on it.
    pub cur_job_of_task: Vec<JobId>,
    /// Chain root → failures so far.
    pub attempts: HashMap<u32, u32>,
    pub stage_retries: HashMap<u32, u32>,
    /// Task → latest in-flight recovery job.
    pub pending_rerun: HashMap<usize, JobId>,
    pub rec_count: Vec<u32>,
    pub n_retries: u32,
    pub n_recovery: u32,
    /// Sequence number the next manifest will carry.
    pub ckpt_seq: u64,
    /// Next sim-time checkpoint deadline under an `every_sim_ns` policy —
    /// carried in the manifest so a resumed run checkpoints at exactly the
    /// uninterrupted run's future points.
    pub next_ckpt_ns: Option<u64>,
    /// Fully-completed stage count as of the last checkpoint.
    pub stages_ckpted: u32,
}

/// Static per-run derivations (placement, file sizes, producer graph,
/// staging file lists) — pure functions of `(spec, cfg)`, recomputed
/// identically on fresh runs and on resume.
pub(crate) struct EngineCtx<'a> {
    pub(crate) spec: &'a WorkflowSpec,
    pub(crate) cfg: &'a RunConfig,
    shared: TierRef,
    /// Resolved file sizes: inputs plus declared outputs.
    size_of: HashMap<&'a str, u64>,
    producers: HashMap<&'a str, Vec<usize>>,
    node_for: Vec<u32>,
    /// Per node, the input files its tasks read (kept owned so failed
    /// staging jobs can be rebuilt for retry).
    staged_files: BTreeMap<u32, Vec<String>>,
}

impl<'a> EngineCtx<'a> {
    pub(crate) fn new(spec: &'a WorkflowSpec, cfg: &'a RunConfig) -> Self {
        let nodes = cfg.cluster.node_count() as u32;
        assert!(nodes > 0);
        let shared = TierRef::shared(cfg.staging.shared);

        let mut size_of: HashMap<&str, u64> = HashMap::new();
        for i in &spec.inputs {
            size_of.insert(&i.path, i.size);
        }
        let mut producers: HashMap<&str, Vec<usize>> = HashMap::new();
        for (ti, t) in spec.tasks.iter().enumerate() {
            for w in &t.writes {
                *size_of.entry(&w.file).or_insert(0) += w.bytes;
                producers.entry(&w.file).or_default().push(ti);
            }
        }

        let node_for: Vec<u32> = place_tasks(&cfg.placement, &spec.tasks, nodes);

        let mut staged_files: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        if cfg.staging.stage_inputs.is_some() {
            for (ti, t) in spec.tasks.iter().enumerate() {
                for r in &t.reads {
                    if spec.inputs.iter().any(|i| i.path == r.file) {
                        let v = staged_files.entry(node_for[ti]).or_default();
                        if !v.contains(&r.file) {
                            v.push(r.file.clone());
                        }
                    }
                }
            }
        }

        EngineCtx { spec, cfg, shared, size_of, producers, node_for, staged_files }
    }
}

/// Builds the simulator, creates the external input files, and submits the
/// initial job set (stage-0 staging jobs plus first attempts of every task).
pub(crate) fn init_run(ctx: &EngineCtx) -> (Simulation, EngineState) {
    let (spec, cfg, shared) = (ctx.spec, ctx.cfg, ctx.shared);
    let plan = ShardPlan::partition(cfg.cluster.node_count(), cfg.shards)
        .expect("shard count validated by validate_run");
    let mut sim = Simulation::new_sharded(
        cfg.cluster.clone(),
        SimConfig {
            monitor: Some(cfg.monitor.clone()),
            cache: cfg.cache.clone(),
            cache_origins: cfg.cache_origins,
            write_buffering: cfg.write_buffering,
            faults: cfg.faults.clone(),
            verify: cfg.verify,
            obs: cfg.obs.clone(),
        },
        plan,
    )
    .expect("shard plan sized to the cluster it partitions");
    for i in &spec.inputs {
        sim.fs_mut().create_external(&i.path, i.size, shared);
    }

    let mut st = EngineState {
        kind_of_job: Vec::new(),
        root_of: Vec::new(),
        stage_job_of_node: HashMap::new(),
        cur_job_of_task: Vec::with_capacity(spec.tasks.len()),
        attempts: HashMap::new(),
        stage_retries: HashMap::new(),
        pending_rerun: HashMap::new(),
        rec_count: vec![0; spec.tasks.len()],
        n_retries: 0,
        n_recovery: 0,
        ckpt_seq: 0,
        next_ckpt_ns: cfg.checkpoint.as_ref().and_then(|c| c.every_sim_ns),
        stages_ckpted: 0,
    };

    // Input staging: one stage-0 job per node copying the inputs its tasks
    // read.
    if let Some(kind) = cfg.staging.stage_inputs {
        assert!(cfg.cluster.has_tier(kind), "staging tier missing from cluster");
        for (&node, files) in &ctx.staged_files {
            let mut job = JobSpec::new(&format!("staging-{node}"), node).logical("staging");
            for a in staging_actions(files, node, kind, shared, cfg.staging.stage_from_origin) {
                job = job.action(a);
            }
            let id = sim.submit(job);
            st.kind_of_job.push(JobKind::Staging(node));
            st.root_of.push(id.0);
            st.stage_job_of_node.insert(node, id);
        }
    }

    // Submit tasks.
    for (ti, t) in spec.tasks.iter().enumerate() {
        let node = ctx.node_for[ti];
        let mut job = JobSpec::new(&t.name, node).logical(&t.logical);

        // Dependencies: explicit, data (producers of read files), staging.
        for &a in &t.after {
            job = job.dep(st.cur_job_of_task[a]);
        }
        let mut reads_staged_input = false;
        for r in &t.reads {
            if let Some(ps) = ctx.producers.get(r.file.as_str()) {
                for &p in ps {
                    assert!(p != ti, "task {} reads its own output", t.name);
                    assert!(p < ti, "producers must precede consumers in spec order");
                    job = job.dep(st.cur_job_of_task[p]);
                }
            }
            if spec.inputs.iter().any(|i| i.path == r.file) {
                reads_staged_input = true;
            }
        }
        if reads_staged_input {
            if let Some(&sj) = st.stage_job_of_node.get(&node) {
                job = job.dep(sj);
            }
        }

        for a in task_actions(t, node, &cfg.staging, shared, &ctx.size_of) {
            job = job.action(a);
        }

        let id = sim.submit(job);
        st.kind_of_job.push(JobKind::Task(ti));
        st.root_of.push(id.0);
        st.cur_job_of_task.push(id);
    }

    (sim, st)
}

/// The incident loop: runs the simulator to completion, repairing each
/// failed-attempt batch and taking checkpoints at the configured pause
/// points. Shared verbatim between fresh runs and resumed ones — resuming
/// is just re-entering this loop with restored state.
fn drive(sim: &mut Simulation, ctx: &EngineCtx, st: &mut EngineState) -> Result<(), EngineError> {
    let ckpt = ctx.cfg.checkpoint.as_ref();
    if ckpt.is_some_and(|c| c.every_stages.is_some()) {
        sim.set_pause_on_job_complete(true);
    }
    loop {
        if ckpt.is_some_and(|c| c.every_sim_ns.is_some()) {
            sim.set_pause_at(st.next_ckpt_ns);
        }
        match sim.run_to_incident()? {
            RunOutcome::Completed => break,
            RunOutcome::Paused => {
                if checkpoint_due(sim, ctx, st) {
                    take_checkpoint(sim, ctx, st)?;
                }
            }
            RunOutcome::Failures(failures) => {
                handle_failures(sim, ctx, st, failures)?;
                // Quarantining a running cone job raises fresh failures
                // that haven't been delivered yet; a snapshot is only
                // legal at a quiescent point, so defer to the follow-up
                // incident (which takes its own on-incident checkpoint).
                if ckpt.is_some_and(|c| c.on_incident) && !sim.has_pending_failures() {
                    take_checkpoint(sim, ctx, st)?;
                }
            }
        }
    }
    Ok(())
}

/// How many workflow stages have fully completed (every task of the stage
/// has a successful latest attempt).
fn stages_complete(sim: &Simulation, ctx: &EngineCtx, st: &EngineState) -> u32 {
    let mut done_by_stage: BTreeMap<u32, bool> = BTreeMap::new();
    for (ti, t) in ctx.spec.tasks.iter().enumerate() {
        let e = done_by_stage.entry(t.stage).or_insert(true);
        *e = *e && sim.job_done(st.cur_job_of_task[ti]);
    }
    done_by_stage.values().filter(|&&d| d).count() as u32
}

/// Whether a pause point should become a checkpoint under the configured
/// policy.
pub(crate) fn checkpoint_due(sim: &Simulation, ctx: &EngineCtx, st: &EngineState) -> bool {
    let Some(c) = ctx.cfg.checkpoint.as_ref() else { return false };
    if c.every_sim_ns.is_some() {
        if let Some(deadline) = st.next_ckpt_ns {
            if sim.time().ns() >= deadline {
                return true;
            }
        }
    }
    if let Some(n) = c.every_stages {
        if stages_complete(sim, ctx, st) >= st.stages_ckpted.saturating_add(n) {
            return true;
        }
    }
    false
}

/// Takes one checkpoint: records the checkpoint span + metrics, advances
/// the policy cursors, and writes `manifest-{seq}.json` atomically.
///
/// Ordering matters for determinism: the snapshot is first serialized as a
/// *probe* to measure its size, the zero-duration checkpoint span (and the
/// `checkpoint_bytes` / `checkpoint_stalls` counters) are recorded, and
/// only then is the real snapshot taken — so the manifest's snapshot
/// contains its own checkpoint span, a resumed run never re-records it,
/// and the recorded byte count (which excludes that span) agrees between a
/// golden run and a resumed one. Restore emits no spans at all.
pub(crate) fn take_checkpoint(
    sim: &mut Simulation,
    ctx: &EngineCtx,
    st: &mut EngineState,
) -> Result<(), SimError> {
    let Some(c) = ctx.cfg.checkpoint.as_ref() else { return Ok(()) };
    let seq = st.ckpt_seq;
    let t_ns = sim.time().ns();

    let bytes = {
        let probe = sim.snapshot()?;
        serde_json::to_string(&probe)
            .map_err(|e| SimError::Snapshot(format!("checkpoint encode: {e}")))?
            .len() as u64
    };
    if let Some(obs) = sim.obs_mut() {
        obs.record_checkpoint(seq, bytes, t_ns);
    }

    // Advance the policy cursors *before* cloning the state into the
    // manifest, so a resumed run checkpoints at exactly the golden run's
    // future points.
    st.ckpt_seq = seq + 1;
    if let (Some(every), Some(mut next)) = (c.every_sim_ns, st.next_ckpt_ns) {
        while next <= t_ns {
            next += every;
        }
        st.next_ckpt_ns = Some(next);
    }
    st.stages_ckpted = stages_complete(sim, ctx, st);

    let snap = sim.snapshot()?;
    let ledger: Vec<AttemptRecord> = snap
        .jobs
        .iter()
        .enumerate()
        .filter(|(_, j)| matches!(j.state, JobState::Done | JobState::Failed))
        .map(|(i, j)| AttemptRecord {
            job: i as u32,
            name: j.name.clone(),
            node: j.node,
            start_ns: j.start.map_or(0, |t| t.ns()),
            end_ns: j.end.map_or(0, |t| t.ns()),
            failed: j.state == JobState::Failed,
        })
        .collect();
    let manifest = CheckpointManifest {
        version: MANIFEST_VERSION,
        config_hash: config_hash(ctx.spec, ctx.cfg),
        seq,
        sim_time_ns: t_ns,
        ledger,
        files: snap.files.clone(),
        engine: st.clone(),
        sim: snap,
    };
    write_manifest(&c.dir, &manifest)
        .map_err(|e| SimError::Snapshot(format!("checkpoint write: {e}")))?;
    Ok(())
}

/// Repairs one batch of failed attempts: lineage recovery of lost inputs,
/// then a backoff retry per failure (see [`run`] for the full story).
pub(crate) fn handle_failures(
    sim: &mut Simulation,
    ctx: &EngineCtx,
    st: &mut EngineState,
    failures: Vec<JobFailure>,
) -> Result<(), EngineError> {
    let (spec, cfg, shared) = (ctx.spec, ctx.cfg, ctx.shared);
    let (size_of, producers) = (&ctx.size_of, &ctx.producers);
    let (node_for, staged_files) = (&ctx.node_for, &ctx.staged_files);
    let EngineState {
        kind_of_job,
        root_of,
        stage_job_of_node,
        cur_job_of_task,
        attempts,
        stage_retries,
        pending_rerun,
        rec_count,
        n_retries,
        n_recovery,
        ..
    } = st;
    {
        for f in failures {
            let kind = kind_of_job[f.job.0 as usize];
            let root = root_of[f.job.0 as usize];
            let n = {
                let a = attempts.entry(root).or_insert(0);
                *a += 1;
                *a
            };
            if n >= cfg.retry.max_attempts {
                return Err(SimError::RetriesExhausted { job: f.name.clone(), attempts: n }.into());
            }
            if let Some(budget) = cfg.retry.stage_budget {
                let stage = kind.task().map_or(0, |ti| spec.tasks[ti].stage);
                let c = stage_retries.entry(stage).or_insert(0);
                *c += 1;
                if *c > budget {
                    return Err(
                        SimError::RetriesExhausted { job: f.name.clone(), attempts: n }.into()
                    );
                }
            }

            // Integrity recovery: a verified read caught corrupt data whose
            // root is a *persisted* file version, possibly written many hops
            // upstream of the detection point. Everything forward-reachable
            // from the root in the DFL-G — files and tasks alike — may carry
            // the taint, so quarantine the whole cone: dropping the poisoned
            // replicas turns each suspect file into an ordinary lost file,
            // which the lineage walk below then repairs from the minimal
            // producer set. In-flight attempts inside the cone are failed
            // (their incidents surface next pause), and already-completed
            // cone tasks are queued for re-execution.
            let mut cone_rerun: Vec<usize> = Vec::new();
            if let FailureCause::CorruptData { root: Some(root), .. } = &f.cause {
                let reproducible =
                    producers.get(root.as_str()).is_some_and(|p| !p.is_empty());
                if !reproducible && sim.file_corrupt(root) {
                    // The corrupt root is an external input with a truly
                    // corrupt stored replica: nothing can regenerate it, so
                    // recovery is impossible.
                    return Err(SimError::IntegrityViolation { file: root.clone() }.into());
                }
                let cone = taint_cone(spec, root);
                for fp in &cone.files {
                    // An unreproducible root whose stored replicas all
                    // check out was only mis-rooted by an in-flight flip on
                    // an unverified read: keep it in service and repair the
                    // cone below it.
                    if reproducible || fp != root {
                        sim.quarantine_file(fp);
                    }
                }
                for &ct in &cone.tasks {
                    let cj = cur_job_of_task[ct];
                    if sim.quarantine_job(cj, root) {
                        continue; // running attempt now fails on its own
                    }
                    if sim.job_done(cj) {
                        cone_rerun.push(ct);
                    }
                }
            }

            // Lineage recovery: for each of the failed task's inputs that no
            // longer has any replica, re-run the minimal (transitive)
            // producer set. Surviving inputs need no recovery. Staging jobs
            // read external inputs, which live on a shared tier and cannot
            // be lost — nothing to repair there. Quarantined taint-cone
            // tasks seed the same walk: their inputs were just dropped, so
            // the walk re-runs them plus whatever upstream producers are
            // needed to rebuild their inputs.
            let mut rerun_deps: Vec<JobId> = Vec::new();
            {
                let mut needed: BTreeSet<usize> = BTreeSet::new();
                let mut work: Vec<&str> = Vec::new();
                if let Some(ti) = kind.task() {
                    for r in &spec.tasks[ti].reads {
                        if file_lost(sim, &r.file) {
                            work.push(&r.file);
                        }
                    }
                }
                for &ct in &cone_rerun {
                    if needed.insert(ct) {
                        for r in &spec.tasks[ct].reads {
                            if file_lost(sim, &r.file) {
                                work.push(&r.file);
                            }
                        }
                    }
                }
                while let Some(fpath) = work.pop() {
                    for &p in producers.get(fpath).into_iter().flatten() {
                        if needed.insert(p) {
                            for r in &spec.tasks[p].reads {
                                if file_lost(sim, &r.file) {
                                    work.push(&r.file);
                                }
                            }
                        }
                    }
                }
                // Spec order is producer-before-consumer, so iterating the
                // sorted set schedules reruns in a valid topological order.
                for &p in &needed {
                    if let Some(&rj) = pending_rerun.get(&p) {
                        if !sim.job_done(rj) {
                            continue; // an in-flight rerun already covers p
                        }
                    }
                    rec_count[p] += 1;
                    let t = &spec.tasks[p];
                    let mut job =
                        JobSpec::new(&format!("{}~rec{}", t.name, rec_count[p]), node_for[p])
                            .logical(&t.logical)
                            .delay_ns(sim.time().ns())
                            .recovery(true);
                    for r in &t.reads {
                        if file_lost(sim, &r.file) {
                            for p2 in producers.get(r.file.as_str()).into_iter().flatten() {
                                if let Some(&rj2) = pending_rerun.get(p2) {
                                    job = job.dep(rj2);
                                }
                            }
                        }
                    }
                    for a in task_actions(t, node_for[p], &cfg.staging, shared, size_of) {
                        job = job.action(a);
                    }
                    let id = sim.submit(job);
                    kind_of_job.push(JobKind::Recovery(p));
                    root_of.push(id.0);
                    pending_rerun.insert(p, id);
                    *n_recovery += 1;
                }
                if let Some(ti) = kind.task() {
                    for r in &spec.tasks[ti].reads {
                        if file_lost(sim, &r.file) {
                            for p in producers.get(r.file.as_str()).into_iter().flatten() {
                                if let Some(&rj) = pending_rerun.get(p) {
                                    if !sim.job_done(rj) && !rerun_deps.contains(&rj) {
                                        rerun_deps.push(rj);
                                    }
                                }
                            }
                        }
                    }
                }
            }

            // The retry itself, delayed by the backoff policy. It replaces
            // the failed attempt (`resubmit`), so anything depending on any
            // attempt in the chain is released when one succeeds.
            let delay = sim.time().ns() + cfg.retry.delay_ns(cfg.faults.seed, u64::from(root), n);
            let retry = match kind {
                JobKind::Staging(node) => {
                    let kind_tier = cfg
                        .staging
                        .stage_inputs
                        .ok_or(EngineError::Internal("staging retry without a staging config"))?;
                    let files = staged_files
                        .get(&node)
                        .ok_or(EngineError::Internal("staging retry for a node with no inputs"))?;
                    let mut j = JobSpec::new(&format!("staging-{node}~r{n}"), node)
                        .logical("staging")
                        .delay_ns(delay);
                    for a in staging_actions(
                        files,
                        node,
                        kind_tier,
                        shared,
                        cfg.staging.stage_from_origin,
                    ) {
                        j = j.action(a);
                    }
                    j
                }
                JobKind::Task(ti) | JobKind::Retry(ti) => {
                    let t = &spec.tasks[ti];
                    let mut j = JobSpec::new(&format!("{}~r{n}", t.name), node_for[ti])
                        .logical(&t.logical)
                        .delay_ns(delay);
                    for &a in &t.after {
                        j = j.dep(cur_job_of_task[a]);
                    }
                    let mut reads_staged = false;
                    for r in &t.reads {
                        for &p in producers.get(r.file.as_str()).into_iter().flatten() {
                            j = j.dep(cur_job_of_task[p]);
                        }
                        if spec.inputs.iter().any(|i| i.path == r.file) {
                            reads_staged = true;
                        }
                    }
                    if reads_staged {
                        if let Some(&sj) = stage_job_of_node.get(&node_for[ti]) {
                            j = j.dep(sj);
                        }
                    }
                    for &rj in &rerun_deps {
                        j = j.dep(rj);
                    }
                    for a in task_actions(t, node_for[ti], &cfg.staging, shared, size_of) {
                        j = j.action(a);
                    }
                    j
                }
                JobKind::Recovery(ti) => {
                    // A failed recovery job is re-issued as a fresh recovery
                    // attempt (same naming scheme, same chain).
                    rec_count[ti] += 1;
                    let t = &spec.tasks[ti];
                    let mut j =
                        JobSpec::new(&format!("{}~rec{}", t.name, rec_count[ti]), node_for[ti])
                            .logical(&t.logical)
                            .delay_ns(delay)
                            .recovery(true);
                    for &rj in &rerun_deps {
                        j = j.dep(rj);
                    }
                    for a in task_actions(t, node_for[ti], &cfg.staging, shared, size_of) {
                        j = j.action(a);
                    }
                    *n_recovery += 1;
                    j
                }
            };
            let id = sim.resubmit(f.job, retry);
            kind_of_job.push(kind.retry_of());
            root_of.push(root);
            *n_retries += 1;
            match kind {
                JobKind::Task(ti) | JobKind::Retry(ti) => cur_job_of_task[ti] = id,
                JobKind::Recovery(ti) => {
                    pending_rerun.insert(ti, id);
                }
                JobKind::Staging(node) => {
                    stage_job_of_node.insert(node, id);
                }
            }
        }
    }
    Ok(())
}

/// Builds the [`RunResult`] from a finished simulator plus engine state.
pub(crate) fn finalize(mut sim: Simulation, ctx: &EngineCtx, st: &EngineState) -> RunResult {
    // Stage spans from reports: staging jobs are stage 0; retries and
    // recovery re-runs count toward their task's stage.
    let reports = sim.reports();
    let mut stage_spans: BTreeMap<u32, (f64, f64)> = BTreeMap::new();
    for (i, r) in reports.iter().enumerate() {
        let stage = st.kind_of_job[i].task().map_or(0, |ti| ctx.spec.tasks[ti].stage);
        let entry = stage_spans
            .entry(stage)
            .or_insert((f64::INFINITY, f64::NEG_INFINITY));
        entry.0 = entry.0.min(r.start_ns as f64 / 1e9);
        entry.1 = entry.1.max(r.end_ns as f64 / 1e9);
    }

    let mut failure = sim.failure_report();
    failure.retries = st.n_retries;
    failure.recovery_jobs = st.n_recovery;

    // Stage spans onto the timeline's stage track (sorted by stage id, so
    // same-seed runs emit them in identical order), then detach it.
    for (&stage, &(start, end)) in &stage_spans {
        sim.record_stage_span(&format!("stage {stage}"), (start * 1e9) as u64, (end * 1e9) as u64);
    }
    let diagnoses = sim.diagnoses().to_vec();
    let timeline = sim.take_timeline();

    RunResult {
        makespan_s: sim.time().secs(),
        stage_spans,
        total_breakdown: sim.total_breakdown(),
        // The engine always attaches a monitor; an absent measurement set
        // can only mean a caller bypassed `init_run`, so degrade to empty.
        measurements: sim.measurements().unwrap_or_default(),
        reports,
        failure,
        timeline,
        events_dispatched: sim.events_dispatched(),
        diagnoses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FileProduce, FileUse, TaskSpec};

    fn two_stage() -> WorkflowSpec {
        let mut w = WorkflowSpec::new("t");
        w.input("in.dat", 64 << 20);
        let a = w.task(
            TaskSpec::new("gen-0", "gen", 1)
                .read(FileUse::whole("in.dat"))
                .write(FileProduce::new("mid.dat", 32 << 20))
                .compute_ms(50)
                .group(0),
        );
        w.task(
            TaskSpec::new("use-0", "use", 2)
                .read(FileUse::whole("mid.dat"))
                .compute_ms(50)
                .after(a)
                .group(0),
        );
        w
    }

    #[test]
    fn runs_and_reports_stages() {
        let r = run(&two_stage(), &RunConfig::default_gpu(2)).unwrap();
        assert!(r.makespan_s > 0.1);
        assert!(r.stage_time(1) > 0.0);
        assert!(r.stage_time(2) > 0.0);
        let (s1_end, s2_start) = (r.stage_spans[&1].1, r.stage_spans[&2].0);
        assert!(s2_start >= s1_end, "data dependency enforces stage order");
    }

    #[test]
    fn measurements_build_a_graph() {
        let r = run(&two_stage(), &RunConfig::default_gpu(1)).unwrap();
        let g = dfl_core::DflGraph::from_measurements(&r.measurements);
        // gen, use tasks + in.dat, mid.dat.
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3, "in→gen, gen→mid, mid→use");
    }

    #[test]
    fn data_deps_inferred_without_explicit_after() {
        let mut w = WorkflowSpec::new("t");
        w.input("in.dat", 1 << 20);
        w.task(
            TaskSpec::new("gen-0", "gen", 1)
                .read(FileUse::whole("in.dat"))
                .write(FileProduce::new("mid.dat", 1 << 20)),
        );
        // No .after(): dependency comes from reading mid.dat.
        w.task(TaskSpec::new("use-0", "use", 2).read(FileUse::whole("mid.dat")));
        let r = run(&w, &RunConfig::default_gpu(2)).unwrap();
        assert!(r.reports[1].start_ns >= r.reports[0].end_ns);
    }

    #[test]
    fn staging_adds_stage0_and_speeds_reads() {
        let mut cfg = RunConfig::default_gpu(1);
        let base = run(&two_stage(), &cfg).unwrap();

        cfg.staging.stage_inputs = Some(TierKind::Ramdisk);
        cfg.staging.intermediates_local = Some(TierKind::Ramdisk);
        let staged = run(&two_stage(), &cfg).unwrap();
        assert!(staged.stage_spans.contains_key(&0), "stage-0 staging job present");
        // All I/O local after staging: shared reads only during staging.
        let shared_reads: u64 = staged
            .reports
            .iter()
            .skip(1)
            .map(|r| r.breakdown.get(FlowTag::SharedRead))
            .sum();
        assert_eq!(shared_reads, 0);
        assert!(staged.makespan_s <= base.makespan_s * 1.05);
    }

    #[test]
    fn by_group_placement_colocates() {
        let mut w = WorkflowSpec::new("t");
        w.input("a", 1 << 20);
        for g in 0..4u32 {
            w.task(
                TaskSpec::new(&format!("t-{g}"), "t", 1)
                    .read(FileUse::whole("a"))
                    .group(g % 2),
            );
        }
        let mut cfg = RunConfig::default_gpu(2);
        cfg.placement = Placement::ByGroup;
        let r = run(&w, &cfg).unwrap();
        assert_eq!(r.reports[0].node, r.reports[2].node, "same group, same node");
        assert_ne!(r.reports[0].node, r.reports[1].node);
    }

    #[test]
    fn invalid_spec_is_typed_error_not_panic() {
        // Regression: reading an undeclared file used to panic inside
        // `run`; it must now surface as a typed `InvalidSpec`.
        let mut w = WorkflowSpec::new("bad");
        w.task(TaskSpec::new("t-0", "t", 1).read(FileUse::whole("ghost")));
        match run(&w, &RunConfig::default_gpu(1)) {
            Err(EngineError::InvalidSpec(m)) => {
                assert!(m.contains("invalid workflow spec"), "got: {m}")
            }
            other => panic!("expected InvalidSpec, got {:?}", other.map(|r| r.makespan_s)),
        }
    }

    #[test]
    fn zero_node_cluster_is_typed_error_not_panic() {
        // Regression: a zero-node cluster used to trip an `assert!` in
        // `EngineCtx::new` (and before that, a modulo-by-zero in
        // placement).
        match run(&two_stage(), &RunConfig::default_gpu(0)) {
            Err(EngineError::InvalidSpec(m)) => assert!(m.contains("zero nodes"), "got: {m}"),
            other => panic!("expected InvalidSpec, got {:?}", other.map(|r| r.makespan_s)),
        }
    }

    #[test]
    fn explicit_placement_length_mismatch_is_typed_error() {
        // Regression: a short `Placement::Explicit` vector used to
        // panic-index inside `place_tasks`.
        let mut cfg = RunConfig::default_gpu(2);
        cfg.placement = Placement::Explicit(vec![0]);
        assert!(matches!(run(&two_stage(), &cfg), Err(EngineError::InvalidSpec(_))));
        cfg.placement = Placement::Explicit(vec![0, 9]);
        assert!(matches!(run(&two_stage(), &cfg), Err(EngineError::InvalidSpec(_))));
    }

    #[test]
    fn fault_free_run_reports_clean() {
        let r = run(&two_stage(), &RunConfig::default_gpu(2)).unwrap();
        assert!(r.failure.is_clean(), "no faults injected: {}", r.failure);
        assert_eq!(r.failure.retries, 0);
        assert_eq!(r.failure.goodput_bytes(), r.failure.total_bytes);
    }

    #[test]
    fn crash_mid_task_retries_and_completes() {
        let base = run(&two_stage(), &RunConfig::default_gpu(2)).unwrap();
        let mut cfg = RunConfig::default_gpu(2);
        // Node 0 dies while gen-0 (its only occupant) is computing.
        cfg.faults = FaultPlan::seeded(7).crash(0, 80_000_000, 50_000_000);
        let r = run(&two_stage(), &cfg).unwrap();
        assert_eq!(r.failure.crashes, 1);
        assert_eq!(r.failure.retries, 1, "one retry of gen-0: {}", r.failure);
        assert_eq!(r.failure.recovery_jobs, 0, "mid.dat survives on shared BeeGFS");
        assert!(r.reports.iter().any(|j| j.name == "gen-0~r1"));
        assert!(r.makespan_s > base.makespan_s, "wasted work + backoff cost time");
        assert!(r.failure.wasted_ns > 0);
        // The workflow still produced its output despite the crash.
        assert!(r.stage_time(2) > 0.0);
    }

    #[test]
    fn retry_policy_none_aborts_on_first_failure() {
        let mut cfg = RunConfig::default_gpu(2);
        cfg.faults = FaultPlan::seeded(7).crash(0, 80_000_000, 50_000_000);
        cfg.retry = RetryPolicy::none();
        let err = run(&two_stage(), &cfg).unwrap_err();
        assert!(
            matches!(err, EngineError::Sim(SimError::RetriesExhausted { attempts: 1, .. })),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn backoff_delay_is_deterministic_and_grows() {
        let p = RetryPolicy::default();
        assert_eq!(p.delay_ns(1, 0, 1), p.delay_ns(1, 0, 1));
        assert_ne!(p.delay_ns(1, 0, 1), p.delay_ns(2, 0, 1), "jitter depends on seed");
        // Exponential growth dominates jitter (mult 2.0 vs ±50%).
        assert!(p.delay_ns(1, 0, 3) > p.delay_ns(1, 0, 1));
        let norm = RetryPolicy { jitter: 0.0, ..p };
        assert_eq!(norm.delay_ns(9, 4, 2), 100_000_000, "50ms · 2¹, no jitter");
    }

    #[test]
    fn obs_timeline_rides_along() {
        let r = run(&two_stage(), &RunConfig::default_gpu(2)).unwrap();
        assert!(r.timeline.is_none(), "observability is opt-in");

        let mut cfg = RunConfig::default_gpu(2);
        cfg.obs = Some(ObsConfig::default());
        let r = run(&two_stage(), &cfg).unwrap();
        let tl = r.timeline.expect("obs enabled");
        assert!(tl.spans().any(|s| s.name == "gen-0"));
        let stages: Vec<_> = tl
            .spans()
            .filter(|s| s.kind == dfl_obs::SpanKind::Stage)
            .map(|s| s.name.clone())
            .collect();
        assert_eq!(stages, vec!["stage 1", "stage 2"]);
        // Stage spans cover their jobs' run spans.
        let stage1 = tl.spans().find(|s| s.name == "stage 1").unwrap();
        let gen = tl.spans().find(|s| s.name == "gen-0").unwrap();
        assert!(stage1.start_ns <= gen.start_ns && gen.end_ns <= stage1.end_ns);
    }

    /// Full outcome tuple for byte-identity comparisons: every consumer-
    /// visible piece of a [`RunResult`], with the non-`PartialEq`
    /// measurement set compared through its serde value.
    type Outcome = (String, Vec<(String, u64, bool)>, FailureReport, String, u64);

    fn outcome(r: &RunResult) -> Outcome {
        (
            format!("{:.9}/{:?}", r.makespan_s, r.stage_spans),
            r.reports.iter().map(|j| (j.name.clone(), j.end_ns, j.failed)).collect(),
            r.failure.clone(),
            r.timeline.as_ref().map(dfl_obs::chrome_trace).unwrap_or_default(),
            r.events_dispatched,
        )
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dfl-engine-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_writes_manifests() {
        let spec = two_stage();
        let mut plain = RunConfig::default_gpu(2);
        plain.obs = Some(ObsConfig::sampled(10_000_000));
        let golden = run(&spec, &plain).unwrap();

        let dir = ckpt_dir("transparent");
        let mut cfg = plain.clone();
        cfg.checkpoint = Some(CheckpointConfig::to_dir(&dir).every_sim_ns(40_000_000));
        let ckpted = run(&spec, &cfg).unwrap();

        // Checkpointing must not perturb the simulation itself: makespan,
        // reports, and failure report agree with the plain run (the
        // timeline differs only by the extra checkpoint spans).
        assert_eq!(golden.makespan_s, ckpted.makespan_s);
        assert_eq!(outcome(&golden).1, outcome(&ckpted).1);
        assert_eq!(golden.failure, ckpted.failure);
        assert_eq!(golden.events_dispatched, ckpted.events_dispatched);
        let tl = ckpted.timeline.as_ref().unwrap();
        let n_ckpt =
            tl.spans().filter(|s| s.kind == dfl_obs::SpanKind::Checkpoint).count() as u64;
        assert!(n_ckpt >= 2, "baseline + periodic checkpoints, got {n_ckpt}");

        let manifest = crate::checkpoint::load_latest(&dir).unwrap();
        assert_eq!(manifest.version, MANIFEST_VERSION);
        assert_eq!(manifest.config_hash, config_hash(&spec, &cfg));
        assert!(manifest.seq >= 1);
        assert!(!manifest.ledger.is_empty(), "finished attempts recorded");
        assert!(manifest.files.iter().any(|f| f.path == "mid.dat"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_crash_then_resume_is_byte_identical() {
        let spec = two_stage();
        let dir = ckpt_dir("chaos");
        let mut cfg = RunConfig::default_gpu(2);
        cfg.obs = Some(ObsConfig::sampled(10_000_000));
        cfg.faults = FaultPlan::seeded(7).crash(0, 80_000_000, 50_000_000).io_errors(0.002);
        cfg.checkpoint =
            Some(CheckpointConfig::to_dir(&dir).every_sim_ns(30_000_000).on_incident());
        let golden = run(&spec, &cfg).unwrap();
        let golden_out = outcome(&golden);
        assert!(golden.events_dispatched > 4);

        for frac in [4, 2] {
            let _ = std::fs::remove_dir_all(&dir);
            let at_event = golden.events_dispatched / frac;
            let mut chaos_cfg = cfg.clone();
            chaos_cfg.faults = chaos_cfg.faults.chaos_crash(at_event);
            match run(&spec, &chaos_cfg) {
                Err(EngineError::Sim(SimError::CoordinatorCrash { at_event: e })) => {
                    assert_eq!(e, at_event)
                }
                other => panic!("expected coordinator crash, got {other:?}"),
            }
            // The dead coordinator left manifests behind; a fresh one picks
            // up the newest and finishes identically to the golden run.
            let resumed = resume_latest(&spec, &cfg).unwrap();
            assert_eq!(golden_out, outcome(&resumed), "crash at event {at_event}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_latest_skips_torn_top_manifest() {
        let spec = two_stage();
        let dir = ckpt_dir("torn-resume");
        let mut cfg = RunConfig::default_gpu(2);
        cfg.obs = Some(ObsConfig::sampled(10_000_000));
        cfg.checkpoint = Some(CheckpointConfig::to_dir(&dir).every_sim_ns(30_000_000));
        let golden = run(&spec, &cfg).unwrap();
        let golden_out = outcome(&golden);

        let _ = std::fs::remove_dir_all(&dir);
        let mut chaos_cfg = cfg.clone();
        chaos_cfg.faults = chaos_cfg.faults.chaos_crash(golden.events_dispatched / 2);
        assert!(run(&spec, &chaos_cfg).is_err());

        // Tear the newest manifest as a crash mid-write would: truncate it.
        let top = crate::checkpoint::latest_manifest(&dir).unwrap();
        let text = std::fs::read_to_string(&top).unwrap();
        assert!(text.len() > 2, "need a real manifest to tear");
        std::fs::write(&top, &text[..text.len() / 3]).unwrap();

        // Resume skips the torn file, warns about it, and still finishes
        // byte-identical to the golden run (any good manifest resumes
        // deterministically).
        let (resumed, torn) = resume_latest_with_warnings(&spec, &cfg).unwrap();
        assert_eq!(torn.len(), 1, "exactly the torn top manifest is skipped");
        assert_eq!(torn[0].path, top);
        assert_eq!(golden_out, outcome(&resumed));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_config_drift_with_typed_error() {
        let spec = two_stage();
        let dir = ckpt_dir("drift");
        let mut cfg = RunConfig::default_gpu(2);
        cfg.checkpoint = Some(CheckpointConfig::to_dir(&dir).every_sim_ns(30_000_000));
        run(&spec, &cfg).unwrap();

        let manifest = crate::checkpoint::load_latest(&dir).unwrap();
        let mut drifted = cfg.clone();
        drifted.retry.max_attempts += 1;
        match resume_from(&spec, &drifted, manifest) {
            Err(EngineError::Checkpoint(CheckpointError::HashMismatch { .. })) => {}
            other => panic!("expected HashMismatch, got {:?}", other.map(|r| r.makespan_s)),
        }

        // Chaos in the offered config is NOT drift: the kill switch is
        // excluded from the hash so crashed runs can resume.
        let manifest = crate::checkpoint::load_latest(&dir).unwrap();
        let mut armed = cfg.clone();
        armed.faults = armed.faults.chaos_crash(u64::MAX);
        assert!(resume_from(&spec, &armed, manifest).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_stages_policy_checkpoints_on_stage_boundaries() {
        let spec = two_stage();
        let dir = ckpt_dir("stages");
        let mut cfg = RunConfig::default_gpu(2);
        cfg.obs = Some(ObsConfig::default());
        cfg.checkpoint = Some(CheckpointConfig::to_dir(&dir).every_stages(1));
        let r = run(&spec, &cfg).unwrap();
        let tl = r.timeline.as_ref().unwrap();
        let n_ckpt = tl.spans().filter(|s| s.kind == dfl_obs::SpanKind::Checkpoint).count();
        // Baseline + one per completed stage boundary reached mid-run (the
        // final stage completes the run, so no pause fires after it).
        assert!(n_ckpt >= 2, "got {n_ckpt} checkpoint spans");
        let manifest = crate::checkpoint::load_latest(&dir).unwrap();
        assert!(manifest.engine.stages_ckpted >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_pass_reads_show_reuse_in_graph() {
        let mut w = WorkflowSpec::new("t");
        w.input("data", 16 << 20);
        w.task(
            TaskSpec::new("train-0", "train", 1).read(FileUse::whole("data").passes(4)),
        );
        let r = run(&w, &RunConfig::default_gpu(1)).unwrap();
        let g = dfl_core::DflGraph::from_measurements(&r.measurements);
        let d = g.find_vertex("data").unwrap();
        let e = g.edge(g.out_edges(d).next().unwrap());
        assert!(e.props.reuse_factor > 3.5, "4 passes ⇒ reuse ≈ 4: {}", e.props.reuse_factor);
        assert_eq!(e.props.volume, 64 << 20);
    }
}

#[cfg(test)]
mod placement_tests {
    use super::*;
    use crate::spec::{FileProduce, FileUse, TaskSpec};

    fn n_task_spec(n: usize) -> WorkflowSpec {
        let mut w = WorkflowSpec::new("p");
        w.input("in", 1 << 20);
        for i in 0..n {
            w.task(
                TaskSpec::new(&format!("t-{i}"), "t", 1)
                    .read(FileUse::whole("in"))
                    .write(FileProduce::new(&format!("o{i}"), 1024)),
            );
        }
        w
    }

    #[test]
    fn least_loaded_balances_counts() {
        let w = n_task_spec(10);
        let nodes = place_tasks(&Placement::LeastLoaded, &w.tasks, 4);
        let mut counts = [0u32; 4];
        for n in &nodes {
            counts[*n as usize] += 1;
        }
        assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
    }

    #[test]
    fn least_loaded_is_deterministic() {
        let w = n_task_spec(9);
        assert_eq!(
            place_tasks(&Placement::LeastLoaded, &w.tasks, 3),
            place_tasks(&Placement::LeastLoaded, &w.tasks, 3)
        );
    }

    #[test]
    fn explicit_placement_respected() {
        let w = n_task_spec(3);
        let explicit = vec![2u32, 0, 1];
        let nodes = place_tasks(&Placement::Explicit(explicit.clone()), &w.tasks, 3);
        assert_eq!(nodes, explicit);
    }

    #[test]
    fn least_loaded_runs_end_to_end() {
        let w = n_task_spec(8);
        let mut cfg = RunConfig::default_gpu(4);
        cfg.placement = Placement::LeastLoaded;
        let r = run(&w, &cfg).unwrap();
        let mut per_node = [0u32; 4];
        for rep in &r.reports {
            per_node[rep.node as usize] += 1;
        }
        assert_eq!(per_node, [2, 2, 2, 2]);
    }
}

/// Applies [`CoordinationAdvice`](dfl_core::analysis::CoordinationAdvice)
/// derived from a measured run to a run configuration — the automated
/// measure → analyze → remediate loop the paper sketches as future work.
///
/// Conservative mapping: co-location advice switches to group-aware
/// placement (only effective when the spec carries groups), staging advice
/// enables stage-0 input staging on the given node-local tier, locality
/// advice moves intermediates to that tier, and stall advice enables write
/// buffering. Cache advice enables the Table 4 hierarchy for remote
/// origins.
pub fn apply_advice(
    cfg: &mut RunConfig,
    advice: &dfl_core::analysis::CoordinationAdvice,
    local_tier: TierKind,
) {
    assert!(local_tier.is_node_local(), "advice staging targets a node-local tier");
    if advice.colocate_consumers {
        cfg.placement = Placement::ByGroup;
    }
    if !advice.stage_inputs.is_empty() {
        cfg.staging.stage_inputs = Some(local_tier);
    }
    if advice.local_intermediates {
        cfg.staging.intermediates_local = Some(local_tier);
    }
    if advice.buffer_writes {
        cfg.write_buffering = true;
    }
    if !advice.cache_files.is_empty() && cfg.cluster.has_tier(TierKind::Wan) {
        cfg.cache = Some(dfl_iosim::cache::CacheConfig::tazer_table4());
    }
}
