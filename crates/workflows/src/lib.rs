//! # dfl-workflows — the paper's five scientific workflows, simulated
//!
//! Parameterized generators reproducing the task/data DAG shapes, file
//! populations, and volume ratios of the workflows evaluated in the paper
//! (§6): 1000 Genomes, DeepDriveMD, Belle II Monte Carlo, Montage, and
//! Seismic Cross Correlation — plus a workflow [`engine`] that runs a
//! [`spec::WorkflowSpec`] on a simulated cluster under configurable
//! placement and staging policies, collecting DFL measurements as it goes.
//!
//! ```
//! use dfl_workflows::genomes::{self, GenomesConfig};
//! use dfl_workflows::engine::{run, RunConfig};
//!
//! let spec = genomes::generate(&GenomesConfig::tiny());
//! let result = run(&spec, &RunConfig::default_gpu(2)).unwrap();
//! assert!(result.makespan_s > 0.0);
//! let graph = dfl_core::DflGraph::from_measurements(&result.measurements);
//! assert!(graph.vertex_count() > 10);
//! ```

pub mod belle2;
pub mod catalog;
pub mod checkpoint;
pub mod ddmd;
pub mod engine;
pub mod genomes;
pub mod montage;
pub mod seismic;
pub mod spec;
pub mod taint;
pub mod watch;

pub use checkpoint::{
    config_hash, load_latest, load_latest_tolerant, load_manifest, latest_manifest,
    CheckpointConfig, CheckpointError, CheckpointManifest, TornManifest, MANIFEST_VERSION,
};
pub use engine::{
    resume_from, resume_latest, resume_latest_with_warnings, run, EngineError, EngineState,
    Placement, RetryPolicy, RunConfig, RunResult, Staging,
};
pub use spec::{FileUse, TaskSpec, WorkflowSpec};
pub use taint::{taint_cone, TaintCone};
pub use watch::{
    resume_controlled, run_controlled, run_watched, ControlledOptions, ControlledOutcome,
    PreemptCause, StepControl, WatchOptions, WindowSummary,
};
pub use dfl_iosim::sim::VerifyPolicy;
pub use dfl_iosim::{ChaosKind, FailureReport, FaultPlan};
