//! Crash-consistent checkpoints for the workflow engine.
//!
//! A checkpoint is a versioned on-disk [`CheckpointManifest`]: the complete
//! simulator state ([`SimSnapshot`]) at a quiescent point, the engine's
//! retry/recovery bookkeeping ([`EngineState`]), a ledger of every attempt
//! that has already finished, the intermediate-file metadata, and a hash of
//! the `(spec, config)` pair the run was started under.
//! [`crate::engine::resume_from`] revalidates the version and the hash,
//! restores the simulator, and continues mid-stage — replaying nothing.
//! Because the simulator is deterministic, a crash-killed run resumed from
//! its latest manifest finishes byte-identical to an uninterrupted one;
//! `tests/tests/chaos.rs` and `datalife chaos` assert exactly that.
//!
//! Manifests are written atomically (temp file + rename) as
//! `manifest-{seq:06}.json`, so a coordinator killed mid-write leaves the
//! previous manifest intact and [`load_latest`] always finds a complete one.

use std::fmt;
use std::path::{Path, PathBuf};

use dfl_iosim::fs::FileMeta;
use dfl_iosim::{SimError, SimSnapshot};
use serde::{Deserialize, Serialize, Value};

use crate::engine::{EngineState, RunConfig};
use crate::spec::WorkflowSpec;

/// Manifest schema version; bumped on incompatible layout changes. A
/// manifest carrying any other version is rejected with
/// [`CheckpointError::VersionMismatch`] before its payload is interpreted.
///
/// v2: integrity support — the embedded [`SimSnapshot`] carries per-replica
/// corruption roots, job taint, and verification counters, and `RunConfig`
/// (hashed into `config_hash`) gained the `verify` policy.
///
/// v3: sharded event core — the embedded [`SimSnapshot`] is shard-invariant
/// (per-node dispatch cursors instead of a single global queue), and
/// `RunConfig` gained `shards`, which is canonicalized out of `config_hash`
/// so a manifest may be resumed under a different shard count.
pub const MANIFEST_VERSION: u32 = 3;

/// When the engine writes checkpoint manifests. Independently of the
/// triggers below, a run with checkpointing enabled writes a baseline
/// `manifest-000000.json` at t=0 so there is always something to resume
/// from, however early the coordinator dies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory manifests land in, as `manifest-{seq:06}.json`.
    pub dir: PathBuf,
    /// Checkpoint whenever this many more workflow stages fully complete.
    pub every_stages: Option<u32>,
    /// Checkpoint on a sim-time cadence (ns).
    pub every_sim_ns: Option<u64>,
    /// Checkpoint after each handled incident batch (failed attempts that
    /// were repaired and resubmitted).
    pub on_incident: bool,
}

impl CheckpointConfig {
    /// A policy with no periodic triggers (only the t=0 baseline manifest);
    /// add triggers with the builder methods.
    pub fn to_dir(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every_stages: None,
            every_sim_ns: None,
            on_incident: false,
        }
    }

    /// Checkpoint every `n` fully-completed workflow stages.
    pub fn every_stages(mut self, n: u32) -> Self {
        self.every_stages = Some(n.max(1));
        self
    }

    /// Checkpoint every `ns` nanoseconds of sim time.
    pub fn every_sim_ns(mut self, ns: u64) -> Self {
        self.every_sim_ns = Some(ns.max(1));
        self
    }

    /// Checkpoint after every handled incident batch.
    pub fn on_incident(mut self) -> Self {
        self.on_incident = true;
        self
    }
}

/// One finished attempt (success or failure) as of the checkpoint — the
/// audit trail of work that will *not* be replayed on resume.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttemptRecord {
    /// Simulator job id.
    pub job: u32,
    pub name: String,
    pub node: u32,
    pub start_ns: u64,
    pub end_ns: u64,
    pub failed: bool,
}

/// A versioned, self-validating checkpoint of one engine run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointManifest {
    /// Schema version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Hash of the originating `(spec, config)` pair (chaos and checkpoint
    /// policy excluded); [`crate::engine::resume_from`] refuses a manifest
    /// whose hash does not match the configuration it is handed.
    pub config_hash: u64,
    /// Checkpoint sequence number (0 is the t=0 baseline).
    pub seq: u64,
    /// Sim time the checkpoint was taken at.
    pub sim_time_ns: u64,
    /// Every attempt already finished at this point.
    pub ledger: Vec<AttemptRecord>,
    /// Metadata (path, size, replica tiers) of every file the simulated
    /// filesystem holds — inputs plus intermediates produced so far.
    pub files: Vec<FileMeta>,
    /// The engine's dynamic bookkeeping (retry chains, recovery jobs,
    /// checkpoint cursors).
    pub engine: EngineState,
    /// Complete simulator state; restoring it is exact by construction.
    pub sim: SimSnapshot,
}

/// A manifest file that was present but unreadable — torn by a crash
/// mid-write (truncation) or corrupted afterwards (trailing garbage).
/// Tolerant loading ([`load_latest_tolerant`]) skips such files and falls
/// back to the previous good manifest, surfacing what it skipped as typed
/// warnings instead of failing the whole resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornManifest {
    /// The unreadable manifest file.
    pub path: PathBuf,
    /// Why it could not be loaded (I/O or parse detail).
    pub reason: String,
}

impl fmt::Display for TornManifest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "torn manifest {} skipped: {}", self.path.display(), self.reason)
    }
}

/// Why a checkpoint could not be written, read, or resumed from.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure writing or reading a manifest.
    Io(String),
    /// A manifest file exists but does not parse as one.
    Parse(String),
    /// The manifest's schema version is not [`MANIFEST_VERSION`].
    VersionMismatch { found: u32, expected: u32 },
    /// Every `manifest-*.json` in the directory is torn — there is no good
    /// manifest to fall back to.
    AllTorn { dir: PathBuf, torn: Vec<TornManifest> },
    /// The manifest was produced by a different `(spec, config)` pair than
    /// the one offered for resume — resuming would silently compute a
    /// wrong answer, so it is refused instead.
    HashMismatch { manifest: u64, config: u64 },
    /// No `manifest-*.json` exists in the checkpoint directory.
    NoManifest(PathBuf),
    /// The run configuration has no checkpoint policy to resume from.
    NoCheckpointConfig,
    /// The simulator rejected the embedded snapshot.
    Sim(SimError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::Parse(e) => write!(f, "bad checkpoint manifest: {e}"),
            CheckpointError::VersionMismatch { found, expected } => {
                write!(f, "manifest version {found} (this build reads {expected})")
            }
            CheckpointError::HashMismatch { manifest, config } => write!(
                f,
                "manifest config hash {manifest:#018x} does not match the \
                 offered configuration ({config:#018x}); refusing to resume"
            ),
            CheckpointError::AllTorn { dir, torn } => write!(
                f,
                "all {} manifest(s) in {} are torn; nothing to resume from",
                torn.len(),
                dir.display()
            ),
            CheckpointError::NoManifest(dir) => {
                write!(f, "no manifest-*.json in {}", dir.display())
            }
            CheckpointError::NoCheckpointConfig => {
                write!(f, "run configuration has no checkpoint policy")
            }
            CheckpointError::Sim(e) => write!(f, "restore failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<SimError> for CheckpointError {
    fn from(e: SimError) -> Self {
        CheckpointError::Sim(e)
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Identity hash of a `(spec, config)` pair, folded over the spec's JSON
/// and the config's debug rendering with the chaos clause, the checkpoint
/// policy, and the shard count removed: a crash-killed run may resume with
/// its kill switch still armed, from a different checkpoint directory, or
/// under a different shard count, but any change to the workload, cluster,
/// placement, staging, faults, retry, or observability settings changes
/// the hash and invalidates old manifests.
pub fn config_hash(spec: &WorkflowSpec, cfg: &RunConfig) -> u64 {
    let mut canon = cfg.clone();
    canon.faults = canon.faults.without_chaos();
    canon.checkpoint = None;
    // Dispatch order is byte-identical at any shard count, so the shard
    // knob never invalidates a manifest: a run checkpointed at one count
    // may resume at another.
    canon.shards = 1;
    let spec_json = serde_json::to_string(spec).unwrap_or_default();
    let cfg_repr = format!("{canon:?}");
    let mut h = 0xdf1c_0de5_0000_0000u64 ^ MANIFEST_VERSION as u64;
    for chunk in [spec_json.as_str(), cfg_repr.as_str()] {
        for &b in chunk.as_bytes() {
            h = splitmix(h ^ u64::from(b));
        }
        h = splitmix(h);
    }
    h
}

/// Serializes `manifest` and writes it atomically to
/// `dir/manifest-{seq:06}.json` (temp file + rename); returns the final
/// path. A crash between the two steps leaves at worst a stale `.tmp`.
pub fn write_manifest(dir: &Path, manifest: &CheckpointManifest) -> Result<PathBuf, CheckpointError> {
    std::fs::create_dir_all(dir).map_err(|e| CheckpointError::Io(e.to_string()))?;
    let name = format!("manifest-{:06}.json", manifest.seq);
    let json = serde_json::to_string(manifest).map_err(|e| CheckpointError::Io(e.to_string()))?;
    let tmp = dir.join(format!(".{name}.tmp"));
    let path = dir.join(name);
    std::fs::write(&tmp, json).map_err(|e| CheckpointError::Io(e.to_string()))?;
    std::fs::rename(&tmp, &path).map_err(|e| CheckpointError::Io(e.to_string()))?;
    Ok(path)
}

/// Reads and validates one manifest file. The schema version is checked on
/// the raw JSON value *before* the full payload is decoded, so a manifest
/// from an incompatible build fails with [`CheckpointError::VersionMismatch`]
/// rather than an opaque parse error.
pub fn load_manifest(path: &Path) -> Result<CheckpointManifest, CheckpointError> {
    let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
    let value: Value = serde_json::from_str(&text)
        .map_err(|e| CheckpointError::Parse(format!("{}: {e}", path.display())))?;
    let found = value["version"].as_u64().unwrap_or(0) as u32;
    if found != MANIFEST_VERSION {
        return Err(CheckpointError::VersionMismatch { found, expected: MANIFEST_VERSION });
    }
    CheckpointManifest::from_value(&value)
        .map_err(|e| CheckpointError::Parse(format!("{}: {}", path.display(), e.0)))
}

/// Every `manifest-{seq}.json` in `dir`, sorted by descending sequence.
fn manifest_paths_desc(dir: &Path) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
    let entries = std::fs::read_dir(dir).map_err(|e| CheckpointError::Io(e.to_string()))?;
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| CheckpointError::Io(e.to_string()))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(seq) = name
            .strip_prefix("manifest-")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        found.push((seq, entry.path()));
    }
    found.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    Ok(found)
}

/// Path of the highest-sequence manifest in `dir`, if any.
pub fn latest_manifest(dir: &Path) -> Result<PathBuf, CheckpointError> {
    manifest_paths_desc(dir)?
        .into_iter()
        .next()
        .map(|(_, p)| p)
        .ok_or_else(|| CheckpointError::NoManifest(dir.to_path_buf()))
}

/// Loads the highest-sequence manifest in `dir`, failing on the first
/// unreadable file. Strict by design — use [`load_latest_tolerant`] when a
/// torn top manifest should fall back to the previous good one.
pub fn load_latest(dir: &Path) -> Result<CheckpointManifest, CheckpointError> {
    load_manifest(&latest_manifest(dir)?)
}

/// Loads the highest-sequence *readable* manifest in `dir`.
///
/// Atomic rename makes a torn top manifest unlikely, but not impossible: a
/// crash on a filesystem that reorders the data flush behind the rename, a
/// partial copy between machines, or post-hoc corruption can all leave the
/// highest-sequence file truncated or carrying trailing garbage. Failing
/// the whole resume over it would discard every earlier good checkpoint, so
/// this walks manifests in descending sequence, skips any that fail to read
/// or parse, and returns the first good one along with a typed
/// [`TornManifest`] warning per skipped file.
///
/// A [`CheckpointError::VersionMismatch`] is *not* skipped: an intact
/// manifest from an incompatible build is a configuration problem, and
/// silently resuming from an older sequence would mask it.
pub fn load_latest_tolerant(
    dir: &Path,
) -> Result<(CheckpointManifest, Vec<TornManifest>), CheckpointError> {
    let candidates = manifest_paths_desc(dir)?;
    if candidates.is_empty() {
        return Err(CheckpointError::NoManifest(dir.to_path_buf()));
    }
    let mut torn = Vec::new();
    for (_, path) in candidates {
        match load_manifest(&path) {
            Ok(m) => return Ok((m, torn)),
            Err(e @ (CheckpointError::Io(_) | CheckpointError::Parse(_))) => {
                torn.push(TornManifest { path, reason: e.to_string() });
            }
            Err(hard) => return Err(hard),
        }
    }
    Err(CheckpointError::AllTorn { dir: dir.to_path_buf(), torn })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_hash_ignores_chaos_and_checkpoint_policy() {
        let spec = crate::spec::WorkflowSpec::new("h");
        let base = RunConfig::default_gpu(2);
        let h0 = config_hash(&spec, &base);

        let mut chaotic = base.clone();
        chaotic.faults = chaotic.faults.chaos_crash(99);
        assert_eq!(h0, config_hash(&spec, &chaotic), "chaos clause excluded");

        let mut ckpt = base.clone();
        ckpt.checkpoint = Some(CheckpointConfig::to_dir("/tmp/x").every_stages(1));
        assert_eq!(h0, config_hash(&spec, &ckpt), "checkpoint policy excluded");

        let mut other = base.clone();
        other.retry.max_attempts += 1;
        assert_ne!(h0, config_hash(&spec, &other), "retry policy included");

        let mut spec2 = crate::spec::WorkflowSpec::new("h");
        spec2.input("extra", 1);
        assert_ne!(h0, config_hash(&spec2, &base), "spec included");
    }

    #[test]
    fn latest_manifest_picks_highest_seq() {
        let dir = std::env::temp_dir().join(format!("dfl-ckpt-latest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for seq in [0u64, 3, 12] {
            std::fs::write(dir.join(format!("manifest-{seq:06}.json")), "{}").unwrap();
        }
        std::fs::write(dir.join("other.json"), "{}").unwrap();
        let p = latest_manifest(&dir).unwrap();
        assert!(p.ends_with("manifest-000012.json"), "{}", p.display());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A real manifest written to `dir` by running a tiny workflow with a
    /// t=0 checkpoint, returned as (path, text) for mutation by the torn
    /// tests.
    fn write_real_manifest(dir: &Path) -> (PathBuf, String) {
        use crate::spec::{FileProduce, FileUse, TaskSpec};
        let mut spec = crate::spec::WorkflowSpec::new("torn");
        spec.input("in.dat", 1 << 20);
        spec.task(
            TaskSpec::new("t0", "t", 1)
                .read(FileUse::whole("in.dat"))
                .write(FileProduce::new("out.dat", 1 << 20))
                .compute_ms(10),
        );
        let mut cfg = RunConfig::default_gpu(1);
        cfg.checkpoint = Some(CheckpointConfig::to_dir(dir));
        crate::engine::run(&spec, &cfg).unwrap();
        let path = latest_manifest(dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        (path, text)
    }

    #[test]
    fn tolerant_load_skips_truncated_and_garbage_manifests() {
        let dir = std::env::temp_dir().join(format!("dfl-ckpt-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (good_path, text) = write_real_manifest(&dir);
        let good_seq: u64 = good_path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_prefix("manifest-"))
            .and_then(|n| n.strip_suffix(".json"))
            .and_then(|s| s.parse().ok())
            .unwrap();

        // A truncated higher-sequence manifest (crash mid-write) ...
        let torn_a = dir.join(format!("manifest-{:06}.json", good_seq + 1));
        std::fs::write(&torn_a, &text[..text.len() / 2]).unwrap();
        // ... and an even higher one with trailing garbage.
        let torn_b = dir.join(format!("manifest-{:06}.json", good_seq + 2));
        std::fs::write(&torn_b, format!("{text}garbage-after-close")).unwrap();

        // Strict load fails on the torn top manifest.
        assert!(matches!(load_latest(&dir), Err(CheckpointError::Parse(_))));

        // Tolerant load falls back to the good one, warning per skip in
        // descending-sequence order.
        let (m, torn) = load_latest_tolerant(&dir).unwrap();
        assert_eq!(m.seq, good_seq);
        assert_eq!(m.version, MANIFEST_VERSION);
        let skipped: Vec<_> = torn.iter().map(|t| t.path.clone()).collect();
        assert_eq!(skipped, vec![torn_b, torn_a]);
        for t in &torn {
            assert!(!t.reason.is_empty(), "{t}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tolerant_load_reports_all_torn() {
        let dir = std::env::temp_dir().join(format!("dfl-ckpt-alltorn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest-000000.json"), "{\"version\": 3,").unwrap();
        std::fs::write(dir.join("manifest-000001.json"), "not json at all").unwrap();
        match load_latest_tolerant(&dir) {
            Err(CheckpointError::AllTorn { torn, .. }) => assert_eq!(torn.len(), 2),
            other => panic!("expected AllTorn, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tolerant_load_keeps_version_mismatch_hard() {
        let dir = std::env::temp_dir().join(format!("dfl-ckpt-tolver-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Intact manifest from an incompatible build must not be skipped
        // over in favour of an older sequence.
        std::fs::write(dir.join("manifest-000000.json"), "{\"version\": 3}").unwrap();
        std::fs::write(dir.join("manifest-000001.json"), "{\"version\": 999}").unwrap();
        match load_latest_tolerant(&dir) {
            Err(CheckpointError::VersionMismatch { found: 999, .. }) => {}
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_unknown_version() {
        let dir = std::env::temp_dir().join(format!("dfl-ckpt-ver-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("manifest-000000.json");
        std::fs::write(&p, "{\"version\": 999}").unwrap();
        match load_manifest(&p) {
            Err(CheckpointError::VersionMismatch { found: 999, expected }) => {
                assert_eq!(expected, MANIFEST_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
