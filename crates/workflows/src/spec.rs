//! Abstract workflow descriptions: tasks, their file uses, and compute.
//!
//! A [`WorkflowSpec`] is resource-neutral — it says *what* each task reads,
//! writes, and computes, but not where tasks run or where files live. The
//! [`engine`](crate::engine) binds it to a cluster, placement, and staging
//! policy.

use serde::{Deserialize, Serialize};

/// A pre-existing input file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExternalFile {
    pub path: String,
    pub size: u64,
}

/// One read relation of a task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileUse {
    pub file: String,
    /// Starting offset of the region this task consumes.
    pub offset: u64,
    /// Bytes consumed per pass; 0 means "to end of file".
    pub bytes: u64,
    /// Number of passes over the region (≥ 2 models intra-task reuse, e.g.
    /// ML training epochs).
    pub passes: u32,
    /// Operations the region is split into per pass (controls op counts and
    /// locality statistics).
    pub ops: u32,
}

impl FileUse {
    /// Reads the whole file once in `ops` operations.
    pub fn whole(file: &str) -> Self {
        FileUse { file: file.into(), offset: 0, bytes: 0, passes: 1, ops: 8 }
    }

    /// Reads `bytes` at `offset` once.
    pub fn region(file: &str, offset: u64, bytes: u64) -> Self {
        FileUse { file: file.into(), offset, bytes, passes: 1, ops: 4 }
    }

    pub fn passes(mut self, n: u32) -> Self {
        self.passes = n.max(1);
        self
    }

    pub fn ops(mut self, n: u32) -> Self {
        self.ops = n.max(1);
        self
    }
}

/// One write relation of a task (appending; `ops` splits it into that many
/// write operations).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileProduce {
    pub file: String,
    pub bytes: u64,
    pub ops: u32,
}

impl FileProduce {
    pub fn new(file: &str, bytes: u64) -> Self {
        FileProduce { file: file.into(), bytes, ops: 4 }
    }

    pub fn ops(mut self, n: u32) -> Self {
        self.ops = n.max(1);
        self
    }
}

/// One task of a workflow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Instance name, e.g. `indiv-chr1-3`.
    pub name: String,
    /// Logical name for DFL template aggregation, e.g. `indiv`.
    pub logical: String,
    /// Pipeline stage (for stage-time reporting; staging jobs use stage 0).
    pub stage: u32,
    pub reads: Vec<FileUse>,
    pub writes: Vec<FileProduce>,
    /// Pure computation, ns.
    pub compute_ns: u64,
    /// Explicit control dependencies (indices into `WorkflowSpec::tasks`);
    /// data dependencies through files are inferred automatically.
    pub after: Vec<usize>,
    /// Co-location group (e.g. the caterpillar a task belongs to); used by
    /// group-aware placement.
    pub group: Option<u32>,
}

impl TaskSpec {
    pub fn new(name: &str, logical: &str, stage: u32) -> Self {
        TaskSpec {
            name: name.into(),
            logical: logical.into(),
            stage,
            reads: Vec::new(),
            writes: Vec::new(),
            compute_ns: 0,
            after: Vec::new(),
            group: None,
        }
    }

    pub fn read(mut self, f: FileUse) -> Self {
        self.reads.push(f);
        self
    }

    pub fn write(mut self, f: FileProduce) -> Self {
        self.writes.push(f);
        self
    }

    pub fn compute_ms(mut self, ms: u64) -> Self {
        self.compute_ns = ms * 1_000_000;
        self
    }

    pub fn compute_ns(mut self, ns: u64) -> Self {
        self.compute_ns = ns;
        self
    }

    pub fn after(mut self, idx: usize) -> Self {
        self.after.push(idx);
        self
    }

    pub fn group(mut self, g: u32) -> Self {
        self.group = Some(g);
        self
    }
}

/// A complete workflow description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkflowSpec {
    pub name: String,
    pub inputs: Vec<ExternalFile>,
    pub tasks: Vec<TaskSpec>,
}

impl WorkflowSpec {
    pub fn new(name: &str) -> Self {
        WorkflowSpec { name: name.into(), inputs: Vec::new(), tasks: Vec::new() }
    }

    pub fn input(&mut self, path: &str, size: u64) {
        self.inputs.push(ExternalFile { path: path.into(), size });
    }

    /// Adds a task, returning its index for `after` references.
    pub fn task(&mut self, t: TaskSpec) -> usize {
        self.tasks.push(t);
        self.tasks.len() - 1
    }

    /// Number of pipeline stages (max stage + 1).
    pub fn stage_count(&self) -> u32 {
        self.tasks.iter().map(|t| t.stage + 1).max().unwrap_or(0)
    }

    /// Total bytes read across all tasks (volume, counting passes).
    pub fn total_read_volume(&self) -> u64 {
        let size_of = |f: &str| {
            self.inputs
                .iter()
                .find(|i| i.path == f)
                .map(|i| i.size)
                .or_else(|| {
                    self.tasks
                        .iter()
                        .flat_map(|t| &t.writes)
                        .filter(|w| w.file == f)
                        .map(|w| w.bytes)
                        .max()
                })
                .unwrap_or(0)
        };
        self.tasks
            .iter()
            .flat_map(|t| &t.reads)
            .map(|r| {
                let b = if r.bytes == 0 { size_of(&r.file).saturating_sub(r.offset) } else { r.bytes };
                b * u64::from(r.passes)
            })
            .sum()
    }

    /// Total bytes written across all tasks.
    pub fn total_write_volume(&self) -> u64 {
        self.tasks.iter().flat_map(|t| &t.writes).map(|w| w.bytes).sum()
    }

    /// Validates internal consistency: every read refers to an input or to
    /// some task's output; `after` indices are in range.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashSet;
        let mut known: HashSet<&str> = self.inputs.iter().map(|i| i.path.as_str()).collect();
        for t in &self.tasks {
            for w in &t.writes {
                known.insert(w.file.as_str());
            }
        }
        for (i, t) in self.tasks.iter().enumerate() {
            for r in &t.reads {
                if !known.contains(r.file.as_str()) {
                    return Err(format!("task {} reads unknown file {}", t.name, r.file));
                }
            }
            for &a in &t.after {
                if a >= self.tasks.len() {
                    return Err(format!("task {} has out-of-range dependency {a}", t.name));
                }
                if a == i {
                    return Err(format!("task {} depends on itself", t.name));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> WorkflowSpec {
        let mut w = WorkflowSpec::new("demo");
        w.input("in.dat", 1000);
        let a = w.task(
            TaskSpec::new("gen-0", "gen", 0)
                .read(FileUse::whole("in.dat"))
                .write(FileProduce::new("mid.dat", 500))
                .compute_ms(10),
        );
        w.task(
            TaskSpec::new("use-0", "use", 1)
                .read(FileUse::region("mid.dat", 0, 250).passes(2))
                .after(a),
        );
        w
    }

    #[test]
    fn volumes() {
        let w = pipeline();
        assert_eq!(w.total_read_volume(), 1000 + 500);
        assert_eq!(w.total_write_volume(), 500);
        assert_eq!(w.stage_count(), 2);
    }

    #[test]
    fn validate_ok() {
        assert!(pipeline().validate().is_ok());
    }

    #[test]
    fn validate_catches_unknown_file() {
        let mut w = pipeline();
        w.tasks[1].reads.push(FileUse::whole("ghost"));
        assert!(w.validate().unwrap_err().contains("ghost"));
    }

    #[test]
    fn validate_catches_bad_dep() {
        let mut w = pipeline();
        w.tasks[0].after.push(99);
        assert!(w.validate().unwrap_err().contains("out-of-range"));
    }

    #[test]
    fn builders_clamp() {
        let f = FileUse::whole("x").passes(0).ops(0);
        assert_eq!(f.passes, 1);
        assert_eq!(f.ops, 1);
    }
}
