//! The 1000 Genomes proxy workflow (§6.1, §6.2; Figs. 2a, 4a, 5, 6).
//!
//! Five task types per chromosome: `indiv` (chromosome chunk processing,
//! data-parallel fan-out from the chromosome file), `merge` (aggregator over
//! all indiv outputs), `sift` (independent SNP scoring), and `freq`/`mutat`
//! (per-population consumers of merge+sift outputs). Each chromosome forms
//! one caterpillar tree; tasks carry the chromosome as their co-location
//! group.

use serde::{Deserialize, Serialize};

use crate::spec::{FileProduce, FileUse, TaskSpec, WorkflowSpec};

const MB: u64 = 1 << 20;

/// Generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenomesConfig {
    /// Number of chromosomes (caterpillars). Paper: 10.
    pub chromosomes: u32,
    /// indiv tasks per chromosome (the "problem size"). Paper: 30.
    pub indiv_per_chr: u32,
    /// Populations (freq and mutat tasks per chromosome). Paper: 7.
    pub populations: u32,
    /// Size of each chromosome input file.
    pub chr_file_bytes: u64,
    /// Size of the shared `columns` file every indiv reads fully.
    pub columns_bytes: u64,
    /// Per-chromosome SIFT annotation input.
    pub annotation_bytes: u64,
    /// Output of each indiv task.
    pub indiv_out_bytes: u64,
    /// Output of each merge task (the large merged archive freq/mutat read).
    pub merged_bytes: u64,
    /// Output of each sift task.
    pub sifted_bytes: u64,
    /// Compute per task type, ms.
    pub indiv_compute_ms: u64,
    pub merge_compute_ms: u64,
    pub sift_compute_ms: u64,
    pub freq_compute_ms: u64,
    pub mutat_compute_ms: u64,
}

impl Default for GenomesConfig {
    fn default() -> Self {
        GenomesConfig {
            chromosomes: 10,
            indiv_per_chr: 30,
            populations: 7,
            chr_file_bytes: 600 * MB,
            columns_bytes: 200 * MB,
            annotation_bytes: 200 * MB,
            indiv_out_bytes: 20 * MB,
            merged_bytes: 600 * MB,
            sifted_bytes: 10 * MB,
            indiv_compute_ms: 1_000,
            merge_compute_ms: 800,
            sift_compute_ms: 800,
            freq_compute_ms: 1_500,
            mutat_compute_ms: 1_500,
        }
    }
}

impl GenomesConfig {
    /// A miniature instance for tests: 2 chromosomes × 4 indiv × 2 pops.
    pub fn tiny() -> Self {
        GenomesConfig {
            chromosomes: 2,
            indiv_per_chr: 4,
            populations: 2,
            chr_file_bytes: 8 * MB,
            columns_bytes: 2 * MB,
            annotation_bytes: 4 * MB,
            indiv_out_bytes: MB,
            merged_bytes: 4 * MB,
            sifted_bytes: MB,
            indiv_compute_ms: 10,
            merge_compute_ms: 10,
            sift_compute_ms: 10,
            freq_compute_ms: 10,
            mutat_compute_ms: 10,
        }
    }

    pub fn task_count(&self) -> u32 {
        // indiv + merge + sift + freq + mutat.
        self.chromosomes * (self.indiv_per_chr + 2 + 2 * self.populations)
    }
}

/// Generates the workflow.
pub fn generate(cfg: &GenomesConfig) -> WorkflowSpec {
    let mut w = WorkflowSpec::new("1000genomes");
    w.input("columns.txt", cfg.columns_bytes);
    for c in 1..=cfg.chromosomes {
        w.input(&format!("ALL.chr{c}.250000.vcf"), cfg.chr_file_bytes);
        w.input(&format!("ALL.chr{c}.annotation.vcf"), cfg.annotation_bytes);
    }

    for c in 1..=cfg.chromosomes {
        let chr_file = format!("ALL.chr{c}.250000.vcf");
        let group = c - 1;

        // indiv: data-parallel fan-out; each instance processes a disjoint
        // chunk of the chromosome file and reads the shared columns file.
        let chunk = cfg.chr_file_bytes / u64::from(cfg.indiv_per_chr);
        let mut indiv_ids = Vec::new();
        for i in 0..cfg.indiv_per_chr {
            let id = w.task(
                TaskSpec::new(&format!("indiv-chr{c}-{i}"), "indiv", 2)
                    .read(FileUse::region(&chr_file, u64::from(i) * chunk, chunk).ops(8))
                    .read(FileUse::whole("columns.txt").ops(4))
                    .write(FileProduce::new(
                        &format!("chr{c}n-{i}-{}.tar.gz", i + 1),
                        cfg.indiv_out_bytes,
                    ))
                    .compute_ms(cfg.indiv_compute_ms)
                    .group(group),
            );
            indiv_ids.push(id);
        }

        // merge: aggregator (and mild compressor) over all indiv outputs.
        let mut merge_task = TaskSpec::new(&format!("merge-chr{c}"), "merge", 3)
            .write(FileProduce::new(&format!("chr{c}n.tar.gz"), cfg.merged_bytes))
            .compute_ms(cfg.merge_compute_ms)
            .group(group);
        for i in 0..cfg.indiv_per_chr {
            merge_task = merge_task.read(FileUse::whole(&format!("chr{c}n-{i}-{}.tar.gz", i + 1)).ops(2));
        }
        w.task(merge_task);

        // sift: independent scoring of the annotation input; runs
        // concurrently with merge (same stage).
        w.task(
            TaskSpec::new(&format!("sift-chr{c}"), "sift", 3)
                .read(FileUse::whole(&format!("ALL.chr{c}.annotation.vcf")).ops(8))
                .write(FileProduce::new(&format!("sifted.chr{c}.txt"), cfg.sifted_bytes))
                .compute_ms(cfg.sift_compute_ms)
                .group(group),
        );

        // freq & mutat: per-population consumers of merge + sift outputs.
        for p in 0..cfg.populations {
            // freq/mutat scan the merged archive twice (per-population
            // filtering pass plus the overlap computation pass).
            w.task(
                TaskSpec::new(&format!("freq-chr{c}-pop{p}"), "freq", 4)
                    .read(FileUse::whole(&format!("chr{c}n.tar.gz")).ops(8).passes(2))
                    .read(FileUse::whole(&format!("sifted.chr{c}.txt")).ops(2))
                    .write(FileProduce::new(&format!("freq.chr{c}.pop{p}.out"), MB))
                    .compute_ms(cfg.freq_compute_ms)
                    .group(group),
            );
            w.task(
                TaskSpec::new(&format!("mutat-chr{c}-pop{p}"), "mutat", 4)
                    .read(FileUse::whole(&format!("chr{c}n.tar.gz")).ops(8).passes(2))
                    .read(FileUse::whole(&format!("sifted.chr{c}.txt")).ops(2))
                    .write(FileProduce::new(&format!("mutat.chr{c}.pop{p}.out"), MB))
                    .compute_ms(cfg.mutat_compute_ms)
                    .group(group),
            );
        }
    }
    w
}

/// The six Fig. 6 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fig6Config {
    /// 15 nodes, everything on BeeGFS, chromosome-oblivious placement.
    N15Bfs,
    /// 10 nodes, everything on BeeGFS, caterpillar (per-chromosome)
    /// co-location.
    N10Bfs,
    /// 10 nodes, intermediates in node-local RAM-disks.
    N10BfsShm,
    /// 10 nodes, intermediates on node-local SSDs.
    N10BfsSsd,
    /// 10 nodes, RAM-disk intermediates plus stage-0 input staging.
    N10BfsShmStaging,
    /// 10 nodes, SSD intermediates plus input staging.
    N10BfsSsdStaging,
}

impl Fig6Config {
    pub fn all() -> [Fig6Config; 6] {
        [
            Fig6Config::N15Bfs,
            Fig6Config::N10Bfs,
            Fig6Config::N10BfsShm,
            Fig6Config::N10BfsSsd,
            Fig6Config::N10BfsShmStaging,
            Fig6Config::N10BfsSsdStaging,
        ]
    }

    pub fn label(self) -> &'static str {
        match self {
            Fig6Config::N15Bfs => "15/bfs",
            Fig6Config::N10Bfs => "10/bfs",
            Fig6Config::N10BfsShm => "10/bfs+shm",
            Fig6Config::N10BfsSsd => "10/bfs+ssd",
            Fig6Config::N10BfsShmStaging => "10/bfs+shm+staging",
            Fig6Config::N10BfsSsdStaging => "10/bfs+ssd+staging",
        }
    }

    /// The run configuration for this Fig. 6 variant (§6.2).
    pub fn run_config(self) -> crate::engine::RunConfig {
        use crate::engine::{Placement, RunConfig, Staging};
        use dfl_iosim::storage::TierKind;

        let (nodes, placement) = match self {
            Fig6Config::N15Bfs => (15, Placement::RoundRobin),
            _ => (10, Placement::ByGroup),
        };
        let staging = match self {
            Fig6Config::N15Bfs | Fig6Config::N10Bfs => Staging::all_shared(TierKind::Beegfs),
            Fig6Config::N10BfsShm => {
                Staging::local_intermediates(TierKind::Beegfs, TierKind::Ramdisk)
            }
            Fig6Config::N10BfsSsd => Staging::local_intermediates(TierKind::Beegfs, TierKind::Ssd),
            Fig6Config::N10BfsShmStaging => Staging::staged(TierKind::Beegfs, TierKind::Ramdisk),
            Fig6Config::N10BfsSsdStaging => Staging::staged(TierKind::Beegfs, TierKind::Ssd),
        };
        let mut cfg = RunConfig::default_gpu(nodes);
        cfg.placement = placement;
        cfg.staging = staging;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;

    #[test]
    fn default_matches_paper_counts() {
        let cfg = GenomesConfig::default();
        let w = generate(&cfg);
        // 300 indiv, 10 merge, 10 sift, 70 freq, 70 mutat.
        assert_eq!(w.tasks.len(), 460);
        assert_eq!(cfg.task_count(), 460);
        assert_eq!(w.tasks.iter().filter(|t| t.logical == "indiv").count(), 300);
        assert_eq!(w.tasks.iter().filter(|t| t.logical == "merge").count(), 10);
        assert_eq!(w.tasks.iter().filter(|t| t.logical == "freq").count(), 70);
        assert_eq!(w.tasks.iter().filter(|t| t.logical == "mutat").count(), 70);
        w.validate().unwrap();
    }

    #[test]
    fn tiny_runs_end_to_end() {
        let w = generate(&GenomesConfig::tiny());
        let r = run(&w, &Fig6Config::N10Bfs.run_config()).unwrap();
        assert!(r.makespan_s > 0.0);
        // Stages present: 2 (indiv), 3 (merge+sift), 4 (freq+mutat).
        for s in [2, 3, 4] {
            assert!(r.stage_time(s) > 0.0, "stage {s}");
        }
    }

    #[test]
    fn dfl_graph_shows_expected_patterns() {
        use dfl_core::analysis::{analyze, AnalysisConfig, PatternKind};
        let w = generate(&GenomesConfig::tiny());
        let r = run(&w, &Fig6Config::N10Bfs.run_config()).unwrap();
        let g = dfl_core::DflGraph::from_measurements(&r.measurements);
        assert!(g.is_dag());

        let cfg = AnalysisConfig {
            volume_threshold: 1 << 20,
            fan_in_threshold: 3,
            ..AnalysisConfig::default()
        };
        let ops = analyze(&g, &cfg);
        // merge is an aggregator; chromosome files show data-parallel
        // splitter fan-out; chrNn.tar.gz shows inter-task locality.
        assert!(ops.iter().any(|o| o.pattern == PatternKind::Aggregator
            || o.pattern == PatternKind::CompressorAggregator));
        assert!(ops.iter().any(|o| o.pattern == PatternKind::InterTaskLocality));
        assert!(ops.iter().any(|o| o.pattern == PatternKind::Splitter));
    }

    #[test]
    fn staging_config_beats_shared_everything() {
        let w = generate(&GenomesConfig::tiny());
        let base = run(&w, &Fig6Config::N10Bfs.run_config()).unwrap();
        let staged = run(&w, &Fig6Config::N10BfsShmStaging.run_config()).unwrap();
        assert!(
            staged.makespan_s < base.makespan_s,
            "staged {:.3} vs base {:.3}",
            staged.makespan_s,
            base.makespan_s
        );
    }
}
