//! DeepDriveMD (§6.1, §6.3; Figs. 2b, 2f, 4b, 7): deep-learning-driven
//! molecular dynamics for protein folding.
//!
//! The **Original** pipeline is the paper's 4-stage loop: `sim` ×N →
//! `aggregate` → `train` → `lof` (inference), iterated. `train` re-reads the
//! aggregated HDF5 file (intra-task reuse) and `lof` reads the same data
//! (inter-task reuse); only about half the aggregated data is used by either
//! (data non-use).
//!
//! The **Shortened** pipeline applies the paper's remediations: aggregation
//! is coalesced into the consumers (train/lof read simulation outputs
//! directly), and training is moved off the critical path into an
//! asynchronous outer loop — the inner loop is `sim → lof`, with `lof` using
//! the most recent *available* model.

use serde::{Deserialize, Serialize};

use crate::spec::{FileProduce, FileUse, TaskSpec, WorkflowSpec};

const MB: u64 = 1 << 20;

/// Generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DdmdConfig {
    /// Simulation tasks per iteration. Paper: 12.
    pub n_sims: u32,
    /// Pipeline iterations. Paper: 5.
    pub iterations: u32,
    /// Output of each simulation task (HDF5 contact maps).
    pub h5_bytes: u64,
    /// Aggregated file size.
    pub combined_bytes: u64,
    /// Model checkpoint size.
    pub model_bytes: u64,
    /// Outlier list size.
    pub outlier_bytes: u64,
    /// Fraction of the aggregated data each consumer actually uses
    /// (the paper observes ~0.5 — data non-use).
    pub used_fraction: f64,
    /// Passes train makes over its region (intra-task reuse; paper's 2.4 GB
    /// volume over a ~0.6 GB footprint ⇒ 4).
    pub train_passes: u32,
    pub sim_compute_ms: u64,
    pub agg_compute_ms: u64,
    pub train_compute_ms: u64,
    pub lof_compute_ms: u64,
}

impl Default for DdmdConfig {
    fn default() -> Self {
        DdmdConfig {
            n_sims: 12,
            iterations: 5,
            h5_bytes: 100 * MB,
            combined_bytes: 1200 * MB,
            model_bytes: 50 * MB,
            outlier_bytes: 10 * MB,
            used_fraction: 0.5,
            train_passes: 4,
            sim_compute_ms: 14_000,
            agg_compute_ms: 2_000,
            train_compute_ms: 25_000,
            lof_compute_ms: 10_000,
        }
    }
}

impl DdmdConfig {
    /// Miniature instance for tests.
    pub fn tiny() -> Self {
        DdmdConfig {
            n_sims: 3,
            iterations: 2,
            h5_bytes: 4 * MB,
            combined_bytes: 12 * MB,
            model_bytes: MB,
            outlier_bytes: MB,
            used_fraction: 0.5,
            train_passes: 4,
            sim_compute_ms: 20,
            agg_compute_ms: 10,
            train_compute_ms: 50,
            lof_compute_ms: 20,
        }
    }
}

/// Which pipeline variant to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pipeline {
    /// The paper's synchronous 4-stage pipeline.
    Original,
    /// Coalesced aggregation + asynchronous training (3 stages, 2-stage
    /// inner loop).
    Shortened,
}

/// Generates the workflow for `iterations` of the chosen pipeline.
pub fn generate(cfg: &DdmdConfig, pipeline: Pipeline) -> WorkflowSpec {
    let mut w = WorkflowSpec::new(match pipeline {
        Pipeline::Original => "ddmd-original",
        Pipeline::Shortened => "ddmd-shortened",
    });
    w.input("initial.pdb", 10 * MB);

    let used = (cfg.combined_bytes as f64 * cfg.used_fraction) as u64;
    let mut prev_outliers: Option<String> = None;
    let mut prev_model: Option<String> = None;

    for it in 0..cfg.iterations {
        // --- Stage 1: simulations ---
        let mut sim_ids = Vec::new();
        for k in 0..cfg.n_sims {
            let mut t = TaskSpec::new(&format!("sim-it{it}-{k}"), "sim", 1)
                .write(FileProduce::new(&format!("h5-it{it}-{k}.h5"), cfg.h5_bytes))
                .compute_ms(cfg.sim_compute_ms)
                .group(k % 2);
            t = match (&prev_outliers, it) {
                (Some(o), _) => t.read(FileUse::whole(o).ops(2)),
                (None, _) => t.read(FileUse::whole("initial.pdb").ops(2)),
            };
            sim_ids.push(w.task(t));
        }

        match pipeline {
            Pipeline::Original => {
                // --- Stage 2: aggregation ---
                let combined = format!("combined-it{it}.h5");
                let mut agg = TaskSpec::new(&format!("aggregate-it{it}"), "aggregate", 2)
                    .write(FileProduce::new(&combined, cfg.combined_bytes).ops(16))
                    .compute_ms(cfg.agg_compute_ms)
                    .group(0);
                for k in 0..cfg.n_sims {
                    agg = agg.read(FileUse::whole(&format!("h5-it{it}-{k}.h5")).ops(4));
                }
                let agg_id = w.task(agg);

                // --- Stage 3: training (re-reads half the data 4×) ---
                let model = format!("model-it{it}.pt");
                let train_id = w.task(
                    TaskSpec::new(&format!("train-it{it}"), "train", 3)
                        .read(FileUse::region(&combined, 0, used).passes(cfg.train_passes).ops(16))
                        .write(FileProduce::new(&model, cfg.model_bytes))
                        .compute_ms(cfg.train_compute_ms)
                        .after(agg_id)
                        .group(0),
                );

                // --- Stage 4: inference (lof) reads the same data ---
                let outliers = format!("outliers-it{it}.json");
                w.task(
                    TaskSpec::new(&format!("lof-it{it}"), "lof", 4)
                        .read(FileUse::region(&combined, 0, used).ops(12))
                        .read(FileUse::region(&combined, 0, used * 2 / 5).ops(4))
                        .read(FileUse::whole(&model))
                        .write(FileProduce::new(&outliers, cfg.outlier_bytes))
                        .compute_ms(cfg.lof_compute_ms)
                        .after(train_id)
                        .group(1),
                );
                prev_outliers = Some(outliers);
                prev_model = Some(model);
            }
            Pipeline::Shortened => {
                // --- Outer loop: asynchronous training over sim outputs.
                // Nothing in the inner loop depends on it.
                let model = format!("model-it{it}.pt");
                let mut train = TaskSpec::new(&format!("train-it{it}"), "train", 3)
                    .write(FileProduce::new(&model, cfg.model_bytes))
                    .compute_ms(cfg.train_compute_ms)
                    .group(0);
                for k in 0..cfg.n_sims / 2 {
                    // Coalesced aggregation: train reads the h5 halves it
                    // needs, repeatedly (same reuse as before).
                    train = train.read(
                        FileUse::whole(&format!("h5-it{it}-{k}.h5"))
                            .passes(cfg.train_passes)
                            .ops(8),
                    );
                }
                w.task(train);

                // --- Inner loop: lof consumes sim outputs directly, using
                // the latest available model (previous iteration's).
                let outliers = format!("outliers-it{it}.json");
                let mut lof = TaskSpec::new(&format!("lof-it{it}"), "lof", 4)
                    .write(FileProduce::new(&outliers, cfg.outlier_bytes))
                    .compute_ms(cfg.lof_compute_ms)
                    .group(1);
                for k in 0..cfg.n_sims / 2 {
                    lof = lof.read(FileUse::whole(&format!("h5-it{it}-{k}.h5")).ops(8));
                }
                if let Some(m) = &prev_model {
                    lof = lof.read(FileUse::whole(m));
                }
                w.task(lof);
                prev_outliers = Some(outliers);
                prev_model = Some(model);
            }
        }
    }
    w
}

/// The Fig. 7 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fig7Config {
    OriginalNfs,
    OriginalBfs,
    ShortenedNfs,
    ShortenedBfs,
    ShortenedBfsShm,
}

impl Fig7Config {
    pub fn all() -> [Fig7Config; 5] {
        [
            Fig7Config::OriginalNfs,
            Fig7Config::OriginalBfs,
            Fig7Config::ShortenedNfs,
            Fig7Config::ShortenedBfs,
            Fig7Config::ShortenedBfsShm,
        ]
    }

    pub fn label(self) -> &'static str {
        match self {
            Fig7Config::OriginalNfs => "original/nfs",
            Fig7Config::OriginalBfs => "original/bfs",
            Fig7Config::ShortenedNfs => "shortened/nfs",
            Fig7Config::ShortenedBfs => "shortened/bfs",
            Fig7Config::ShortenedBfsShm => "shortened/bfs+shm",
        }
    }

    pub fn pipeline(self) -> Pipeline {
        match self {
            Fig7Config::OriginalNfs | Fig7Config::OriginalBfs => Pipeline::Original,
            _ => Pipeline::Shortened,
        }
    }

    /// 2 GPU-cluster nodes (§6.3).
    pub fn run_config(self) -> crate::engine::RunConfig {
        use crate::engine::{Placement, RunConfig, Staging};
        use dfl_iosim::storage::TierKind;

        let mut cfg = RunConfig::default_gpu(2);
        cfg.placement = Placement::ByGroup;
        cfg.staging = match self {
            Fig7Config::OriginalNfs | Fig7Config::ShortenedNfs => {
                Staging::all_shared(TierKind::Nfs)
            }
            Fig7Config::OriginalBfs | Fig7Config::ShortenedBfs => {
                Staging::all_shared(TierKind::Beegfs)
            }
            Fig7Config::ShortenedBfsShm => {
                Staging::local_intermediates(TierKind::Beegfs, TierKind::Ramdisk)
            }
        };
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;

    #[test]
    fn original_structure() {
        let cfg = DdmdConfig::default();
        let w = generate(&cfg, Pipeline::Original);
        // Per iteration: 12 sim + aggregate + train + lof.
        assert_eq!(w.tasks.len(), (12 + 3) * 5);
        w.validate().unwrap();
        let aggs = w.tasks.iter().filter(|t| t.logical == "aggregate").count();
        assert_eq!(aggs, 5);
    }

    #[test]
    fn shortened_has_no_aggregator() {
        let w = generate(&DdmdConfig::default(), Pipeline::Shortened);
        assert!(w.tasks.iter().all(|t| t.logical != "aggregate"));
        w.validate().unwrap();
    }

    #[test]
    fn train_reads_most_volume() {
        // Paper: train consumes the largest share of pipeline volume, more
        // than aggregate produces (reuse), and half the data is unused.
        let cfg = DdmdConfig::default();
        let w = generate(&cfg, Pipeline::Original);
        let train_vol: u64 = w
            .tasks
            .iter()
            .filter(|t| t.logical == "train")
            .flat_map(|t| &t.reads)
            .map(|r| r.bytes * u64::from(r.passes))
            .sum();
        let per_iter = train_vol / 5;
        assert_eq!(per_iter, (600 * MB) * 4, "0.6 GB footprint × 4 passes = 2.4 GB");
        assert!(per_iter > cfg.combined_bytes, "train reads more than aggregate produced");
    }

    #[test]
    fn tiny_original_runs_and_shows_reuse() {
        let w = generate(&DdmdConfig::tiny(), Pipeline::Original);
        let r = run(&w, &Fig7Config::OriginalBfs.run_config()).unwrap();
        let g = dfl_core::DflGraph::from_measurements(&r.measurements);
        let combined = g.find_vertex("combined-it0.h5").unwrap();
        // Outflow (train + lof reads) exceeds inflow (aggregate write) —
        // the paper's reuse signature on the aggregated file.
        assert!(g.out_volume(combined) > g.in_volume(combined));
        // train's consumer edge shows intra-task reuse ≈ passes.
        let train = g.find_vertex("train-it0").unwrap();
        let e = g
            .in_edges(train)
            .map(|e| g.edge(e))
            .find(|e| g.vertex(e.src).name == "combined-it0.h5")
            .unwrap();
        assert!(e.props.reuse_factor > 3.0);
    }

    #[test]
    fn shortened_is_faster() {
        let cfg = DdmdConfig::tiny();
        let orig = run(&generate(&cfg, Pipeline::Original), &Fig7Config::OriginalNfs.run_config()).unwrap();
        let short = run(&generate(&cfg, Pipeline::Shortened), &Fig7Config::ShortenedNfs.run_config()).unwrap();
        assert!(
            short.makespan_s < orig.makespan_s,
            "shortened {:.3} vs original {:.3}",
            short.makespan_s,
            orig.makespan_s
        );
    }

    #[test]
    fn fig2f_ranking_puts_train_first() {
        use dfl_core::analysis::ranking::rank_producer_consumer;
        let w = generate(&DdmdConfig::tiny(), Pipeline::Original);
        let r = run(&w, &Fig7Config::OriginalBfs.run_config()).unwrap();
        let g = dfl_core::DflGraph::from_measurements(&r.measurements);
        let table = rank_producer_consumer(&g);
        assert!(
            table.rows[0].cells[2].starts_with("train"),
            "top producer-consumer relation is aggregate→combined→train, got {:?}",
            table.rows[0].cells
        );
    }
}
