//! Workflow catalog: one place that maps a workflow *name* to a ready
//! `(WorkflowSpec, RunConfig)` pair.
//!
//! The CLI (`datalife run <name>`), the serve daemon (`{"op":"submit",
//! "workflow":"<name>"}`), and the benches all accept workflows by name;
//! routing them through this module guarantees they agree on what a name
//! means — which matters for the daemon, whose crash recovery rebuilds a
//! job's spec from the name recorded in its ledger and relies on the
//! rebuilt `(spec, config)` hashing identically to the original
//! submission's.

use crate::engine::RunConfig;
use crate::spec::{FileProduce, FileUse, TaskSpec, WorkflowSpec};
use crate::{belle2, ddmd, genomes, montage, seismic};

/// Workflow size: the paper-scale configuration or the down-scaled fixture
/// every test/CI path uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Tiny,
    Paper,
}

impl Scale {
    /// Parses `tiny` / `paper` (the CLI `--scale` vocabulary).
    pub fn parse(s: &str) -> Result<Scale, String> {
        match s {
            "tiny" => Ok(Scale::Tiny),
            "paper" => Ok(Scale::Paper),
            other => Err(format!("unknown scale '{other}' (tiny|paper)")),
        }
    }
}

/// Every workflow name [`build`] accepts, in catalog order.
pub const WORKFLOWS: &[&str] =
    &["genomes", "ddmd", "belle2", "montage", "seismic", "smoke"];

/// The `smoke` micro-workflow: a three-task pipeline that simulates in
/// well under a millisecond of wall time. It exists for paths that need a
/// *real* engine run but thousands of them — the serve storm bench, the CI
/// daemon smoke job — where even a tiny paper workflow is too heavy.
fn smoke_spec() -> WorkflowSpec {
    let mut w = WorkflowSpec::new("smoke");
    w.input("smoke-in.dat", 4 << 20);
    let gen = w.task(
        TaskSpec::new("gen-0", "gen", 1)
            .read(FileUse::whole("smoke-in.dat"))
            .write(FileProduce::new("smoke-mid.dat", 2 << 20))
            .compute_ms(5),
    );
    w.task(
        TaskSpec::new("sum-0", "sum", 2)
            .read(FileUse::whole("smoke-mid.dat"))
            .write(FileProduce::new("smoke-out.dat", 1 << 20))
            .compute_ms(5)
            .after(gen),
    );
    w
}

/// Builds the `(spec, config)` pair for a named workflow at a scale and
/// node count. This is the single source of truth behind `datalife run`,
/// `datalife serve` submissions, and daemon crash recovery.
pub fn build(
    name: &str,
    scale: Scale,
    nodes: usize,
) -> Result<(WorkflowSpec, RunConfig), String> {
    let paper = scale == Scale::Paper;
    let pair = match name {
        "genomes" => {
            let c = if paper {
                genomes::GenomesConfig::default()
            } else {
                genomes::GenomesConfig::tiny()
            };
            (genomes::generate(&c), RunConfig::default_gpu(nodes))
        }
        "ddmd" => {
            let c = if paper { ddmd::DdmdConfig::default() } else { ddmd::DdmdConfig::tiny() };
            (ddmd::generate(&c, ddmd::Pipeline::Original), RunConfig::default_gpu(nodes))
        }
        "belle2" => {
            let c = if paper {
                belle2::Belle2Config::default()
            } else {
                belle2::Belle2Config::tiny()
            };
            let rc = belle2::run_config(&c, belle2::DataAccess::Cached, nodes);
            (belle2::generate(&c, belle2::DataAccess::Cached), rc)
        }
        "montage" => {
            let c = if paper {
                montage::MontageConfig::default()
            } else {
                montage::MontageConfig::tiny()
            };
            (montage::generate(&c), RunConfig::default_gpu(nodes))
        }
        "seismic" => {
            let c = if paper {
                seismic::SeismicConfig::default()
            } else {
                seismic::SeismicConfig::tiny()
            };
            (seismic::generate(&c), RunConfig::default_gpu(nodes))
        }
        "smoke" => (smoke_spec(), RunConfig::default_gpu(nodes)),
        w => return Err(format!("unknown workflow '{w}'")),
    };
    Ok(pair)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_entry_builds_and_runs_at_tiny_scale() {
        for name in WORKFLOWS {
            let (spec, cfg) = build(name, Scale::Tiny, 2).unwrap();
            let r = crate::engine::run(&spec, &cfg)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(r.makespan_s > 0.0, "{name}");
        }
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        assert!(build("nope", Scale::Tiny, 2).is_err());
        assert!(Scale::parse("huge").is_err());
        assert_eq!(Scale::parse("paper").unwrap(), Scale::Paper);
    }

    #[test]
    fn repeated_builds_hash_identically() {
        // Daemon recovery rebuilds (spec, cfg) from the ledger name and
        // must land on the same config hash as the original submission.
        let (s1, c1) = build("smoke", Scale::Tiny, 2).unwrap();
        let (s2, c2) = build("smoke", Scale::Tiny, 2).unwrap();
        assert_eq!(
            crate::checkpoint::config_hash(&s1, &c1),
            crate::checkpoint::config_hash(&s2, &c2)
        );
    }
}
