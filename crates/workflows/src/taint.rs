//! Taint-cone computation for integrity recovery.
//!
//! When a persistently corrupt file version is detected (possibly many hops
//! downstream of the write that corrupted it), every file and task that is
//! forward-reachable from the corruption root must be treated as suspect:
//! consumers may have read flipped bytes before any verification ran, and
//! their outputs transitively carry the taint. This module builds the
//! workflow's DFL-G (the same arena graph the analysis layer uses) and
//! answers "what is downstream of this file?" with a breadth-first sweep
//! over producer/consumer edges.

use std::collections::BTreeSet;

use dfl_core::props::{DataProps, EdgeProps, FlowDir, TaskProps};
use dfl_core::{DflGraph, VertexId, VertexKind};

use crate::spec::WorkflowSpec;

/// Forward-reachable set from a corruption root: every file version that may
/// hold tainted bytes and every task whose execution consumed (or may
/// consume) them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaintCone {
    /// Paths of all suspect files, including the root itself.
    pub files: BTreeSet<String>,
    /// Spec indices of all tasks downstream of the root.
    pub tasks: BTreeSet<usize>,
}

impl TaintCone {
    /// Total number of suspect vertices (files + tasks).
    pub fn len(&self) -> usize {
        self.files.len() + self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty() && self.tasks.is_empty()
    }
}

/// Builds the bipartite task/data graph for `spec`.
///
/// Data vertices are named by file path; task vertices by task name. Producer
/// edges run task→data for each write, consumer edges data→task for each
/// read. External inputs become data vertices with no producer.
pub fn spec_graph(spec: &WorkflowSpec) -> DflGraph {
    let mut g = DflGraph::new();
    let data_vertex = |g: &mut DflGraph, path: &str, size: u64| -> VertexId {
        match g.find_vertex(path) {
            Some(v) => v,
            None => g.add_data(path, path, DataProps { size, ..DataProps::default() }),
        }
    };
    for input in &spec.inputs {
        data_vertex(&mut g, &input.path, input.size);
    }
    for task in &spec.tasks {
        let tv = g.add_task(&task.name, &task.logical, TaskProps {
            lifetime_ns: task.compute_ns,
            instances: 1,
            ..TaskProps::default()
        });
        for r in &task.reads {
            let dv = data_vertex(&mut g, &r.file, r.bytes);
            g.add_edge(dv, tv, FlowDir::Consumer, EdgeProps {
                volume: r.bytes,
                ops: u64::from(r.ops.max(1)),
                ..EdgeProps::default()
            });
        }
        for w in &task.writes {
            let dv = data_vertex(&mut g, &w.file, w.bytes);
            g.add_edge(tv, dv, FlowDir::Producer, EdgeProps {
                volume: w.bytes,
                ops: u64::from(w.ops.max(1)),
                ..EdgeProps::default()
            });
        }
    }
    g
}

/// Computes the forward-reachable taint cone of `root` (a file path) over the
/// spec's DFL-G. Returns an empty cone if the root is unknown to the spec.
pub fn taint_cone(spec: &WorkflowSpec, root: &str) -> TaintCone {
    let g = spec_graph(spec);
    let mut cone = TaintCone::default();
    let Some(start) = g.find_vertex(root) else {
        return cone;
    };
    // Task vertices map back to spec indices by name.
    let mut task_idx = std::collections::HashMap::new();
    for (i, t) in spec.tasks.iter().enumerate() {
        task_idx.insert(t.name.as_str(), i);
    }
    let mut seen = vec![false; g.vertex_count()];
    let mut queue = std::collections::VecDeque::new();
    seen[start.0 as usize] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        match g.vertex_kind(v) {
            VertexKind::Data => {
                cone.files.insert(g.vertex(v).name.clone());
            }
            VertexKind::Task => {
                if let Some(&i) = task_idx.get(g.vertex(v).name.as_str()) {
                    cone.tasks.insert(i);
                }
            }
        }
        for s in g.successors(v) {
            if !seen[s.0 as usize] {
                seen[s.0 as usize] = true;
                queue.push_back(s);
            }
        }
    }
    cone
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FileProduce, FileUse, TaskSpec};

    fn chain_spec() -> WorkflowSpec {
        // in.dat → t0 → a.dat → t1 → b.dat → t2 → c.dat
        //                  └────────→ t3 → d.dat   (side branch off a.dat)
        let mut spec = WorkflowSpec::new("chain");
        spec.input("in.dat", 1 << 20);
        spec.task(
            TaskSpec::new("t0", "gen", 0)
                .read(FileUse::whole("in.dat"))
                .write(FileProduce::new("a.dat", 1 << 20)),
        );
        spec.task(
            TaskSpec::new("t1", "xform", 1)
                .read(FileUse::whole("a.dat"))
                .write(FileProduce::new("b.dat", 1 << 20)),
        );
        spec.task(
            TaskSpec::new("t2", "sink", 2)
                .read(FileUse::whole("b.dat"))
                .write(FileProduce::new("c.dat", 1 << 20)),
        );
        spec.task(
            TaskSpec::new("t3", "side", 2)
                .read(FileUse::whole("a.dat"))
                .write(FileProduce::new("d.dat", 1 << 20)),
        );
        spec
    }

    #[test]
    fn cone_from_intermediate_covers_downstream_only() {
        let spec = chain_spec();
        let cone = taint_cone(&spec, "a.dat");
        let files: Vec<&str> = cone.files.iter().map(String::as_str).collect();
        assert_eq!(files, ["a.dat", "b.dat", "c.dat", "d.dat"]);
        assert_eq!(cone.tasks.iter().copied().collect::<Vec<_>>(), [1, 2, 3]);
    }

    #[test]
    fn cone_from_leaf_is_just_the_leaf() {
        let spec = chain_spec();
        let cone = taint_cone(&spec, "c.dat");
        assert_eq!(cone.files.iter().map(String::as_str).collect::<Vec<_>>(), ["c.dat"]);
        assert!(cone.tasks.is_empty());
        assert_eq!(cone.len(), 1);
    }

    #[test]
    fn cone_of_unknown_root_is_empty() {
        let spec = chain_spec();
        assert!(taint_cone(&spec, "nope.dat").is_empty());
    }

    #[test]
    fn cone_from_input_covers_everything() {
        let spec = chain_spec();
        let cone = taint_cone(&spec, "in.dat");
        assert_eq!(cone.files.len(), 5);
        assert_eq!(cone.tasks.len(), 4);
    }
}
