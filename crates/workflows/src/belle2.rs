//! Belle II Monte Carlo (§6.1, §6.4; Figs. 2c, 4c, 8; Tables 3–4).
//!
//! Each MC task draws a pseudo-random subset of a shared dataset pool served
//! from a remote (WAN) data server, reading each dataset partially and with
//! strong spatial locality — the DFL signatures are inter-task file reuse
//! and small consecutive access distances. The case study compares the
//! FTP-copy baseline against TAZeR-style distributed caching, then explores
//! the Table 3 emulated optimizations (defragmentation, ensembles,
//! near-storage filters) by trace replay.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use dfl_iosim::replay::{TaskTrace, TraceOp};

use crate::spec::{FileProduce, FileUse, TaskSpec, WorkflowSpec};

const MB: u64 = 1 << 20;

/// Generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Belle2Config {
    /// Concurrent MC tasks. Paper: 240 (10 nodes × 24 cores).
    pub tasks: u32,
    /// Dataset pool size.
    pub pool: u32,
    /// Size of each dataset file.
    pub dataset_bytes: u64,
    /// Datasets drawn per task. Paper: 16 (I/O-intensive configuration).
    pub datasets_per_task: u32,
    /// Fraction of each dataset a task actually reads (field selections).
    pub read_fraction: f64,
    /// Read operation size (small ops ⇒ locality statistics).
    pub op_bytes: u64,
    /// Compute per task, ms.
    pub compute_ms: u64,
    /// RNG seed for dataset draws.
    pub seed: u64,
}

impl Default for Belle2Config {
    fn default() -> Self {
        Belle2Config {
            tasks: 240,
            pool: 48,
            dataset_bytes: 1024 * MB,
            datasets_per_task: 16,
            read_fraction: 0.5,
            op_bytes: 8 * MB,
            compute_ms: 120_000,
            seed: 0xBE11E2,
        }
    }
}

impl Belle2Config {
    /// A campaign-scale configuration for the Table 3 replay scenarios: the
    /// dataset pool (1.4 TiB) exceeds even the cluster-wide L4 cache
    /// (512 GB), so cross-node redundancy reaches the WAN — the regime in
    /// which the paper's ensembles pay off by eliminating redundant remote
    /// fetches.
    pub fn campaign() -> Self {
        Belle2Config {
            pool: 1440,
            read_fraction: 0.4,
            compute_ms: 60_000,
            ..Belle2Config::default()
        }
    }

    /// Miniature instance for tests.
    pub fn tiny() -> Self {
        Belle2Config {
            tasks: 8,
            pool: 4,
            dataset_bytes: 16 * MB,
            datasets_per_task: 2,
            read_fraction: 0.5,
            op_bytes: MB,
            compute_ms: 20,
            seed: 7,
        }
    }

    /// Dataset path by index.
    pub fn dataset_path(i: u32) -> String {
        format!("mcprod/dataset-{i:03}.root")
    }

    /// Deterministic dataset draw for one task.
    ///
    /// Draws are *block-structured*, mirroring MC production blocks: tasks
    /// in the same block of 4 share half of their datasets (the
    /// block's slice of the campaign), plus a per-task random remainder.
    /// This is what makes the paper's 4-task ensembles effective: grouping a
    /// block onto one node turns its shared draws into node-cache hits.
    pub fn draws_for(&self, task: u32) -> Vec<u32> {
        let want = self.datasets_per_task.min(self.pool) as usize;
        let shared_n = want / 2;

        let mut block_rng = StdRng::seed_from_u64(self.seed ^ (u64::from(task / 4) << 20));
        let mut all: Vec<u32> = (0..self.pool).collect();
        all.shuffle(&mut block_rng);
        let mut draws: Vec<u32> = all[..shared_n].to_vec();

        let mut task_rng = StdRng::seed_from_u64(self.seed ^ 0x9e37 ^ (u64::from(task) << 8));
        let mut rest: Vec<u32> = all[shared_n..].to_vec();
        rest.shuffle(&mut task_rng);
        draws.extend_from_slice(&rest[..want - shared_n]);
        draws
    }
}

/// How the workflow obtains its remote data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataAccess {
    /// The "typical practice": FTP-copy every drawn dataset to node-local
    /// SSD before the task starts, then read locally.
    FtpCopy,
    /// Direct remote reads through the TAZeR cache hierarchy.
    Cached,
}

/// Generates the MC campaign workflow.
pub fn generate(cfg: &Belle2Config, access: DataAccess) -> WorkflowSpec {
    let mut w = WorkflowSpec::new(match access {
        DataAccess::FtpCopy => "belle2-ftp",
        DataAccess::Cached => "belle2-cached",
    });
    for i in 0..cfg.pool {
        w.input(&Belle2Config::dataset_path(i), cfg.dataset_bytes);
    }

    let read_bytes = (cfg.dataset_bytes as f64 * cfg.read_fraction) as u64;
    let ops = (read_bytes / cfg.op_bytes).max(1) as u32;
    for t in 0..cfg.tasks {
        let mut task = TaskSpec::new(&format!("mc-{t}"), "mc", 1)
            .write(FileProduce::new(&format!("mdst-{t}.root"), 50 * MB))
            .compute_ms(cfg.compute_ms);
        for d in cfg.draws_for(t) {
            // Partial sequential read of a leading region: intra-task
            // spatial locality (consecutive distances ≈ op size).
            task = task.read(FileUse::region(&Belle2Config::dataset_path(d), 0, read_bytes).ops(ops));
        }
        w.task(task);
    }
    let _ = access; // structure identical; access mode is a RunConfig matter
    w
}

/// Run configuration for the case study: CPU cluster + WAN data server.
pub fn run_config(cfg: &Belle2Config, access: DataAccess, nodes: usize) -> crate::engine::RunConfig {
    use crate::engine::{Placement, RunConfig, Staging};
    use dfl_iosim::cache::CacheConfig;
    use dfl_iosim::sim::CacheOrigins;
    use dfl_iosim::storage::TierKind;

    let mut rc = RunConfig {
        cluster: dfl_iosim::ClusterSpec::cpu_cluster_with_data_server(nodes),
        placement: Placement::RoundRobin,
        staging: Staging::local_intermediates(TierKind::Wan, TierKind::Ssd),
        cache: None,
        cache_origins: CacheOrigins::RemoteOnly,
        write_buffering: false,
        monitor: dfl_trace::MonitorConfig::default(),
        faults: dfl_iosim::FaultPlan::none(),
        verify: dfl_iosim::sim::VerifyPolicy::Off,
        retry: crate::engine::RetryPolicy::default(),
        obs: None,
        checkpoint: None,
        shards: 1,
    };
    match access {
        DataAccess::FtpCopy => {
            // Whole-file FTP from the data server to node SSDs before tasks
            // run — always from the origin, as plain FTP has no peer copies.
            rc.staging.stage_inputs = Some(TierKind::Ssd);
            rc.staging.stage_from_origin = true;
        }
        DataAccess::Cached => {
            rc.cache = Some(CacheConfig::tazer_table4());
        }
    }
    let _ = cfg;
    rc
}

/// Synthesizes per-task I/O traces for the Table 3 replay scenarios.
///
/// Both patterns cover the *same* leading region of each dataset (field
/// selections are determined by physics, not layout). The "real"
/// (fragmented) pattern reads it in shuffled order with overlapping ops —
/// poor spatial locality re-fetches boundary data — while the `regular`
/// (defragmented) pattern reads aligned, sequential, non-overlapping ops.
///
/// With `shared_draws` (the ensemble scenarios), the 4 tasks of a
/// production block run the *same* dataset assignment ("4 tasks per
/// dataset"), which is what makes co-scheduling them onto one node's caches
/// effective.
pub fn synth_traces(cfg: &Belle2Config, fragmented: bool, shared_draws: bool) -> Vec<TaskTrace> {
    let read_bytes = (cfg.dataset_bytes as f64 * cfg.read_fraction) as u64;
    // Fragmented ops overlap by 1/8 op (stride 7/8), re-transferring
    // boundary bytes.
    let frag_stride = cfg.op_bytes * 7 / 8;
    let compute_total = cfg.compute_ms * 1_000_000;

    (0..cfg.tasks)
        .map(|t| {
            let draws = if shared_draws { cfg.draws_for(t / 4 * 4) } else { cfg.draws_for(t) };
            let primary = Belle2Config::dataset_path(draws[0]);
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7ace ^ u64::from(t));
            let mut ops_list = Vec::new();
            for d in &draws {
                let file = Belle2Config::dataset_path(*d);
                let mut offsets: Vec<u64> = if fragmented {
                    let n = read_bytes.saturating_sub(cfg.op_bytes) / frag_stride + 1;
                    let mut v: Vec<u64> = (0..n).map(|k| k * frag_stride).collect();
                    v.shuffle(&mut rng);
                    v
                } else {
                    (0..read_bytes / cfg.op_bytes).map(|k| k * cfg.op_bytes).collect()
                };
                if offsets.is_empty() {
                    offsets.push(0);
                }
                for off in offsets {
                    ops_list.push(TraceOp {
                        file: file.clone(),
                        offset: off,
                        len: cfg.op_bytes,
                        read: true,
                        compute_ns: 0,
                    });
                }
            }
            // Spread the task's compute evenly across its ops so replay
            // interleaves I/O and computation.
            let per_op = compute_total / ops_list.len() as u64;
            for op in &mut ops_list {
                op.compute_ns = per_op;
            }
            TaskTrace { name: format!("mc-{t}"), dataset: primary, ops: ops_list, ensemble: None }
        })
        .collect()
}

/// The Table 3 emulated-optimization scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    /// Real (fragmented) pattern, no ensemble, no filter — the TAZeR
    /// baseline (relative time 1).
    S1,
    /// Regularized (defragmented) pattern.
    S2,
    /// Real pattern + 4-task ensembles.
    S3,
    /// Regular pattern + ensembles.
    S4,
    /// Regular pattern + 4× near-storage filter.
    S5,
    /// Regular pattern + ensembles + filter.
    S6,
}

impl Scenario {
    pub fn all() -> [Scenario; 6] {
        [Scenario::S1, Scenario::S2, Scenario::S3, Scenario::S4, Scenario::S5, Scenario::S6]
    }

    pub fn label(self) -> &'static str {
        match self {
            Scenario::S1 => "S1 real",
            Scenario::S2 => "S2 regular",
            Scenario::S3 => "S3 real+ens",
            Scenario::S4 => "S4 regular+ens",
            Scenario::S5 => "S5 regular+filter",
            Scenario::S6 => "S6 regular+ens+filter",
        }
    }

    pub fn fragmented(self) -> bool {
        matches!(self, Scenario::S1 | Scenario::S3)
    }

    pub fn ensemble(self) -> bool {
        matches!(self, Scenario::S3 | Scenario::S4 | Scenario::S6)
    }

    pub fn filter(self) -> bool {
        matches!(self, Scenario::S5 | Scenario::S6)
    }

    /// Builds this scenario's task traces. Ensembles both share dataset
    /// assignments within a 4-task block and co-locate the block on one node.
    pub fn traces(self, cfg: &Belle2Config) -> Vec<TaskTrace> {
        use dfl_iosim::replay::{apply, Transform};
        let mut traces = synth_traces(cfg, self.fragmented(), self.ensemble());
        if self.ensemble() {
            apply(&mut traces, Transform::Ensemble { k: 4 });
        }
        if self.filter() {
            apply(&mut traces, Transform::Filter { factor: 4 });
        }
        traces
    }
}

/// Outcome of one replay run.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    pub makespan_s: f64,
    pub breakdown: dfl_iosim::breakdown::Breakdown,
}

/// Replays `traces` on the CPU cluster + WAN data server through the TAZeR
/// cache (Table 4), including per-node executable staging ("transfer of
/// code"). With `local_data`, all datasets are pre-staged on every node's
/// SSD and no code transfer is needed — the paper's "optimal" time-0
/// reference.
pub fn run_replay(
    cfg: &Belle2Config,
    traces: &[dfl_iosim::replay::TaskTrace],
    nodes: usize,
    local_data: bool,
) -> ReplayOutcome {
    use dfl_iosim::breakdown::FlowTag;
    use dfl_iosim::cache::CacheConfig;
    use dfl_iosim::replay::to_jobs;
    use dfl_iosim::sim::{Action, SimConfig, Simulation};
    use dfl_iosim::storage::TierKind;
    use dfl_iosim::{ClusterSpec, TierRef};

    let cluster = ClusterSpec::cpu_cluster_with_data_server(nodes);
    let sim_cfg = if local_data {
        SimConfig::with_monitor()
    } else {
        SimConfig::with_cache(CacheConfig::tazer_table4())
    };
    let mut sim = Simulation::new(cluster, sim_cfg);

    for i in 0..cfg.pool {
        let f = Belle2Config::dataset_path(i);
        let idx = sim.fs_mut().create_external(&f, cfg.dataset_bytes, TierRef::shared(TierKind::Wan));
        if local_data {
            for n in 0..nodes as u32 {
                sim.fs_mut().add_replica(idx, TierRef::node(TierKind::Ssd, n));
            }
        }
    }

    // Code transfer: the basf2 release staged once per node.
    let code_bytes: u64 = 1 << 30;
    sim.fs_mut()
        .create_external("basf2-release.tar", code_bytes, TierRef::shared(TierKind::Wan));
    let mut code_job_of_node = Vec::new();
    if !local_data {
        for n in 0..nodes as u32 {
            let j = sim.submit(
                dfl_iosim::sim::JobSpec::new(&format!("codestage-{n}"), n)
                    .logical("codestage")
                    .action(Action::Stage {
                        file: "basf2-release.tar".into(),
                        to: TierRef::node(TierKind::Ssd, n),
                        from: None,
                        tag: FlowTag::CodeTransfer,
                    }),
            );
            code_job_of_node.push(j);
        }
    }

    for mut job in to_jobs(traces, nodes as u32) {
        if !local_data {
            let code_job = code_job_of_node[job.node as usize];
            job = job.dep(code_job);
        }
        sim.submit(job);
    }
    sim.run().expect("replay simulation");

    ReplayOutcome { makespan_s: sim.time().secs(), breakdown: sim.total_breakdown() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;

    #[test]
    fn draws_are_deterministic_and_in_pool() {
        let cfg = Belle2Config::default();
        let a = cfg.draws_for(17);
        let b = cfg.draws_for(17);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.iter().all(|&d| d < cfg.pool));
        // No duplicate datasets within one task.
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len());
        assert_ne!(cfg.draws_for(0), cfg.draws_for(1), "tasks draw differently");
    }

    #[test]
    fn workflow_counts() {
        let cfg = Belle2Config::default();
        let w = generate(&cfg, DataAccess::Cached);
        assert_eq!(w.tasks.len(), 240);
        assert_eq!(w.inputs.len(), 48);
        assert_eq!(w.tasks[0].reads.len(), 16);
        w.validate().unwrap();
    }

    #[test]
    fn cached_beats_ftp_copy() {
        let cfg = Belle2Config::tiny();
        let ftp = run(&generate(&cfg, DataAccess::FtpCopy), &run_config(&cfg, DataAccess::FtpCopy, 2)).unwrap();
        let cached = run(&generate(&cfg, DataAccess::Cached), &run_config(&cfg, DataAccess::Cached, 2)).unwrap();
        assert!(
            cached.makespan_s < ftp.makespan_s,
            "cached {:.1}s vs ftp {:.1}s",
            cached.makespan_s,
            ftp.makespan_s
        );
    }

    #[test]
    fn graph_shows_intertask_reuse_and_subsets() {
        let cfg = Belle2Config::tiny();
        let r = run(&generate(&cfg, DataAccess::Cached), &run_config(&cfg, DataAccess::Cached, 2)).unwrap();
        let g = dfl_core::DflGraph::from_measurements(&r.measurements);
        // Some dataset is read by multiple tasks (pool 4, 8 tasks × 2 draws).
        let max_consumers = g.data_vertices().map(|d| g.out_degree(d)).max().unwrap();
        assert!(max_consumers >= 2, "inter-task file reuse");
        // Reads cover only half of each dataset (read_fraction 0.5).
        let (_, sub) = g
            .edges()
            .find(|(_, e)| e.props.subset_fraction > 0.0 && e.props.subset_fraction < 1.0)
            .expect("subset pattern present");
        assert!(sub.props.subset_fraction < 0.7);
    }

    #[test]
    fn scenario_flags_match_table3() {
        assert!(Scenario::S1.fragmented() && !Scenario::S1.ensemble() && !Scenario::S1.filter());
        assert!(!Scenario::S2.fragmented() && !Scenario::S2.ensemble() && !Scenario::S2.filter());
        assert!(Scenario::S3.fragmented() && Scenario::S3.ensemble());
        assert!(!Scenario::S4.fragmented() && Scenario::S4.ensemble() && !Scenario::S4.filter());
        assert!(Scenario::S5.filter() && !Scenario::S5.ensemble());
        assert!(Scenario::S6.ensemble() && Scenario::S6.filter());
    }

    #[test]
    fn block_structured_draws_share_within_block() {
        let cfg = Belle2Config::default();
        let a = cfg.draws_for(0);
        let b = cfg.draws_for(1);
        let shared = a.iter().filter(|d| b.contains(d)).count();
        assert!(shared >= 8, "block members share ≥ half of their draws: {shared}");
        let c = cfg.draws_for(4); // different block
        let cross = a.iter().filter(|d| c.contains(d)).count();
        assert!(cross < shared, "cross-block overlap is smaller");
    }

    #[test]
    fn replay_scenarios_improve_monotonically_enough() {
        let cfg = Belle2Config::tiny();
        let s1 = run_replay(&cfg, &Scenario::S1.traces(&cfg), 2, false);
        let s6 = run_replay(&cfg, &Scenario::S6.traces(&cfg), 2, false);
        let opt = run_replay(&cfg, &Scenario::S6.traces(&cfg), 2, true);
        assert!(s6.makespan_s < s1.makespan_s, "S6 {:.2} < S1 {:.2}", s6.makespan_s, s1.makespan_s);
        assert!(opt.makespan_s <= s6.makespan_s, "optimal is the floor");
        use dfl_iosim::breakdown::FlowTag;
        assert!(s1.breakdown.get(FlowTag::CodeTransfer) > 0);
        assert_eq!(opt.breakdown.get(FlowTag::CodeTransfer), 0);
    }

    #[test]
    fn traces_regular_vs_fragmented() {
        let cfg = Belle2Config::tiny();
        let reg = synth_traces(&cfg, false, false);
        let frag = synth_traces(&cfg, true, false);
        assert_eq!(reg.len(), cfg.tasks as usize);
        // Regular offsets ascend per file; fragmented generally do not.
        let asc = |t: &TaskTrace| t.ops.windows(2).all(|w| w[0].file != w[1].file || w[0].offset <= w[1].offset);
        assert!(reg.iter().all(asc));
        assert!(frag.iter().any(|t| !asc(t)));
        // Fragmented covers the same region but with more (overlapping) ops.
        assert!(frag[0].ops.len() > reg[0].ops.len());
    }

    #[test]
    fn shared_draws_unify_blocks() {
        let cfg = Belle2Config::default();
        let shared = synth_traces(&cfg, false, true);
        fn files(t: &TaskTrace) -> Vec<String> {
            let mut f: Vec<String> = t.ops.iter().map(|o| o.file.clone()).collect();
            f.dedup();
            f.sort_unstable();
            f.dedup();
            f
        }
        assert_eq!(files(&shared[0]), files(&shared[3]), "block members share all datasets");
        assert_ne!(files(&shared[0]), files(&shared[4]));
    }
}
