//! `datalife` — command-line front end for the DataLife-rs reproduction.
//!
//! ```text
//! datalife run <workflow> [--scale tiny|paper] [--nodes N] [-o out.json]
//! datalife analyze <measurements.json> [--cost volume|time|branchjoin|fanin]
//! datalife rank <measurements.json> [--what pc|data|task]
//! datalife caterpillar <measurements.json> [--cost ...]
//! datalife sankey <measurements.json> [-o out.json]
//! datalife html <measurements.json> [-o out.html]
//! datalife casestudy <genomes|ddmd|belle2>
//! datalife chaos <workflow> [--seeds LIST] [--crashes K] [--ckpt-ms MS]
//! ```
//!
//! `run` simulates one of the five paper workflows under DFL monitoring and
//! writes the measurement set as JSON; the other commands analyze such a
//! file, mirroring the original DataLife collector/analyzer split.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use dfl_core::analysis::caterpillar::{caterpillar, CaterpillarRule};
use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::critical_path::critical_path;
use dfl_core::analysis::patterns::{analyze, report, AnalysisConfig};
use dfl_core::analysis::ranking::{
    rank_data_vertices, rank_producer_consumer, rank_task_vertices, DataMetric, TaskMetric,
};
use dfl_core::viz::render_ascii;
use dfl_core::viz::sankey::{SankeyDiagram, SankeyOptions};
use dfl_core::DflGraph;
use dfl_obs::{diagnosis_kind_label, ObsConfig, WatchdogConfig};
use dfl_serve::{Client, Daemon, Endpoints, NetServer, Request, ServeConfig};
use dfl_trace::MeasurementSet;
use dfl_workflows::engine::{resume_latest, run as run_workflow, RunConfig, RunResult};
use dfl_workflows::VerifyPolicy;
use dfl_workflows::spec::WorkflowSpec;
use dfl_workflows::watch::{run_watched, WatchOptions, WindowSummary};
use dfl_workflows::{belle2, catalog, ddmd, genomes, CheckpointConfig, FaultPlan};

const USAGE: &str = "\
datalife — data flow lifecycle analysis for distributed workflows

USAGE:
  datalife run <genomes|ddmd|belle2|montage|seismic> [--scale tiny|paper] [--nodes N] [-o FILE]
               [--faults SPEC] [--verify POLICY] [--retries N] [--trace-out FILE] [--shards K]
  datalife profile <genomes|ddmd|belle2|montage|seismic> [--scale tiny|paper] [--nodes N]
               [--trace-out FILE] [--jsonl FILE] [--sample-ms MS] [--faults SPEC]
               [--verify POLICY] [--retries N] [--shards K]
  datalife watch <genomes|ddmd|belle2|montage|seismic> [--scale tiny|paper] [--nodes N]
               [--window-ms MS] [--sample-ms MS] [--faults SPEC] [--verify POLICY] [--retries N]
               [--headless] [--jsonl] [--shards K]
  datalife analyze <measurements.json> [--cost volume|time|branchjoin|fanin]
  datalife rank <measurements.json> [--what pc|data|task]
  datalife caterpillar <measurements.json> [--cost volume|time|branchjoin|fanin]
  datalife sankey <measurements.json> [-o FILE]
  datalife html <measurements.json> [-o FILE]
  datalife advise <measurements.json>
  datalife casestudy <genomes|ddmd|belle2>
  datalife chaos <genomes|ddmd|belle2|montage|seismic> [--scale tiny|paper] [--nodes N]
               [--seeds LIST] [--crashes K] [--ckpt-ms MS] [--dir DIR] [--faults SPEC]
               [--verify POLICY] [--retries N] [--shards K]
  datalife chaos <workflow> --serve [--scale tiny|paper] [--nodes N] [--seed N]
               [--crashes K] [--ckpt-ms MS] [--dir DIR]
  datalife serve [--dir DIR] [--workers N] [--queue-cap N] [--ckpt-ms MS] [--window-ms MS]
               [--abort-on-chaos] [--metrics-addr HOST:PORT]
  datalife top [--dir DIR | --addr HOST:PORT] [--interval-ms MS] [--once] [--jsonl]

`run` simulates the workflow on the paper's Table 2 machines while the DFL
monitor records lifecycle measurements (written as JSON, default
measurements.json). The analysis commands consume that JSON.

--faults injects a deterministic fault plan, e.g.
  --faults 'seed=42,crash=0@2s+1s,ioerr=0.001,degrade=nfs@1s+2s*0.1'
(crash node 0 at t=2s for 1s, 0.1% transient I/O error rate, NFS at 10%
bandwidth from 1s to 3s). Failed attempts are retried with exponential
backoff (--retries, default 3 attempts) after lineage-based recovery of
any lost intermediate files; the run then prints a failure report.

Silent-corruption faults flip bits without failing the I/O:
  --faults 'seed=42,corrupt=write@0.001,corrupt=file@mid.dat' --verify on-read
(0.1% of writes corrupt the stored replica; the first version of mid.dat
is corrupted outright). --verify turns on checksum checking: 'on-read'
checks every read, 'on-transfer' checks staging copies, 'sample:N'
checks every Nth read per task, 'off' (the default) detects nothing —
corrupt bytes silently taint downstream outputs. A detected corruption
quarantines the root file's whole forward cone (every downstream file
and task) and re-runs the minimal producer set; the failure report
counts corruptions injected/detected, quarantined files/bytes, and
verified volume, so verify-early vs verify-late is measurable.

`profile` runs the workflow with the observability layer on and prints an
ASCII timeline summary. --trace-out (default trace.json) writes a
Chrome-trace file: open https://ui.perfetto.dev and drag it in. --jsonl
writes the raw timeline as compact JSON lines. --sample-ms sets the
utilization/queue-depth sampling cadence in sim-time milliseconds
(default 100; 0 disables sampling, leaving spans and instants only).
`run --trace-out FILE` records the same trace alongside measurements.

`watch` runs the workflow live with anomaly watchdogs on and refreshes an
ASCII dashboard at every --window-ms of sim-time (default 100): progress,
the top-5 blame breakdown, the current critical-path head, and any
diagnoses (stall, tier saturation, cache thrash, queue imbalance) the
watchdogs fired. --headless prints one summary line per window instead;
add --jsonl to stream each window summary as one JSON object per line
(the machine-readable schema). --sample-ms (default 20) is the cadence
that drives the detectors' clock.

`chaos` is the deterministic crash/restore driver: it runs the workflow
once to completion with crash-consistent checkpoints on (the golden run),
then for each seed kills the coordinator at --crashes seeded dispatch
indices, resuming from the latest on-disk manifest after every kill, and
verifies the final result — makespan, job reports, failure report, and
exported timeline — is byte-identical to the golden run. --ckpt-ms sets
the checkpoint cadence in sim-time milliseconds (default 50); manifests
go to --dir (default a per-process temp directory). Exits nonzero if any
seed diverges.

`chaos --serve` chaoses the daemon instead of the in-process engine: it
runs one golden job through a real `datalife serve` child process, then
for each of --crashes seeded dispatch points starts a fresh daemon with
--abort-on-chaos, submits the job with the kill switch armed, watches the
process die mid-job (`kill -9` semantics: no destructors, no flushes),
restarts the daemon on the same state directory, and requires the
recovered result file — report plus both timeline exports — to be
byte-identical to the golden one.

`serve` starts the analysis daemon: JSON Lines over TCP (loopback,
ephemeral port) and a Unix socket, endpoints published in
<dir>/endpoint.json. Submitted jobs are durably ledgered before they are
acknowledged, run on --workers threads under per-tenant fair-share
scheduling, and survive `kill -9` via checkpoint resume on restart. The
daemon also serves a Prometheus text-exposition page at
http://<metrics-addr>/metrics (--metrics-addr, default an ephemeral
loopback port published in endpoint.json). See README for the
request/response schema.

`top` is the live daemon dashboard: it polls the `metrics` request every
--interval-ms (default 1000) and redraws an ANSI screen — queue/worker
picture, per-tenant scheduler accounting, latency quantiles, recent
health diagnoses. --once renders a single frame and exits; --jsonl
prints the raw metrics reply lines instead (machine-readable).

--shards K partitions the event core by node domain into K shards
(default 1; DFL_SHARDS sets the default when the flag is absent). Every
observable — measurements, timelines, checkpoints, failure reports — is
byte-identical at any K; the knob only changes performance.

Exit codes: 0 success; 1 runtime failure; 2 usage error (unknown
command/workflow, bad flag); 3 chaos divergence (a recovered run was not
byte-identical to its golden run).";

/// Typed CLI failure, mapped to the process exit code: usage errors exit
/// 2, runtime failures 1, chaos divergence 3 (success is 0).
#[derive(Debug)]
enum CliError {
    Usage(String),
    Runtime(String),
    Divergence(String),
}

impl CliError {
    fn code(&self) -> u8 {
        match self {
            CliError::Runtime(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Divergence(_) => 3,
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Runtime(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> CliError {
        CliError::Runtime(msg.into())
    }
}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn parse_cost(args: &[String]) -> CostModel {
    match arg_value(args, "--cost").as_deref() {
        Some("time") => CostModel::Time,
        Some("branchjoin") => CostModel::BranchJoin { branch_threshold: 2 },
        Some("fanin") => CostModel::TaskFanIn,
        Some("footprint") => CostModel::Footprint,
        _ => CostModel::Volume,
    }
}

fn load(path: &str) -> Result<DflGraph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let set = MeasurementSet::from_json(&text).map_err(|e| format!("bad measurement JSON: {e}"))?;
    Ok(DflGraph::from_measurements(&set))
}

/// Builds the spec + run configuration shared by `run` and `profile`:
/// workflow selection, scale, node count, fault plan, and retry policy.
fn select_workflow(args: &[String]) -> Result<(WorkflowSpec, RunConfig), CliError> {
    let workflow = args.first().ok_or_else(|| usage_err("missing workflow name"))?;
    let scale = match arg_value(args, "--scale") {
        Some(s) => catalog::Scale::parse(&s).map_err(usage_err)?,
        None => catalog::Scale::Tiny,
    };
    let nodes: usize = arg_value(args, "--nodes").and_then(|v| v.parse().ok()).unwrap_or(2);
    let faults = match arg_value(args, "--faults") {
        Some(s) => Some(FaultPlan::parse(&s).map_err(|e| usage_err(format!("bad --faults: {e}")))?),
        None => None,
    };
    let retries: Option<u32> = match arg_value(args, "--retries") {
        Some(s) => Some(s.parse().map_err(|_| usage_err(format!("bad --retries '{s}'")))?),
        None => None,
    };
    let verify = match arg_value(args, "--verify") {
        Some(s) => Some(parse_verify(&s).map_err(usage_err)?),
        None => None,
    };
    // Event-core shard count; output is byte-identical at any value, so
    // this is purely a performance knob. DFL_SHARDS is the CI-matrix
    // override; an explicit --shards wins.
    let shards: Option<u32> = match arg_value(args, "--shards")
        .or_else(|| std::env::var("DFL_SHARDS").ok())
    {
        Some(s) => Some(s.parse().map_err(|_| usage_err(format!("bad --shards '{s}'")))?),
        None => None,
    };

    let (spec, mut cfg) = catalog::build(workflow, scale, nodes).map_err(usage_err)?;
    if let Some(p) = faults {
        cfg.faults = p;
    }
    if let Some(n) = retries {
        cfg.retry.max_attempts = n.max(1);
    }
    if let Some(v) = verify {
        cfg.verify = v;
    }
    if let Some(k) = shards {
        cfg.shards = k;
    }
    Ok((spec, cfg))
}

fn parse_verify(s: &str) -> Result<VerifyPolicy, String> {
    match s {
        "off" => Ok(VerifyPolicy::Off),
        "on-read" => Ok(VerifyPolicy::OnRead),
        "on-transfer" => Ok(VerifyPolicy::OnTransfer),
        other => match other.strip_prefix("sample:") {
            Some(n) => {
                let n: u32 =
                    n.parse().map_err(|_| format!("bad --verify sample count '{n}'"))?;
                if n == 0 {
                    return Err("--verify sample:N needs N >= 1".into());
                }
                Ok(VerifyPolicy::Sample(n))
            }
            None => Err(format!("bad --verify '{other}' (off|on-read|on-transfer|sample:N)")),
        },
    }
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let out = arg_value(args, "-o").unwrap_or_else(|| "measurements.json".into());
    let trace_out = arg_value(args, "--trace-out");
    let (spec, mut cfg) = select_workflow(args)?;
    if trace_out.is_some() {
        cfg.obs = Some(ObsConfig::default());
    }
    let faults_on = args.iter().any(|a| a == "--faults");

    let result = run_workflow(&spec, &cfg).map_err(|e| e.to_string())?;
    println!("{}", result.stage_summary());
    if faults_on || !result.failure.is_clean() {
        println!("{}", result.failure);
    }
    let json = result.measurements.to_json().map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} tasks, {} files, {} task-file records",
        result.measurements.tasks.len(),
        result.measurements.files.len(),
        result.measurements.records.len()
    );
    if let Some(path) = trace_out {
        let tl = result.timeline.as_ref().expect("obs enabled for --trace-out");
        std::fs::write(&path, dfl_obs::chrome_trace(tl)).map_err(|e| e.to_string())?;
        println!("wrote {path}: {} timeline events (open in ui.perfetto.dev)", tl.events.len());
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), CliError> {
    let trace_out = arg_value(args, "--trace-out").unwrap_or_else(|| "trace.json".into());
    let jsonl_out = arg_value(args, "--jsonl");
    let sample_ms: u64 = match arg_value(args, "--sample-ms") {
        Some(s) => s.parse().map_err(|_| usage_err(format!("bad --sample-ms '{s}'")))?,
        None => 100,
    };
    let (spec, mut cfg) = select_workflow(args)?;
    cfg.obs = Some(if sample_ms == 0 {
        ObsConfig::default()
    } else {
        ObsConfig::sampled(sample_ms * 1_000_000)
    });

    let result = run_workflow(&spec, &cfg).map_err(|e| e.to_string())?;
    let tl = result.timeline.as_ref().expect("obs enabled for profile");
    print!("{}", dfl_obs::ascii_summary(tl));
    println!();
    println!("{}", result.stage_summary());
    std::fs::write(&trace_out, dfl_obs::chrome_trace(tl)).map_err(|e| e.to_string())?;
    println!("wrote {trace_out}: {} timeline events (open in ui.perfetto.dev)", tl.events.len());
    if let Some(path) = jsonl_out {
        std::fs::write(&path, dfl_obs::jsonl(tl)).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Renders one dashboard frame (ANSI clear + home, then ~a screenful).
fn render_dashboard(workflow: &str, w: &WindowSummary, recent_diags: &[String]) {
    let bar_w = 24usize;
    let filled = (bar_w * w.tasks_done).checked_div(w.tasks_total).unwrap_or(0);
    let bar: String =
        "#".repeat(filled) + &".".repeat(bar_w - filled.min(bar_w));
    print!("\x1b[2J\x1b[H");
    println!(
        "datalife watch — {workflow}   window {}   t = {:.3} s{}",
        w.window,
        w.t1_ns as f64 / 1e9,
        if w.final_window { "   [final]" } else { "" }
    );
    println!(
        "progress  [{bar}] {}/{} tasks   moved {:.1} MiB   failed {}   crashes {}",
        w.tasks_done,
        w.tasks_total,
        w.moved_bytes as f64 / (1 << 20) as f64,
        w.failed_attempts,
        w.crashes
    );
    if w.wasted_bytes > 0 || w.recovery_bytes > 0 || w.quarantined_files > 0 {
        println!(
            "integrity  wasted {:.1} MiB   recovery {:.1} MiB   quarantined {} file(s)",
            w.wasted_bytes as f64 / (1 << 20) as f64,
            w.recovery_bytes as f64 / (1 << 20) as f64,
            w.quarantined_files
        );
    }
    match &w.head {
        Some(h) => println!(
            "critical path  {} '{}'  cost {:.3e}  ({} vertices)",
            h.kind, h.vertex, h.total_cost, h.path_len
        ),
        None => println!("critical path  (no completed tasks yet)"),
    }
    println!("top blame this window:");
    if w.blame.is_empty() {
        println!("  (idle window)");
    }
    for b in w.blame.iter().take(5) {
        println!("  {:10} {:24} {:>12.3} ms", b.category, b.subject, b.busy_ns as f64 / 1e6);
    }
    println!("diagnoses ({} total):", recent_diags.len());
    if recent_diags.is_empty() {
        println!("  none");
    }
    for d in recent_diags.iter().rev().take(5) {
        println!("  {d}");
    }
    println!("events: {} this window, {} dropped at subscriber", w.events, w.stream_dropped);
}

fn cmd_watch(args: &[String]) -> Result<(), CliError> {
    let headless = args.iter().any(|a| a == "--headless");
    let jsonl = args.iter().any(|a| a == "--jsonl");
    let window_ms: u64 = match arg_value(args, "--window-ms") {
        Some(s) => s.parse().map_err(|_| usage_err(format!("bad --window-ms '{s}'")))?,
        None => 100,
    };
    if window_ms == 0 {
        return Err(usage_err("--window-ms must be positive"));
    }
    let sample_ms: u64 = match arg_value(args, "--sample-ms") {
        Some(s) => s.parse().map_err(|_| usage_err(format!("bad --sample-ms '{s}'")))?,
        None => 20,
    };
    let workflow = args.first().cloned().unwrap_or_default();
    let (spec, mut cfg) = select_workflow(args)?;
    // Watchdogs need the sampling clock for their stall/saturation timers.
    cfg.obs = Some(
        ObsConfig::sampled(sample_ms.max(1) * 1_000_000).with_watchdogs(WatchdogConfig::default()),
    );

    let opts = WatchOptions { window_ns: window_ms * 1_000_000, ..WatchOptions::default() };
    let mut recent_diags: Vec<String> = Vec::new();
    let result = run_watched(&spec, &cfg, &opts, |w| {
        for d in &w.diagnoses {
            recent_diags.push(format!(
                "{:>10.3} ms  {:15} {}  — {}",
                d.t_ns as f64 / 1e6,
                diagnosis_kind_label(d.kind),
                d.subject,
                d.detail
            ));
        }
        if jsonl {
            println!("{}", serde_json::to_string(w).expect("window summary serializes"));
        } else if headless {
            println!(
                "window {:>4}  t={:>9.3}s  tasks {}/{}  events {:>6}  blame#{}  diag+{}",
                w.window,
                w.t1_ns as f64 / 1e9,
                w.tasks_done,
                w.tasks_total,
                w.events,
                w.blame.len(),
                w.diagnoses.len()
            );
        } else {
            render_dashboard(&workflow, w, &recent_diags);
        }
    })
    .map_err(|e| e.to_string())?;

    if !jsonl {
        println!();
        println!("{}", result.stage_summary());
        if !result.failure.is_clean() {
            println!("{}", result.failure);
        }
        if result.diagnoses.is_empty() {
            println!("watchdogs: no anomalies diagnosed");
        } else {
            println!("watchdogs: {} diagnosis(es) fired:", result.diagnoses.len());
            for d in &result.diagnoses {
                println!(
                    "  {:>10.3} ms  {:15} {}  — {}",
                    d.t_ns as f64 / 1e6,
                    diagnosis_kind_label(d.kind),
                    d.subject,
                    d.detail
                );
            }
        }
        if let Some(tl) = &result.timeline {
            if tl.dropped > 0 {
                println!("note: {} timeline event(s) dropped at the recorder limit", tl.dropped);
            }
        }
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or_else(|| usage_err("missing measurements file"))?;
    let g = load(path)?;
    let cost = parse_cost(args);
    println!(
        "DFL-DAG: {} vertices ({} tasks, {} data), {} edges; acyclic: {}\n",
        g.vertex_count(),
        g.task_vertices().count(),
        g.data_vertices().count(),
        g.edge_count(),
        g.is_dag()
    );
    print!("{}", dfl_core::analysis::graph_stats(&g));
    println!();
    let cfg = AnalysisConfig { cost, ..Default::default() };
    let ops = analyze(&g, &cfg);
    print!("{}", report(&g, &ops));
    Ok(())
}

fn cmd_html(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or_else(|| usage_err("missing measurements file"))?;
    let g = load(path)?;
    let cp = critical_path(&g, &CostModel::Volume);
    let out = arg_value(args, "-o").unwrap_or_else(|| "lifecycle.html".into());
    std::fs::write(&out, dfl_core::viz::to_html(&g, path, Some(&cp))).map_err(|e| e.to_string())?;
    println!("wrote {out}; open it in a browser");
    Ok(())
}

fn cmd_advise(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or_else(|| usage_err("missing measurements file"))?;
    let g = load(path)?;
    let ops = analyze(&g, &AnalysisConfig::default());
    let advice = dfl_core::analysis::advise(&g, &ops);
    if advice.is_empty() {
        println!("no mechanically-applicable coordination changes found");
    }
    if !advice.stage_inputs.is_empty() {
        println!("stage these inputs to node-local storage:");
        for f in &advice.stage_inputs {
            println!("  {f}");
        }
    }
    if advice.local_intermediates {
        println!("write intermediates to node-local tiers");
    }
    if advice.colocate_consumers {
        println!("co-schedule consumers of shared files (group-aware placement)");
    }
    if !advice.cache_files.is_empty() {
        println!("cache these re-read files:");
        for f in &advice.cache_files {
            println!("  {f}");
        }
    }
    if advice.buffer_writes {
        println!("enable write buffering for critical producers");
    }
    if !advice.rationale.is_empty() {
        println!("
rationale:");
        for r in &advice.rationale {
            println!("  - {r}");
        }
    }
    Ok(())
}

fn cmd_rank(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or_else(|| usage_err("missing measurements file"))?;
    let g = load(path)?;
    match arg_value(args, "--what").as_deref() {
        Some("data") => println!("{}", rank_data_vertices(&g, DataMetric::TotalVolume)),
        Some("task") => println!("{}", rank_task_vertices(&g, TaskMetric::TotalVolume)),
        _ => println!("{}", rank_producer_consumer(&g)),
    }
    Ok(())
}

fn cmd_caterpillar(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or_else(|| usage_err("missing measurements file"))?;
    let g = load(path)?;
    let cost = parse_cost(args);
    let cp = critical_path(&g, &cost);
    let cat = caterpillar(&g, &cp, CaterpillarRule::Dfl);
    println!(
        "critical path by {} (cost {:.3e}): {} vertices",
        cost.label(),
        cp.total_cost,
        cp.vertices.len()
    );
    for v in &cp.vertices {
        println!("  {}", g.vertex(*v).name);
    }
    println!(
        "caterpillar: +{} legs, +{} distance-2 producers ({} of {} vertices)\n",
        cat.legs.len(),
        cat.extended.len(),
        cat.len(),
        g.vertex_count()
    );
    println!("{}", render_ascii(&g, Some(&cp)));
    Ok(())
}

fn cmd_sankey(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or_else(|| usage_err("missing measurements file"))?;
    let g = load(path)?;
    let cp = critical_path(&g, &CostModel::Volume);
    let s = SankeyDiagram::from_graph(
        &g,
        &SankeyOptions { title: path.clone(), critical_path: Some(cp), ..Default::default() },
    );
    let out = arg_value(args, "-o").unwrap_or_else(|| "sankey.json".into());
    std::fs::write(&out, s.to_json().map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    println!("wrote {out} ({} nodes, {} links)", s.nodes.len(), s.links.len());
    Ok(())
}

fn cmd_casestudy(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("genomes") => {
            let spec = genomes::generate(&genomes::GenomesConfig::default());
            for v in genomes::Fig6Config::all() {
                let r = run_workflow(&spec, &v.run_config()).map_err(|e| e.to_string())?;
                println!("{:<20} {:>8.2}s", v.label(), r.makespan_s);
            }
            Ok(())
        }
        Some("ddmd") => {
            for v in ddmd::Fig7Config::all() {
                let spec = ddmd::generate(&ddmd::DdmdConfig::default(), v.pipeline());
                let r = run_workflow(&spec, &v.run_config()).map_err(|e| e.to_string())?;
                println!("{:<20} {:>8.2}s", v.label(), r.makespan_s);
            }
            Ok(())
        }
        Some("belle2") => {
            let cfg = belle2::Belle2Config::default();
            for access in [belle2::DataAccess::FtpCopy, belle2::DataAccess::Cached] {
                let spec = belle2::generate(&cfg, access);
                let rc = belle2::run_config(&cfg, access, 10);
                let r = run_workflow(&spec, &rc).map_err(|e| e.to_string())?;
                println!("{access:?}: {:.2}s", r.makespan_s);
            }
            Ok(())
        }
        other => Err(usage_err(format!("unknown case study {other:?} (genomes|ddmd|belle2)"))),
    }
}

/// Everything a consumer can observe about a finished run, flattened to
/// strings so "byte-identical" is literal.
fn run_fingerprint(r: &RunResult) -> (String, String, String, u64) {
    let reports: Vec<(&str, u64, u64, bool)> =
        r.reports.iter().map(|j| (j.name.as_str(), j.start_ns, j.end_ns, j.failed)).collect();
    let trace = r.timeline.as_ref().map(dfl_obs::chrome_trace).unwrap_or_default();
    (
        format!("{:.9}/{:?}", r.makespan_s, r.stage_spans),
        format!("{reports:?}"),
        format!("{:?}/{trace}", r.failure),
        r.events_dispatched,
    )
}

/// Deterministic chaos driver: run the workflow to completion with
/// checkpoints on (the golden run), then per seed kill the coordinator at
/// seeded dispatch indices, resume from the latest manifest after each
/// kill, and require the final outcome to be byte-identical to golden.
fn cmd_chaos(args: &[String]) -> Result<(), CliError> {
    if args.iter().any(|a| a == "--serve") {
        return cmd_chaos_serve(args);
    }
    let seeds: Vec<u64> = arg_value(args, "--seeds")
        .unwrap_or_else(|| "1,42,7".into())
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse::<u64>().map_err(|_| usage_err(format!("bad --seeds entry '{s}'"))))
        .collect::<Result<_, _>>()?;
    if seeds.is_empty() {
        return Err(usage_err("--seeds must name at least one seed"));
    }
    let crashes: usize = match arg_value(args, "--crashes") {
        Some(s) => s.parse().map_err(|_| usage_err(format!("bad --crashes '{s}'")))?,
        None => 3,
    };
    let ckpt_ms: u64 = match arg_value(args, "--ckpt-ms") {
        Some(s) => s.parse().map_err(|_| usage_err(format!("bad --ckpt-ms '{s}'")))?,
        None => 50,
    };
    // A user-named --dir is left on disk (with the final run's manifests)
    // for inspection; the default per-process temp dir is cleaned up.
    let named_dir = arg_value(args, "--dir").map(PathBuf::from);
    let keep_dir = named_dir.is_some();
    let dir = named_dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("datalife-chaos-{}", std::process::id()))
    });
    let (spec, base_cfg) = select_workflow(args)?;

    let mut diverged = 0usize;
    for &seed in &seeds {
        let mut cfg = base_cfg.clone();
        cfg.obs = Some(ObsConfig::sampled(20_000_000));
        cfg.faults = cfg.faults.seed(seed);
        cfg.checkpoint = Some(
            CheckpointConfig::to_dir(&dir).every_sim_ns(ckpt_ms.max(1) * 1_000_000).on_incident(),
        );

        let _ = std::fs::remove_dir_all(&dir);
        let golden = run_workflow(&spec, &cfg).map_err(|e| format!("golden run: {e}"))?;
        let golden_fp = run_fingerprint(&golden);
        let total = golden.events_dispatched;
        if total < 4 {
            return Err(format!("workflow dispatches only {total} events, too short for chaos").into());
        }

        // Seeded, strictly-ascending crash points inside the dispatch range.
        let mut points = std::collections::BTreeSet::new();
        let mut i = 0u64;
        while points.len() < crashes && i < 64 + 4 * crashes as u64 {
            let f = dfl_iosim::fault::unit_hash(seed ^ 0xc4a0_5eed, i, total);
            points.insert((1 + (f * (total - 2) as f64) as u64).min(total - 1));
            i += 1;
        }
        let points: Vec<u64> = points.into_iter().collect();

        // Kill/resume until the workflow completes, then compare.
        let _ = std::fs::remove_dir_all(&dir);
        let mut kills = 0usize;
        let mut armed = cfg.clone();
        armed.faults = armed.faults.chaos_crash(points[0]);
        let mut res = run_workflow(&spec, &armed).map_err(|e| e.to_string());
        let last = loop {
            match res {
                Ok(r) => break r,
                Err(msg) => {
                    if !msg.contains("chaos") {
                        return Err(format!("seed {seed}: unplanned failure: {msg}").into());
                    }
                    kills += 1;
                    let mut next = cfg.clone();
                    if kills < points.len() {
                        next.faults = next.faults.chaos_crash(points[kills]);
                    }
                    res = resume_latest(&spec, &next).map_err(|e| e.to_string());
                }
            }
        };
        let ok = run_fingerprint(&last) == golden_fp;
        println!(
            "seed {seed}: {} — {kills} kills at dispatch {points:?} of {total}",
            if ok { "PASS" } else { "FAIL" }
        );
        if !ok {
            diverged += 1;
        }
    }
    if !keep_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    if diverged > 0 {
        return Err(CliError::Divergence(format!(
            "{diverged}/{} seeds diverged from the golden run",
            seeds.len()
        )));
    }
    println!("all {} seeds byte-identical to the golden run", seeds.len());
    Ok(())
}

/// Starts the analysis daemon and blocks until a client sends `shutdown`.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let dir = PathBuf::from(arg_value(args, "--dir").unwrap_or_else(|| "serve-state".into()));
    let mut cfg = ServeConfig::new(&dir);
    if let Some(s) = arg_value(args, "--workers") {
        cfg.workers = s.parse().map_err(|_| usage_err(format!("bad --workers '{s}'")))?;
    }
    if let Some(s) = arg_value(args, "--queue-cap") {
        cfg.queue_cap = s.parse().map_err(|_| usage_err(format!("bad --queue-cap '{s}'")))?;
    }
    if let Some(s) = arg_value(args, "--ckpt-ms") {
        cfg.ckpt_ms = s.parse().map_err(|_| usage_err(format!("bad --ckpt-ms '{s}'")))?;
    }
    if let Some(s) = arg_value(args, "--window-ms") {
        cfg.window_ms = s.parse().map_err(|_| usage_err(format!("bad --window-ms '{s}'")))?;
    }
    cfg.abort_on_chaos = args.iter().any(|a| a == "--abort-on-chaos");
    let metrics_addr = arg_value(args, "--metrics-addr").unwrap_or_else(|| "127.0.0.1:0".into());

    let daemon = Arc::new(Daemon::start(cfg)?);
    let server = NetServer::start_with_metrics(daemon.clone(), &dir, &metrics_addr)?;
    println!(
        "datalife serve: tcp {} unix {} metrics http://{}/metrics (state in {})",
        server.endpoints.tcp,
        server.endpoints.sock,
        server.endpoints.metrics.as_deref().unwrap_or("-"),
        dir.display()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait();
    daemon.shutdown();
    println!("datalife serve: drained and stopped");
    Ok(())
}

/// Live daemon dashboard: polls the wall-clock `metrics` request and
/// redraws an ANSI screen every --interval-ms (or emits the raw reply
/// lines with --jsonl). --once renders one frame and exits.
fn cmd_top(args: &[String]) -> Result<(), CliError> {
    let jsonl = args.iter().any(|a| a == "--jsonl");
    let once = args.iter().any(|a| a == "--once");
    let interval_ms: u64 = match arg_value(args, "--interval-ms") {
        Some(s) => s.parse().map_err(|_| usage_err(format!("bad --interval-ms '{s}'")))?,
        None => 1000,
    };
    let addr = match (arg_value(args, "--addr"), arg_value(args, "--dir")) {
        (Some(a), _) => a,
        (None, dir) => {
            let dir = dir.unwrap_or_else(|| "serve-state".into());
            Endpoints::load(Path::new(&dir))?.tcp
        }
    };
    let mut client = Client::connect(&addr)?;
    let req = Request::new("metrics").to_line();
    loop {
        let line = client.roundtrip(&req)?;
        if jsonl {
            println!("{line}");
        } else {
            let v: serde_json::Value =
                serde_json::from_str(&line).map_err(|e| format!("bad metrics reply: {e}"))?;
            render_top(&addr, &v);
        }
        if once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
}

/// One `datalife top` frame (ANSI clear + home, then ~a screenful).
fn render_top(addr: &str, v: &serde_json::Value) {
    let u = |k: &str| v.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
    let c = |k: &str| {
        v.get("counters").and_then(|cs| cs.get(k)).and_then(|x| x.as_u64()).unwrap_or(0)
    };
    print!("\x1b[2J\x1b[H");
    println!(
        "datalife top — {addr}   up {:.1}s   workers {}   queue {}   running {}{}",
        u("uptime_ms") as f64 / 1e3,
        u("workers"),
        u("queue_depth"),
        u("running"),
        if v.get("draining").and_then(|x| x.as_bool()) == Some(true) { "   [draining]" } else { "" },
    );
    println!(
        "jobs       accepted {}  done {}  failed {}  cancelled {}  deadline {}  recovered {}",
        c("serve_accepted"),
        c("serve_completed"),
        c("serve_failed"),
        c("serve_cancelled"),
        c("serve_deadline_preempted"),
        c("serve_recovered"),
    );
    println!(
        "admission  submitted {}  shed: capacity {}  deadline {}  bad {}  draining {}",
        c("serve_submitted"),
        c("serve_rejected_capacity"),
        c("serve_rejected_deadline"),
        c("serve_rejected_bad_request"),
        c("serve_rejected_draining"),
    );
    println!(
        "io         ledger commits {}  connections {}  malformed {}  scrapes {}  panics {}",
        c("serve_ledger_commits"),
        c("serve_connections"),
        c("serve_malformed"),
        c("serve_scrapes"),
        c("serve_panics"),
    );
    println!("latency         {:>12} {:>12} {:>12} {:>8}", "p50", "p99", "mean", "n");
    for (label, key, unit) in [
        ("submit", "submit_us", "µs"),
        ("ledger commit", "ledger_commit_us", "µs"),
        ("job wall", "job_wall_ms", "ms"),
    ] {
        let h = v.get("latency").and_then(|l| l.get(key));
        let f = |k: &str| h.and_then(|h| h.get(k)).and_then(|x| x.as_f64()).unwrap_or(0.0);
        let n = h.and_then(|h| h.get("count")).and_then(|x| x.as_u64()).unwrap_or(0);
        println!(
            "  {label:<13} {:>10.1}{unit} {:>10.1}{unit} {:>10.1}{unit} {n:>8}",
            f("p50"),
            f("p99"),
            f("mean"),
        );
    }
    println!("tenant               queued  running  vtime_lag  dispatched");
    let tenants = v.get("tenants").and_then(|x| x.as_array());
    match tenants {
        Some(ts) if !ts.is_empty() => {
            for t in ts {
                let g = |k: &str| t.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
                println!(
                    "  {:<18} {:>6} {:>8} {:>10} {:>11}",
                    t.get("name").and_then(|x| x.as_str()).unwrap_or("?"),
                    g("queued"),
                    g("running"),
                    g("vtime_lag"),
                    g("dispatched"),
                );
            }
        }
        _ => println!("  (no tenants yet)"),
    }
    let diags = v.get("diagnoses").and_then(|x| x.as_array());
    let count = diags.map_or(0, |d| d.len());
    println!("health diagnoses ({count} recent):");
    match diags {
        Some(ds) if !ds.is_empty() => {
            for d in ds.iter().rev().take(5) {
                println!(
                    "  {:>10.3}s  {:<18} {}  — {}",
                    d.get("t_ms").and_then(|x| x.as_u64()).unwrap_or(0) as f64 / 1e3,
                    d.get("kind").and_then(|x| x.as_str()).unwrap_or("?"),
                    d.get("subject").and_then(|x| x.as_str()).unwrap_or("?"),
                    d.get("detail").and_then(|x| x.as_str()).unwrap_or(""),
                );
            }
        }
        _ => println!("  none"),
    }
}

/// A spawned `datalife serve` child; killed on drop so a failing harness
/// never leaks daemons.
struct ServeChild(std::process::Child);

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `datalife serve --dir <dir>` as a real child process (one
/// worker, so job execution order is deterministic) and waits until it
/// answers `ping`.
fn spawn_serve(dir: &Path, ckpt_ms: u64, abort_on_chaos: bool) -> Result<(ServeChild, Client), CliError> {
    // A stale endpoint file from a killed daemon must not be mistaken for
    // the new daemon's endpoints.
    let _ = std::fs::remove_file(dir.join("endpoint.json"));
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("serve")
        .arg("--dir")
        .arg(dir)
        .args(["--workers", "1", "--ckpt-ms", &ckpt_ms.to_string()])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    if abort_on_chaos {
        cmd.arg("--abort-on-chaos");
    }
    let mut child = cmd.spawn().map_err(|e| format!("spawn datalife serve: {e}"))?;
    for _ in 0..400 {
        if let Some(status) = child.try_wait().map_err(|e| e.to_string())? {
            return Err(format!("datalife serve exited during startup: {status}").into());
        }
        if let Ok(mut client) = Client::connect_dir(dir) {
            if client.roundtrip(&Request::new("ping").to_line()).is_ok() {
                return Ok((ServeChild(child), client));
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    let _ = child.kill();
    Err("datalife serve did not come up within 10s".into())
}

/// Runs one job on an already-connected daemon to its terminal state,
/// returning `(state, detail)` from the terminal `job` line.
fn stream_job(client: &mut Client, job: u64) -> Result<(String, String), CliError> {
    let mut req = Request::new("stream");
    req.job = Some(job);
    let lines = client.stream_to_end(&req.to_line())?;
    let last = lines.last().expect("stream_to_end returns the terminal line");
    let v: serde_json::Value = serde_json::from_str(last).map_err(|e| format!("bad terminal line: {e}"))?;
    Ok((
        v["state"].as_str().unwrap_or("?").to_owned(),
        v["detail"].as_str().unwrap_or("").to_owned(),
    ))
}

/// Daemon-level chaos: kill -9 a real `datalife serve` process at seeded
/// dispatch points mid-job and require the recovered result file (report
/// plus both timeline exports) to be byte-identical to a golden,
/// uninterrupted daemon run.
fn cmd_chaos_serve(args: &[String]) -> Result<(), CliError> {
    let workflow = match args.first() {
        Some(w) if !w.starts_with('-') => w.clone(),
        _ => "genomes".into(),
    };
    let scale = arg_value(args, "--scale").unwrap_or_else(|| "tiny".into());
    let nodes: u64 = match arg_value(args, "--nodes") {
        Some(s) => s.parse().map_err(|_| usage_err(format!("bad --nodes '{s}'")))?,
        None => 2,
    };
    let seed: u64 = match arg_value(args, "--seed") {
        Some(s) => s.parse().map_err(|_| usage_err(format!("bad --seed '{s}'")))?,
        None => 3,
    };
    let crashes: usize = match arg_value(args, "--crashes") {
        Some(s) => s.parse().map_err(|_| usage_err(format!("bad --crashes '{s}'")))?,
        None => 3,
    };
    let ckpt_ms: u64 = match arg_value(args, "--ckpt-ms") {
        Some(s) => s.parse().map_err(|_| usage_err(format!("bad --ckpt-ms '{s}'")))?,
        None => 25,
    };
    let named_dir = arg_value(args, "--dir").map(PathBuf::from);
    let keep_dir = named_dir.is_some();
    let root = named_dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("datalife-chaos-serve-{}", std::process::id()))
    });

    let mut submit = Request::new("submit");
    submit.workflow = Some(workflow.clone());
    submit.scale = Some(scale);
    submit.nodes = Some(nodes);
    submit.seed = Some(seed);

    // Golden: one uninterrupted run through a real daemon process.
    let golden_dir = root.join("golden");
    let _ = std::fs::remove_dir_all(&golden_dir);
    std::fs::create_dir_all(&golden_dir).map_err(|e| e.to_string())?;
    let (child, mut client) = spawn_serve(&golden_dir, ckpt_ms, false)?;
    let job = accepted_job(&client.roundtrip(&submit.to_line())?)?;
    let (state, detail) = stream_job(&mut client, job)?;
    if state != "done" {
        return Err(format!("golden job ended '{state}' ({detail}), expected done").into());
    }
    let _ = client.roundtrip(&Request::new("shutdown").to_line());
    drop(child);
    let golden = result_file(&golden_dir, job)?;
    let total = result_events(&golden)?;
    if total < 4 {
        return Err(format!("workflow dispatches only {total} events, too short for chaos").into());
    }

    // Seeded, strictly-ascending kill points inside the dispatch range
    // (the same spread the in-process chaos driver uses).
    let mut points = std::collections::BTreeSet::new();
    let mut i = 0u64;
    while points.len() < crashes && i < 64 + 4 * crashes as u64 {
        let f = dfl_iosim::fault::unit_hash(seed ^ 0xc4a0_5eed, i, total);
        points.insert((1 + (f * (total - 2) as f64) as u64).min(total - 1));
        i += 1;
    }

    let mut diverged = 0usize;
    for &point in &points {
        let dir = root.join(format!("kill-at-{point}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;

        // Arm the kill switch and watch the daemon die mid-job. The abort
        // happens at the exact dispatch index, with no destructors and no
        // flushes — kill -9 semantics.
        let (child, mut client) = spawn_serve(&dir, ckpt_ms, true)?;
        let mut armed = submit.clone();
        armed.chaos_at = Some(point);
        // The reply can be lost if the kill lands first; a fresh state dir
        // always allocates job 0.
        let job = client
            .roundtrip(&armed.to_line())
            .ok()
            .and_then(|l| accepted_job(&l).ok())
            .unwrap_or(0);
        let mut child = child;
        let status = child.0.wait().map_err(|e| e.to_string())?;
        if status.success() {
            return Err(format!("daemon exited cleanly at kill point {point}; expected abort").into());
        }

        // Restart on the same state directory: recovery must finish the
        // job byte-identically.
        let (child, mut client) = spawn_serve(&dir, ckpt_ms, false)?;
        let (state, detail) = stream_job(&mut client, job)?;
        if state != "done" {
            return Err(format!("recovered job ended '{state}' ({detail}) at kill point {point}").into());
        }
        let _ = client.roundtrip(&Request::new("shutdown").to_line());
        drop(child);

        let recovered = result_file(&dir, job)?;
        let ok = recovered == golden;
        println!(
            "kill -9 at dispatch {point}/{total}: {}",
            if ok { "PASS — recovered result byte-identical" } else { "FAIL — recovered result diverges" }
        );
        if !ok {
            diverged += 1;
        }
    }
    if !keep_dir {
        let _ = std::fs::remove_dir_all(&root);
    }
    if diverged > 0 {
        return Err(CliError::Divergence(format!(
            "{diverged}/{} daemon kill points diverged from the golden run",
            points.len()
        )));
    }
    println!(
        "all {} daemon kill points recovered byte-identical to the golden run",
        points.len()
    );
    Ok(())
}

/// Extracts the job id from an `accepted` reply line.
fn accepted_job(line: &str) -> Result<u64, CliError> {
    let v: serde_json::Value = serde_json::from_str(line).map_err(|e| format!("bad reply: {e}"))?;
    if v["type"].as_str() != Some("accepted") {
        return Err(format!("submit not accepted: {line}").into());
    }
    v["job"].as_u64().ok_or_else(|| "accepted reply without job id".into())
}

/// Reads a job's result file (report + both timeline exports, one JSON
/// document) — the byte-compared artifact.
fn result_file(dir: &Path, job: u64) -> Result<Vec<u8>, CliError> {
    let path = dir.join(format!("job-{job}-result.json"));
    std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()).into())
}

fn result_events(bytes: &[u8]) -> Result<u64, CliError> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("result not UTF-8: {e}"))?;
    let v: serde_json::Value = serde_json::from_str(text).map_err(|e| format!("bad result JSON: {e}"))?;
    v["events_dispatched"].as_u64().ok_or_else(|| "result without events_dispatched".into())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "run" => cmd_run(rest),
        "profile" => cmd_profile(rest),
        "watch" => cmd_watch(rest),
        "analyze" => cmd_analyze(rest),
        "rank" => cmd_rank(rest),
        "caterpillar" => cmd_caterpillar(rest),
        "sankey" => cmd_sankey(rest),
        "html" => cmd_html(rest),
        "advise" => cmd_advise(rest),
        "casestudy" => cmd_casestudy(rest),
        "chaos" => cmd_chaos(rest),
        "serve" => cmd_serve(rest),
        "top" => cmd_top(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(usage_err(format!("unknown command '{other}'"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            match &e {
                // Usage mistakes get the full usage text; runtime failures
                // and divergences just the message.
                CliError::Usage(msg) => eprintln!("error: {msg}\n\n{USAGE}"),
                CliError::Runtime(msg) => eprintln!("error: {msg}"),
                CliError::Divergence(msg) => eprintln!("divergence: {msg}"),
            }
            ExitCode::from(e.code())
        }
    }
}
