//! Black-box tests of `datalife serve` as a real operating-system process:
//! submit over TCP, kill -9 the daemon mid-flight, restart it on the same
//! state directory, and require the recovered result to be byte-identical
//! to an uninterrupted run's.
//!
//! The in-process daemon tests live in `tests/tests/serve_robustness.rs`;
//! this file covers what only a real process can: SIGKILL delivery, abort
//! with no destructors, endpoint discovery across restarts, and the
//! `chaos --serve` driver's exit codes.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use dfl_serve::{Client, Request};

fn datalife() -> Command {
    Command::new(env!("CARGO_BIN_EXE_datalife"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("datalife-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Kills the child on drop so a failing assertion never leaks a daemon.
struct Guard(Child);

impl Drop for Guard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `datalife serve` on `dir` and waits until it answers `ping`.
fn spawn_serve(dir: &Path, abort_on_chaos: bool) -> (Guard, Client) {
    let _ = std::fs::remove_file(dir.join("endpoint.json"));
    let mut cmd = datalife();
    cmd.args(["serve", "--dir"])
        .arg(dir)
        .args(["--workers", "1", "--ckpt-ms", "10"])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if abort_on_chaos {
        cmd.arg("--abort-on-chaos");
    }
    let mut child = cmd.spawn().expect("spawn datalife serve");
    for _ in 0..400 {
        if let Some(status) = child.try_wait().unwrap() {
            panic!("daemon exited during startup: {status}");
        }
        if let Ok(mut c) = Client::connect_dir(dir) {
            if c.roundtrip(&Request::new("ping").to_line()).is_ok() {
                return (Guard(child), c);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    panic!("daemon did not come up within 10s");
}

fn submit_genomes() -> Request {
    let mut r = Request::new("submit");
    r.workflow = Some("genomes".into());
    r.scale = Some("tiny".into());
    r.nodes = Some(2);
    r.seed = Some(7);
    r
}

fn accepted_job(line: &str) -> u64 {
    let v: serde_json::Value = serde_json::from_str(line).unwrap();
    assert_eq!(v["type"].as_str(), Some("accepted"), "{line}");
    v["job"].as_u64().unwrap()
}

/// Streams the job to its terminal line and asserts it ended `done`.
fn stream_to_done(client: &mut Client, job: u64) {
    let mut req = Request::new("stream");
    req.job = Some(job);
    let lines = client.stream_to_end(&req.to_line()).unwrap();
    let v: serde_json::Value = serde_json::from_str(lines.last().unwrap()).unwrap();
    assert_eq!(v["state"].as_str(), Some("done"), "{lines:?}");
}

fn shutdown(dir: &Path, guard: Guard) {
    let mut c = Client::connect_dir(dir).unwrap();
    let _ = c.roundtrip(&Request::new("shutdown").to_line());
    let mut guard = guard;
    let status = guard.0.wait().unwrap();
    assert!(status.success(), "clean shutdown exits 0, got {status}");
}

fn result_bytes(dir: &Path, job: u64) -> Vec<u8> {
    std::fs::read(dir.join(format!("job-{job}-result.json"))).unwrap()
}

/// One golden daemon run; returns the result bytes and the dispatch count
/// (for seeding kill points).
fn golden_run(dir: &Path) -> (Vec<u8>, u64) {
    let (guard, mut client) = spawn_serve(dir, false);
    let job = accepted_job(&client.roundtrip(&submit_genomes().to_line()).unwrap());
    stream_to_done(&mut client, job);
    shutdown(dir, guard);
    let bytes = result_bytes(dir, job);
    let v: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&bytes).unwrap()).unwrap();
    (bytes, v["events_dispatched"].as_u64().unwrap())
}

/// Real SIGKILL at an arbitrary instant after the accept: whatever state
/// the daemon dies in (job queued, running, or already done), a restart
/// on the same directory converges to the same result bytes.
#[test]
fn sigkill_after_accept_recovers_byte_identical() {
    let golden_dir = tmpdir("sigkill-golden");
    let (golden, _) = golden_run(&golden_dir);

    let dir = tmpdir("sigkill");
    let (guard, mut client) = spawn_serve(&dir, false);
    let job = accepted_job(&client.roundtrip(&submit_genomes().to_line()).unwrap());
    // The accept is durable (write-ahead ledger), so SIGKILL right now —
    // mid-job on a debug build — must not lose the job.
    let mut guard = guard;
    guard.0.kill().unwrap();
    let _ = guard.0.wait();
    drop(guard);

    let (guard, mut client) = spawn_serve(&dir, false);
    stream_to_done(&mut client, job);
    shutdown(&dir, guard);
    assert_eq!(result_bytes(&dir, job), golden, "recovered result diverges from golden");

    std::fs::remove_dir_all(&golden_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// Deterministic kill: `--abort-on-chaos` + `chaos_at` aborts the daemon
/// at an exact dispatch index (no destructors, no flushes); restart
/// resumes from checkpoints to a byte-identical result.
#[test]
fn abort_at_seeded_dispatch_recovers_byte_identical() {
    let golden_dir = tmpdir("abort-golden");
    let (golden, total) = golden_run(&golden_dir);
    assert!(total > 4, "workflow too short to kill mid-run");

    let dir = tmpdir("abort");
    let (guard, mut client) = spawn_serve(&dir, true);
    let mut req = submit_genomes();
    req.chaos_at = Some(total / 2);
    // The reply can be lost if the abort lands first; job 0 is the only
    // job a fresh state dir can allocate.
    let job = client
        .roundtrip(&req.to_line())
        .ok()
        .map(|l| accepted_job(&l))
        .unwrap_or(0);
    let mut guard = guard;
    let status = guard.0.wait().unwrap();
    assert!(!status.success(), "daemon must die at the armed dispatch, got {status}");
    drop(guard);

    let (guard, mut client) = spawn_serve(&dir, false);
    stream_to_done(&mut client, job);
    shutdown(&dir, guard);
    assert_eq!(result_bytes(&dir, job), golden, "recovered result diverges from golden");

    std::fs::remove_dir_all(&golden_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// One hand-rolled HTTP exchange against the daemon's scrape listener.
fn http_get(addr: &str, path: &str) -> (String, String) {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).expect("connect scrape listener");
    write!(s, "GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap(); // Connection: close ends the read
    let (head, body) = raw.split_once("\r\n\r\n").expect("http header/body split");
    (head.to_owned(), body.to_owned())
}

/// A real `datalife serve` process publishes its scrape endpoint and
/// serves valid Prometheus exposition over plain HTTP; `datalife top
/// --once --jsonl` polls the same daemon through the endpoint file.
#[test]
fn scrape_endpoint_and_top_read_a_live_daemon() {
    let dir = tmpdir("scrape");
    let (guard, mut client) = spawn_serve(&dir, false);
    let mut req = Request::new("submit");
    req.workflow = Some("smoke".into());
    req.tenant = Some("acme".into());
    let job = accepted_job(&client.roundtrip(&req.to_line()).unwrap());
    stream_to_done(&mut client, job);

    let ep = dfl_serve::Endpoints::load(&dir).expect("endpoint file");
    let addr = ep.metrics.expect("daemon publishes its scrape address");
    let (head, body) = http_get(&addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    assert!(body.contains("# TYPE serve_accepted counter"), "{body}");
    assert!(body.contains("\nserve_accepted 1\n") || body.starts_with("serve_accepted 1\n"));
    assert!(body.contains("serve_tenant_dispatched{tenant=\"acme\"} 1"), "{body}");
    assert!(body.contains("serve_submit_us_bucket{le=\"+Inf\"} 1"), "{body}");
    let (head, _) = http_get(&addr, "/other");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    // `top --once --jsonl` emits exactly the typed metrics reply.
    let out = datalife()
        .args(["top", "--once", "--jsonl", "--dir"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let line = String::from_utf8(out.stdout).unwrap();
    let v: serde_json::Value = serde_json::from_str(line.trim()).expect("one JSON line");
    assert_eq!(v["type"].as_str(), Some("metrics"));
    assert_eq!(v["counters"]["serve_completed"].as_u64(), Some(1));
    assert_eq!(v["tenants"][0]["name"].as_str(), Some("acme"));

    shutdown(&dir, guard);
    std::fs::remove_dir_all(&dir).ok();
}

/// The CLI driver wraps the same harness: exit 0 and a PASS line per
/// seeded kill point.
#[test]
fn chaos_serve_driver_passes_and_exits_zero() {
    let dir = tmpdir("driver");
    let out = datalife()
        .args(["chaos", "genomes", "--serve", "--crashes", "2", "--seed", "5", "--dir"])
        .arg(&dir)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}\nstderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.matches("PASS — recovered result byte-identical").count() >= 2, "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
