//! Black-box tests of the `datalife` binary: the collector→analyzer round
//! trip a user would actually run.

use std::path::PathBuf;
use std::process::Command;

fn datalife() -> Command {
    Command::new(env!("CARGO_BIN_EXE_datalife"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("datalife-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn no_args_prints_usage_and_exits_2() {
    let out = datalife().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let out = datalife().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("datalife run"));
}

#[test]
fn unknown_command_is_a_usage_error() {
    let out = datalife().arg("bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command 'bogus'"));
}

#[test]
fn run_then_analyze_rank_caterpillar_sankey_html() {
    let dir = tmpdir("roundtrip");
    let m = dir.join("m.json");

    let out = datalife()
        .args(["run", "ddmd", "-o", m.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("makespan"));
    assert!(m.exists());

    let out = datalife().args(["analyze", m.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("acyclic: true"));
    assert!(text.contains("opportunity report"));

    let out = datalife().args(["rank", m.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("producer-consumer relations"));

    let out = datalife()
        .args(["caterpillar", m.to_str().unwrap(), "--cost", "volume"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("caterpillar:"));

    let sankey = dir.join("s.json");
    let out = datalife()
        .args(["sankey", m.to_str().unwrap(), "-o", sankey.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&sankey).unwrap()).unwrap();
    assert!(parsed["nodes"].as_array().unwrap().len() > 3);

    let out = datalife().args(["advise", m.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let advice = String::from_utf8_lossy(&out.stdout);
    assert!(
        advice.contains("cache these re-read files") || advice.contains("node-local")
            || advice.contains("no mechanically-applicable"),
        "{advice}"
    );

    let html = dir.join("l.html");
    let out = datalife()
        .args(["html", m.to_str().unwrap(), "-o", html.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(std::fs::read_to_string(&html).unwrap().starts_with("<!DOCTYPE html>"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn faulted_run_prints_report_and_is_deterministic() {
    let dir = tmpdir("faults");
    let invoke = |out: &str| {
        datalife()
            .args([
                "run",
                "genomes",
                "--faults",
                "seed=42,crash=0@0.05s+0.2s,ioerr=0.0005",
                "--retries",
                "10",
                "-o",
                out,
            ])
            .output()
            .unwrap()
    };
    let a = invoke(dir.join("a.json").to_str().unwrap());
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("failure report"), "{text}");
    assert!(text.contains("goodput"), "{text}");

    // Same plan, same seed: byte-identical stdout and measurements.
    let b = invoke(dir.join("b.json").to_str().unwrap());
    assert!(b.status.success());
    // Ignore the "wrote <path>" line: the output paths differ by design.
    let strip = |s: &[u8]| {
        String::from_utf8_lossy(s)
            .lines()
            .filter(|l| !l.starts_with("wrote "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&a.stdout), strip(&b.stdout));
    assert_eq!(
        std::fs::read_to_string(dir.join("a.json")).unwrap(),
        std::fs::read_to_string(dir.join("b.json")).unwrap()
    );

    let bad = datalife().args(["run", "genomes", "--faults", "crash=99"]).output().unwrap();
    assert_eq!(bad.status.code(), Some(2), "bad flag value is a usage error");
    assert!(String::from_utf8_lossy(&bad.stderr).contains("bad --faults"));

    std::fs::remove_dir_all(&dir).ok();
}

/// Every Chrome-trace event must carry the fields Perfetto requires:
/// `ph`/`pid`/`tid` always, `ts` on everything but metadata records.
fn assert_chrome_trace_schema(path: &std::path::Path) -> serde_json::Value {
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
    let events = parsed["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        let ph = e["ph"].as_str().expect("ph string");
        assert!(matches!(ph, "M" | "X" | "i" | "C"), "unexpected phase {ph}");
        assert!(e["pid"].as_u64().is_some(), "pid missing: {e:?}");
        assert!(e["tid"].as_u64().is_some(), "tid missing: {e:?}");
        if ph != "M" {
            assert!(e["ts"].as_f64().is_some(), "ts missing: {e:?}");
        }
        if ph == "X" {
            assert!(e["dur"].as_f64().is_some(), "dur missing: {e:?}");
        }
    }
    parsed
}

#[test]
fn run_trace_out_writes_valid_chrome_trace() {
    let dir = tmpdir("traceout");
    let m = dir.join("m.json");
    let t = dir.join("t.json");
    let out = datalife()
        .args(["run", "ddmd", "-o", m.to_str().unwrap(), "--trace-out", t.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("timeline events"));
    let parsed = assert_chrome_trace_schema(&t);
    // Run spans for real tasks are present.
    let events = parsed["traceEvents"].as_array().unwrap();
    assert!(events
        .iter()
        .any(|e| e["ph"].as_str() == Some("X") && e["args"]["outcome"].as_str() == Some("ok") && e["cat"].as_str() == Some("run")));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_emits_summary_and_deterministic_trace() {
    let dir = tmpdir("profile");
    let invoke = |name: &str, extra: &[&str]| {
        let t = dir.join(name);
        let mut args =
            vec!["profile", "genomes", "--trace-out", t.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = datalife().args(&args).output().unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        (t, String::from_utf8_lossy(&out.stdout).into_owned())
    };

    let (t1, stdout) = invoke("a.json", &[]);
    assert!(stdout.contains("timeline:"), "{stdout}");
    assert!(stdout.contains("counters:"), "{stdout}");
    assert!(stdout.contains("makespan"), "{stdout}");
    let parsed = assert_chrome_trace_schema(&t1);
    let events = parsed["traceEvents"].as_array().unwrap();
    // Track metadata names node and tier tracks; counter samples present at
    // the default 100ms cadence.
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("M"))
        .filter_map(|e| e["args"]["name"].as_str())
        .collect();
    assert!(names.contains(&"node:0"), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("tier:")), "{names:?}");
    assert!(names.contains(&"stages"), "{names:?}");
    assert!(events.iter().any(|e| e["ph"].as_str() == Some("C")));
    assert!(events.iter().any(|e| e["ph"].as_str() == Some("X") && e["cat"].as_str() == Some("stage")));

    // Same invocation ⇒ byte-identical trace.
    let (t2, _) = invoke("b.json", &[]);
    assert_eq!(std::fs::read(&t1).unwrap(), std::fs::read(&t2).unwrap());

    // --sample-ms 0 disables sampling but keeps spans.
    let (t3, _) = invoke("c.json", &["--sample-ms", "0"]);
    let parsed = assert_chrome_trace_schema(&t3);
    let events = parsed["traceEvents"].as_array().unwrap();
    assert!(!events.iter().any(|e| e["ph"].as_str() == Some("C")));
    assert!(events.iter().any(|e| e["ph"].as_str() == Some("X")));

    // --jsonl writes one JSON document per line.
    let j = dir.join("t.jsonl");
    let out = datalife()
        .args([
            "profile",
            "genomes",
            "--trace-out",
            dir.join("d.json").to_str().unwrap(),
            "--jsonl",
            j.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = std::fs::read_to_string(&j).unwrap();
    assert!(text.lines().count() > 10);
    for line in text.lines() {
        let _: serde_json::Value = serde_json::from_str(line).expect("each line parses");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_missing_file_is_a_runtime_error() {
    let out = datalife().args(["analyze", "/nonexistent/zzz.json"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn run_unknown_workflow_is_a_usage_error() {
    let out = datalife().args(["run", "fusion"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workflow"));
}
