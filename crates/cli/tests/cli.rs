//! Black-box tests of the `datalife` binary: the collector→analyzer round
//! trip a user would actually run.

use std::path::PathBuf;
use std::process::Command;

fn datalife() -> Command {
    Command::new(env!("CARGO_BIN_EXE_datalife"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("datalife-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = datalife().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let out = datalife().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("datalife run"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = datalife().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command 'bogus'"));
}

#[test]
fn run_then_analyze_rank_caterpillar_sankey_html() {
    let dir = tmpdir("roundtrip");
    let m = dir.join("m.json");

    let out = datalife()
        .args(["run", "ddmd", "-o", m.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("makespan"));
    assert!(m.exists());

    let out = datalife().args(["analyze", m.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("acyclic: true"));
    assert!(text.contains("opportunity report"));

    let out = datalife().args(["rank", m.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("producer-consumer relations"));

    let out = datalife()
        .args(["caterpillar", m.to_str().unwrap(), "--cost", "volume"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("caterpillar:"));

    let sankey = dir.join("s.json");
    let out = datalife()
        .args(["sankey", m.to_str().unwrap(), "-o", sankey.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&sankey).unwrap()).unwrap();
    assert!(parsed["nodes"].as_array().unwrap().len() > 3);

    let out = datalife().args(["advise", m.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let advice = String::from_utf8_lossy(&out.stdout);
    assert!(
        advice.contains("cache these re-read files") || advice.contains("node-local")
            || advice.contains("no mechanically-applicable"),
        "{advice}"
    );

    let html = dir.join("l.html");
    let out = datalife()
        .args(["html", m.to_str().unwrap(), "-o", html.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(std::fs::read_to_string(&html).unwrap().starts_with("<!DOCTYPE html>"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn faulted_run_prints_report_and_is_deterministic() {
    let dir = tmpdir("faults");
    let invoke = |out: &str| {
        datalife()
            .args([
                "run",
                "genomes",
                "--faults",
                "seed=42,crash=0@0.05s+0.2s,ioerr=0.0005",
                "--retries",
                "10",
                "-o",
                out,
            ])
            .output()
            .unwrap()
    };
    let a = invoke(dir.join("a.json").to_str().unwrap());
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("failure report"), "{text}");
    assert!(text.contains("goodput"), "{text}");

    // Same plan, same seed: byte-identical stdout and measurements.
    let b = invoke(dir.join("b.json").to_str().unwrap());
    assert!(b.status.success());
    // Ignore the "wrote <path>" line: the output paths differ by design.
    let strip = |s: &[u8]| {
        String::from_utf8_lossy(s)
            .lines()
            .filter(|l| !l.starts_with("wrote "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&a.stdout), strip(&b.stdout));
    assert_eq!(
        std::fs::read_to_string(dir.join("a.json")).unwrap(),
        std::fs::read_to_string(dir.join("b.json")).unwrap()
    );

    let bad = datalife().args(["run", "genomes", "--faults", "crash=99"]).output().unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("bad --faults"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_missing_file_fails_cleanly() {
    let out = datalife().args(["analyze", "/nonexistent/zzz.json"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn run_unknown_workflow_fails() {
    let out = datalife().args(["run", "fusion"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workflow"));
}
