//! # dfl-trace — scalable data-flow lifecycle measurement
//!
//! This crate implements the *distributed measurement* layer of DataLife
//! (paper §3). The original system interposes on POSIX/C I/O with
//! `LD_PRELOAD`; here the same observable event stream is produced by an
//! instrumented, POSIX-style I/O API that simulated (or real) tasks call
//! directly:
//!
//! * [`Monitor`] — the process-wide measurement session. Hands out
//!   [`TaskContext`]s and owns the [`collector`] that accumulates one
//!   constant-size record per *task-file pair*.
//! * [`TaskContext`] — per-task facade exposing `open`/`read`/`write`/
//!   `seek`/`close`. Each open handle is *shadowed* ([`handle`]) so that the
//!   byte addresses touched by offset-implicit operations are known.
//! * [`histogram`] — per task-file *block histogram* whose size is bounded by
//!   (a) adjustable access resolution (block size derived from file size) and
//!   (b) deterministic *spatial sampling* ([`sampling`]), making measurement
//!   space constant per data file.
//! * [`export`] — serializable [`export::MeasurementSet`],
//!   the input to DFL graph construction in `dfl-core`.
//!
//! ## Quick example
//!
//! ```
//! use dfl_trace::{Monitor, MonitorConfig, OpenMode, IoTiming};
//!
//! let monitor = Monitor::new(MonitorConfig::default());
//! let ctx = monitor.begin_task("producer", 0);
//! let fd = ctx.open("out.dat", OpenMode::Write, None, 0);
//! ctx.write(fd, 4096, IoTiming::new(10, 5)).unwrap();
//! ctx.close(fd, 100).unwrap();
//! ctx.finish(120);
//!
//! let set = monitor.snapshot();
//! assert_eq!(set.records.len(), 1);
//! assert_eq!(set.records[0].bytes_written, 4096);
//! ```

pub mod block;
pub mod collector;
pub mod error;
pub mod export;
pub mod handle;
pub mod hash;
pub mod histogram;
pub mod ids;
pub mod monitor;
pub mod sampling;
pub mod stats;
pub mod stream;

pub use block::BlockPolicy;
pub use error::TraceError;
pub use export::MeasurementSet;
pub use handle::{OpenMode, SeekFrom};
pub use ids::{FileId, TaskId};
pub use monitor::{IoTiming, Monitor, MonitorConfig, MonitorState, TaskContext, TaskSnapshot};
pub use sampling::SpatialSampler;
pub use stats::{FlowKind, TaskFileRecord, TaskRecord};
pub use stream::CStream;
