//! Compact, interned identifiers for tasks and files.
//!
//! Measurement records refer to tasks and data files by dense `u32` ids so
//! that per-record space stays small; the [`Interner`] maps them back to the
//! human-readable names used in reports and graph construction.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Identifies one *task instance* (a distinct vertex in the DFL-DAG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

/// Identifies one data file (one data vertex in the DFL-DAG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(pub u32);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A string interner assigning dense ids in first-seen order.
///
/// Interning is deterministic for a deterministic sequence of calls, which
/// keeps measurement output reproducible run-to-run.
#[derive(Debug, Default)]
pub struct Interner {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, allocating the next dense id if new.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an id without allocating.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The name for `id`, if allocated.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All names in id order (index == id).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Rebuilds an interner from a dense name list (index == id), e.g. when
    /// restoring a snapshot. Ids are reassigned in order, so a round trip
    /// through [`Interner::names`] is exact.
    pub fn from_names(names: Vec<String>) -> Self {
        let by_name = names
            .iter()
            .enumerate()
            .map(|(id, n)| (n.clone(), id as u32))
            .collect();
        Self { by_name, names }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_dense_and_stable() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.name(1), Some("b"));
        assert_eq!(i.get("c"), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TaskId(3).to_string(), "t3");
        assert_eq!(FileId(7).to_string(), "d7");
    }
}
