//! Per task-file flow records — the unit of DFL measurement.
//!
//! Each record corresponds to one or two DFL-G edges: reads by the task form
//! a *consumer* relation (data → task), writes form a *producer* relation
//! (task → data). The record carries the aggregate statistics and the block
//! histogram from which all lifecycle properties (§4.2) are derived.

use serde::{Deserialize, Serialize};

use crate::histogram::{BlockHistogram, BlockStats};
use crate::ids::{FileId, TaskId};

/// Direction of a flow relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowKind {
    /// Task wrote the file: DFL-G edge task → data.
    Producer,
    /// Task read the file: DFL-G edge data → task.
    Consumer,
}

/// Consecutive-access-distance summary (spatial/temporal locality, §4.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DistanceSummary {
    /// Accesses at distance exactly 0 (temporal locality).
    pub zero: u64,
    /// Accesses at 0 < distance < block size (spatial locality).
    pub near: u64,
    /// Accesses at distance ≥ block size.
    pub far: u64,
    /// Sum of absolute distances, for the mean.
    pub sum_abs: u64,
    /// Number of distance observations (accesses after the first).
    pub count: u64,
}

impl DistanceSummary {
    pub fn observe(&mut self, distance: u64, block_size: u64) {
        if distance == 0 {
            self.zero += 1;
        } else if distance < block_size {
            self.near += 1;
        } else {
            self.far += 1;
        }
        self.sum_abs += distance;
        self.count += 1;
    }

    /// Mean absolute consecutive access distance in bytes.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_abs as f64 / self.count as f64
        }
    }

    /// Fraction of accesses exhibiting locality (distance < block size).
    pub fn locality_fraction(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.zero + self.near) as f64 / self.count as f64
        }
    }

    pub fn merge(&mut self, other: &DistanceSummary) {
        self.zero += other.zero;
        self.near += other.near;
        self.far += other.far;
        self.sum_abs += other.sum_abs;
        self.count += other.count;
    }
}

/// The full measurement record for one task-file pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskFileRecord {
    pub task: TaskId,
    pub task_name: String,
    pub file: FileId,
    pub file_path: String,

    /// Times the task opened the file.
    pub opens: u64,
    /// Read / write operation counts.
    pub read_ops: u64,
    pub write_ops: u64,
    /// Total (non-unique) volumes.
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Total time blocked inside read / write calls (ns).
    pub read_ns: u64,
    pub write_ns: u64,
    /// Sum over handles of (close − open) — total open-stream time (ns).
    pub open_span_ns: u64,
    /// First open / last close timestamps (ns).
    pub first_open_ns: u64,
    pub last_close_ns: u64,
    /// Largest file size observed through this pair's handles.
    pub file_size: u64,

    /// Consecutive-access distances for reads and writes.
    pub read_distance: DistanceSummary,
    pub write_distance: DistanceSummary,

    /// The (sampled, bounded) block histogram.
    pub histogram: BlockHistogram,
}

impl TaskFileRecord {
    /// Which flow relations this record contributes (a read-write task-file
    /// pair contributes both a producer and a consumer edge).
    pub fn flow_kinds(&self) -> Vec<FlowKind> {
        let mut kinds = Vec::with_capacity(2);
        if self.bytes_written > 0 || (self.write_ops > 0 && self.bytes_read == 0) {
            kinds.push(FlowKind::Producer);
        }
        if self.bytes_read > 0 || (self.read_ops > 0 && self.bytes_written == 0) {
            kinds.push(FlowKind::Consumer);
        }
        if kinds.is_empty() {
            // Opened but never accessed: classify by nothing; callers treat
            // the record as metadata-only.
        }
        kinds
    }

    /// Estimated unique bytes read (consumer footprint), sampling-scaled and
    /// capped at the observed file size.
    pub fn read_footprint(&self) -> f64 {
        let est = self.histogram.footprint_read_est();
        if self.file_size > 0 {
            est.min(self.file_size as f64)
        } else {
            est
        }
    }

    /// Estimated unique bytes written (producer footprint).
    pub fn write_footprint(&self) -> f64 {
        let est = self.histogram.footprint_written_est();
        if self.file_size > 0 {
            est.min(self.file_size as f64)
        } else {
            est
        }
    }

    /// Volume / footprint for reads — >1 means intra-task data reuse.
    pub fn read_reuse_factor(&self) -> f64 {
        let fp = self.read_footprint();
        if fp <= 0.0 {
            0.0
        } else {
            self.bytes_read as f64 / fp
        }
    }

    /// Fraction of the file actually read — <1 means a data-subset pattern.
    pub fn read_subset_fraction(&self) -> f64 {
        if self.file_size == 0 {
            return 0.0;
        }
        (self.read_footprint() / self.file_size as f64).min(1.0)
    }

    /// Fraction of open-stream time spent blocked in reads (§4.2 ratios).
    pub fn read_blocking_fraction(&self) -> f64 {
        if self.open_span_ns == 0 {
            0.0
        } else {
            (self.read_ns as f64 / self.open_span_ns as f64).min(1.0)
        }
    }

    /// Fraction of open-stream time spent blocked in writes.
    pub fn write_blocking_fraction(&self) -> f64 {
        if self.open_span_ns == 0 {
            0.0
        } else {
            (self.write_ns as f64 / self.open_span_ns as f64).min(1.0)
        }
    }

    /// File lifetime as seen by this pair: first open to last close (ns).
    pub fn lifetime_ns(&self) -> u64 {
        self.last_close_ns.saturating_sub(self.first_open_ns)
    }

    /// Sampled per-block statistics, sorted by block index.
    pub fn blocks(&self) -> Vec<(u64, BlockStats)> {
        self.histogram.iter_sorted()
    }
}

/// Per-task-instance execution record (task lifetime, §4.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskRecord {
    pub task: TaskId,
    /// Instance name, e.g. `indiv-chr1-3`.
    pub name: String,
    /// Logical (template) name, e.g. `indiv`; used for DFL-T aggregation.
    pub logical: String,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl TaskRecord {
    pub fn lifetime_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Per-file metadata record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileRecord {
    pub file: FileId,
    pub path: String,
    /// Largest size observed across all tasks.
    pub size: u64,
    /// Final (coarsest) block size used by all histograms of this file.
    pub block_size: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::AccessKind;
    use crate::sampling::SpatialSampler;

    fn record_with(reads: u64, writes: u64) -> TaskFileRecord {
        let mut hist = BlockHistogram::new(4096, 1024, SpatialSampler::keep_all(0));
        if reads > 0 {
            hist.record(AccessKind::Read, 0, reads, 0, false);
        }
        if writes > 0 {
            hist.record(AccessKind::Write, 0, writes, 0, false);
        }
        TaskFileRecord {
            task: TaskId(0),
            task_name: "t".into(),
            file: FileId(0),
            file_path: "f".into(),
            opens: 1,
            read_ops: u64::from(reads > 0),
            write_ops: u64::from(writes > 0),
            bytes_read: reads,
            bytes_written: writes,
            read_ns: 10,
            write_ns: 20,
            open_span_ns: 100,
            first_open_ns: 0,
            last_close_ns: 100,
            file_size: 1 << 20,
            read_distance: DistanceSummary::default(),
            write_distance: DistanceSummary::default(),
            histogram: hist,
        }
    }

    #[test]
    fn flow_kinds_classify_direction() {
        assert_eq!(record_with(100, 0).flow_kinds(), vec![FlowKind::Consumer]);
        assert_eq!(record_with(0, 100).flow_kinds(), vec![FlowKind::Producer]);
        assert_eq!(
            record_with(100, 100).flow_kinds(),
            vec![FlowKind::Producer, FlowKind::Consumer]
        );
    }

    #[test]
    fn write_only_workload_ratios_are_finite() {
        // A producer-only record has a zero read footprint; every read-side
        // ratio must come back 0.0, never NaN/inf from a 0/0 division.
        let mut r = record_with(0, 4096);
        assert_eq!(r.read_footprint(), 0.0);
        assert_eq!(r.read_reuse_factor(), 0.0);
        assert_eq!(r.read_subset_fraction(), 0.0);
        assert!(r.read_reuse_factor().is_finite());

        // Zero observed file size (metadata never materialized): subset
        // fraction and blocking fraction still finite.
        r.file_size = 0;
        r.open_span_ns = 0;
        assert_eq!(r.read_subset_fraction(), 0.0);
        assert_eq!(r.read_blocking_fraction(), 0.0);
        assert_eq!(r.write_blocking_fraction(), 0.0);
        assert!(r.write_footprint().is_finite());
    }

    #[test]
    fn blocking_fractions() {
        let r = record_with(100, 100);
        assert!((r.read_blocking_fraction() - 0.1).abs() < 1e-9);
        assert!((r.write_blocking_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn distance_summary_classifies() {
        let mut d = DistanceSummary::default();
        d.observe(0, 4096);
        d.observe(100, 4096);
        d.observe(10_000, 4096);
        assert_eq!((d.zero, d.near, d.far), (1, 1, 1));
        assert!((d.locality_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert!((d.mean() - 10_100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn reuse_factor_reflects_repeat_reads() {
        let mut r = record_with(4096, 0);
        // Re-read the same block 4 more times.
        for i in 1..5 {
            r.histogram.record(AccessKind::Read, 0, 4096, i, true);
            r.bytes_read += 4096;
        }
        assert!((r.read_reuse_factor() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn subset_fraction_small_read_of_large_file() {
        let r = record_with(4096, 0);
        // 4 KiB of a 1 MiB file.
        assert!((r.read_subset_fraction() - 4096.0 / 1048576.0).abs() < 1e-6);
    }

    #[test]
    fn task_record_lifetime() {
        let t = TaskRecord {
            task: TaskId(1),
            name: "x-1".into(),
            logical: "x".into(),
            start_ns: 50,
            end_ns: 250,
        };
        assert_eq!(t.lifetime_ns(), 200);
    }
}
