//! Error type for the measurement layer.

use std::fmt;

/// Errors surfaced by the monitor's emulated I/O layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Operation on a descriptor that is not open in this task.
    BadFd(u64),
    /// Read on a handle not opened for reading, or write on a read-only one.
    BadMode { fd: u64, op: &'static str },
    /// Task context used after `finish`.
    TaskFinished(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadFd(fd) => write!(f, "bad file descriptor {fd}"),
            TraceError::BadMode { fd, op } => {
                write!(f, "operation {op} not permitted by open mode on fd {fd}")
            }
            TraceError::TaskFinished(name) => {
                write!(f, "task context '{name}' already finished")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(TraceError::BadFd(3).to_string(), "bad file descriptor 3");
        assert!(TraceError::BadMode { fd: 1, op: "read" }
            .to_string()
            .contains("read"));
        assert!(TraceError::TaskFinished("t".into()).to_string().contains("finished"));
    }
}
