//! Deterministic 64-bit hashing for spatial sampling.
//!
//! The sampling rule of §3 requires a hash that is a pure function of a data
//! *location* — independent of access order, thread, and process — so that
//! every producer and consumer of a lifecycle samples the same locations.
//! `std::collections` hashers are randomly seeded per process, so we use a
//! fixed-key mix based on splitmix64 (Steele et al.), which passes the usual
//! avalanche tests and costs a handful of arithmetic ops.

/// splitmix64 finalizer: a full-avalanche 64-bit mix.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a `(seed, location)` pair; used as `H(L)` in the sampling rule.
#[inline]
pub fn hash_location(seed: u64, location: u64) -> u64 {
    splitmix64(seed ^ splitmix64(location))
}

/// Deterministic hash of a string (FNV-1a), used to derive per-file seeds
/// from file paths so samplers agree across tasks that open the same file.
#[inline]
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Consecutive inputs should land far apart (avalanche sanity).
        let a = splitmix64(100);
        let b = splitmix64(101);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn hash_location_depends_on_both_args() {
        assert_ne!(hash_location(1, 5), hash_location(2, 5));
        assert_ne!(hash_location(1, 5), hash_location(1, 6));
        assert_eq!(hash_location(9, 9), hash_location(9, 9));
    }

    #[test]
    fn hash_str_matches_known_fnv_vectors() {
        // FNV-1a("") is the offset basis.
        assert_eq!(hash_str(""), 0xCBF2_9CE4_8422_2325);
        assert_ne!(hash_str("a"), hash_str("b"));
        assert_eq!(hash_str("chr1.vcf"), hash_str("chr1.vcf"));
    }
}
