//! Constant-size per task-file block histograms (§3).
//!
//! A histogram maintains, for each tracked data block of one file as seen by
//! one task, a small fixed set of statistics (operation counts, bytes,
//! first/last access time — well under the ~10-statistic bound in the
//! paper). The number of tracked locations is bounded by two mechanisms:
//!
//! 1. **Access resolution** — the block size, derived from file size by a
//!    [`BlockPolicy`](crate::block::BlockPolicy). If a file grows past the
//!    location bound, the histogram *coarsens*: the block size doubles and
//!    buckets merge pairwise.
//! 2. **Spatial sampling** — a deterministic
//!    [`crate::sampling::SpatialSampler`] rule on the block's
//!    first *granule* index, so all tasks touching a file keep the same
//!    subset of locations at any given resolution.

use serde::{Deserialize, Serialize, Value};

use crate::block::MIN_BLOCK;
use crate::sampling::SpatialSampler;

/// Per-block statistics. Deliberately small and fixed-size: 8 scalar fields,
/// within the paper's ≤ ~10-statistics-per-location budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BlockStats {
    /// Number of read operations touching the block.
    pub reads: u64,
    /// Number of write operations touching the block.
    pub writes: u64,
    /// Bytes read from the block (non-unique).
    pub bytes_read: u64,
    /// Bytes written to the block (non-unique).
    pub bytes_written: u64,
    /// Time of the first access (ns).
    pub first_ns: u64,
    /// Time of the most recent access (ns).
    pub last_ns: u64,
    /// `true` if the most recent access was a write.
    pub last_was_write: bool,
    /// Number of accesses that re-touched the block with zero seek distance
    /// (temporal locality indicator).
    pub repeat_hits: u64,
}

impl BlockStats {
    fn merge(&mut self, other: &BlockStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        if other.first_ns < self.first_ns || (self.reads + self.writes) == 0 {
            self.first_ns = self.first_ns.min(other.first_ns);
        }
        if other.last_ns >= self.last_ns {
            self.last_ns = other.last_ns;
            self.last_was_write = other.last_was_write;
        }
        self.repeat_hits += other.repeat_hits;
    }
}

/// Which direction an access flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

/// Ordered block-index → stats storage.
///
/// Semantically an ordered map, stored as a key-sorted `Vec` because the
/// dominant access pattern — one sequential whole-file operation filling a
/// contiguous index range — turns into a single bulk splice instead of one
/// tree insertion per block. Serializes exactly like the `BTreeMap` it
/// replaced (an array of `[key, value]` pairs in key order), so snapshots
/// and measurement exports are unchanged.
#[derive(Debug, Clone, Default)]
struct BlockMap(Vec<(u64, BlockStats)>);

impl Serialize for BlockMap {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl Deserialize for BlockMap {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let mut pairs: Vec<(u64, BlockStats)> = Deserialize::from_value(v)?;
        // Normalize hand-edited input to the ordered-map invariant the hot
        // path relies on: sorted unique keys, last duplicate winning (the
        // same outcome as collecting the pairs into a `BTreeMap`).
        pairs.sort_by_key(|&(k, _)| k);
        pairs.dedup_by(|later, kept| {
            if later.0 == kept.0 {
                kept.1 = later.1;
                true
            } else {
                false
            }
        });
        Ok(BlockMap(pairs))
    }
}

/// A bounded block histogram for one task-file pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockHistogram {
    /// Current block size in bytes (power of two, multiple of the granule).
    block_size: u64,
    /// Sampling granule: the *initial* block size; sampling decisions hash
    /// the granule index of a block's first byte so they remain consistent
    /// as the histogram coarsens.
    granule: u64,
    /// Maximum number of tracked locations before coarsening.
    max_locations: u32,
    sampler: SpatialSampler,
    blocks: BlockMap,
}

impl BlockHistogram {
    /// Creates a histogram with the given initial resolution and sampler.
    ///
    /// # Panics
    /// Panics if `block_size` is zero, not a power of two, or below
    /// [`MIN_BLOCK`]; or if `max_locations` is zero.
    pub fn new(block_size: u64, max_locations: u32, sampler: SpatialSampler) -> Self {
        assert!(block_size.is_power_of_two() && block_size >= MIN_BLOCK);
        assert!(max_locations > 0);
        Self {
            block_size,
            granule: block_size,
            max_locations,
            sampler,
            blocks: BlockMap::default(),
        }
    }

    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    pub fn sampler(&self) -> SpatialSampler {
        self.sampler
    }

    /// Number of tracked locations (bounded by `max_locations`).
    pub fn tracked_locations(&self) -> usize {
        self.blocks.0.len()
    }

    /// Whether the block starting at `idx * block_size` is tracked under the
    /// sampling rule. The rule hashes the granule index of the block start so
    /// the tracked set is consistent across resolutions and tasks.
    #[inline]
    fn tracked(&self, block_idx: u64, block_size: u64) -> bool {
        let granule_idx = block_idx * (block_size / self.granule);
        self.sampler.tracks(granule_idx)
    }

    /// Records an access of `len` bytes at `offset` at time `now_ns`.
    ///
    /// `repeat` marks a zero-distance re-access (for temporal-locality
    /// accounting on the first touched block).
    pub fn record(&mut self, kind: AccessKind, offset: u64, len: u64, now_ns: u64, repeat: bool) {
        if len == 0 {
            return;
        }
        let first = offset / self.block_size;
        let last = (offset + len - 1) / self.block_size;
        // All stored keys in [first, last] sit in `blocks[lo..hi)`; every
        // stored key is tracked (insertions are sampled, coarsening
        // re-filters), so a single merge cursor pairs them with the index
        // walk below.
        let lo = self.blocks.0.partition_point(|&(k, _)| k < first);
        let hi = lo + self.blocks.0[lo..].partition_point(|&(k, _)| k <= last);
        let mut cur = lo;
        // Blocks not yet tracked, gathered in index order and spliced in
        // afterwards: touching a fresh range costs one bulk move instead of
        // one ordered insertion per block.
        let mut fresh: Vec<(u64, BlockStats)> = Vec::new();
        for idx in first..=last {
            if !self.tracked(idx, self.block_size) {
                continue;
            }
            let blk_start = idx * self.block_size;
            let blk_end = blk_start + self.block_size;
            let span = (offset + len).min(blk_end) - offset.max(blk_start);
            let entry = if cur < hi && self.blocks.0[cur].0 == idx {
                cur += 1;
                &mut self.blocks.0[cur - 1].1
            } else {
                fresh.push((idx, BlockStats { first_ns: now_ns, ..BlockStats::default() }));
                &mut fresh.last_mut().expect("just pushed").1
            };
            match kind {
                AccessKind::Read => {
                    entry.reads += 1;
                    entry.bytes_read += span;
                    entry.last_was_write = false;
                }
                AccessKind::Write => {
                    entry.writes += 1;
                    entry.bytes_written += span;
                    entry.last_was_write = true;
                }
            }
            entry.last_ns = now_ns;
            if repeat && idx == first {
                entry.repeat_hits += 1;
            }
        }
        if !fresh.is_empty() {
            if lo == hi {
                // Nothing tracked in the range yet: contiguous insertion.
                self.blocks.0.splice(lo..lo, fresh);
            } else {
                // Interleave the new entries with the surviving range.
                let mut merged = Vec::with_capacity(hi - lo + fresh.len());
                let mut f = fresh.into_iter().peekable();
                for &old in &self.blocks.0[lo..hi] {
                    while f.peek().is_some_and(|n| n.0 < old.0) {
                        merged.push(f.next().expect("peeked"));
                    }
                    merged.push(old);
                }
                merged.extend(f);
                self.blocks.0.splice(lo..hi, merged);
            }
        }
        while self.blocks.0.len() > self.max_locations as usize {
            self.coarsen();
        }
    }

    /// Doubles the block size, merging buckets pairwise. Buckets whose merged
    /// index is no longer in the sampled set are dropped (the sampled set at
    /// the coarser resolution is a deterministic function of location, so all
    /// tasks converge on the same set).
    pub fn coarsen(&mut self) {
        let new_size = self.block_size * 2;
        let old = std::mem::take(&mut self.blocks.0);
        // Keys are sorted, so merged indices arrive non-decreasing and pair
        // merging is a single in-order pass.
        let mut merged: Vec<(u64, BlockStats)> = Vec::with_capacity(old.len() / 2 + 1);
        for (idx, stats) in old {
            let new_idx = idx / 2;
            let granule_idx = new_idx * (new_size / self.granule);
            if !self.sampler.tracks(granule_idx) {
                continue;
            }
            match merged.last_mut() {
                Some(tail) if tail.0 == new_idx => tail.1.merge(&stats),
                _ => merged.push((new_idx, stats)),
            }
        }
        self.block_size = new_size;
        self.blocks.0 = merged;
    }

    /// Coarsens until the block size reaches `target` (a power-of-two
    /// multiple of the current size). Used at export so every task's
    /// histogram for a file shares the file's final resolution.
    pub fn coarsen_to(&mut self, target: u64) {
        assert!(target >= self.block_size && target.is_power_of_two());
        while self.block_size < target {
            self.coarsen();
        }
    }

    /// Iterates tracked `(block_index, stats)` pairs in index order.
    pub fn iter_sorted(&self) -> Vec<(u64, BlockStats)> {
        self.blocks.0.clone()
    }

    /// Estimated number of *unique* blocks read, scaled for sampling.
    pub fn unique_blocks_read_est(&self) -> f64 {
        let n = self.blocks.0.iter().filter(|(_, s)| s.reads > 0).count();
        n as f64 * self.sampler.scale()
    }

    /// Estimated number of unique blocks written, scaled for sampling.
    pub fn unique_blocks_written_est(&self) -> f64 {
        let n = self.blocks.0.iter().filter(|(_, s)| s.writes > 0).count();
        n as f64 * self.sampler.scale()
    }

    /// Estimated unique bytes read (footprint), scaled for sampling.
    pub fn footprint_read_est(&self) -> f64 {
        // Use actual covered bytes per block (not whole blocks) to stay
        // accurate for files smaller than one block.
        let covered: u64 = self
            .blocks
            .0
            .iter()
            .filter(|(_, s)| s.reads > 0)
            .map(|(_, s)| s.bytes_read.min(self.block_size))
            .sum();
        covered as f64 * self.sampler.scale()
    }

    /// Estimated unique bytes written (footprint), scaled for sampling.
    pub fn footprint_written_est(&self) -> f64 {
        let covered: u64 = self
            .blocks
            .0
            .iter()
            .filter(|(_, s)| s.writes > 0)
            .map(|(_, s)| s.bytes_written.min(self.block_size))
            .sum();
        covered as f64 * self.sampler.scale()
    }

    /// Mean accesses per touched block — an intra-task reuse indicator.
    pub fn mean_accesses_per_block(&self) -> f64 {
        if self.blocks.0.is_empty() {
            return 0.0;
        }
        let total: u64 = self.blocks.0.iter().map(|(_, s)| s.reads + s.writes).sum();
        total as f64 / self.blocks.0.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(block: u64, max_loc: u32) -> BlockHistogram {
        BlockHistogram::new(block, max_loc, SpatialSampler::keep_all(0))
    }

    #[test]
    fn sequential_reads_fill_blocks() {
        let mut h = hist(4096, 1024);
        for i in 0..8 {
            h.record(AccessKind::Read, i * 4096, 4096, i, false);
        }
        assert_eq!(h.tracked_locations(), 8);
        assert_eq!(h.unique_blocks_read_est(), 8.0);
        assert_eq!(h.footprint_read_est(), 8.0 * 4096.0);
    }

    #[test]
    fn access_spanning_blocks_splits_bytes() {
        let mut h = hist(4096, 1024);
        h.record(AccessKind::Read, 2048, 4096, 0, false);
        let blocks = h.iter_sorted();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].1.bytes_read, 2048);
        assert_eq!(blocks[1].1.bytes_read, 2048);
    }

    #[test]
    fn coarsening_respects_location_bound() {
        let mut h = hist(4096, 4);
        for i in 0..64 {
            h.record(AccessKind::Write, i * 4096, 4096, i, false);
        }
        assert!(h.tracked_locations() <= 4);
        assert!(h.block_size() > 4096);
        // Volume is conserved through merges (no sampling here).
        let total: u64 = h.iter_sorted().iter().map(|(_, s)| s.bytes_written).sum();
        assert_eq!(total, 64 * 4096);
    }

    #[test]
    fn repeat_hits_counted_on_first_block() {
        let mut h = hist(4096, 16);
        h.record(AccessKind::Read, 0, 100, 0, false);
        h.record(AccessKind::Read, 0, 100, 1, true);
        h.record(AccessKind::Read, 0, 100, 2, true);
        let blocks = h.iter_sorted();
        assert_eq!(blocks[0].1.repeat_hits, 2);
        assert_eq!(blocks[0].1.reads, 3);
    }

    #[test]
    fn sampling_scales_unique_estimates() {
        let sampler = SpatialSampler::with_rate(100, 25, 11);
        let mut h = BlockHistogram::new(4096, 100_000, sampler);
        let n = 10_000u64;
        for i in 0..n {
            h.record(AccessKind::Read, i * 4096, 4096, i, false);
        }
        let est = h.unique_blocks_read_est();
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.05, "estimate {est} vs {n}");
        assert!(h.tracked_locations() < 3_000);
    }

    #[test]
    fn coarsen_to_reaches_target_resolution() {
        let mut h = hist(4096, 1 << 20);
        for i in 0..32 {
            h.record(AccessKind::Read, i * 4096, 4096, 0, false);
        }
        h.coarsen_to(65536);
        assert_eq!(h.block_size(), 65536);
        assert_eq!(h.tracked_locations(), 2);
    }

    #[test]
    fn zero_len_access_ignored() {
        let mut h = hist(4096, 16);
        h.record(AccessKind::Read, 0, 0, 0, false);
        assert_eq!(h.tracked_locations(), 0);
    }

    #[test]
    fn interleaved_inserts_stay_sorted() {
        // Touch even blocks, then a range spanning them: the new odd blocks
        // must interleave with the existing even entries in key order.
        let mut h = hist(4096, 1024);
        for i in [0u64, 2, 4, 6] {
            h.record(AccessKind::Read, i * 4096, 4096, i, false);
        }
        h.record(AccessKind::Write, 0, 8 * 4096, 10, false);
        let blocks = h.iter_sorted();
        let keys: Vec<u64> = blocks.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(blocks[2].1.reads, 1);
        assert_eq!(blocks[2].1.writes, 1);
        assert_eq!(blocks[3].1.reads, 0);
        assert_eq!(blocks[3].1.writes, 1);
        // Pre-existing blocks keep their original first-access stamp.
        assert_eq!(blocks[2].1.first_ns, 2);
        assert_eq!(blocks[3].1.first_ns, 10);
    }

    #[test]
    fn serde_round_trip_matches_map_shape() {
        let mut h = hist(4096, 1024);
        h.record(AccessKind::Read, 0, 3 * 4096, 7, false);
        let v = serde::Serialize::to_value(&h);
        // Blocks serialize as an array of [key, stats] pairs in key order —
        // the same wire shape as the ordered map this storage replaced.
        let blocks = v["blocks"].as_array().expect("blocks array");
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0][0].as_u64(), Some(0));
        assert_eq!(blocks[2][0].as_u64(), Some(2));
        let back: BlockHistogram = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back.iter_sorted(), h.iter_sorted());
        assert_eq!(back.block_size(), h.block_size());
    }

    #[test]
    fn deserialize_normalizes_unsorted_input() {
        let mut h = hist(4096, 1024);
        h.record(AccessKind::Read, 0, 2 * 4096, 7, false);
        let mut v = serde::Serialize::to_value(&h);
        if let serde::Value::Object(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "blocks" {
                    if let serde::Value::Array(pairs) = val {
                        pairs.reverse();
                    }
                }
            }
        }
        let back: BlockHistogram = serde::Deserialize::from_value(&v).unwrap();
        let keys: Vec<u64> = back.iter_sorted().iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![0, 1], "hand-edited order is re-sorted on restore");
    }

    #[test]
    fn last_op_tracks_most_recent_writer() {
        let mut h = hist(4096, 16);
        h.record(AccessKind::Write, 0, 10, 5, false);
        h.record(AccessKind::Read, 0, 10, 6, false);
        assert!(!h.iter_sorted()[0].1.last_was_write);
    }
}
