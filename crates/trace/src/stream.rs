//! Buffered C-style stream I/O (`fopen`/`fread`/`fwrite`/`fseek`/`ftell`).
//!
//! The paper's collector interposes on "POSIX **and C** I/O, which includes
//! all variants of open, close, read, write, fseek etc." C streams add a
//! user-space buffer on top of the descriptor: small `fread`s coalesce into
//! one buffered read, small `fwrite`s into one flush. The monitor must see
//! the *descriptor-level* operations (that is what moves data), so the
//! stream layer emulates libc buffering faithfully and reports only the
//! underlying reads/writes to the [`TaskContext`].

use crate::error::TraceError;
use crate::handle::{Fd, OpenMode, SeekFrom};
use crate::monitor::{IoTiming, TaskContext};

/// Default stream buffer size, matching glibc's BUFSIZ ballpark.
pub const DEFAULT_BUFFER: u64 = 64 * 1024;

/// Buffering state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BufState {
    /// Buffer empty/invalid.
    Clean,
    /// Buffer holds `len` readable bytes fetched from `base`; `pos` consumed.
    Read { base: u64, len: u64, pos: u64 },
    /// Buffer holds `len` unwritten bytes destined for `base`.
    Write { base: u64, len: u64 },
}

/// A buffered stream over a monitored descriptor — the `FILE*` analogue.
#[derive(Debug)]
pub struct CStream<'t> {
    ctx: &'t TaskContext,
    fd: Fd,
    mode: OpenMode,
    /// Logical (user-visible) stream position.
    pos: u64,
    buffer_size: u64,
    state: BufState,
    closed: bool,
}

impl<'t> CStream<'t> {
    /// `fopen`: opens `path` through the monitor with a default buffer.
    pub fn open(
        ctx: &'t TaskContext,
        path: &str,
        mode: OpenMode,
        size_hint: Option<u64>,
        now_ns: u64,
    ) -> Self {
        Self::with_buffer(ctx, path, mode, size_hint, now_ns, DEFAULT_BUFFER)
    }

    /// `setvbuf`: opens with an explicit buffer size (0 = unbuffered).
    pub fn with_buffer(
        ctx: &'t TaskContext,
        path: &str,
        mode: OpenMode,
        size_hint: Option<u64>,
        now_ns: u64,
        buffer_size: u64,
    ) -> Self {
        let fd = ctx.open(path, mode, size_hint, now_ns);
        CStream { ctx, fd, mode, pos: 0, buffer_size, state: BufState::Clean, closed: false }
    }

    /// `ftell`: the logical stream position.
    pub fn tell(&self) -> u64 {
        self.pos
    }

    /// The underlying descriptor (for tests / interop).
    pub fn fd(&self) -> Fd {
        self.fd
    }

    /// `fread`: reads up to `len` bytes at the stream position, via the
    /// buffer. Returns bytes read (0 at EOF).
    pub fn read(&mut self, len: u64, t: IoTiming) -> Result<u64, TraceError> {
        if !self.mode.can_read() {
            return Err(TraceError::BadMode { fd: self.fd.0, op: "fread" });
        }
        self.flush_write(t)?;

        let mut remaining = len;
        let mut total = 0u64;
        while remaining > 0 {
            // Serve from the buffer when the position falls inside it.
            if let BufState::Read { base, len: blen, pos } = self.state {
                if self.pos >= base && self.pos < base + blen {
                    let avail = base + blen - self.pos;
                    let n = avail.min(remaining);
                    self.pos += n;
                    total += n;
                    remaining -= n;
                    self.state = BufState::Read { base, len: blen, pos: pos + n };
                    continue;
                }
            }
            // (Re)fill: one descriptor-level read of a full buffer (or a
            // direct read when unbuffered / larger than the buffer).
            if self.buffer_size == 0 || remaining >= self.buffer_size {
                let n = self.ctx.read_at(self.fd, self.pos, remaining, t)?;
                self.pos += n;
                total += n;
                return Ok(total);
            }
            let n = self.ctx.read_at(self.fd, self.pos, self.buffer_size, t)?;
            if n == 0 {
                break; // EOF
            }
            self.state = BufState::Read { base: self.pos, len: n, pos: 0 };
        }
        Ok(total)
    }

    /// `fwrite`: appends `len` bytes at the stream position through the
    /// buffer; descriptor writes happen on flush or when the buffer fills.
    pub fn write(&mut self, len: u64, t: IoTiming) -> Result<u64, TraceError> {
        if !self.mode.can_write() {
            return Err(TraceError::BadMode { fd: self.fd.0, op: "fwrite" });
        }
        // Invalidate any read buffer (mode switch).
        if matches!(self.state, BufState::Read { .. }) {
            self.state = BufState::Clean;
        }
        if self.buffer_size == 0 || len >= self.buffer_size {
            self.flush_write(t)?;
            let n = self.ctx.write_at(self.fd, self.pos, len, t)?;
            self.pos += n;
            return Ok(n);
        }

        let mut remaining = len;
        while remaining > 0 {
            let (base, blen) = match self.state {
                BufState::Write { base, len } if base + len == self.pos => (base, len),
                _ => {
                    self.flush_write(t)?;
                    (self.pos, 0)
                }
            };
            let room = self.buffer_size - blen;
            let n = room.min(remaining);
            self.state = BufState::Write { base, len: blen + n };
            self.pos += n;
            remaining -= n;
            if blen + n == self.buffer_size {
                self.flush_write(t)?;
            }
        }
        Ok(len)
    }

    /// `fflush`: forces buffered writes down to the descriptor.
    pub fn flush(&mut self, t: IoTiming) -> Result<(), TraceError> {
        self.flush_write(t)
    }

    fn flush_write(&mut self, t: IoTiming) -> Result<(), TraceError> {
        if let BufState::Write { base, len } = self.state {
            if len > 0 {
                self.ctx.write_at(self.fd, base, len, t)?;
            }
            self.state = BufState::Clean;
        }
        Ok(())
    }

    /// `fseek`: flushes writes, discards the read buffer, and repositions.
    pub fn seek(&mut self, pos: SeekFrom, t: IoTiming) -> Result<u64, TraceError> {
        self.flush_write(t)?;
        self.state = BufState::Clean;
        // Resolve against the shadow handle for End/Current semantics.
        let resolved = self.ctx.seek(self.fd, pos)?;
        // `Current` is relative to the *logical* position, which can differ
        // from the descriptor offset under buffering; recompute explicitly.
        self.pos = match pos {
            SeekFrom::Start(o) => o,
            SeekFrom::Current(d) => (self.pos as i128 + d as i128).max(0) as u64,
            SeekFrom::End(_) => resolved,
        };
        Ok(self.pos)
    }

    /// `fclose`: flush and close.
    pub fn close(mut self, now_ns: u64) -> Result<(), TraceError> {
        self.flush_write(IoTiming::new(now_ns, 0))?;
        self.closed = true;
        self.ctx.close(self.fd, now_ns)
    }
}

impl Drop for CStream<'_> {
    fn drop(&mut self) {
        if !self.closed {
            // Leaked stream: best-effort flush+close, matching stdio's
            // exit-time behavior. Errors cannot surface from drop.
            let _ = self.flush_write(IoTiming::default());
            let _ = self.ctx.close(self.fd, 0);
            self.closed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{Monitor, MonitorConfig};

    fn monitor() -> Monitor {
        Monitor::new(MonitorConfig::default())
    }

    #[test]
    fn small_writes_coalesce_into_buffered_flushes() {
        let m = monitor();
        let ctx = m.begin_task("writer-0", 0);
        {
            let mut s = CStream::with_buffer(&ctx, "out", OpenMode::Write, None, 0, 1024);
            for i in 0..100 {
                s.write(100, IoTiming::new(i, 1)).unwrap();
            }
            s.close(1000).unwrap();
        }
        ctx.finish(1000);
        let rec = &m.snapshot().records[0];
        assert_eq!(rec.bytes_written, 10_000);
        // 10,000 bytes through a 1 KiB buffer: ~10 descriptor writes, not 100.
        assert!(rec.write_ops <= 11, "coalesced to {} ops", rec.write_ops);
    }

    #[test]
    fn small_reads_served_from_one_fill() {
        let m = monitor();
        let ctx = m.begin_task("reader-0", 0);
        {
            let mut s =
                CStream::with_buffer(&ctx, "in", OpenMode::Read, Some(64 * 1024), 0, 16 * 1024);
            let mut total = 0;
            loop {
                let n = s.read(512, IoTiming::new(total, 1)).unwrap();
                if n == 0 {
                    break;
                }
                total += n;
            }
            assert_eq!(total, 64 * 1024);
            s.close(100).unwrap();
        }
        ctx.finish(100);
        let rec = &m.snapshot().records[0];
        assert_eq!(rec.bytes_read, 64 * 1024);
        assert_eq!(rec.read_ops, 5, "four 16 KiB buffer fills + one EOF probe, not 128 freads");
    }

    #[test]
    fn large_requests_bypass_the_buffer() {
        let m = monitor();
        let ctx = m.begin_task("t-0", 0);
        {
            let mut s = CStream::with_buffer(&ctx, "in", OpenMode::Read, Some(1 << 20), 0, 4096);
            let n = s.read(1 << 20, IoTiming::default()).unwrap();
            assert_eq!(n, 1 << 20);
            s.close(10).unwrap();
        }
        ctx.finish(10);
        let rec = &m.snapshot().records[0];
        assert_eq!(rec.read_ops, 1, "one direct read");
    }

    #[test]
    fn tell_and_seek_are_logical_positions() {
        let m = monitor();
        let ctx = m.begin_task("t-0", 0);
        let mut s = CStream::open(&ctx, "in", OpenMode::ReadWrite, Some(10_000), 0);
        s.read(100, IoTiming::default()).unwrap();
        assert_eq!(s.tell(), 100);
        s.seek(SeekFrom::Current(-50), IoTiming::default()).unwrap();
        assert_eq!(s.tell(), 50);
        s.seek(SeekFrom::End(-100), IoTiming::default()).unwrap();
        assert_eq!(s.tell(), 9_900);
        s.seek(SeekFrom::Start(0), IoTiming::default()).unwrap();
        assert_eq!(s.tell(), 0);
        s.close(10).unwrap();
        ctx.finish(10);
    }

    #[test]
    fn interleaved_write_read_flushes_first() {
        let m = monitor();
        let ctx = m.begin_task("t-0", 0);
        {
            let mut s = CStream::with_buffer(&ctx, "f", OpenMode::ReadWrite, Some(0), 0, 1024);
            s.write(500, IoTiming::default()).unwrap(); // buffered
            s.seek(SeekFrom::Start(0), IoTiming::default()).unwrap(); // forces flush
            let n = s.read(500, IoTiming::default()).unwrap();
            assert_eq!(n, 500, "written data visible after flush");
            s.close(10).unwrap();
        }
        ctx.finish(10);
        let rec = &m.snapshot().records[0];
        assert_eq!(rec.bytes_written, 500);
        assert_eq!(rec.bytes_read, 500);
    }

    #[test]
    fn wrong_mode_rejected() {
        let m = monitor();
        let ctx = m.begin_task("t-0", 0);
        let mut s = CStream::open(&ctx, "f", OpenMode::Read, Some(100), 0);
        assert!(matches!(s.write(10, IoTiming::default()), Err(TraceError::BadMode { .. })));
        let mut w = CStream::open(&ctx, "g", OpenMode::Write, None, 0);
        assert!(matches!(w.read(10, IoTiming::default()), Err(TraceError::BadMode { .. })));
    }

    #[test]
    fn drop_flushes_and_closes() {
        let m = monitor();
        let ctx = m.begin_task("t-0", 0);
        {
            let mut s = CStream::with_buffer(&ctx, "f", OpenMode::Write, None, 0, 4096);
            s.write(100, IoTiming::default()).unwrap();
            // dropped without close
        }
        ctx.finish(10);
        let rec = &m.snapshot().records[0];
        assert_eq!(rec.bytes_written, 100, "drop flushed the buffer");
    }
}
