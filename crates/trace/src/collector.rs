//! The measurement store: one bounded record per task-file pair.
//!
//! The collector is the "database" of §3: its size is proportional only to
//! the number of task-file *instances*, because every pair's histogram is
//! constant-size. It is shared behind a lock so concurrently executing tasks
//! (threads) can record into it; per-operation work is O(1) amortized.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::histogram::BlockHistogram;
use crate::ids::{FileId, Interner, TaskId};
use crate::sampling::SpatialSampler;
use crate::stats::{DistanceSummary, FileRecord, TaskFileRecord, TaskRecord};

/// Mutable state for one task-file pair while measurement is running.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairState {
    pub opens: u64,
    pub read_ops: u64,
    pub write_ops: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub read_ns: u64,
    pub write_ns: u64,
    pub open_span_ns: u64,
    pub first_open_ns: u64,
    pub last_close_ns: u64,
    pub file_size: u64,
    pub read_distance: DistanceSummary,
    pub write_distance: DistanceSummary,
    pub histogram: BlockHistogram,
}

impl PairState {
    pub fn new(histogram: BlockHistogram, now_ns: u64) -> Self {
        Self {
            opens: 0,
            read_ops: 0,
            write_ops: 0,
            bytes_read: 0,
            bytes_written: 0,
            read_ns: 0,
            write_ns: 0,
            open_span_ns: 0,
            first_open_ns: now_ns,
            last_close_ns: now_ns,
            file_size: 0,
            read_distance: DistanceSummary::default(),
            write_distance: DistanceSummary::default(),
            histogram,
        }
    }
}

/// Global per-file state shared by all tasks that touch the file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileState {
    pub path: String,
    /// Current access resolution for the file. Monotonically non-decreasing;
    /// all pair histograms are coarsened to this at export so producers and
    /// consumers agree on locations.
    pub block_size: u64,
    /// Maximum size ever observed.
    pub size: u64,
    /// Deterministic sampling seed derived from the path.
    pub seed: u64,
}

/// The collector proper. Callers lock it externally (see `Monitor`).
#[derive(Debug, Default)]
pub struct Collector {
    pub tasks: Interner,
    pub files: Interner,
    pub file_states: Vec<FileState>,
    pub task_records: Vec<TaskRecord>,
    pub pairs: HashMap<(TaskId, FileId), PairState>,
}

impl Collector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of task-file instances tracked (the paper's space bound
    /// is proportional to this count).
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Snapshots every record, coarsening each pair's histogram to its
    /// file's final (coarsest) resolution so all lifecycle participants
    /// report consistent locations.
    pub fn export(&self) -> (Vec<TaskRecord>, Vec<FileRecord>, Vec<TaskFileRecord>) {
        let tasks = self.task_records.clone();
        let files: Vec<FileRecord> = self
            .file_states
            .iter()
            .enumerate()
            .map(|(i, fs)| FileRecord {
                file: FileId(i as u32),
                path: fs.path.clone(),
                size: fs.size,
                block_size: fs.block_size,
            })
            .collect();

        let mut records: Vec<TaskFileRecord> = self
            .pairs
            .iter()
            .map(|(&(task, file), p)| {
                let fs = &self.file_states[file.0 as usize];
                let mut histogram = p.histogram.clone();
                if histogram.block_size() < fs.block_size {
                    histogram.coarsen_to(fs.block_size);
                }
                TaskFileRecord {
                    task,
                    task_name: self
                        .tasks
                        .name(task.0)
                        .unwrap_or("<unknown>")
                        .to_owned(),
                    file,
                    file_path: fs.path.clone(),
                    opens: p.opens,
                    read_ops: p.read_ops,
                    write_ops: p.write_ops,
                    bytes_read: p.bytes_read,
                    bytes_written: p.bytes_written,
                    read_ns: p.read_ns,
                    write_ns: p.write_ns,
                    open_span_ns: p.open_span_ns,
                    first_open_ns: p.first_open_ns,
                    last_close_ns: p.last_close_ns,
                    file_size: p.file_size.max(fs.size),
                    read_distance: p.read_distance,
                    write_distance: p.write_distance,
                    histogram,
                }
            })
            .collect();
        records.sort_by_key(|r| (r.task, r.file));
        (tasks, files, records)
    }
}

/// Builds a per-file sampler from a global rate and the file's seed.
pub fn file_sampler(modulus: u64, threshold: u64, seed: u64) -> SpatialSampler {
    if threshold >= modulus {
        SpatialSampler::keep_all(seed)
    } else {
        SpatialSampler::with_rate(modulus, threshold, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::AccessKind;

    #[test]
    fn export_is_sorted_and_coarsened() {
        let mut c = Collector::new();
        let t = TaskId(c.tasks.intern("task-a"));
        let f0 = FileId(c.files.intern("a.dat"));
        let f1 = FileId(c.files.intern("b.dat"));
        c.file_states.push(FileState {
            path: "a.dat".into(),
            block_size: 8192, // file already coarsened globally
            size: 1 << 20,
            seed: 1,
        });
        c.file_states.push(FileState {
            path: "b.dat".into(),
            block_size: 4096,
            size: 4096,
            seed: 2,
        });

        let mut h0 = BlockHistogram::new(4096, 1024, SpatialSampler::keep_all(1));
        h0.record(AccessKind::Read, 0, 8192, 0, false);
        let mut p0 = PairState::new(h0, 0);
        p0.bytes_read = 8192;
        c.pairs.insert((t, f1), PairState::new(BlockHistogram::new(4096, 64, SpatialSampler::keep_all(2)), 0));
        c.pairs.insert((t, f0), p0);

        let (_, files, records) = c.export();
        assert_eq!(files.len(), 2);
        assert_eq!(records.len(), 2);
        assert!(records[0].file <= records[1].file);
        // Pair for a.dat was coarsened from 4096 to the file's 8192.
        assert_eq!(records[0].histogram.block_size(), 8192);
    }
}
