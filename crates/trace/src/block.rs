//! Block-size (access resolution) policies (§3, "Scaling").
//!
//! A histogram's location count is bounded by choosing the block size — the
//! access resolution — as a function of expected data volume. For reads the
//! paper derives block size as a ratio of the file size; for writes (where
//! the final size is unknown up front) it uses historical information or
//! user guidance.

use serde::{Deserialize, Serialize};

/// Smallest block size ever used; also the sampling granule, so block sizes
/// stay aligned to granules as resolution coarsens.
pub const MIN_BLOCK: u64 = 4096;

/// How the per-file block size is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockPolicy {
    /// Block size = `file_size / target_blocks`, rounded up to a power of two
    /// multiple of [`MIN_BLOCK`]. Used for reads, where the size is known at
    /// open time.
    ReadRatio {
        /// Desired number of blocks per file (the location bound).
        target_blocks: u32,
    },
    /// A fixed block size (user guidance), rounded to a power-of-two multiple
    /// of [`MIN_BLOCK`].
    Fixed(u64),
    /// Start from a historical estimate of the final file size; behaves like
    /// `ReadRatio` against that estimate. Used for writes.
    Historical {
        expected_size: u64,
        target_blocks: u32,
    },
}

impl Default for BlockPolicy {
    fn default() -> Self {
        BlockPolicy::ReadRatio { target_blocks: 256 }
    }
}

/// Rounds `v` up to the next power of two that is `>= MIN_BLOCK`.
fn pow2_at_least(v: u64) -> u64 {
    v.max(MIN_BLOCK).next_power_of_two()
}

impl BlockPolicy {
    /// Resolves the initial block size for a file.
    ///
    /// `size_hint` is the known file size at open (reads) or `None` when the
    /// file is being created (writes).
    pub fn block_size(&self, size_hint: Option<u64>) -> u64 {
        match *self {
            BlockPolicy::Fixed(b) => pow2_at_least(b),
            BlockPolicy::ReadRatio { target_blocks } => {
                let size = size_hint.unwrap_or(MIN_BLOCK * u64::from(target_blocks));
                pow2_at_least(size / u64::from(target_blocks.max(1)))
            }
            BlockPolicy::Historical { expected_size, target_blocks } => {
                let size = size_hint.unwrap_or(expected_size);
                pow2_at_least(size / u64::from(target_blocks.max(1)))
            }
        }
    }

    /// The location bound implied by this policy (used to trigger
    /// coarsening when files grow beyond the estimate).
    pub fn max_locations(&self) -> u32 {
        match *self {
            BlockPolicy::Fixed(_) => u32::MAX,
            BlockPolicy::ReadRatio { target_blocks }
            | BlockPolicy::Historical { target_blocks, .. } => target_blocks.max(1) * 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_ratio_scales_with_file_size() {
        let p = BlockPolicy::ReadRatio { target_blocks: 256 };
        // 1 GiB file / 256 -> 4 MiB blocks.
        assert_eq!(p.block_size(Some(1 << 30)), 1 << 22);
        // Tiny file clamps at MIN_BLOCK.
        assert_eq!(p.block_size(Some(1000)), MIN_BLOCK);
    }

    #[test]
    fn block_size_is_power_of_two_multiple_of_min() {
        for size in [1u64, 4095, 4096, 100_000, 1 << 27, (1 << 30) + 13] {
            let b = BlockPolicy::ReadRatio { target_blocks: 100 }.block_size(Some(size));
            assert!(b.is_power_of_two());
            assert!(b >= MIN_BLOCK);
        }
    }

    #[test]
    fn fixed_rounds_up() {
        assert_eq!(BlockPolicy::Fixed(5000).block_size(None), 8192);
        assert_eq!(BlockPolicy::Fixed(0).block_size(None), MIN_BLOCK);
    }

    #[test]
    fn historical_uses_estimate_when_no_hint() {
        let p = BlockPolicy::Historical { expected_size: 1 << 28, target_blocks: 256 };
        assert_eq!(p.block_size(None), 1 << 20);
        // A hint (e.g. reopening an existing file) takes precedence.
        assert_eq!(p.block_size(Some(1 << 30)), 1 << 22);
    }

    #[test]
    fn max_locations_allows_growth_headroom() {
        let p = BlockPolicy::ReadRatio { target_blocks: 128 };
        assert_eq!(p.max_locations(), 256);
    }
}
