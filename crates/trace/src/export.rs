//! Serializable measurement output — the input to DFL graph construction.
//!
//! A [`MeasurementSet`] is the Rust analogue of the original artifact's
//! `tazer_stat` directory: every task's lifetime, every file's metadata, and
//! one bounded record per task-file pair.

use serde::{Deserialize, Serialize};

use crate::stats::{FileRecord, TaskFileRecord, TaskRecord};

/// A complete snapshot of one measured workflow execution.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct MeasurementSet {
    pub tasks: Vec<TaskRecord>,
    pub files: Vec<FileRecord>,
    pub records: Vec<TaskFileRecord>,
}

impl MeasurementSet {
    /// Serializes to pretty JSON (the interchange format of the artifact).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a set from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }

    /// Merges another set into this one, offsetting ids so records from
    /// separate monitors (e.g. distributed collection, one monitor per node)
    /// do not collide. Files with the same path are unified.
    pub fn merge(&mut self, other: MeasurementSet) {
        use std::collections::HashMap;

        let task_offset = self
            .tasks
            .iter()
            .map(|t| t.task.0 + 1)
            .max()
            .unwrap_or(0);

        // Unify files by path.
        let mut path_to_id: HashMap<String, crate::ids::FileId> = self
            .files
            .iter()
            .map(|f| (f.path.clone(), f.file))
            .collect();
        let mut next_file = self.files.iter().map(|f| f.file.0 + 1).max().unwrap_or(0);
        let mut remap: HashMap<crate::ids::FileId, crate::ids::FileId> = HashMap::new();
        for f in &other.files {
            let id = *path_to_id.entry(f.path.clone()).or_insert_with(|| {
                let id = crate::ids::FileId(next_file);
                next_file += 1;
                self.files.push(FileRecord {
                    file: id,
                    path: f.path.clone(),
                    size: f.size,
                    block_size: f.block_size,
                });
                id
            });
            if let Some(existing) = self.files.iter_mut().find(|e| e.file == id) {
                existing.size = existing.size.max(f.size);
                existing.block_size = existing.block_size.max(f.block_size);
            }
            remap.insert(f.file, id);
        }

        for mut t in other.tasks {
            t.task.0 += task_offset;
            self.tasks.push(t);
        }
        for mut r in other.records {
            r.task.0 += task_offset;
            r.file = remap[&r.file];
            self.records.push(r);
        }
    }

    /// Total non-unique bytes moved (read + write) across all records.
    pub fn total_volume(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.bytes_read + r.bytes_written)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{IoTiming, Monitor, MonitorConfig};
    use crate::OpenMode;

    fn tiny_set(task: &str, path: &str) -> MeasurementSet {
        let m = Monitor::new(MonitorConfig::default());
        let t = m.begin_task(task, 0);
        let fd = t.open(path, OpenMode::Write, None, 0);
        t.write(fd, 1000, IoTiming::new(0, 10)).unwrap();
        t.close(fd, 100).unwrap();
        t.finish(100);
        m.snapshot()
    }

    #[test]
    fn json_round_trip() {
        let set = tiny_set("a-1", "x.dat");
        let json = set.to_json().unwrap();
        let back = MeasurementSet::from_json(&json).unwrap();
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.records[0].bytes_written, 1000);
        assert_eq!(back.tasks[0].name, "a-1");
    }

    #[test]
    fn merge_unifies_files_by_path() {
        let mut a = tiny_set("a-1", "shared.dat");
        let b = tiny_set("b-1", "shared.dat");
        a.merge(b);
        assert_eq!(a.files.len(), 1, "same path unified");
        assert_eq!(a.tasks.len(), 2);
        assert_eq!(a.records.len(), 2);
        assert_eq!(a.records[0].file, a.records[1].file);
        // Task ids must not collide.
        assert_ne!(a.records[0].task, a.records[1].task);
    }

    #[test]
    fn merge_keeps_distinct_paths_distinct() {
        let mut a = tiny_set("a-1", "one.dat");
        let b = tiny_set("b-1", "two.dat");
        a.merge(b);
        assert_eq!(a.files.len(), 2);
        assert_eq!(a.total_volume(), 2000);
    }
}
