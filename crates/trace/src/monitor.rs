//! The measurement session: `Monitor` and per-task `TaskContext`.
//!
//! Plays the role of DataLife/collector's `LD_PRELOAD` client library: every
//! I/O operation a task performs goes through a [`TaskContext`], which
//! shadows handle state, classifies the flow, and updates the bounded
//! per-pair statistics in the shared [`crate::collector::Collector`].

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::block::BlockPolicy;
use crate::collector::{file_sampler, Collector, FileState, PairState};
use crate::error::TraceError;
use crate::handle::{Fd, OpenMode, SeekFrom, ShadowHandle};
use crate::hash::hash_str;
use crate::histogram::{AccessKind, BlockHistogram};
use crate::ids::{FileId, Interner, TaskId};
use crate::stats::TaskRecord;
use crate::MeasurementSet;

/// Timing of one I/O operation, supplied by the execution substrate (the
/// simulator's clock, or wall-clock timestamps in a live deployment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoTiming {
    /// Operation start (ns).
    pub start_ns: u64,
    /// Time the caller was blocked in the operation (ns).
    pub dur_ns: u64,
}

impl IoTiming {
    pub fn new(start_ns: u64, dur_ns: u64) -> Self {
        Self { start_ns, dur_ns }
    }

    /// End-of-operation timestamp.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// Monitor-wide configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Block-size policy for files first opened for reading.
    pub read_policy: BlockPolicy,
    /// Block-size policy for files first opened for writing.
    pub write_policy: BlockPolicy,
    /// Spatial sampling `P` (modulus). `threshold >= modulus` disables
    /// sampling (track every location).
    pub sampling_modulus: u64,
    /// Spatial sampling `T` (threshold).
    pub sampling_threshold: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            read_policy: BlockPolicy::ReadRatio { target_blocks: 256 },
            write_policy: BlockPolicy::Historical {
                expected_size: 1 << 26,
                target_blocks: 256,
            },
            sampling_modulus: 1,
            sampling_threshold: 1,
        }
    }
}

impl MonitorConfig {
    /// Convenience: sample roughly `percent`% of locations.
    pub fn with_sampling_percent(mut self, percent: u64) -> Self {
        self.sampling_modulus = 100;
        self.sampling_threshold = percent.min(100);
        self
    }
}

#[derive(Debug)]
struct Inner {
    config: MonitorConfig,
    collector: Mutex<Collector>,
}

/// A process-wide measurement session. Cheap to clone (shared state).
#[derive(Debug, Clone)]
pub struct Monitor {
    inner: Arc<Inner>,
}

impl Monitor {
    pub fn new(config: MonitorConfig) -> Self {
        Self {
            inner: Arc::new(Inner {
                config,
                collector: Mutex::new(Collector::new()),
            }),
        }
    }

    /// Begins measuring a task instance. The *logical* name (used when
    /// aggregating instances into a DFL template) is derived as the prefix
    /// of `name` before the first `-`; use [`Monitor::begin_task_logical`]
    /// to set it explicitly.
    pub fn begin_task(&self, name: &str, start_ns: u64) -> TaskContext {
        let logical = name.split('-').next().unwrap_or(name).to_owned();
        self.begin_task_logical(name, &logical, start_ns)
    }

    /// Begins measuring a task instance with an explicit logical name.
    pub fn begin_task_logical(&self, name: &str, logical: &str, start_ns: u64) -> TaskContext {
        let task = {
            let mut c = self.inner.collector.lock();
            let id = TaskId(c.tasks.intern(name));
            c.task_records.push(TaskRecord {
                task: id,
                name: name.to_owned(),
                logical: logical.to_owned(),
                start_ns,
                end_ns: start_ns,
            });
            id
        };
        TaskContext {
            monitor: self.clone(),
            task,
            name: name.to_owned(),
            state: Mutex::new(TaskState {
                handles: HashMap::new(),
                next_fd: 3, // 0-2 reserved, as in POSIX
                finished: false,
            }),
        }
    }

    /// Number of task-file pairs currently tracked.
    pub fn pair_count(&self) -> usize {
        self.inner.collector.lock().pair_count()
    }

    /// Snapshots all measurements into a serializable set. Non-destructive.
    pub fn snapshot(&self) -> MeasurementSet {
        let c = self.inner.collector.lock();
        let (tasks, files, records) = c.export();
        MeasurementSet { tasks, files, records }
    }

    fn with_collector<R>(&self, f: impl FnOnce(&mut Collector) -> R) -> R {
        f(&mut self.inner.collector.lock())
    }

    /// Full-fidelity snapshot of the collector for checkpointing. Unlike
    /// [`Monitor::snapshot`] (which coarsens histograms for export), a
    /// [`MonitorState`] restored with [`Monitor::restore_state`] reproduces
    /// the live measurement state exactly.
    pub fn state(&self) -> MonitorState {
        let c = self.inner.collector.lock();
        MonitorState {
            tasks: c.tasks.names().to_vec(),
            files: c.files.names().to_vec(),
            file_states: c.file_states.clone(),
            task_records: c.task_records.clone(),
            pairs: c.pairs.clone(),
        }
    }

    /// Replaces the collector's contents with a previously captured
    /// [`MonitorState`]. Interner ids are reassigned densely in order, so
    /// they match the ids recorded in `pairs` and `task_records` exactly.
    pub fn restore_state(&self, st: MonitorState) {
        let mut c = self.inner.collector.lock();
        c.tasks = Interner::from_names(st.tasks);
        c.files = Interner::from_names(st.files);
        c.file_states = st.file_states;
        c.task_records = st.task_records;
        c.pairs = st.pairs;
    }

    /// Re-attaches a [`TaskContext`] captured by [`TaskContext::snapshot`].
    ///
    /// Unlike [`Monitor::begin_task_logical`] this does NOT push a new
    /// `TaskRecord` — the restored collector state already holds the record
    /// from the original `begin_task` call.
    pub fn resume_task(&self, snap: &TaskSnapshot) -> TaskContext {
        TaskContext {
            monitor: self.clone(),
            task: snap.task,
            name: snap.name.clone(),
            state: Mutex::new(TaskState {
                handles: snap.handles.clone(),
                next_fd: snap.next_fd,
                finished: snap.finished,
            }),
        }
    }
}

/// Serializable full-fidelity state of a [`Monitor`]'s collector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorState {
    /// Task interner contents in id order.
    pub tasks: Vec<String>,
    /// File interner contents in id order.
    pub files: Vec<String>,
    pub file_states: Vec<FileState>,
    pub task_records: Vec<TaskRecord>,
    pub pairs: HashMap<(TaskId, FileId), PairState>,
}

/// Serializable state of one in-flight [`TaskContext`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskSnapshot {
    pub task: TaskId,
    pub name: String,
    pub handles: HashMap<u64, ShadowHandle>,
    pub next_fd: u64,
    pub finished: bool,
}

#[derive(Debug)]
struct TaskState {
    handles: HashMap<u64, ShadowHandle>,
    next_fd: u64,
    finished: bool,
}

/// Per-task measurement facade exposing the POSIX-style operations the
/// original tool interposes on: `open`, `read`/`pread`, `write`/`pwrite`,
/// `seek`, `close`.
#[derive(Debug)]
pub struct TaskContext {
    monitor: Monitor,
    task: TaskId,
    name: String,
    state: Mutex<TaskState>,
}

impl TaskContext {
    pub fn task_id(&self) -> TaskId {
        self.task
    }

    /// Captures the context's shadow-handle state for checkpointing; pair it
    /// with [`Monitor::resume_task`] on restore.
    pub fn snapshot(&self) -> TaskSnapshot {
        let st = self.state.lock();
        TaskSnapshot {
            task: self.task,
            name: self.name.clone(),
            handles: st.handles.clone(),
            next_fd: st.next_fd,
            finished: st.finished,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Opens `path`, returning a descriptor. `size_hint` is the known file
    /// size (readers of existing files); `None` lets the monitor fall back
    /// to its own record of the file or the write policy's estimate.
    pub fn open(&self, path: &str, mode: OpenMode, size_hint: Option<u64>, now_ns: u64) -> Fd {
        let monitor = &self.monitor;
        let (file, size) = monitor.with_collector(|c| {
            let file = FileId(c.files.intern(path));
            if file.0 as usize >= c.file_states.len() {
                // First time this file is seen anywhere: fix its resolution.
                let policy = if mode.can_read() && size_hint.is_some() {
                    monitor.inner.config.read_policy
                } else {
                    monitor.inner.config.write_policy
                };
                let block_size = policy.block_size(size_hint);
                c.file_states.push(FileState {
                    path: path.to_owned(),
                    block_size,
                    size: size_hint.unwrap_or(0),
                    seed: hash_str(path),
                });
            }
            let fs = &mut c.file_states[file.0 as usize];
            if let Some(h) = size_hint {
                fs.size = fs.size.max(h);
            }
            let size = size_hint.unwrap_or(fs.size);

            // Ensure the pair exists and count the open.
            let cfg = &monitor.inner.config;
            let sampler = file_sampler(cfg.sampling_modulus, cfg.sampling_threshold, fs.seed);
            let block_size = fs.block_size;
            let max_locations = cfg.read_policy.max_locations().min(cfg.write_policy.max_locations());
            let pair = c
                .pairs
                .entry((self.task, file))
                .or_insert_with(|| {
                    PairState::new(BlockHistogram::new(block_size, max_locations, sampler), now_ns)
                });
            pair.opens += 1;
            pair.first_open_ns = pair.first_open_ns.min(now_ns);
            pair.file_size = pair.file_size.max(size);
            (file, size)
        });

        let mut st = self.state.lock();
        let fd = st.next_fd;
        st.next_fd += 1;
        st.handles.insert(fd, ShadowHandle::new(file, mode, size, now_ns));
        Fd(fd)
    }

    /// Sequential read of up to `len` bytes; returns bytes "read" (clamped
    /// at the shadow EOF).
    pub fn read(&self, fd: Fd, len: u64, t: IoTiming) -> Result<u64, TraceError> {
        self.do_read(fd, None, len, t)
    }

    /// Positioned read (`pread`): does not move the stream offset.
    pub fn read_at(&self, fd: Fd, offset: u64, len: u64, t: IoTiming) -> Result<u64, TraceError> {
        self.do_read(fd, Some(offset), len, t)
    }

    fn do_read(&self, fd: Fd, at: Option<u64>, len: u64, t: IoTiming) -> Result<u64, TraceError> {
        let mut st = self.state.lock();
        let h = st.handles.get_mut(&fd.0).ok_or(TraceError::BadFd(fd.0))?;
        if !h.mode.can_read() {
            return Err(TraceError::BadMode { fd: fd.0, op: "read" });
        }
        let start = at.unwrap_or(h.offset);
        let dist = h.access_distance(start);
        let (off, n) = match at {
            Some(o) => h.read_at(o, len),
            None => h.advance_read(len),
        };
        h.read_blocked_ns += t.dur_ns;
        let file = h.file;
        drop(st);

        self.monitor.with_collector(|c| {
            let fs = &c.file_states[file.0 as usize];
            let block_size = fs.block_size;
            let pair = c.pairs.get_mut(&(self.task, file)).expect("pair exists after open");
            pair.read_ops += 1;
            pair.bytes_read += n;
            pair.read_ns += t.dur_ns;
            if let Some(d) = dist {
                pair.read_distance.observe(d, block_size);
            }
            pair.histogram
                .record(AccessKind::Read, off, n, t.start_ns, dist == Some(0));
            // If the pair coarsened, raise the file's global resolution so
            // every lifecycle participant converges on the same locations.
            if pair.histogram.block_size() > block_size {
                let bs = pair.histogram.block_size();
                c.file_states[file.0 as usize].block_size = bs;
            }
        });
        Ok(n)
    }

    /// Sequential write of `len` bytes.
    pub fn write(&self, fd: Fd, len: u64, t: IoTiming) -> Result<u64, TraceError> {
        self.do_write(fd, None, len, t)
    }

    /// Positioned write (`pwrite`).
    pub fn write_at(&self, fd: Fd, offset: u64, len: u64, t: IoTiming) -> Result<u64, TraceError> {
        self.do_write(fd, Some(offset), len, t)
    }

    fn do_write(&self, fd: Fd, at: Option<u64>, len: u64, t: IoTiming) -> Result<u64, TraceError> {
        let mut st = self.state.lock();
        let h = st.handles.get_mut(&fd.0).ok_or(TraceError::BadFd(fd.0))?;
        if !h.mode.can_write() {
            return Err(TraceError::BadMode { fd: fd.0, op: "write" });
        }
        let start = match at {
            Some(o) => o,
            None if h.mode == OpenMode::Append => h.size,
            None => h.offset,
        };
        let dist = h.access_distance(start);
        let (off, n) = match at {
            Some(o) => h.write_at(o, len),
            None => h.advance_write(len),
        };
        h.write_blocked_ns += t.dur_ns;
        let file = h.file;
        let new_size = h.size;
        drop(st);

        self.monitor.with_collector(|c| {
            let fs = &mut c.file_states[file.0 as usize];
            fs.size = fs.size.max(new_size);
            let block_size = fs.block_size;
            let pair = c.pairs.get_mut(&(self.task, file)).expect("pair exists after open");
            pair.write_ops += 1;
            pair.bytes_written += n;
            pair.write_ns += t.dur_ns;
            pair.file_size = pair.file_size.max(new_size);
            if let Some(d) = dist {
                pair.write_distance.observe(d, block_size);
            }
            pair.histogram
                .record(AccessKind::Write, off, n, t.start_ns, dist == Some(0));
            if pair.histogram.block_size() > block_size {
                let bs = pair.histogram.block_size();
                c.file_states[file.0 as usize].block_size = bs;
            }
        });
        Ok(n)
    }

    /// Repositions the stream offset; returns the new offset.
    pub fn seek(&self, fd: Fd, pos: SeekFrom) -> Result<u64, TraceError> {
        let mut st = self.state.lock();
        let h = st.handles.get_mut(&fd.0).ok_or(TraceError::BadFd(fd.0))?;
        Ok(h.seek(pos))
    }

    /// Closes a descriptor, accounting the open-stream span.
    pub fn close(&self, fd: Fd, now_ns: u64) -> Result<(), TraceError> {
        let mut st = self.state.lock();
        let h = st.handles.remove(&fd.0).ok_or(TraceError::BadFd(fd.0))?;
        drop(st);
        self.monitor.with_collector(|c| {
            let pair = c
                .pairs
                .get_mut(&(self.task, h.file))
                .expect("pair exists after open");
            pair.open_span_ns += now_ns.saturating_sub(h.opened_ns);
            pair.last_close_ns = pair.last_close_ns.max(now_ns);
        });
        Ok(())
    }

    /// Ends the task, closing any leaked handles at `end_ns` and recording
    /// the task lifetime.
    pub fn finish(&self, end_ns: u64) {
        let leaked: Vec<u64> = {
            let mut st = self.state.lock();
            if st.finished {
                return;
            }
            st.finished = true;
            st.handles.keys().copied().collect()
        };
        for fd in leaked {
            let _ = self.close(Fd(fd), end_ns);
        }
        self.monitor.with_collector(|c| {
            if let Some(rec) = c.task_records.iter_mut().rev().find(|r| r.task == self.task) {
                rec.end_ns = rec.end_ns.max(end_ns);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn producer_consumer_round_trip() {
        let m = Monitor::new(MonitorConfig::default());

        let producer = m.begin_task("writer-1", 0);
        let fd = producer.open("data.bin", OpenMode::Write, None, 0);
        for i in 0..10 {
            producer.write(fd, 1 << 20, IoTiming::new(i * 100, 50)).unwrap();
        }
        producer.close(fd, 2000).unwrap();
        producer.finish(2100);

        let consumer = m.begin_task("reader-1", 2100);
        let fd = consumer.open("data.bin", OpenMode::Read, Some(10 << 20), 2100);
        let mut total = 0;
        loop {
            let n = consumer.read(fd, 1 << 20, IoTiming::new(2200, 30)).unwrap();
            if n == 0 {
                break;
            }
            total += n;
        }
        consumer.close(fd, 4000).unwrap();
        consumer.finish(4100);

        assert_eq!(total, 10 << 20);
        let set = m.snapshot();
        assert_eq!(set.records.len(), 2);
        assert_eq!(set.tasks.len(), 2);
        let w = set.records.iter().find(|r| r.task_name == "writer-1").unwrap();
        let r = set.records.iter().find(|r| r.task_name == "reader-1").unwrap();
        assert_eq!(w.bytes_written, 10 << 20);
        assert_eq!(r.bytes_read, 10 << 20);
        assert_eq!(w.file, r.file, "same data vertex");
        // Producer and consumer agree on the file's resolution.
        assert_eq!(w.histogram.block_size(), r.histogram.block_size());
    }

    #[test]
    fn read_on_write_only_fd_fails() {
        let m = Monitor::new(MonitorConfig::default());
        let t = m.begin_task("t-1", 0);
        let fd = t.open("f", OpenMode::Write, None, 0);
        assert!(matches!(
            t.read(fd, 10, IoTiming::default()),
            Err(TraceError::BadMode { .. })
        ));
    }

    #[test]
    fn bad_fd_rejected() {
        let m = Monitor::new(MonitorConfig::default());
        let t = m.begin_task("t-1", 0);
        assert!(matches!(t.read(Fd(99), 1, IoTiming::default()), Err(TraceError::BadFd(99))));
        assert!(matches!(t.close(Fd(99), 0), Err(TraceError::BadFd(99))));
    }

    #[test]
    fn finish_closes_leaked_handles() {
        let m = Monitor::new(MonitorConfig::default());
        let t = m.begin_task("t-1", 0);
        let _fd = t.open("f", OpenMode::Write, None, 0);
        t.finish(500);
        let set = m.snapshot();
        assert_eq!(set.records[0].open_span_ns, 500);
        assert_eq!(set.tasks[0].end_ns, 500);
    }

    #[test]
    fn logical_name_derived_from_instance_name() {
        let m = Monitor::new(MonitorConfig::default());
        let t = m.begin_task("indiv-chr1-17", 0);
        t.finish(1);
        let set = m.snapshot();
        assert_eq!(set.tasks[0].logical, "indiv");
        assert_eq!(set.tasks[0].name, "indiv-chr1-17");
    }

    #[test]
    fn blocking_fraction_accumulates() {
        let m = Monitor::new(MonitorConfig::default());
        let t = m.begin_task("t-1", 0);
        let fd = t.open("f", OpenMode::Write, None, 0);
        t.write(fd, 100, IoTiming::new(0, 400)).unwrap();
        t.close(fd, 1000).unwrap();
        t.finish(1000);
        let set = m.snapshot();
        assert!((set.records[0].write_blocking_fraction() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn pair_count_proportional_to_task_file_instances() {
        let m = Monitor::new(MonitorConfig::default());
        for ti in 0..4 {
            let t = m.begin_task(&format!("t-{ti}"), 0);
            for fi in 0..3 {
                let fd = t.open(&format!("f{fi}"), OpenMode::Write, None, 0);
                t.write(fd, 10, IoTiming::default()).unwrap();
                t.close(fd, 10).unwrap();
            }
            t.finish(10);
        }
        assert_eq!(m.pair_count(), 12);
    }

    #[test]
    fn seek_changes_read_position() {
        let m = Monitor::new(MonitorConfig::default());
        let t = m.begin_task("t-1", 0);
        let fd = t.open("f", OpenMode::Read, Some(1 << 20), 0);
        t.seek(fd, SeekFrom::Start(1 << 19)).unwrap();
        let n = t.read(fd, 1 << 20, IoTiming::default()).unwrap();
        assert_eq!(n, 1 << 19, "read clamped at EOF after seek");
    }
}
