//! Deterministic spatial sampling of data locations (§3, "Scaling").
//!
//! To keep histograms constant-sized, only a representative fraction of the
//! data *locations* of a file is tracked. The rule — adapted from the SHARDS
//! strategy for single flows — tracks a location `L` iff
//!
//! ```text
//! H(L) mod P < T
//! ```
//!
//! with modulus `P` and threshold `T`. The rule is a pure function of the
//! location, so every producer and consumer in a lifecycle tracks the *same*
//! locations regardless of access order or volume — the correctness
//! requirement called out in the paper. Each tracked sample represents
//! `1/r` locations with sampling rate `r = T / P`.

use serde::{Deserialize, Serialize};

use crate::hash::hash_location;

/// A deterministic location sampler with rate `threshold / modulus`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpatialSampler {
    /// Modulus `P` of the sampling rule.
    pub modulus: u64,
    /// Threshold `T`; locations whose hash residue falls below it are kept.
    pub threshold: u64,
    /// Per-file seed so different files sample independent location subsets.
    pub seed: u64,
}

impl SpatialSampler {
    /// A sampler that keeps every location (rate 1).
    pub fn keep_all(seed: u64) -> Self {
        Self { modulus: 1, threshold: 1, seed }
    }

    /// A sampler keeping roughly `threshold/modulus` of all locations.
    ///
    /// # Panics
    /// Panics if `modulus == 0` or `threshold > modulus`.
    pub fn with_rate(modulus: u64, threshold: u64, seed: u64) -> Self {
        assert!(modulus > 0, "sampling modulus must be positive");
        assert!(threshold <= modulus, "threshold must not exceed modulus");
        Self { modulus, threshold, seed }
    }

    /// Whether location `location` is tracked.
    #[inline]
    pub fn tracks(&self, location: u64) -> bool {
        if self.threshold >= self.modulus {
            return true;
        }
        hash_location(self.seed, location) % self.modulus < self.threshold
    }

    /// Sampling rate `r = T/P` in `(0, 1]`.
    #[inline]
    pub fn rate(&self) -> f64 {
        self.threshold as f64 / self.modulus as f64
    }

    /// The factor by which per-location counts must be scaled to estimate
    /// whole-file quantities (`1/r`).
    #[inline]
    pub fn scale(&self) -> f64 {
        1.0 / self.rate()
    }
}

impl Default for SpatialSampler {
    fn default() -> Self {
        Self::keep_all(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_all_tracks_everything() {
        let s = SpatialSampler::keep_all(42);
        for loc in 0..1000 {
            assert!(s.tracks(loc));
        }
        assert_eq!(s.scale(), 1.0);
    }

    #[test]
    fn rate_is_approximated_over_many_locations() {
        let s = SpatialSampler::with_rate(100, 25, 7);
        let kept = (0..100_000u64).filter(|&l| s.tracks(l)).count();
        let frac = kept as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "observed rate {frac}");
    }

    #[test]
    fn deterministic_and_order_independent() {
        let s = SpatialSampler::with_rate(100, 50, 3);
        let forward: Vec<bool> = (0..512).map(|l| s.tracks(l)).collect();
        let backward: Vec<bool> = (0..512).rev().map(|l| s.tracks(l)).collect();
        let backward_reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_reversed);
    }

    #[test]
    fn different_seeds_sample_different_subsets() {
        let a = SpatialSampler::with_rate(100, 10, 1);
        let b = SpatialSampler::with_rate(100, 10, 2);
        let same = (0..10_000u64).filter(|&l| a.tracks(l) == b.tracks(l)).count();
        // Two independent 10% samples agree on ~82% of locations
        // (0.1*0.1 + 0.9*0.9); identical samplers would agree on 100%.
        assert!(same < 9500, "seeds did not decorrelate: {same}");
    }

    #[test]
    #[should_panic(expected = "modulus must be positive")]
    fn zero_modulus_rejected() {
        let _ = SpatialSampler::with_rate(0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "threshold must not exceed modulus")]
    fn threshold_above_modulus_rejected() {
        let _ = SpatialSampler::with_rate(10, 11, 0);
    }
}
