//! Shadowed I/O handles (§3, "Characterizing data flow").
//!
//! POSIX `read`/`write` take an opaque handle whose hidden state (the file
//! offset) determines which data is accessed. To know *what* data flows, the
//! monitor shadows each handle: it mirrors the offset state machine by
//! emulating the effects of every relevant operation (`open`, `read`,
//! `write`, `seek`, `close`).

use serde::{Deserialize, Serialize};

use crate::ids::FileId;

/// How a handle was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpenMode {
    /// Read-only; accesses form *consumer* flow (data → task).
    Read,
    /// Write-only (truncating); accesses form *producer* flow (task → data).
    Write,
    /// Write-only, positioned at end of file.
    Append,
    /// Read-write.
    ReadWrite,
}

impl OpenMode {
    pub fn can_read(self) -> bool {
        matches!(self, OpenMode::Read | OpenMode::ReadWrite)
    }

    pub fn can_write(self) -> bool {
        !matches!(self, OpenMode::Read)
    }
}

/// Seek origin, mirroring `lseek(2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeekFrom {
    Start(u64),
    Current(i64),
    End(i64),
}

/// A file-descriptor-like token handed back by `open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Fd(pub u64);

/// Shadow state for one open handle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShadowHandle {
    pub file: FileId,
    pub mode: OpenMode,
    /// Current stream offset, maintained by emulating each operation.
    pub offset: u64,
    /// Logical size of the file as known to this handle (grows on writes
    /// past the end; used to resolve `SeekFrom::End`).
    pub size: u64,
    /// Open timestamp (ns).
    pub opened_ns: u64,
    /// End of the previous access (`offset + len`), for consecutive access
    /// distance; `None` before the first access on this handle.
    pub prev_access: Option<(u64, u64)>,
    /// Accumulated blocking time (ns) spent inside read/write calls while
    /// this handle was open; numerator of the blocking fraction.
    pub read_blocked_ns: u64,
    pub write_blocked_ns: u64,
}

impl ShadowHandle {
    pub fn new(file: FileId, mode: OpenMode, size: u64, now_ns: u64) -> Self {
        let offset = match mode {
            OpenMode::Append => size,
            OpenMode::Write => 0,
            _ => 0,
        };
        let size = if mode == OpenMode::Write { 0 } else { size };
        Self {
            file,
            mode,
            offset,
            size,
            opened_ns: now_ns,
            prev_access: None,
            read_blocked_ns: 0,
            write_blocked_ns: 0,
        }
    }

    /// Applies a seek; returns the new offset.
    ///
    /// Seeking before offset zero clamps to zero (POSIX would return EINVAL;
    /// clamping keeps the shadow robust to emulation drift).
    pub fn seek(&mut self, pos: SeekFrom) -> u64 {
        let base: i128 = match pos {
            SeekFrom::Start(o) => o as i128,
            SeekFrom::Current(d) => self.offset as i128 + d as i128,
            SeekFrom::End(d) => self.size as i128 + d as i128,
        };
        self.offset = base.max(0) as u64;
        self.offset
    }

    /// Consecutive access distance from the previous access on this handle
    /// to an access at `offset`: `|offset - prev_start|`. Zero indicates the
    /// same location re-accessed (temporal locality); values below the block
    /// size indicate spatial locality (§4.2).
    pub fn access_distance(&self, offset: u64) -> Option<u64> {
        self.prev_access.map(|(start, _)| offset.abs_diff(start))
    }

    /// Emulates a sequential read of `len` bytes at the current offset;
    /// returns the byte range actually covered (clamped at EOF).
    pub fn advance_read(&mut self, len: u64) -> (u64, u64) {
        let start = self.offset;
        let avail = self.size.saturating_sub(start);
        let n = len.min(avail);
        self.offset = start + n;
        self.prev_access = Some((start, n));
        (start, n)
    }

    /// Emulates a positioned read (`pread`); does not move the offset, per
    /// POSIX. Returns the covered range.
    pub fn read_at(&mut self, offset: u64, len: u64) -> (u64, u64) {
        let avail = self.size.saturating_sub(offset);
        let n = len.min(avail);
        self.prev_access = Some((offset, n));
        (offset, n)
    }

    /// Emulates a sequential write; grows the shadow size. Returns the range.
    pub fn advance_write(&mut self, len: u64) -> (u64, u64) {
        let start = if self.mode == OpenMode::Append { self.size } else { self.offset };
        self.offset = start + len;
        self.size = self.size.max(self.offset);
        self.prev_access = Some((start, len));
        (start, len)
    }

    /// Emulates a positioned write (`pwrite`); offset unmoved, size grows.
    pub fn write_at(&mut self, offset: u64, len: u64) -> (u64, u64) {
        self.size = self.size.max(offset + len);
        self.prev_access = Some((offset, len));
        (offset, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(mode: OpenMode, size: u64) -> ShadowHandle {
        ShadowHandle::new(FileId(0), mode, size, 0)
    }

    #[test]
    fn sequential_reads_advance_offset() {
        let mut s = h(OpenMode::Read, 100);
        assert_eq!(s.advance_read(40), (0, 40));
        assert_eq!(s.advance_read(40), (40, 40));
        // Clamped at EOF.
        assert_eq!(s.advance_read(40), (80, 20));
        assert_eq!(s.offset, 100);
    }

    #[test]
    fn pread_does_not_move_offset() {
        let mut s = h(OpenMode::Read, 100);
        s.advance_read(10);
        assert_eq!(s.read_at(50, 10), (50, 10));
        assert_eq!(s.offset, 10);
    }

    #[test]
    fn writes_grow_size() {
        let mut s = h(OpenMode::Write, 0);
        s.advance_write(100);
        assert_eq!(s.size, 100);
        s.write_at(200, 50);
        assert_eq!(s.size, 250);
        assert_eq!(s.offset, 100, "pwrite must not move the offset");
    }

    #[test]
    fn append_mode_writes_at_end() {
        let mut s = h(OpenMode::Append, 100);
        assert_eq!(s.advance_write(10), (100, 10));
        assert_eq!(s.advance_write(10), (110, 10));
    }

    #[test]
    fn truncating_open_resets_size() {
        let s = h(OpenMode::Write, 500);
        assert_eq!(s.size, 0);
    }

    #[test]
    fn seek_all_origins() {
        let mut s = h(OpenMode::Read, 100);
        assert_eq!(s.seek(SeekFrom::Start(30)), 30);
        assert_eq!(s.seek(SeekFrom::Current(-10)), 20);
        assert_eq!(s.seek(SeekFrom::End(-25)), 75);
        assert_eq!(s.seek(SeekFrom::Current(-1000)), 0, "clamped at zero");
    }

    #[test]
    fn access_distance_tracks_previous_start() {
        let mut s = h(OpenMode::Read, 1000);
        assert_eq!(s.access_distance(0), None);
        s.advance_read(100);
        assert_eq!(s.access_distance(100), Some(100));
        s.read_at(500, 10);
        assert_eq!(s.access_distance(500), Some(0), "same start twice = temporal locality");
    }

    #[test]
    fn mode_capabilities() {
        assert!(OpenMode::Read.can_read() && !OpenMode::Read.can_write());
        assert!(!OpenMode::Write.can_read() && OpenMode::Write.can_write());
        assert!(OpenMode::ReadWrite.can_read() && OpenMode::ReadWrite.can_write());
        assert!(OpenMode::Append.can_write());
    }
}
