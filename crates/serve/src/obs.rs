//! Wall-clock job-lifecycle tracing for the daemon.
//!
//! # The clock split
//!
//! The daemon runs two observability layers that must never touch:
//!
//! - **Sim-time** (`dfl_obs` inside each job): the deterministic timeline
//!   the engine records while simulating; it is part of the job's result
//!   fingerprint and byte-compared by the chaos harness.
//! - **Wall-clock** (this module): what the *daemon* did and when, in real
//!   nanoseconds since daemon start — submit→queued→running→terminal spans
//!   per job, ledger-commit and shed instants, health diagnoses.
//!
//! The zero-perturbation rule: nothing here may flow into sim-time state
//! or the job result files. The wall recorder lives in the daemon core,
//! reuses the `dfl_obs` timeline/exporter machinery (tracks, spans,
//! Chrome-trace export), and is only read out through the `metrics` and
//! `trace` requests.

use std::collections::HashMap;
use std::time::Instant;

use dfl_obs::timeline::{
    InstantKind, Recorder, SpanHandle, SpanKind, SpanMeta, SpanOutcome, Timeline, TrackId,
    TrackKind,
};
use dfl_obs::MetricsRegistry;

use crate::health::HealthDiagnosis;

/// Event budget for the daemon's wall recorder. Long-lived daemons saturate
/// it eventually; the recorder then counts drops instead of growing.
const WALL_EVENTS: usize = 1 << 16;

/// The daemon's wall-clock recorder: one monotonic clock, one track per
/// tenant (lazily), plus fixed admission / ledger / health tracks.
pub struct ServeObs {
    t0: Instant,
    rec: Recorder,
    admission: TrackId,
    ledger: TrackId,
    health: TrackId,
    tenant_tracks: HashMap<String, TrackId>,
    /// Open `Queued` span per queued job.
    queued: HashMap<u64, SpanHandle>,
    /// Open `Run` span per running job, with its dispatch wall-time.
    running: HashMap<u64, (SpanHandle, u64)>,
}

impl ServeObs {
    pub fn new() -> ServeObs {
        let mut rec = Recorder::new(WALL_EVENTS);
        let admission = rec.add_track("admission", TrackKind::Resource);
        let ledger = rec.add_track("ledger", TrackKind::Resource);
        let health = rec.add_track("health", TrackKind::Diagnosis);
        ServeObs {
            t0: Instant::now(),
            rec,
            admission,
            ledger,
            health,
            tenant_tracks: HashMap::new(),
            queued: HashMap::new(),
            running: HashMap::new(),
        }
    }

    /// Wall nanoseconds since daemon start.
    pub fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Wall milliseconds since daemon start.
    pub fn now_ms(&self) -> u64 {
        self.t0.elapsed().as_millis() as u64
    }

    fn tenant_track(&mut self, tenant: &str) -> TrackId {
        if let Some(&t) = self.tenant_tracks.get(tenant) {
            return t;
        }
        let t = self.rec.add_track(format!("tenant:{tenant}"), TrackKind::Node);
        self.tenant_tracks.insert(tenant.to_owned(), t);
        t
    }

    /// A job entered the queue (admission or recovery re-enqueue): opens
    /// its `Queued` span on the tenant's track.
    pub fn job_queued(&mut self, job: u64, tenant: &str) {
        let track = self.tenant_track(tenant);
        let now = self.now_ns();
        let meta = SpanMeta { job: Some(job as u32), ..SpanMeta::default() };
        let h = self.rec.begin_span(track, now, format!("job-{job}"), SpanKind::Queued, meta);
        self.queued.insert(job, h);
    }

    /// A worker picked the job up: closes `Queued`, opens `Run`.
    pub fn job_dispatched(&mut self, job: u64, tenant: &str) {
        let now = self.now_ns();
        if let Some(h) = self.queued.remove(&job) {
            self.rec.end_span(h, now, SpanOutcome::Ok);
        }
        let track = self.tenant_track(tenant);
        let meta = SpanMeta { job: Some(job as u32), ..SpanMeta::default() };
        let h = self.rec.begin_span(track, now, format!("job-{job}"), SpanKind::Run, meta);
        self.running.insert(job, (h, now));
    }

    /// A queued job left the queue without dispatch (cancelled).
    pub fn job_dequeued(&mut self, job: u64) {
        let now = self.now_ns();
        if let Some(h) = self.queued.remove(&job) {
            self.rec.end_span(h, now, SpanOutcome::Cancelled);
        }
    }

    /// The job reached a terminal (or parked) state; returns its wall run
    /// time in ms when it had been dispatched.
    pub fn job_finished(&mut self, job: u64, outcome: SpanOutcome) -> Option<f64> {
        let now = self.now_ns();
        let (h, dispatched_ns) = self.running.remove(&job)?;
        self.rec.end_span(h, now, outcome);
        Some(now.saturating_sub(dispatched_ns) as f64 / 1e6)
    }

    /// An admission request was shed; `value` is the queue depth at
    /// rejection.
    pub fn shed(&mut self, reason: &str, queue_depth: u64) {
        let now = self.now_ns();
        self.rec.instant(self.admission, now, InstantKind::Shed, reason, queue_depth);
    }

    /// A ledger commit hit disk, taking `us` microseconds.
    pub fn ledger_commit(&mut self, us: u64) {
        let now = self.now_ns();
        self.rec.instant(self.ledger, now, InstantKind::LedgerCommit, "commit", us);
    }

    /// A running job emitted a progress window.
    pub fn window(&mut self, job: u64, tenant: &str) {
        let now = self.now_ns();
        let track = self.tenant_track(tenant);
        self.rec.instant(track, now, InstantKind::Window, format!("job-{job}"), job);
    }

    /// A health watchdog fired.
    pub fn diagnosis(&mut self, d: &HealthDiagnosis) {
        let now = self.now_ns();
        self.rec.instant(
            self.health,
            now,
            InstantKind::Diagnosis,
            format!("{}: {}", d.kind.label(), d.subject),
            d.value,
        );
    }

    /// Non-consuming export: clones the recorder state (open spans close as
    /// `Cancelled` in the copy only) and embeds the daemon's live metrics
    /// registry, so the exported timeline is self-describing.
    pub fn timeline(&self, metrics: &MetricsRegistry) -> Timeline {
        let mut copy = Recorder::from_state(self.rec.state());
        copy.metrics.restore(&metrics.state());
        copy.finish(self.now_ns())
    }
}

impl Default for ServeObs {
    fn default() -> Self {
        ServeObs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfl_obs::chrome_trace;

    #[test]
    fn lifecycle_spans_close_in_order_and_export() {
        let mut o = ServeObs::new();
        o.job_queued(1, "acme");
        o.job_dispatched(1, "acme");
        o.window(1, "acme");
        let wall = o.job_finished(1, SpanOutcome::Ok);
        assert!(wall.is_some());
        o.shed("capacity", 64);
        o.ledger_commit(120);
        let tl = o.timeline(&MetricsRegistry::new());
        let spans: Vec<_> = tl.spans().collect();
        assert_eq!(spans.len(), 2, "queued + run");
        assert!(spans.iter().any(|s| s.kind == SpanKind::Queued));
        assert!(spans.iter().any(|s| s.kind == SpanKind::Run));
        let kinds: Vec<InstantKind> = tl.instants().map(|i| i.kind).collect();
        assert!(kinds.contains(&InstantKind::Window));
        assert!(kinds.contains(&InstantKind::Shed));
        assert!(kinds.contains(&InstantKind::LedgerCommit));
        let trace = chrome_trace(&tl);
        assert!(trace.contains("tenant:acme"));
        assert!(trace.contains("job-1"));
    }

    #[test]
    fn timeline_export_does_not_consume_open_spans() {
        let mut o = ServeObs::new();
        o.job_queued(7, "t");
        let tl = o.timeline(&MetricsRegistry::new());
        assert_eq!(tl.spans().count(), 1, "open span closes in the copy");
        // The live recorder still holds the open span: dispatch works.
        o.job_dispatched(7, "t");
        assert!(o.job_finished(7, SpanOutcome::Ok).is_some());
        let tl = o.timeline(&MetricsRegistry::new());
        assert_eq!(tl.spans().count(), 2);
    }

    #[test]
    fn cancelled_before_dispatch_ends_queued_span() {
        let mut o = ServeObs::new();
        o.job_queued(3, "t");
        o.job_dequeued(3);
        let tl = o.timeline(&MetricsRegistry::new());
        let s: Vec<_> = tl.spans().collect();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].outcome, SpanOutcome::Cancelled);
    }
}
