//! The daemon core: admission control, worker pool, crash recovery.
//!
//! A [`Daemon`] owns a write-ahead [`Ledger`], a [`FairQueue`], and a pool
//! of worker threads driving jobs through the workflow engine's controlled
//! loop ([`dfl_workflows::run_controlled`]). The transport layer (`net`)
//! and in-process tests both talk to it through [`Daemon::handle`], one
//! parsed request at a time.
//!
//! # Crash safety
//!
//! Every externally visible transition is written to the ledger *before*
//! it is acknowledged: a submit is `accepted` only once its `Queued`
//! record is durable, a worker marks `Running` before dispatching, and
//! results are written to their own file (atomic rename) before the `Done`
//! transition lands. [`Daemon::start`] therefore recovers from `kill -9`
//! at any instant: `Queued` jobs re-enter the queue, `Running` jobs resume
//! from their latest readable checkpoint manifest (torn ones skipped with
//! typed warnings), and the deterministic engine makes the recovered
//! result byte-identical to an uninterrupted run's.
//!
//! # Isolation
//!
//! Jobs run under `catch_unwind`: a panicking worker closure becomes a
//! typed `failed` job, not a dead daemon. An armed chaos fault
//! ([`crate::proto::Request::chaos_at`]) kills only the job — unless
//! [`ServeConfig::abort_on_chaos`] is set, in which case the whole process
//! aborts at the exact dispatch index, which is how the chaos harness
//! produces real `kill -9`s at seeded points.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use dfl_iosim::SimError;
use dfl_obs::{chrome_trace, jsonl, MetricsRegistry, MetricsSnapshot, ObsConfig};
use dfl_workflows::{
    catalog, resume_controlled, run_controlled, CheckpointConfig, CheckpointError,
    ControlledOptions, ControlledOutcome, EngineError, PreemptCause, RunResult, StepControl,
    WatchOptions, WindowSummary,
};
use serde::{Number, Value};

use crate::ledger::{JobRecord, JobState, Ledger};
use crate::proto::{resp, RejectReason, Request};
use crate::sched::FairQueue;

/// Daemon tuning.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Where the ledger, per-job checkpoints, result files, and transport
    /// endpoints live. The daemon's whole durable state is this directory.
    pub state_dir: PathBuf,
    /// Admission queue capacity; submits beyond it are shed with
    /// `rejected{reason:"capacity"}`.
    pub queue_cap: usize,
    /// Worker threads. Zero is allowed (admission and queueing only — jobs
    /// wait for a restart with workers; tests use this to exercise
    /// admission deterministically).
    pub workers: usize,
    /// Per-job checkpoint cadence in sim-time ms.
    pub ckpt_ms: u64,
    /// Per-job stream window width in sim-time ms.
    pub window_ms: u64,
    /// Abort the whole process (as if `kill -9`ed) when a job's armed
    /// chaos fault fires — the deterministic crash injector behind
    /// `datalife chaos --serve`. Off: the chaos kill strands the job in
    /// `running` (the daemon survives; restart recovers the job).
    pub abort_on_chaos: bool,
}

impl ServeConfig {
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            state_dir: state_dir.into(),
            queue_cap: 64,
            workers: 2,
            ckpt_ms: 25,
            window_ms: 100,
            abort_on_chaos: false,
        }
    }
}

/// One message to a `stream` subscriber.
enum StreamMsg {
    Line(String),
    /// Terminal line; the subscriber loop ends after emitting it.
    End(String),
}

/// Mutable daemon state, one mutex.
struct Core {
    ledger: Ledger,
    queue: FairQueue,
    /// Jobs currently on a worker.
    running: HashSet<u64>,
    /// Cancellation flags polled by running jobs at pause points.
    cancel: HashSet<u64>,
    draining: bool,
    shutdown: bool,
    subs: HashMap<u64, Vec<SyncSender<StreamMsg>>>,
    metrics: MetricsRegistry,
}

impl Core {
    fn count(&mut self, name: &str, by: u64) {
        let id = self.metrics.counter(name);
        self.metrics.inc(id, by);
    }

    fn gauges(&mut self) {
        let q = self.queue.len() as f64;
        let r = self.running.len() as f64;
        let id = self.metrics.gauge("serve_queue_depth");
        self.metrics.set(id, q);
        let id = self.metrics.gauge("serve_running");
        self.metrics.set(id, r);
    }

    /// Sends the terminal line to (and drops) all subscribers of `job`.
    fn end_streams(&mut self, job: u64, line: &str) {
        for tx in self.subs.remove(&job).unwrap_or_default() {
            let _ = tx.try_send(StreamMsg::End(line.to_owned()));
        }
    }
}

struct Inner {
    cfg: ServeConfig,
    core: Mutex<Core>,
    cv: Condvar,
}

/// The analysis daemon. See the module docs.
pub struct Daemon {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Daemon {
    /// Opens the state directory, recovers any jobs interrupted by a
    /// previous death, and spawns the worker pool.
    pub fn start(cfg: ServeConfig) -> Result<Daemon, String> {
        let ledger = Ledger::open(&cfg.state_dir)?;
        let mut core = Core {
            ledger,
            queue: FairQueue::new(),
            running: HashSet::new(),
            cancel: HashSet::new(),
            draining: false,
            shutdown: false,
            subs: HashMap::new(),
            metrics: MetricsRegistry::new(),
        };
        // Pre-register every instrument so snapshot order is stable from
        // the first stats call.
        for name in [
            "serve_submitted",
            "serve_accepted",
            "serve_rejected_capacity",
            "serve_rejected_deadline",
            "serve_rejected_bad_request",
            "serve_rejected_draining",
            "serve_completed",
            "serve_failed",
            "serve_cancelled",
            "serve_deadline_preempted",
            "serve_parked",
            "serve_recovered",
            "serve_panics",
            "serve_chaos_crashes",
            "serve_torn_manifests",
            "serve_stream_dropped",
        ] {
            core.metrics.counter(name);
        }
        core.metrics.gauge("serve_queue_depth");
        core.metrics.gauge("serve_running");

        // Recovery: everything the previous incarnation left queued or
        // running goes back on the queue; `run_one` decides fresh-vs-resume
        // per job from its checkpoint directory.
        let interrupted: Vec<(String, u64, JobState)> = core
            .ledger
            .jobs()
            .iter()
            .filter(|j| j.state.needs_recovery())
            .map(|j| (j.tenant.clone(), j.id, j.state))
            .collect();
        for (tenant, id, state) in &interrupted {
            core.queue.push(tenant, *id);
            if *state == JobState::Running {
                core.count("serve_recovered", 1);
                core.ledger.set_state(*id, JobState::Queued, "recovered: queued for resume");
            }
        }
        if !interrupted.is_empty() {
            core.ledger.commit()?;
        }
        core.gauges();

        let inner = Arc::new(Inner { cfg: cfg.clone(), core: Mutex::new(core), cv: Condvar::new() });
        let workers = (0..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dfl-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Ok(Daemon { inner, workers: Mutex::new(workers) })
    }

    fn lock(&self) -> MutexGuard<'_, Core> {
        self.inner.core.lock().unwrap()
    }

    /// Parses and handles one request line. Returns `true` when the client
    /// asked the daemon to shut down (the transport layer stops serving).
    pub fn handle_line(&self, line: &str, emit: &mut dyn FnMut(String)) -> bool {
        match Request::parse(line) {
            Ok(req) => self.handle(req, emit),
            Err(e) => {
                emit(resp::error(&e));
                false
            }
        }
    }

    /// Handles one parsed request, emitting response lines. `stream`
    /// blocks in here, pumping window lines until the job is terminal.
    pub fn handle(&self, req: Request, emit: &mut dyn FnMut(String)) -> bool {
        match req.op.as_str() {
            "ping" => emit(resp::pong()),
            "submit" => emit(self.submit(&req)),
            "status" => emit(self.status(req.job)),
            "cancel" => emit(self.cancel(req.job)),
            "stats" => {
                let c = self.lock();
                emit(resp::stats(&c.metrics.snapshot()));
            }
            "drain" => {
                self.drain();
                emit(resp::ok("drained"));
            }
            "shutdown" => {
                self.drain();
                emit(resp::ok("shutdown"));
                return true;
            }
            "stream" => self.stream(req.job, emit),
            other => emit(resp::error(&format!("unknown op '{other}'"))),
        }
        false
    }

    /// Convenience for tests: handles one line, collecting every emitted
    /// response line.
    pub fn request(&self, line: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.handle_line(line, &mut |l| out.push(l));
        out
    }

    /// Current metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.lock().metrics.snapshot()
    }

    /// Admission: every check produces a typed rejection; a job is
    /// `accepted` only after its ledger record is durable.
    fn submit(&self, req: &Request) -> String {
        let mut c = self.lock();
        c.count("serve_submitted", 1);
        let reject = |c: &mut Core, r: RejectReason, d: &str| {
            c.count(&format!("serve_rejected_{}", r.label()), 1);
            resp::rejected(r, d)
        };
        if c.draining || c.shutdown {
            return reject(&mut c, RejectReason::Draining, "daemon is draining");
        }
        if req.deadline_ms == Some(0) {
            return reject(
                &mut c,
                RejectReason::Deadline,
                "deadline already exhausted at admission (zero sim-time budget)",
            );
        }
        let Some(workflow) = req.workflow.clone() else {
            return reject(&mut c, RejectReason::BadRequest, "submit requires a workflow");
        };
        let scale = req.scale.clone().unwrap_or_else(|| "tiny".into());
        if let Err(e) = catalog::Scale::parse(&scale) {
            return reject(&mut c, RejectReason::BadRequest, &e);
        }
        if !catalog::WORKFLOWS.contains(&workflow.as_str()) {
            return reject(
                &mut c,
                RejectReason::BadRequest,
                &format!("unknown workflow '{workflow}'"),
            );
        }
        if c.queue.len() >= self.inner.cfg.queue_cap {
            return reject(
                &mut c,
                RejectReason::Capacity,
                &format!("admission queue at capacity ({})", self.inner.cfg.queue_cap),
            );
        }
        let tenant = req.tenant.clone().unwrap_or_else(|| "anon".into());
        let id = c.ledger.alloc_id();
        c.ledger.push(JobRecord {
            id,
            tenant: tenant.clone(),
            workflow,
            scale,
            nodes: req.nodes.unwrap_or(2).clamp(1, 64),
            seed: req.seed.unwrap_or(0),
            deadline_ms: req.deadline_ms,
            chaos_at: req.chaos_at,
            panic: req.panic.unwrap_or(false),
            state: JobState::Queued,
            detail: String::new(),
        });
        // Write-ahead: the accept reply exists only if this commit did.
        if let Err(e) = c.ledger.commit() {
            return resp::error(&format!("ledger write failed: {e}"));
        }
        c.queue.push(&tenant, id);
        c.count("serve_accepted", 1);
        c.gauges();
        self.inner.cv.notify_all();
        resp::accepted(id)
    }

    fn status(&self, job: Option<u64>) -> String {
        let c = self.lock();
        match job.and_then(|id| c.ledger.get(id)) {
            Some(j) => resp::job(j.id, j.state.label(), &j.detail, &j.tenant),
            None => resp::error("unknown job"),
        }
    }

    fn cancel(&self, job: Option<u64>) -> String {
        let mut c = self.lock();
        let Some(rec) = job.and_then(|id| c.ledger.get(id)).cloned() else {
            return resp::error("unknown job");
        };
        match rec.state {
            // Worker dispatch holds the same lock, so `Queued` here means
            // the job really is still in the queue.
            JobState::Queued if c.queue.remove(rec.id) => {
                c.ledger.set_state(rec.id, JobState::Cancelled, "cancelled before dispatch");
                if let Err(e) = c.ledger.commit() {
                    return resp::error(&format!("ledger write failed: {e}"));
                }
                c.count("serve_cancelled", 1);
                c.gauges();
                let line =
                    resp::job(rec.id, "cancelled", "cancelled before dispatch", &rec.tenant);
                c.end_streams(rec.id, &line);
                line
            }
            JobState::Queued | JobState::Running => {
                // Preempted at the job's next pause point via the control
                // callback; the state is parked, not discarded.
                c.cancel.insert(rec.id);
                resp::job(rec.id, rec.state.label(), "cancel requested", &rec.tenant)
            }
            terminal => resp::job(rec.id, terminal.label(), &rec.detail, &rec.tenant),
        }
    }

    /// Blocks pumping `window` lines for `job` until it reaches a terminal
    /// state (or was already terminal).
    fn stream(&self, job: Option<u64>, emit: &mut dyn FnMut(String)) {
        let rx: Receiver<StreamMsg> = {
            let mut c = self.lock();
            let Some(rec) = job.and_then(|id| c.ledger.get(id)).cloned() else {
                emit(resp::error("unknown job"));
                return;
            };
            match rec.state {
                JobState::Queued | JobState::Running => {
                    let (tx, rx) = sync_channel(256);
                    c.subs.entry(rec.id).or_default().push(tx);
                    rx
                }
                terminal => {
                    emit(resp::job(rec.id, terminal.label(), &rec.detail, &rec.tenant));
                    return;
                }
            }
        };
        loop {
            match rx.recv() {
                Ok(StreamMsg::Line(l)) => emit(l),
                Ok(StreamMsg::End(l)) => {
                    emit(l);
                    return;
                }
                // Sender dropped without a terminal line (chaos kill path):
                // report the job's current state and stop.
                Err(_) => {
                    emit(self.status(job));
                    return;
                }
            }
        }
    }

    /// Graceful drain: stop admitting, preempt running jobs at their next
    /// pause point (their state parks in checkpoint manifests), and return
    /// once the pool is idle. Queued and parked jobs stay in the ledger
    /// for a later restart to pick up.
    pub fn drain(&self) {
        let mut c = self.lock();
        c.draining = true;
        self.inner.cv.notify_all();
        while !c.running.is_empty() {
            c = self.inner.cv.wait(c).unwrap();
        }
    }

    /// Drains, stops the workers, and joins them.
    pub fn shutdown(&self) {
        self.drain();
        {
            let mut c = self.lock();
            c.shutdown = true;
            self.inner.cv.notify_all();
        }
        for h in self.workers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let rec: JobRecord = {
            let mut c = inner.core.lock().unwrap();
            loop {
                if c.shutdown {
                    return;
                }
                if !c.draining {
                    if let Some((_tenant, id)) = c.queue.pop() {
                        c.ledger.set_state(id, JobState::Running, "running");
                        if let Err(e) = c.ledger.commit() {
                            eprintln!("serve: ledger write failed: {e}");
                        }
                        c.running.insert(id);
                        c.gauges();
                        break c.ledger.get(id).expect("queued job has a record").clone();
                    }
                }
                c = inner.cv.wait(c).unwrap();
            }
        };
        run_one(inner, &rec);
    }
}

/// Runs one job start-to-terminal-state, with panic isolation.
fn run_one(inner: &Arc<Inner>, rec: &JobRecord) {
    let outcome = catch_unwind(AssertUnwindSafe(|| execute(inner, rec)));
    let mut c = inner.core.lock().unwrap();
    c.running.remove(&rec.id);
    c.cancel.remove(&rec.id);
    let (state, detail) = match outcome {
        Ok(Ok(done)) => done,
        Ok(Err(e)) => {
            if let EngineError::Sim(SimError::CoordinatorCrash { at_event }) = &e {
                // The armed chaos fault fired and `abort_on_chaos` is off:
                // model the kill without dying. The ledger keeps saying
                // `running` — exactly what a real `kill -9` leaves behind —
                // so a restarted daemon recovers the job by resume.
                c.count("serve_chaos_crashes", 1);
                c.gauges();
                c.end_streams(
                    rec.id,
                    &resp::job(
                        rec.id,
                        JobState::Running.label(),
                        &format!("chaos kill at dispatch {at_event}; restart to recover"),
                        &rec.tenant,
                    ),
                );
                self_notify(inner);
                return;
            }
            (JobState::Failed, format!("engine error: {e}"))
        }
        Err(panic) => {
            c.count("serve_panics", 1);
            (JobState::Failed, format!("worker panic: {}", panic_message(&panic)))
        }
    };
    match state {
        JobState::Done => c.count("serve_completed", 1),
        JobState::Failed => c.count("serve_failed", 1),
        JobState::Cancelled => c.count("serve_cancelled", 1),
        JobState::Deadline => c.count("serve_deadline_preempted", 1),
        JobState::Running => c.count("serve_parked", 1),
        JobState::Queued => {}
    }
    c.ledger.set_state(rec.id, state, &detail);
    if let Err(e) = c.ledger.commit() {
        eprintln!("serve: ledger write failed: {e}");
    }
    c.gauges();
    c.end_streams(rec.id, &resp::job(rec.id, state.label(), &detail, &rec.tenant));
    self_notify(inner);
}

fn self_notify(inner: &Arc<Inner>) {
    inner.cv.notify_all();
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Builds the job's `(spec, config)` from the catalog and drives it under
/// the controlled loop, resuming from checkpoints when the job directory
/// already has them (recovery). Returns the terminal `(state, detail)`.
fn execute(inner: &Arc<Inner>, rec: &JobRecord) -> Result<(JobState, String), EngineError> {
    if rec.panic {
        panic!("injected worker panic (submit had panic=true)");
    }
    let scale = catalog::Scale::parse(&rec.scale).map_err(EngineError::InvalidSpec)?;
    let (spec, mut cfg) =
        catalog::build(&rec.workflow, scale, rec.nodes as usize).map_err(EngineError::InvalidSpec)?;
    cfg.faults = cfg.faults.clone().seed(rec.seed);
    cfg.obs = Some(ObsConfig::default());
    let job_dir = inner.cfg.state_dir.join(format!("job-{}", rec.id));
    cfg.checkpoint =
        Some(CheckpointConfig::to_dir(&job_dir).every_sim_ns(inner.cfg.ckpt_ms.max(1) * 1_000_000));
    let opts = ControlledOptions {
        watch: WatchOptions {
            window_ns: inner.cfg.window_ms.max(1) * 1_000_000,
            ..WatchOptions::default()
        },
        deadline_ns: rec.deadline_ms.map(|ms| ms * 1_000_000),
    };

    let id = rec.id;
    let on_window = |w: &WindowSummary| push_window(inner, id, w);
    let control = || {
        let c = inner.core.lock().unwrap();
        if c.shutdown || c.draining || c.cancel.contains(&id) {
            StepControl::Preempt
        } else {
            StepControl::Continue
        }
    };

    // Fresh vs resume: a previous incarnation's checkpoints make this a
    // recovery. Chaos is armed only on fresh runs — a resumed simulator
    // must not re-fire the kill it already died from.
    let has_ckpts = std::fs::read_dir(&job_dir)
        .map(|d| d.filter_map(|e| e.ok()).count() > 0)
        .unwrap_or(false);
    let outcome = if has_ckpts {
        match resume_controlled(&spec, &cfg, &opts, on_window, control) {
            Ok((outcome, torn)) => {
                if !torn.is_empty() {
                    let mut c = inner.core.lock().unwrap();
                    c.count("serve_torn_manifests", torn.len() as u64);
                    for t in &torn {
                        eprintln!("serve: job {id}: {t}");
                    }
                }
                outcome
            }
            // Every manifest torn (killed during the very first write):
            // nothing usable, restart the deterministic run from scratch.
            Err(EngineError::Checkpoint(
                CheckpointError::AllTorn { torn, .. },
            )) => {
                {
                    let mut c = inner.core.lock().unwrap();
                    c.count("serve_torn_manifests", torn.len() as u64);
                }
                let _ = std::fs::remove_dir_all(&job_dir);
                run_fresh(inner, rec, &spec, &cfg, &opts)?
            }
            Err(e) => return Err(e),
        }
    } else {
        run_fresh(inner, rec, &spec, &cfg, &opts)?
    };

    match outcome {
        ControlledOutcome::Completed(r) => {
            write_result(inner, rec, &r).map_err(|e| {
                eprintln!("serve: job {id}: result write failed: {e}");
                EngineError::InvalidSpec(format!("result write failed: {e}"))
            })?;
            Ok((JobState::Done, format!("ok: makespan {:.4}s", r.makespan_s)))
        }
        ControlledOutcome::Preempted { cause: PreemptCause::Deadline, sim_time_ns, .. } => {
            Ok((
                JobState::Deadline,
                format!("deadline preempted at {sim_time_ns}ns; attempt ledger parked"),
            ))
        }
        ControlledOutcome::Preempted {
            cause: PreemptCause::Control,
            sim_time_ns,
            parked_seq,
            ..
        } => {
            let cancelled = inner.core.lock().unwrap().cancel.contains(&id);
            let seq = parked_seq.map_or_else(|| "-".into(), |s| s.to_string());
            if cancelled {
                Ok((
                    JobState::Cancelled,
                    format!("cancelled at {sim_time_ns}ns (parked manifest seq {seq})"),
                ))
            } else {
                // Drain/shutdown: park as `running` so a restart resumes it.
                Ok((
                    JobState::Running,
                    format!("parked for drain at {sim_time_ns}ns (manifest seq {seq})"),
                ))
            }
        }
    }
}

/// Runs a job from scratch, arming its chaos fault (if any) and honoring
/// `abort_on_chaos` — the deterministic stand-in for `kill -9`.
fn run_fresh(
    inner: &Arc<Inner>,
    rec: &JobRecord,
    spec: &dfl_workflows::WorkflowSpec,
    cfg: &dfl_workflows::RunConfig,
    opts: &ControlledOptions,
) -> Result<ControlledOutcome, EngineError> {
    let mut cfg = cfg.clone();
    if let Some(at) = rec.chaos_at {
        cfg.faults = cfg.faults.chaos_crash(at);
    }
    let id = rec.id;
    let on_window = |w: &WindowSummary| push_window(inner, id, w);
    let control = || {
        let c = inner.core.lock().unwrap();
        if c.shutdown || c.draining || c.cancel.contains(&id) {
            StepControl::Preempt
        } else {
            StepControl::Continue
        }
    };
    match run_controlled(spec, &cfg, opts, on_window, control) {
        Err(EngineError::Sim(SimError::CoordinatorCrash { .. })) if inner.cfg.abort_on_chaos => {
            // Die exactly like kill -9: no unwinding, no ledger write, no
            // flush. The restart proves recovery.
            std::process::abort();
        }
        other => other,
    }
}

fn push_window(inner: &Arc<Inner>, job: u64, w: &WindowSummary) {
    let mut c = inner.core.lock().unwrap();
    let Some(subs) = c.subs.get_mut(&job) else { return };
    let line = resp::window(job, w);
    let mut dropped = 0u64;
    subs.retain(|tx| match tx.try_send(StreamMsg::Line(line.clone())) {
        Ok(()) => true,
        Err(TrySendError::Full(_)) => {
            // Slow consumer: drop the line, keep the subscription, count it.
            dropped += 1;
            true
        }
        Err(TrySendError::Disconnected(_)) => false,
    });
    if dropped > 0 {
        c.count("serve_stream_dropped", dropped);
    }
}

/// Writes `job-{id}-result.json` (atomic rename): the job's fingerprint —
/// reports plus *both* timeline exports — used by the chaos harness to
/// prove recovered runs byte-identical to uninterrupted ones. The makespan
/// travels as IEEE-754 bits so the comparison is exact, not formatted.
fn write_result(inner: &Arc<Inner>, rec: &JobRecord, r: &RunResult) -> Result<(), String> {
    let n = |x: u64| Value::Number(Number::U64(x));
    let s = |x: &str| Value::String(x.to_owned());
    let reports = Value::Array(
        r.reports
            .iter()
            .map(|j| {
                Value::Array(vec![s(&j.name), n(j.end_ns), Value::Bool(j.failed)])
            })
            .collect(),
    );
    let timeline = r.timeline.as_ref().ok_or("job ran without a timeline")?;
    let v = Value::Object(
        [
            ("job".to_owned(), n(rec.id)),
            ("workflow".to_owned(), s(&rec.workflow)),
            ("scale".to_owned(), s(&rec.scale)),
            ("nodes".to_owned(), n(rec.nodes)),
            ("seed".to_owned(), n(rec.seed)),
            ("makespan_bits".to_owned(), n(r.makespan_s.to_bits())),
            ("events_dispatched".to_owned(), n(r.events_dispatched)),
            ("reports".to_owned(), reports),
            ("chrome_trace".to_owned(), s(&chrome_trace(timeline))),
            ("jsonl".to_owned(), s(&jsonl(timeline))),
        ]
        .into_iter()
        .collect(),
    );
    let json = serde_json::to_string(&v).map_err(|e| e.to_string())?;
    let path = inner.cfg.state_dir.join(format!("job-{}-result.json", rec.id));
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, json).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &path).map_err(|e| format!("rename {}: {e}", path.display()))?;
    Ok(())
}
