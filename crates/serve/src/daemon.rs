//! The daemon core: admission control, worker pool, crash recovery.
//!
//! A [`Daemon`] owns a write-ahead [`Ledger`], a [`FairQueue`], and a pool
//! of worker threads driving jobs through the workflow engine's controlled
//! loop ([`dfl_workflows::run_controlled`]). The transport layer (`net`)
//! and in-process tests both talk to it through [`Daemon::handle`], one
//! parsed request at a time.
//!
//! # Crash safety
//!
//! Every externally visible transition is written to the ledger *before*
//! it is acknowledged: a submit is `accepted` only once its `Queued`
//! record is durable, a worker marks `Running` before dispatching, and
//! results are written to their own file (atomic rename) before the `Done`
//! transition lands. [`Daemon::start`] therefore recovers from `kill -9`
//! at any instant: `Queued` jobs re-enter the queue, `Running` jobs resume
//! from their latest readable checkpoint manifest (torn ones skipped with
//! typed warnings), and the deterministic engine makes the recovered
//! result byte-identical to an uninterrupted run's.
//!
//! # Isolation
//!
//! Jobs run under `catch_unwind`: a panicking worker closure becomes a
//! typed `failed` job, not a dead daemon. An armed chaos fault
//! ([`crate::proto::Request::chaos_at`]) kills only the job — unless
//! [`ServeConfig::abort_on_chaos`] is set, in which case the whole process
//! aborts at the exact dispatch index, which is how the chaos harness
//! produces real `kill -9`s at seeded points.

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dfl_iosim::SimError;
use dfl_obs::timeline::SpanOutcome;
use dfl_obs::{
    chrome_trace, exponential_buckets, jsonl, labeled, prometheus_text, HistogramId,
    MetricsRegistry, MetricsSnapshot, ObsConfig,
};
use dfl_workflows::{
    catalog, resume_controlled, run_controlled, CheckpointConfig, CheckpointError,
    ControlledOptions, ControlledOutcome, EngineError, PreemptCause, RunResult, StepControl,
    WatchOptions, WindowSummary,
};
use serde::{Number, Value};

use crate::health::{Health, HealthConfig, HealthDiagnosis, HealthSample, TenantObs};
use crate::ledger::{JobRecord, JobState, Ledger};
use crate::obs::ServeObs;
use crate::proto::{resp, RejectReason, Request};
use crate::sched::FairQueue;

/// Bounded ring of recent health diagnoses kept for `metrics` replies.
const DIAG_RING: usize = 64;

/// Daemon tuning.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Where the ledger, per-job checkpoints, result files, and transport
    /// endpoints live. The daemon's whole durable state is this directory.
    pub state_dir: PathBuf,
    /// Admission queue capacity; submits beyond it are shed with
    /// `rejected{reason:"capacity"}`.
    pub queue_cap: usize,
    /// Worker threads. Zero is allowed (admission and queueing only — jobs
    /// wait for a restart with workers; tests use this to exercise
    /// admission deterministically).
    pub workers: usize,
    /// Per-job checkpoint cadence in sim-time ms.
    pub ckpt_ms: u64,
    /// Per-job stream window width in sim-time ms.
    pub window_ms: u64,
    /// Abort the whole process (as if `kill -9`ed) when a job's armed
    /// chaos fault fires — the deterministic crash injector behind
    /// `datalife chaos --serve`. Off: the chaos kill strands the job in
    /// `running` (the daemon survives; restart recovers the job).
    pub abort_on_chaos: bool,
    /// Wall-clock health watchdog thresholds (queue-stall, shed-spike,
    /// ledger-latency, tenant-starvation).
    pub health: HealthConfig,
    /// Health monitor poll cadence in wall ms. `0` disables the monitor
    /// thread; detectors can still be driven deterministically via
    /// [`Daemon::health_tick`] (what the tests do).
    pub health_poll_ms: u64,
}

impl ServeConfig {
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            state_dir: state_dir.into(),
            queue_cap: 64,
            workers: 2,
            ckpt_ms: 25,
            window_ms: 100,
            abort_on_chaos: false,
            health: HealthConfig::default(),
            health_poll_ms: 200,
        }
    }
}

/// One message to a `stream` subscriber.
enum StreamMsg {
    Line(String),
    /// Terminal line; the subscriber loop ends after emitting it.
    End(String),
}

/// Mutable daemon state, one mutex.
struct Core {
    ledger: Ledger,
    queue: FairQueue,
    /// Jobs currently on a worker.
    running: HashSet<u64>,
    /// Cancellation flags polled by running jobs at pause points.
    cancel: HashSet<u64>,
    draining: bool,
    shutdown: bool,
    subs: HashMap<u64, Vec<SyncSender<StreamMsg>>>,
    metrics: MetricsRegistry,
    /// Wall-clock lifecycle recorder (spans/instants; never sim state).
    obs: ServeObs,
    /// Edge-triggered wall-clock health detectors.
    health: Health,
    /// Recent diagnoses, surfaced in `metrics` replies.
    diags: VecDeque<HealthDiagnosis>,
    /// Cumulative capacity sheds (shed-spike detector input).
    sheds: u64,
    /// Worst ledger commit latency (µs) since the last health tick.
    max_commit_us: u64,
    /// Wall ms of the most recent dispatch (0 = none yet).
    last_dispatch_ms: u64,
    /// Per-tenant wall ms of last dispatch (or first enqueue if never
    /// served) — the starvation detector's waiting-since clock.
    tenant_wait: HashMap<String, u64>,
    /// Ledger-derived durable-state gauges, seeded by replay at start and
    /// maintained incrementally after.
    jobs_completed: u64,
    jobs_recovered: u64,
    /// Open client connections (gauge backing store).
    conns_open: u64,
    h_submit_us: HistogramId,
    h_commit_us: HistogramId,
    h_job_wall_ms: HistogramId,
}

impl Core {
    fn count(&mut self, name: &str, by: u64) {
        let id = self.metrics.counter(name);
        self.metrics.inc(id, by);
    }

    fn set_gauge(&mut self, name: &str, value: f64) {
        let id = self.metrics.gauge(name);
        self.metrics.set(id, value);
    }

    fn gauges(&mut self) {
        let q = self.queue.len() as f64;
        let r = self.running.len() as f64;
        self.set_gauge("serve_queue_depth", q);
        self.set_gauge("serve_running", r);
        self.set_gauge("serve_jobs_total", self.ledger.jobs().len() as f64);
        self.set_gauge("serve_jobs_completed", self.jobs_completed as f64);
        self.set_gauge("serve_jobs_recovered", self.jobs_recovered as f64);
        self.set_gauge("serve_connections_open", self.conns_open as f64);
        // Per-tenant scheduler picture as labeled gauges (the label rides
        // inside the instrument name; the Prometheus writer splits it out).
        let mut running_by: HashMap<String, u64> = HashMap::new();
        for id in &self.running {
            if let Some(rec) = self.ledger.get(*id) {
                *running_by.entry(rec.tenant.clone()).or_insert(0) += 1;
            }
        }
        for st in self.queue.tenant_stats() {
            let l = |base: &str| labeled(base, &[("tenant", &st.name)]);
            self.set_gauge(&l("serve_tenant_queued"), st.queued as f64);
            self.set_gauge(&l("serve_tenant_vtime_lag"), st.vtime_lag as f64);
            self.set_gauge(&l("serve_tenant_dispatched"), st.dispatched as f64);
            let running = running_by.get(&st.name).copied().unwrap_or(0);
            self.set_gauge(&l("serve_tenant_running"), running as f64);
        }
    }

    /// The write-ahead commit, timed: every ledger write feeds the commit
    /// latency histogram, the wall timeline, and the slow-commit detector.
    fn commit_ledger(&mut self) -> Result<(), String> {
        let t = Instant::now();
        let r = self.ledger.commit();
        let us = t.elapsed().as_micros() as u64;
        self.metrics.observe(self.h_commit_us, us as f64);
        self.count("serve_ledger_commits", 1);
        self.obs.ledger_commit(us);
        self.max_commit_us = self.max_commit_us.max(us);
        r
    }

    /// Sends the terminal line to (and drops) all subscribers of `job`.
    fn end_streams(&mut self, job: u64, line: &str) {
        for tx in self.subs.remove(&job).unwrap_or_default() {
            let _ = tx.try_send(StreamMsg::End(line.to_owned()));
        }
    }
}

/// Runs every health detector against the daemon's current wall-clock
/// state, recording fired diagnoses (counter + timeline instant + ring).
fn tick_health(c: &mut Core, workers: usize) -> Vec<HealthDiagnosis> {
    let now_ms = c.obs.now_ms();
    let tenants = c
        .queue
        .tenant_stats()
        .into_iter()
        .map(|st| TenantObs {
            waiting_since_ms: c.tenant_wait.get(&st.name).copied().unwrap_or(0),
            name: st.name,
            queued: st.queued,
        })
        .collect();
    let sample = HealthSample {
        now_ms,
        queue_depth: c.queue.len(),
        running: c.running.len(),
        workers,
        draining: c.draining,
        sheds: c.sheds,
        max_commit_us: std::mem::take(&mut c.max_commit_us),
        last_dispatch_ms: c.last_dispatch_ms,
        tenants,
    };
    let fired = c.health.tick(&sample);
    for d in &fired {
        c.count("serve_diagnoses", 1);
        c.obs.diagnosis(d);
        c.diags.push_back(d.clone());
        while c.diags.len() > DIAG_RING {
            c.diags.pop_front();
        }
    }
    fired
}

struct Inner {
    cfg: ServeConfig,
    core: Mutex<Core>,
    cv: Condvar,
}

/// The analysis daemon. See the module docs.
pub struct Daemon {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Daemon {
    /// Opens the state directory, recovers any jobs interrupted by a
    /// previous death, and spawns the worker pool.
    pub fn start(cfg: ServeConfig) -> Result<Daemon, String> {
        let ledger = Ledger::open(&cfg.state_dir)?;
        // Pre-register every instrument so snapshot order is stable from
        // the first stats call.
        let mut metrics = MetricsRegistry::new();
        for name in [
            "serve_submitted",
            "serve_accepted",
            "serve_rejected_capacity",
            "serve_rejected_deadline",
            "serve_rejected_bad_request",
            "serve_rejected_draining",
            "serve_completed",
            "serve_failed",
            "serve_cancelled",
            "serve_deadline_preempted",
            "serve_parked",
            "serve_recovered",
            "serve_panics",
            "serve_chaos_crashes",
            "serve_torn_manifests",
            "serve_stream_dropped",
            "serve_ledger_commits",
            "serve_diagnoses",
            "serve_connections",
            "serve_malformed",
            "serve_scrapes",
        ] {
            metrics.counter(name);
        }
        for name in [
            "serve_queue_depth",
            "serve_running",
            "serve_jobs_total",
            "serve_jobs_completed",
            "serve_jobs_recovered",
            "serve_connections_open",
            "serve_uptime_ms",
        ] {
            metrics.gauge(name);
        }
        // Wall-clock latencies span µs to seconds — exponential edges, not
        // the linear sim-time bounds (which would land everything in one
        // bucket).
        let h_submit_us = metrics.histogram("serve_submit_us", &exponential_buckets(50.0, 2.0, 16));
        let h_commit_us =
            metrics.histogram("serve_ledger_commit_us", &exponential_buckets(50.0, 2.0, 16));
        let h_job_wall_ms =
            metrics.histogram("serve_job_wall_ms", &exponential_buckets(1.0, 2.0, 20));

        let mut core = Core {
            ledger,
            queue: FairQueue::new(),
            running: HashSet::new(),
            cancel: HashSet::new(),
            draining: false,
            shutdown: false,
            subs: HashMap::new(),
            metrics,
            obs: ServeObs::new(),
            health: Health::new(cfg.health.clone()),
            diags: VecDeque::new(),
            sheds: 0,
            max_commit_us: 0,
            last_dispatch_ms: 0,
            tenant_wait: HashMap::new(),
            jobs_completed: 0,
            jobs_recovered: 0,
            conns_open: 0,
            h_submit_us,
            h_commit_us,
            h_job_wall_ms,
        };

        // Metrics replay: counters describing durable state are rebuilt
        // from the ledger, so a restart (including after `kill -9`) does
        // not zero the history of work already on disk.
        let mut by_state = [0u64; 6];
        for j in core.ledger.jobs() {
            let i = match j.state {
                JobState::Queued => 0,
                JobState::Running => 1,
                JobState::Done => 2,
                JobState::Failed => 3,
                JobState::Cancelled => 4,
                JobState::Deadline => 5,
            };
            by_state[i] += 1;
        }
        let total: u64 = by_state.iter().sum();
        core.count("serve_accepted", total);
        core.count("serve_completed", by_state[2]);
        core.count("serve_failed", by_state[3]);
        core.count("serve_cancelled", by_state[4]);
        core.count("serve_deadline_preempted", by_state[5]);
        core.jobs_completed = by_state[2];

        // Recovery: everything the previous incarnation left queued or
        // running goes back on the queue; `run_one` decides fresh-vs-resume
        // per job from its checkpoint directory.
        let interrupted: Vec<(String, u64, JobState)> = core
            .ledger
            .jobs()
            .iter()
            .filter(|j| j.state.needs_recovery())
            .map(|j| (j.tenant.clone(), j.id, j.state))
            .collect();
        for (tenant, id, state) in &interrupted {
            core.queue.push(tenant, *id);
            core.obs.job_queued(*id, tenant);
            let now_ms = core.obs.now_ms();
            core.tenant_wait.entry(tenant.clone()).or_insert(now_ms);
            if *state == JobState::Running {
                core.count("serve_recovered", 1);
                core.jobs_recovered += 1;
                core.ledger.set_state(*id, JobState::Queued, "recovered: queued for resume");
            }
        }
        if !interrupted.is_empty() {
            core.commit_ledger()?;
        }
        core.gauges();

        let inner = Arc::new(Inner { cfg: cfg.clone(), core: Mutex::new(core), cv: Condvar::new() });
        let mut workers: Vec<JoinHandle<()>> = (0..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dfl-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        if cfg.health_poll_ms > 0 {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name("dfl-serve-health".to_owned())
                    .spawn(move || health_loop(&inner))
                    .expect("spawn health monitor"),
            );
        }
        Ok(Daemon { inner, workers: Mutex::new(workers) })
    }

    fn lock(&self) -> MutexGuard<'_, Core> {
        self.inner.core.lock().unwrap()
    }

    /// Parses and handles one request line. Returns `true` when the client
    /// asked the daemon to shut down (the transport layer stops serving).
    pub fn handle_line(&self, line: &str, emit: &mut dyn FnMut(String)) -> bool {
        match Request::parse(line) {
            Ok(req) => self.handle(req, emit),
            Err(e) => {
                self.lock().count("serve_malformed", 1);
                emit(resp::error(&e));
                false
            }
        }
    }

    /// Handles one parsed request, emitting response lines. `stream`
    /// blocks in here, pumping window lines until the job is terminal.
    pub fn handle(&self, req: Request, emit: &mut dyn FnMut(String)) -> bool {
        match req.op.as_str() {
            "ping" => emit(resp::pong()),
            "submit" => emit(self.submit(&req)),
            "status" => emit(self.status(req.job)),
            "cancel" => emit(self.cancel(req.job)),
            "stats" => {
                let c = self.lock();
                emit(resp::stats(&c.metrics.snapshot()));
            }
            "metrics" => emit(self.metrics_reply()),
            "trace" => {
                let c = self.lock();
                let tl = c.obs.timeline(&c.metrics);
                emit(resp::trace(&chrome_trace(&tl), &jsonl(&tl)));
            }
            "drain" => {
                self.drain();
                emit(resp::ok("drained"));
            }
            "shutdown" => {
                self.drain();
                emit(resp::ok("shutdown"));
                return true;
            }
            "stream" => self.stream(req.job, emit),
            other => emit(resp::error(&format!("unknown op '{other}'"))),
        }
        false
    }

    /// Convenience for tests: handles one line, collecting every emitted
    /// response line.
    pub fn request(&self, line: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.handle_line(line, &mut |l| out.push(l));
        out
    }

    /// Current metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.lock().metrics.snapshot()
    }

    /// The Prometheus text-exposition page (what `GET /metrics` on the
    /// scrape listener serves).
    pub fn prometheus(&self) -> String {
        let mut c = self.lock();
        c.count("serve_scrapes", 1);
        let up = c.obs.now_ms() as f64;
        c.set_gauge("serve_uptime_ms", up);
        c.gauges();
        prometheus_text(&c.metrics.snapshot())
    }

    /// The typed wall-clock `metrics` reply (what `datalife top` polls):
    /// queue/worker picture, per-tenant scheduler accounting, latency
    /// quantiles, raw counters/gauges, and recent health diagnoses.
    pub fn metrics_reply(&self) -> String {
        let mut c = self.lock();
        let up = c.obs.now_ms();
        c.set_gauge("serve_uptime_ms", up as f64);
        c.gauges();
        let n = |x: u64| Value::Number(Number::U64(x));
        let f = |x: f64| Value::Number(Number::F64(x));
        let s = |x: &str| Value::String(x.to_owned());
        let mut running_by: HashMap<String, u64> = HashMap::new();
        for id in &c.running {
            if let Some(rec) = c.ledger.get(*id) {
                *running_by.entry(rec.tenant.clone()).or_insert(0) += 1;
            }
        }
        let tenants = Value::Array(
            c.queue
                .tenant_stats()
                .into_iter()
                .map(|st| {
                    Value::Object(vec![
                        ("name".to_owned(), s(&st.name)),
                        ("queued".to_owned(), n(st.queued as u64)),
                        (
                            "running".to_owned(),
                            n(running_by.get(&st.name).copied().unwrap_or(0)),
                        ),
                        ("vtime_lag".to_owned(), n(st.vtime_lag)),
                        ("dispatched".to_owned(), n(st.dispatched)),
                    ])
                })
                .collect(),
        );
        let snap = c.metrics.snapshot();
        let hist = |name: &str| {
            let h = snap.histogram(name).expect("pre-registered histogram");
            Value::Object(vec![
                ("p50".to_owned(), f(h.quantile(0.5))),
                ("p99".to_owned(), f(h.quantile(0.99))),
                ("mean".to_owned(), f(h.mean())),
                ("max".to_owned(), f(h.max)),
                ("count".to_owned(), n(h.count)),
            ])
        };
        let latency = Value::Object(vec![
            ("submit_us".to_owned(), hist("serve_submit_us")),
            ("ledger_commit_us".to_owned(), hist("serve_ledger_commit_us")),
            ("job_wall_ms".to_owned(), hist("serve_job_wall_ms")),
        ]);
        let counters =
            Value::Object(snap.counters.iter().map(|x| (x.name.clone(), n(x.value))).collect());
        let gauges =
            Value::Object(snap.gauges.iter().map(|x| (x.name.clone(), f(x.value))).collect());
        let diagnoses = Value::Array(c.diags.iter().map(|d| d.to_value()).collect());
        resp::metrics(vec![
            ("uptime_ms", n(up)),
            ("queue_depth", n(c.queue.len() as u64)),
            ("running", n(c.running.len() as u64)),
            ("workers", n(self.inner.cfg.workers as u64)),
            ("draining", Value::Bool(c.draining)),
            ("tenants", tenants),
            ("latency", latency),
            ("counters", counters),
            ("gauges", gauges),
            ("diagnoses", diagnoses),
        ])
    }

    /// Runs the health detectors once against current wall-clock state —
    /// exactly what the monitor thread does every poll. Public so tests
    /// (with `health_poll_ms: 0`) drive detection deterministically.
    pub fn health_tick(&self) -> Vec<HealthDiagnosis> {
        let mut c = self.lock();
        tick_health(&mut c, self.inner.cfg.workers)
    }

    /// Transport hook: a client connection opened.
    pub fn conn_opened(&self) {
        let mut c = self.lock();
        c.count("serve_connections", 1);
        c.conns_open += 1;
        let v = c.conns_open as f64;
        c.set_gauge("serve_connections_open", v);
    }

    /// Transport hook: a client connection closed.
    pub fn conn_closed(&self) {
        let mut c = self.lock();
        c.conns_open = c.conns_open.saturating_sub(1);
        let v = c.conns_open as f64;
        c.set_gauge("serve_connections_open", v);
    }

    /// Admission: every check produces a typed rejection; a job is
    /// `accepted` only after its ledger record is durable.
    fn submit(&self, req: &Request) -> String {
        let t_submit = Instant::now();
        let mut c = self.lock();
        c.count("serve_submitted", 1);
        let workers = self.inner.cfg.workers;
        let reject = |c: &mut Core, r: RejectReason, d: &str| {
            c.count(&format!("serve_rejected_{}", r.label()), 1);
            let depth = c.queue.len() as u64;
            // Only load sheds carry a back-off hint: a bad request will be
            // just as bad in 250ms.
            let hint = matches!(r, RejectReason::Capacity | RejectReason::Draining)
                .then(|| retry_after_hint(depth, workers));
            if r == RejectReason::Capacity {
                c.sheds += 1;
            }
            c.obs.shed(r.label(), depth);
            resp::rejected(r, d, depth, hint)
        };
        if c.draining || c.shutdown {
            return reject(&mut c, RejectReason::Draining, "daemon is draining");
        }
        if req.deadline_ms == Some(0) {
            return reject(
                &mut c,
                RejectReason::Deadline,
                "deadline already exhausted at admission (zero sim-time budget)",
            );
        }
        let Some(workflow) = req.workflow.clone() else {
            return reject(&mut c, RejectReason::BadRequest, "submit requires a workflow");
        };
        let scale = req.scale.clone().unwrap_or_else(|| "tiny".into());
        if let Err(e) = catalog::Scale::parse(&scale) {
            return reject(&mut c, RejectReason::BadRequest, &e);
        }
        if !catalog::WORKFLOWS.contains(&workflow.as_str()) {
            return reject(
                &mut c,
                RejectReason::BadRequest,
                &format!("unknown workflow '{workflow}'"),
            );
        }
        if c.queue.len() >= self.inner.cfg.queue_cap {
            return reject(
                &mut c,
                RejectReason::Capacity,
                &format!("admission queue at capacity ({})", self.inner.cfg.queue_cap),
            );
        }
        let tenant = req.tenant.clone().unwrap_or_else(|| "anon".into());
        let id = c.ledger.alloc_id();
        c.ledger.push(JobRecord {
            id,
            tenant: tenant.clone(),
            workflow,
            scale,
            nodes: req.nodes.unwrap_or(2).clamp(1, 64),
            seed: req.seed.unwrap_or(0),
            deadline_ms: req.deadline_ms,
            chaos_at: req.chaos_at,
            panic: req.panic.unwrap_or(false),
            state: JobState::Queued,
            detail: String::new(),
        });
        // Write-ahead: the accept reply exists only if this commit did.
        if let Err(e) = c.commit_ledger() {
            return resp::error(&format!("ledger write failed: {e}"));
        }
        c.queue.push(&tenant, id);
        c.count("serve_accepted", 1);
        c.obs.job_queued(id, &tenant);
        let now_ms = c.obs.now_ms();
        c.tenant_wait.entry(tenant).or_insert(now_ms);
        let us = t_submit.elapsed().as_micros() as f64;
        let h = c.h_submit_us;
        c.metrics.observe(h, us);
        c.gauges();
        self.inner.cv.notify_all();
        resp::accepted(id)
    }

    fn status(&self, job: Option<u64>) -> String {
        let c = self.lock();
        match job.and_then(|id| c.ledger.get(id)) {
            Some(j) => resp::job(j.id, j.state.label(), &j.detail, &j.tenant),
            None => resp::error("unknown job"),
        }
    }

    fn cancel(&self, job: Option<u64>) -> String {
        let mut c = self.lock();
        let Some(rec) = job.and_then(|id| c.ledger.get(id)).cloned() else {
            return resp::error("unknown job");
        };
        match rec.state {
            // Worker dispatch holds the same lock, so `Queued` here means
            // the job really is still in the queue.
            JobState::Queued if c.queue.remove(rec.id) => {
                c.ledger.set_state(rec.id, JobState::Cancelled, "cancelled before dispatch");
                if let Err(e) = c.commit_ledger() {
                    return resp::error(&format!("ledger write failed: {e}"));
                }
                c.count("serve_cancelled", 1);
                c.obs.job_dequeued(rec.id);
                c.gauges();
                let line =
                    resp::job(rec.id, "cancelled", "cancelled before dispatch", &rec.tenant);
                c.end_streams(rec.id, &line);
                line
            }
            JobState::Queued | JobState::Running => {
                // Preempted at the job's next pause point via the control
                // callback; the state is parked, not discarded.
                c.cancel.insert(rec.id);
                resp::job(rec.id, rec.state.label(), "cancel requested", &rec.tenant)
            }
            terminal => resp::job(rec.id, terminal.label(), &rec.detail, &rec.tenant),
        }
    }

    /// Blocks pumping `window` lines for `job` until it reaches a terminal
    /// state (or was already terminal).
    fn stream(&self, job: Option<u64>, emit: &mut dyn FnMut(String)) {
        let rx: Receiver<StreamMsg> = {
            let mut c = self.lock();
            let Some(rec) = job.and_then(|id| c.ledger.get(id)).cloned() else {
                emit(resp::error("unknown job"));
                return;
            };
            match rec.state {
                JobState::Queued | JobState::Running => {
                    let (tx, rx) = sync_channel(256);
                    c.subs.entry(rec.id).or_default().push(tx);
                    rx
                }
                terminal => {
                    emit(resp::job(rec.id, terminal.label(), &rec.detail, &rec.tenant));
                    return;
                }
            }
        };
        loop {
            match rx.recv() {
                Ok(StreamMsg::Line(l)) => emit(l),
                Ok(StreamMsg::End(l)) => {
                    emit(l);
                    return;
                }
                // Sender dropped without a terminal line (chaos kill path):
                // report the job's current state and stop.
                Err(_) => {
                    emit(self.status(job));
                    return;
                }
            }
        }
    }

    /// Graceful drain: stop admitting, preempt running jobs at their next
    /// pause point (their state parks in checkpoint manifests), and return
    /// once the pool is idle. Queued and parked jobs stay in the ledger
    /// for a later restart to pick up.
    pub fn drain(&self) {
        let mut c = self.lock();
        c.draining = true;
        self.inner.cv.notify_all();
        while !c.running.is_empty() {
            c = self.inner.cv.wait(c).unwrap();
        }
    }

    /// Drains, stops the workers, and joins them.
    pub fn shutdown(&self) {
        self.drain();
        {
            let mut c = self.lock();
            c.shutdown = true;
            self.inner.cv.notify_all();
        }
        for h in self.workers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let rec: JobRecord = {
            let mut c = inner.core.lock().unwrap();
            loop {
                if c.shutdown {
                    return;
                }
                if !c.draining {
                    if let Some((tenant, id)) = c.queue.pop() {
                        c.ledger.set_state(id, JobState::Running, "running");
                        if let Err(e) = c.commit_ledger() {
                            eprintln!("serve: ledger write failed: {e}");
                        }
                        c.running.insert(id);
                        c.obs.job_dispatched(id, &tenant);
                        // `.max(1)`: 0 is the "never dispatched" sentinel.
                        let now_ms = c.obs.now_ms().max(1);
                        c.last_dispatch_ms = now_ms;
                        c.tenant_wait.insert(tenant, now_ms);
                        c.gauges();
                        break c.ledger.get(id).expect("queued job has a record").clone();
                    }
                }
                c = inner.cv.wait(c).unwrap();
            }
        };
        run_one(inner, &rec);
    }
}

/// Runs one job start-to-terminal-state, with panic isolation.
fn run_one(inner: &Arc<Inner>, rec: &JobRecord) {
    let outcome = catch_unwind(AssertUnwindSafe(|| execute(inner, rec)));
    let mut c = inner.core.lock().unwrap();
    c.running.remove(&rec.id);
    c.cancel.remove(&rec.id);
    let (state, detail) = match outcome {
        Ok(Ok(done)) => done,
        Ok(Err(e)) => {
            if let EngineError::Sim(SimError::CoordinatorCrash { at_event }) = &e {
                // The armed chaos fault fired and `abort_on_chaos` is off:
                // model the kill without dying. The ledger keeps saying
                // `running` — exactly what a real `kill -9` leaves behind —
                // so a restarted daemon recovers the job by resume.
                c.count("serve_chaos_crashes", 1);
                c.obs.job_finished(rec.id, SpanOutcome::Cancelled);
                c.gauges();
                c.end_streams(
                    rec.id,
                    &resp::job(
                        rec.id,
                        JobState::Running.label(),
                        &format!("chaos kill at dispatch {at_event}; restart to recover"),
                        &rec.tenant,
                    ),
                );
                self_notify(inner);
                return;
            }
            (JobState::Failed, format!("engine error: {e}"))
        }
        Err(panic) => {
            c.count("serve_panics", 1);
            (JobState::Failed, format!("worker panic: {}", panic_message(&panic)))
        }
    };
    match state {
        JobState::Done => c.count("serve_completed", 1),
        JobState::Failed => c.count("serve_failed", 1),
        JobState::Cancelled => c.count("serve_cancelled", 1),
        JobState::Deadline => c.count("serve_deadline_preempted", 1),
        JobState::Running => c.count("serve_parked", 1),
        JobState::Queued => {}
    }
    let span_outcome = match state {
        JobState::Done => SpanOutcome::Ok,
        JobState::Failed => SpanOutcome::Failed,
        _ => SpanOutcome::Cancelled,
    };
    if let Some(wall_ms) = c.obs.job_finished(rec.id, span_outcome) {
        let h = c.h_job_wall_ms;
        c.metrics.observe(h, wall_ms);
    }
    if state == JobState::Done {
        c.jobs_completed += 1;
    }
    c.ledger.set_state(rec.id, state, &detail);
    if let Err(e) = c.commit_ledger() {
        eprintln!("serve: ledger write failed: {e}");
    }
    c.gauges();
    c.end_streams(rec.id, &resp::job(rec.id, state.label(), &detail, &rec.tenant));
    self_notify(inner);
}

fn self_notify(inner: &Arc<Inner>) {
    inner.cv.notify_all();
}

/// The health monitor thread: run every detector each poll, park on the
/// condvar between polls so shutdown wakes (and ends) it promptly.
fn health_loop(inner: &Arc<Inner>) {
    let poll = Duration::from_millis(inner.cfg.health_poll_ms.max(1));
    let mut c = inner.core.lock().unwrap();
    loop {
        if c.shutdown {
            return;
        }
        let fired = tick_health(&mut c, inner.cfg.workers);
        for d in &fired {
            eprintln!("serve: health: {} {} ({})", d.kind.label(), d.subject, d.detail);
        }
        let (guard, _) = inner.cv.wait_timeout(c, poll).unwrap();
        c = guard;
    }
}

/// Back-off hint for shed clients (ms): a rough queue-drain estimate
/// (~250ms of daemon work per queued job, split across the pool), clamped
/// to a sane band. With no workers nothing drains until a restart, so the
/// hint is just "a while".
fn retry_after_hint(queue_depth: u64, workers: usize) -> u64 {
    if workers == 0 {
        return 1000;
    }
    ((queue_depth * 250) / workers as u64).clamp(100, 5000)
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Builds the job's `(spec, config)` from the catalog and drives it under
/// the controlled loop, resuming from checkpoints when the job directory
/// already has them (recovery). Returns the terminal `(state, detail)`.
fn execute(inner: &Arc<Inner>, rec: &JobRecord) -> Result<(JobState, String), EngineError> {
    if rec.panic {
        panic!("injected worker panic (submit had panic=true)");
    }
    let scale = catalog::Scale::parse(&rec.scale).map_err(EngineError::InvalidSpec)?;
    let (spec, mut cfg) =
        catalog::build(&rec.workflow, scale, rec.nodes as usize).map_err(EngineError::InvalidSpec)?;
    cfg.faults = cfg.faults.clone().seed(rec.seed);
    cfg.obs = Some(ObsConfig::default());
    let job_dir = inner.cfg.state_dir.join(format!("job-{}", rec.id));
    cfg.checkpoint =
        Some(CheckpointConfig::to_dir(&job_dir).every_sim_ns(inner.cfg.ckpt_ms.max(1) * 1_000_000));
    let opts = ControlledOptions {
        watch: WatchOptions {
            window_ns: inner.cfg.window_ms.max(1) * 1_000_000,
            ..WatchOptions::default()
        },
        deadline_ns: rec.deadline_ms.map(|ms| ms * 1_000_000),
    };

    let id = rec.id;
    let on_window = |w: &WindowSummary| push_window(inner, id, w);
    let control = || {
        let c = inner.core.lock().unwrap();
        if c.shutdown || c.draining || c.cancel.contains(&id) {
            StepControl::Preempt
        } else {
            StepControl::Continue
        }
    };

    // Fresh vs resume: a previous incarnation's checkpoints make this a
    // recovery. Chaos is armed only on fresh runs — a resumed simulator
    // must not re-fire the kill it already died from.
    let has_ckpts = std::fs::read_dir(&job_dir)
        .map(|d| d.filter_map(|e| e.ok()).count() > 0)
        .unwrap_or(false);
    let outcome = if has_ckpts {
        match resume_controlled(&spec, &cfg, &opts, on_window, control) {
            Ok((outcome, torn)) => {
                if !torn.is_empty() {
                    let mut c = inner.core.lock().unwrap();
                    c.count("serve_torn_manifests", torn.len() as u64);
                    for t in &torn {
                        eprintln!("serve: job {id}: {t}");
                    }
                }
                outcome
            }
            // Every manifest torn (killed during the very first write):
            // nothing usable, restart the deterministic run from scratch.
            Err(EngineError::Checkpoint(
                CheckpointError::AllTorn { torn, .. },
            )) => {
                {
                    let mut c = inner.core.lock().unwrap();
                    c.count("serve_torn_manifests", torn.len() as u64);
                }
                let _ = std::fs::remove_dir_all(&job_dir);
                run_fresh(inner, rec, &spec, &cfg, &opts)?
            }
            Err(e) => return Err(e),
        }
    } else {
        run_fresh(inner, rec, &spec, &cfg, &opts)?
    };

    match outcome {
        ControlledOutcome::Completed(r) => {
            write_result(inner, rec, &r).map_err(|e| {
                eprintln!("serve: job {id}: result write failed: {e}");
                EngineError::InvalidSpec(format!("result write failed: {e}"))
            })?;
            Ok((JobState::Done, format!("ok: makespan {:.4}s", r.makespan_s)))
        }
        ControlledOutcome::Preempted { cause: PreemptCause::Deadline, sim_time_ns, .. } => {
            Ok((
                JobState::Deadline,
                format!("deadline preempted at {sim_time_ns}ns; attempt ledger parked"),
            ))
        }
        ControlledOutcome::Preempted {
            cause: PreemptCause::Control,
            sim_time_ns,
            parked_seq,
            ..
        } => {
            let cancelled = inner.core.lock().unwrap().cancel.contains(&id);
            let seq = parked_seq.map_or_else(|| "-".into(), |s| s.to_string());
            if cancelled {
                Ok((
                    JobState::Cancelled,
                    format!("cancelled at {sim_time_ns}ns (parked manifest seq {seq})"),
                ))
            } else {
                // Drain/shutdown: park as `running` so a restart resumes it.
                Ok((
                    JobState::Running,
                    format!("parked for drain at {sim_time_ns}ns (manifest seq {seq})"),
                ))
            }
        }
    }
}

/// Runs a job from scratch, arming its chaos fault (if any) and honoring
/// `abort_on_chaos` — the deterministic stand-in for `kill -9`.
fn run_fresh(
    inner: &Arc<Inner>,
    rec: &JobRecord,
    spec: &dfl_workflows::WorkflowSpec,
    cfg: &dfl_workflows::RunConfig,
    opts: &ControlledOptions,
) -> Result<ControlledOutcome, EngineError> {
    let mut cfg = cfg.clone();
    if let Some(at) = rec.chaos_at {
        cfg.faults = cfg.faults.chaos_crash(at);
    }
    let id = rec.id;
    let on_window = |w: &WindowSummary| push_window(inner, id, w);
    let control = || {
        let c = inner.core.lock().unwrap();
        if c.shutdown || c.draining || c.cancel.contains(&id) {
            StepControl::Preempt
        } else {
            StepControl::Continue
        }
    };
    match run_controlled(spec, &cfg, opts, on_window, control) {
        Err(EngineError::Sim(SimError::CoordinatorCrash { .. })) if inner.cfg.abort_on_chaos => {
            // Die exactly like kill -9: no unwinding, no ledger write, no
            // flush. The restart proves recovery.
            std::process::abort();
        }
        other => other,
    }
}

fn push_window(inner: &Arc<Inner>, job: u64, w: &WindowSummary) {
    let mut c = inner.core.lock().unwrap();
    if let Some(tenant) = c.ledger.get(job).map(|r| r.tenant.clone()) {
        c.obs.window(job, &tenant);
    }
    let Some(subs) = c.subs.get_mut(&job) else { return };
    let line = resp::window(job, w);
    let mut dropped = 0u64;
    subs.retain(|tx| match tx.try_send(StreamMsg::Line(line.clone())) {
        Ok(()) => true,
        Err(TrySendError::Full(_)) => {
            // Slow consumer: drop the line, keep the subscription, count it.
            dropped += 1;
            true
        }
        Err(TrySendError::Disconnected(_)) => false,
    });
    if dropped > 0 {
        c.count("serve_stream_dropped", dropped);
    }
}

/// Writes `job-{id}-result.json` (atomic rename): the job's fingerprint —
/// reports plus *both* timeline exports — used by the chaos harness to
/// prove recovered runs byte-identical to uninterrupted ones. The makespan
/// travels as IEEE-754 bits so the comparison is exact, not formatted.
fn write_result(inner: &Arc<Inner>, rec: &JobRecord, r: &RunResult) -> Result<(), String> {
    let n = |x: u64| Value::Number(Number::U64(x));
    let s = |x: &str| Value::String(x.to_owned());
    let reports = Value::Array(
        r.reports
            .iter()
            .map(|j| {
                Value::Array(vec![s(&j.name), n(j.end_ns), Value::Bool(j.failed)])
            })
            .collect(),
    );
    let timeline = r.timeline.as_ref().ok_or("job ran without a timeline")?;
    let v = Value::Object(
        [
            ("job".to_owned(), n(rec.id)),
            ("workflow".to_owned(), s(&rec.workflow)),
            ("scale".to_owned(), s(&rec.scale)),
            ("nodes".to_owned(), n(rec.nodes)),
            ("seed".to_owned(), n(rec.seed)),
            ("makespan_bits".to_owned(), n(r.makespan_s.to_bits())),
            ("events_dispatched".to_owned(), n(r.events_dispatched)),
            ("reports".to_owned(), reports),
            ("chrome_trace".to_owned(), s(&chrome_trace(timeline))),
            ("jsonl".to_owned(), s(&jsonl(timeline))),
        ]
        .into_iter()
        .collect(),
    );
    let json = serde_json::to_string(&v).map_err(|e| e.to_string())?;
    let path = inner.cfg.state_dir.join(format!("job-{}-result.json", rec.id));
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, json).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &path).map_err(|e| format!("rename {}: {e}", path.display()))?;
    Ok(())
}
