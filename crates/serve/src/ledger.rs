//! Write-ahead job ledger: the daemon's crash-durable source of truth.
//!
//! Every job transition (admitted, running, done, failed, cancelled,
//! preempted) rewrites `jobs.json` in the daemon state directory with the
//! same atomic temp-file + rename discipline as `CheckpointManifest` — a
//! `kill -9` at any instant leaves either the previous or the next ledger,
//! never a torn one. A submit is acknowledged `accepted` only *after* its
//! `Queued` record hits disk, so an accepted job can never be lost: on
//! restart, [`Ledger::load`] hands recovery every job that was queued or
//! running when the daemon died.
//!
//! Records store the full submit parameters, not derived state — recovery
//! rebuilds the `(spec, config)` pair through the workflow catalog, which
//! hashes identically to the original submission's and therefore accepts
//! the job's on-disk checkpoint manifests.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// Job lifecycle states as persisted in the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Admitted, waiting for a worker. Recovered by re-enqueueing.
    Queued,
    /// On a worker. Recovered by resuming from the job's latest manifest.
    Running,
    /// Completed; the result file is on disk (written before this state).
    Done,
    /// Typed failure — engine error or isolated worker panic.
    Failed,
    /// Cancelled by the client (queued: dropped; running: preempted).
    Cancelled,
    /// Preempted by its sim-time deadline; attempt ledger parked in the
    /// job's checkpoint manifests.
    Deadline,
}

impl JobState {
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Deadline => "deadline",
        }
    }

    /// States recovery must pick back up after a crash.
    pub fn needs_recovery(self) -> bool {
        matches!(self, JobState::Queued | JobState::Running)
    }
}

/// One job's durable record: the submit parameters plus current state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobRecord {
    pub id: u64,
    pub tenant: String,
    pub workflow: String,
    pub scale: String,
    pub nodes: u64,
    pub seed: u64,
    pub deadline_ms: Option<u64>,
    pub chaos_at: Option<u64>,
    pub panic: bool,
    pub state: JobState,
    /// Human-readable outcome detail (error message, preemption note, …).
    pub detail: String,
}

/// The on-disk ledger: all job records, plus the id counter high-water
/// mark so recovered daemons never reuse an id.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LedgerState {
    pub next_id: u64,
    pub jobs: Vec<JobRecord>,
}

/// Handle over `<state_dir>/jobs.json`.
#[derive(Debug)]
pub struct Ledger {
    path: PathBuf,
    state: LedgerState,
}

impl Ledger {
    /// Opens (or initializes) the ledger in `state_dir`.
    pub fn open(state_dir: &Path) -> Result<Ledger, String> {
        std::fs::create_dir_all(state_dir)
            .map_err(|e| format!("create {}: {e}", state_dir.display()))?;
        let path = state_dir.join("jobs.json");
        let state = match std::fs::read_to_string(&path) {
            Ok(text) => serde_json::from_str(&text)
                .map_err(|e| format!("corrupt job ledger {}: {e}", path.display()))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => LedgerState::default(),
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        };
        Ok(Ledger { path, state })
    }

    /// Allocates the next job id (durable once the caller commits).
    pub fn alloc_id(&mut self) -> u64 {
        let id = self.state.next_id;
        self.state.next_id += 1;
        id
    }

    pub fn jobs(&self) -> &[JobRecord] {
        &self.state.jobs
    }

    pub fn get(&self, id: u64) -> Option<&JobRecord> {
        self.state.jobs.iter().find(|j| j.id == id)
    }

    /// Appends a record. Not durable until [`Ledger::commit`].
    pub fn push(&mut self, rec: JobRecord) {
        debug_assert!(self.get(rec.id).is_none(), "duplicate job id {}", rec.id);
        self.state.jobs.push(rec);
    }

    /// Updates a record's state + detail. Not durable until
    /// [`Ledger::commit`].
    pub fn set_state(&mut self, id: u64, state: JobState, detail: &str) {
        if let Some(j) = self.state.jobs.iter_mut().find(|j| j.id == id) {
            j.state = state;
            j.detail = detail.to_owned();
        }
    }

    /// Writes the ledger atomically (temp file + rename). The write-ahead
    /// contract: callers commit *before* externalizing the transition
    /// (acknowledging a submit, reporting a completion).
    pub fn commit(&self) -> Result<(), String> {
        let json = serde_json::to_string(&self.state).map_err(|e| e.to_string())?;
        let tmp = self.path.with_extension("json.tmp");
        std::fs::write(&tmp, json).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| format!("rename {}: {e}", self.path.display()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, state: JobState) -> JobRecord {
        JobRecord {
            id,
            tenant: "t".into(),
            workflow: "smoke".into(),
            scale: "tiny".into(),
            nodes: 2,
            seed: 0,
            deadline_ms: None,
            chaos_at: None,
            panic: false,
            state,
            detail: String::new(),
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dfl-ledger-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn ledger_survives_reopen_with_states_and_id_highwater() {
        let dir = tmp("reopen");
        let mut l = Ledger::open(&dir).unwrap();
        let a = l.alloc_id();
        l.push(rec(a, JobState::Queued));
        let b = l.alloc_id();
        l.push(rec(b, JobState::Queued));
        l.set_state(a, JobState::Running, "");
        l.set_state(b, JobState::Done, "ok");
        l.commit().unwrap();

        let mut l2 = Ledger::open(&dir).unwrap();
        assert_eq!(l2.get(a).unwrap().state, JobState::Running);
        assert_eq!(l2.get(b).unwrap().state, JobState::Done);
        assert!(l2.get(a).unwrap().state.needs_recovery());
        assert!(!l2.get(b).unwrap().state.needs_recovery());
        assert_eq!(l2.alloc_id(), 2, "ids never reused after recovery");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_is_atomic_rename() {
        let dir = tmp("atomic");
        let mut l = Ledger::open(&dir).unwrap();
        let id = l.alloc_id();
        l.push(rec(id, JobState::Queued));
        l.commit().unwrap();
        assert!(dir.join("jobs.json").exists());
        assert!(!dir.join("jobs.json.tmp").exists(), "temp file renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_ledger_is_a_typed_error() {
        let dir = tmp("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("jobs.json"), "{torn").unwrap();
        let err = Ledger::open(&dir).unwrap_err();
        assert!(err.contains("corrupt job ledger"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
