//! Per-tenant fair-share admission queue.
//!
//! The discipline is the FlowNet max-min fair share from
//! `dfl_iosim::flow` transplanted from link bandwidth to worker slots: at
//! every scheduling decision each *active* tenant (one with queued work)
//! holds an equal share of the pool, `share = capacity / load`, regardless
//! of how many jobs it has buffered. FlowNet realizes that share by
//! progressive filling over rates; a job queue realizes it over *time*
//! with virtual-time accounting: each tenant carries a virtual clock,
//! dispatching charges the clock one quantum, and the scheduler always
//! serves the active tenant with the smallest clock. Over any interval
//! where a set of tenants stays active, each receives the same number of
//! worker dispatches (±1) — the discrete shadow of `capacity / load`.
//!
//! Two standard guards keep the accounting honest:
//!
//! - **Re-activation clamp** — a tenant returning from idle has its clock
//!   advanced to the minimum active clock, so banked idle time cannot be
//!   spent as a burst (the same reason FlowNet recomputes shares from
//!   *current* load instead of historical usage).
//! - **FIFO within tenant** — a tenant's own jobs never reorder.
//!
//! Determinism: ties on virtual time break by tenant name, so a given
//! submission sequence always dispatches in the same order.

use std::collections::VecDeque;

/// One dispatch quantum on a tenant's virtual clock. Any positive constant
/// works (equal shares); fixed-point leaves headroom for weighted shares.
const QUANTUM: u64 = 1 << 16;

#[derive(Debug)]
struct Tenant {
    name: String,
    /// Virtual clock: quanta charged to this tenant so far, clamped on
    /// re-activation.
    vtime: u64,
    /// FIFO of queued job ids.
    jobs: VecDeque<u64>,
    /// Total dispatches charged to this tenant (observability only).
    dispatched: u64,
}

/// Read-only view of one tenant's scheduler accounting, for the daemon's
/// wall-clock metrics. `vtime_lag` is the tenant's clock minus the minimum
/// active clock: 0 means next in line, one quantum per dispatch it is
/// "ahead" of the most-starved active tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStat {
    pub name: String,
    pub queued: usize,
    pub vtime: u64,
    pub vtime_lag: u64,
    pub dispatched: u64,
}

/// The queue. Admission capacity is enforced by the caller (the daemon
/// rejects with `capacity` before pushing); this structure only orders
/// what was admitted.
#[derive(Debug, Default)]
pub struct FairQueue {
    tenants: Vec<Tenant>,
    len: usize,
}

impl FairQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Queued jobs across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn min_active_vtime(&self) -> Option<u64> {
        self.tenants.iter().filter(|t| !t.jobs.is_empty()).map(|t| t.vtime).min()
    }

    /// Enqueues `job` for `tenant`.
    pub fn push(&mut self, tenant: &str, job: u64) {
        let floor = self.min_active_vtime();
        let t = match self.tenants.iter_mut().find(|t| t.name == tenant) {
            Some(t) => t,
            None => {
                self.tenants.push(Tenant {
                    name: tenant.to_owned(),
                    vtime: 0,
                    jobs: VecDeque::new(),
                    dispatched: 0,
                });
                self.tenants.last_mut().unwrap()
            }
        };
        if t.jobs.is_empty() {
            // Going active: clamp the clock so idle time is not banked.
            if let Some(floor) = floor {
                t.vtime = t.vtime.max(floor);
            }
        }
        t.jobs.push_back(job);
        self.len += 1;
    }

    /// Dispatches the next job: FIFO head of the active tenant with the
    /// smallest virtual clock (ties by tenant name), charging that tenant
    /// one quantum.
    pub fn pop(&mut self) -> Option<(String, u64)> {
        let t = self
            .tenants
            .iter_mut()
            .filter(|t| !t.jobs.is_empty())
            .min_by(|a, b| a.vtime.cmp(&b.vtime).then_with(|| a.name.cmp(&b.name)))?;
        let job = t.jobs.pop_front().expect("active tenant has a job");
        t.vtime += QUANTUM;
        t.dispatched += 1;
        self.len -= 1;
        Some((t.name.clone(), job))
    }

    /// Per-tenant accounting snapshot in first-seen order (deterministic
    /// for a given submission sequence). Includes idle tenants — their
    /// history is part of the fairness picture.
    pub fn tenant_stats(&self) -> Vec<TenantStat> {
        let floor = self.min_active_vtime().unwrap_or(0);
        self.tenants
            .iter()
            .map(|t| TenantStat {
                name: t.name.clone(),
                queued: t.jobs.len(),
                vtime: t.vtime,
                vtime_lag: t.vtime.saturating_sub(floor),
                dispatched: t.dispatched,
            })
            .collect()
    }

    /// Removes a queued job (client cancellation before dispatch). Returns
    /// false if the job is not queued (already dispatched or unknown).
    pub fn remove(&mut self, job: u64) -> bool {
        for t in &mut self.tenants {
            if let Some(i) = t.jobs.iter().position(|&j| j == job) {
                t.jobs.remove(i);
                self.len -= 1;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_tenants_split_dispatches_evenly() {
        // A floods 8 jobs before B submits 4: with both active, dispatches
        // alternate instead of draining A's backlog first.
        let mut q = FairQueue::new();
        for j in 0..8 {
            q.push("a", j);
        }
        for j in 8..12 {
            q.push("b", j);
        }
        let order: Vec<String> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(
            order,
            ["a", "b", "a", "b", "a", "b", "a", "b", "a", "a", "a", "a"],
            "equal shares while both are active, remainder after b drains"
        );
    }

    #[test]
    fn fifo_within_tenant() {
        let mut q = FairQueue::new();
        for j in [3, 1, 2] {
            q.push("a", j);
        }
        let jobs: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, j)| j)).collect();
        assert_eq!(jobs, [3, 1, 2], "submission order, not id order");
    }

    #[test]
    fn reactivated_tenant_cannot_spend_banked_idle_time() {
        let mut q = FairQueue::new();
        // A works alone for a while, accumulating vtime.
        for j in 0..6 {
            q.push("a", j);
        }
        for _ in 0..4 {
            q.pop();
        }
        // B joins fresh; its clock is clamped to A's, not zero — so it
        // cannot monopolize the pool to "catch up".
        for j in 10..14 {
            q.push("b", j);
        }
        let order: Vec<String> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        let b_burst = order.iter().take_while(|t| *t == "b").count();
        assert!(b_burst <= 1, "no catch-up burst: {order:?}");
    }

    #[test]
    fn remove_cancels_only_queued_jobs() {
        let mut q = FairQueue::new();
        q.push("a", 0);
        q.push("a", 1);
        assert!(q.remove(1));
        assert!(!q.remove(1), "already removed");
        assert_eq!(q.pop(), Some(("a".into(), 0)));
        assert!(!q.remove(0), "already dispatched");
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_tenant_name_for_determinism() {
        let mut q = FairQueue::new();
        q.push("zeta", 0);
        q.push("alpha", 1);
        assert_eq!(q.pop().unwrap().0, "alpha");
        assert_eq!(q.pop().unwrap().0, "zeta");
    }

    #[test]
    fn tenant_stats_report_lag_and_dispatch_counts() {
        let mut q = FairQueue::new();
        for j in 0..4 {
            q.push("a", j);
        }
        for _ in 0..2 {
            q.pop();
        }
        q.push("b", 10);
        let stats = q.tenant_stats();
        assert_eq!(stats.len(), 2);
        let a = stats.iter().find(|s| s.name == "a").unwrap();
        let b = stats.iter().find(|s| s.name == "b").unwrap();
        assert_eq!((a.queued, a.dispatched), (2, 2));
        assert_eq!((b.queued, b.dispatched), (1, 0));
        // b joined clamped to a's clock, so both sit at the active floor.
        assert_eq!(a.vtime_lag, 0);
        assert_eq!(b.vtime_lag, 0);
        q.pop(); // serves one of them, putting it one quantum ahead
        let stats = q.tenant_stats();
        let ahead = stats.iter().find(|s| s.vtime_lag > 0).unwrap();
        assert_eq!(ahead.vtime_lag, 1 << 16, "one quantum ahead of the floor");
    }
}
