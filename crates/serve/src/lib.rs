//! # dfl-serve — a crash-safe, multi-tenant analysis daemon
//!
//! `datalife serve` turns the one-shot workflow engine into a long-lived
//! service: clients submit named catalog workflows over a JSON Lines
//! protocol (TCP loopback or Unix socket) and the daemon runs them on a
//! worker pool with
//!
//! - **admission control** — a bounded per-tenant fair-share queue; load
//!   beyond capacity is shed with typed `rejected` replies, never
//!   silently ([`proto::RejectReason`]);
//! - **per-job deadlines and cancellation** — both preempt through the
//!   engine's pause-at checkpoint path, parking the attempt ledger in a
//!   manifest instead of killing the run;
//! - **crash safety** — a write-ahead job [`ledger`] (atomic rename) plus
//!   per-job checkpoint manifests make `kill -9` at any instant
//!   recoverable: on restart, interrupted jobs resume and finish
//!   byte-identical to uninterrupted runs (the `datalife chaos --serve`
//!   harness proves it at seeded kill points);
//! - **isolation** — worker panics become typed job failures, not daemon
//!   deaths;
//! - **fair-share scheduling** — the FlowNet `capacity/load` max-min
//!   discipline applied to worker slots via virtual-time accounting
//!   ([`sched::FairQueue`]);
//! - **graceful drain** — stop admitting, park in-flight work at
//!   checkpoints, acknowledge when idle;
//! - **wall-clock observability** — every subsystem feeds a metrics
//!   registry exposed as a typed `metrics` reply and a Prometheus scrape
//!   page, job lifecycles are traced as wall-clock spans ([`obs`]), and
//!   edge-triggered watchdogs turn bad shapes (queue stall, shed spike,
//!   slow commits, tenant starvation) into typed diagnoses ([`health`]) —
//!   all without perturbing the deterministic sim results.

pub mod daemon;
pub mod health;
pub mod ledger;
pub mod net;
pub mod obs;
pub mod proto;
pub mod sched;

pub use daemon::{Daemon, ServeConfig};
pub use health::{Health, HealthConfig, HealthDiagnosis, HealthKind, HealthSample, TenantObs};
pub use ledger::{JobRecord, JobState, Ledger};
pub use net::{Client, Endpoints, NetServer};
pub use obs::ServeObs;
pub use proto::{resp, RejectReason, Request};
pub use sched::{FairQueue, TenantStat};
