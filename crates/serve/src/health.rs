//! Wall-clock daemon health watchdogs.
//!
//! The sim-time watchdogs in `dfl_obs::watchdog` diagnose anomalies inside
//! a deterministic run; this module ports their *edge-triggered* idiom to
//! the daemon's wall clock: a detector fires once when its condition
//! becomes true and re-arms only after the condition clears, so a
//! persistent pathology produces one diagnosis, not one per poll. All
//! thresholds are integers and every decision is a pure function of a
//! [`HealthSample`], so tests drive the detectors with synthetic clocks —
//! no sleeping, no real daemon required.
//!
//! Detectors:
//!
//! - **queue-stall** — jobs are queued, workers exist, nothing is running,
//!   and no dispatch has happened for `stall_ms`.
//! - **shed-spike** — more than `shed_spike` capacity sheds landed within
//!   the last `shed_window_ms` (sliding window over cumulative counts).
//! - **ledger-slow** — a ledger commit since the last tick took at least
//!   `ledger_slow_us`.
//! - **tenant-starvation** — a tenant has queued work and got no dispatch
//!   for `starve_ms` while the scheduler *was* dispatching for others
//!   (distinguishes starvation from a global stall).

use std::collections::{HashSet, VecDeque};

use serde::{Deserialize, Serialize, Value};

/// Integer thresholds for the wall-clock detectors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Queue-stall: ms without any dispatch while work is queued.
    pub stall_ms: u64,
    /// Shed-spike sliding window width in ms.
    pub shed_window_ms: u64,
    /// Sheds within the window that count as a spike.
    pub shed_spike: u64,
    /// Ledger commit latency (µs) that counts as slow.
    pub ledger_slow_us: u64,
    /// Tenant-starvation: ms a tenant waits with queued work while other
    /// tenants are being served.
    pub starve_ms: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            stall_ms: 5_000,
            shed_window_ms: 1_000,
            shed_spike: 100,
            ledger_slow_us: 250_000,
            starve_ms: 10_000,
        }
    }
}

/// Closed vocabulary of wall-clock diagnoses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HealthKind {
    QueueStall,
    ShedSpike,
    LedgerSlow,
    TenantStarvation,
}

impl HealthKind {
    pub fn label(self) -> &'static str {
        match self {
            HealthKind::QueueStall => "queue-stall",
            HealthKind::ShedSpike => "shed-spike",
            HealthKind::LedgerSlow => "ledger-slow",
            HealthKind::TenantStarvation => "tenant-starvation",
        }
    }
}

/// One typed wall-clock diagnosis, surfaced in the `metrics` reply and on
/// the daemon's health timeline track.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthDiagnosis {
    /// Wall ms since daemon start.
    pub t_ms: u64,
    pub kind: HealthKind,
    /// What the diagnosis is about (`"queue"`, `"admission"`, `"ledger"`,
    /// or a tenant name).
    pub subject: String,
    /// Kind-dependent magnitude (ms stalled, sheds in window, µs latency).
    pub value: u64,
    pub detail: String,
}

impl HealthDiagnosis {
    /// The diagnosis as a JSON object for the `metrics` reply.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("t_ms".to_owned(), Value::Number(serde::Number::U64(self.t_ms))),
            ("kind".to_owned(), Value::String(self.kind.label().to_owned())),
            ("subject".to_owned(), Value::String(self.subject.clone())),
            ("value".to_owned(), Value::Number(serde::Number::U64(self.value))),
            ("detail".to_owned(), Value::String(self.detail.clone())),
        ])
    }
}

/// One tenant's queue-wait picture at sample time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantObs {
    pub name: String,
    pub queued: usize,
    /// Wall ms (since daemon start) the tenant has been waiting since: its
    /// last dispatch, or its first enqueue if it was never served.
    pub waiting_since_ms: u64,
}

/// Everything the detectors look at, captured under the daemon lock.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthSample {
    /// Wall ms since daemon start.
    pub now_ms: u64,
    pub queue_depth: usize,
    pub running: usize,
    pub workers: usize,
    pub draining: bool,
    /// Cumulative capacity sheds since daemon start.
    pub sheds: u64,
    /// Worst ledger commit latency (µs) observed since the previous tick.
    pub max_commit_us: u64,
    /// Wall ms of the most recent dispatch (0 = none yet; treated as
    /// daemon start, which is what a never-dispatching daemon stalls from).
    pub last_dispatch_ms: u64,
    pub tenants: Vec<TenantObs>,
}

/// The edge-triggered detector state machine.
#[derive(Debug, Default)]
pub struct Health {
    cfg: HealthConfig,
    /// Latched (kind, subject) pairs: fired and not yet cleared.
    latched: HashSet<(HealthKind, String)>,
    /// Shed-spike sliding window of (t_ms, shed-count delta).
    shed_window: VecDeque<(u64, u64)>,
    last_sheds: u64,
}

impl Health {
    pub fn new(cfg: HealthConfig) -> Health {
        Health { cfg, ..Health::default() }
    }

    /// Latch helper: returns true exactly when the condition transitions
    /// false→true for this (kind, subject); clears the latch when false.
    fn edge(&mut self, kind: HealthKind, subject: &str, condition: bool) -> bool {
        let key = (kind, subject.to_owned());
        if condition {
            self.latched.insert(key)
        } else {
            self.latched.remove(&key);
            false
        }
    }

    /// Runs every detector against one sample, returning newly fired
    /// diagnoses (empty while conditions persist or stay clear).
    pub fn tick(&mut self, s: &HealthSample) -> Vec<HealthDiagnosis> {
        let mut out = Vec::new();

        // Queue-stall: work waits, the pool could serve it, nothing moves.
        let stalled_for = s.now_ms.saturating_sub(s.last_dispatch_ms);
        let stall = s.queue_depth > 0
            && s.workers > 0
            && s.running == 0
            && !s.draining
            && stalled_for >= self.cfg.stall_ms;
        if self.edge(HealthKind::QueueStall, "queue", stall) {
            out.push(HealthDiagnosis {
                t_ms: s.now_ms,
                kind: HealthKind::QueueStall,
                subject: "queue".into(),
                value: stalled_for,
                detail: format!(
                    "{} queued, no dispatch for {stalled_for}ms with {} idle workers",
                    s.queue_depth, s.workers
                ),
            });
        }

        // Shed-spike: slide the window, then test the windowed sum.
        let delta = s.sheds.saturating_sub(self.last_sheds);
        self.last_sheds = s.sheds;
        if delta > 0 {
            self.shed_window.push_back((s.now_ms, delta));
        }
        let horizon = s.now_ms.saturating_sub(self.cfg.shed_window_ms);
        while self.shed_window.front().is_some_and(|&(t, _)| t < horizon) {
            self.shed_window.pop_front();
        }
        let windowed: u64 = self.shed_window.iter().map(|&(_, n)| n).sum();
        let spike = windowed >= self.cfg.shed_spike;
        if self.edge(HealthKind::ShedSpike, "admission", spike) {
            out.push(HealthDiagnosis {
                t_ms: s.now_ms,
                kind: HealthKind::ShedSpike,
                subject: "admission".into(),
                value: windowed,
                detail: format!(
                    "{windowed} capacity sheds within {}ms",
                    self.cfg.shed_window_ms
                ),
            });
        }

        // Ledger-slow: worst commit since the previous tick. The "since
        // last tick" framing self-clears once commits are fast again.
        let slow = s.max_commit_us >= self.cfg.ledger_slow_us;
        if self.edge(HealthKind::LedgerSlow, "ledger", slow) {
            out.push(HealthDiagnosis {
                t_ms: s.now_ms,
                kind: HealthKind::LedgerSlow,
                subject: "ledger".into(),
                value: s.max_commit_us,
                detail: format!("ledger commit took {}µs", s.max_commit_us),
            });
        }

        // Tenant-starvation: someone waits while the scheduler serves
        // others. A global dispatch within the starve horizon is what
        // separates this from a queue-stall.
        let others_advancing =
            s.last_dispatch_ms > 0 && s.now_ms.saturating_sub(s.last_dispatch_ms) < self.cfg.starve_ms;
        for t in &s.tenants {
            let waited = s.now_ms.saturating_sub(t.waiting_since_ms);
            let starving = t.queued > 0 && others_advancing && waited >= self.cfg.starve_ms;
            if self.edge(HealthKind::TenantStarvation, &t.name, starving) {
                out.push(HealthDiagnosis {
                    t_ms: s.now_ms,
                    kind: HealthKind::TenantStarvation,
                    subject: t.name.clone(),
                    value: waited,
                    detail: format!(
                        "tenant '{}' has {} queued jobs and no dispatch for {waited}ms",
                        t.name, t.queued
                    ),
                });
            }
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            stall_ms: 100,
            shed_window_ms: 50,
            shed_spike: 10,
            ledger_slow_us: 1_000,
            starve_ms: 200,
        }
    }

    fn sample(now_ms: u64) -> HealthSample {
        HealthSample { now_ms, workers: 2, ..HealthSample::default() }
    }

    #[test]
    fn queue_stall_fires_once_and_rearms_after_clearing() {
        let mut h = Health::new(cfg());
        let mut s = sample(150);
        s.queue_depth = 3;
        s.last_dispatch_ms = 10;
        let d = h.tick(&s);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, HealthKind::QueueStall);
        assert_eq!(d[0].value, 140);
        // Persisting condition: no re-fire.
        s.now_ms = 300;
        assert!(h.tick(&s).is_empty(), "edge-triggered: fire once");
        // A dispatch clears it; the next stall fires again.
        s.last_dispatch_ms = 400;
        s.now_ms = 410;
        assert!(h.tick(&s).is_empty());
        s.now_ms = 600;
        assert_eq!(h.tick(&s).len(), 1, "re-armed after the condition cleared");
    }

    #[test]
    fn queue_stall_needs_idle_pool_and_live_daemon() {
        let mut h = Health::new(cfg());
        let mut s = sample(500);
        s.queue_depth = 3;
        // Running jobs: the pool is busy, not stalled.
        s.running = 1;
        assert!(h.tick(&s).is_empty());
        // Draining: parked on purpose.
        s.running = 0;
        s.draining = true;
        assert!(h.tick(&s).is_empty());
        // Zero workers: queueing-only mode, not a stall.
        s.draining = false;
        s.workers = 0;
        assert!(h.tick(&s).is_empty());
    }

    #[test]
    fn shed_spike_uses_a_sliding_window() {
        let mut h = Health::new(cfg());
        // 6 sheds at t=10, 6 more at t=30: 12 in the 50ms window → spike.
        let mut s = sample(10);
        s.sheds = 6;
        assert!(h.tick(&s).is_empty());
        s.now_ms = 30;
        s.sheds = 12;
        let d = h.tick(&s);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, HealthKind::ShedSpike);
        assert_eq!(d[0].value, 12);
        // Window slides past both bursts: condition clears, re-arms.
        s.now_ms = 200;
        assert!(h.tick(&s).is_empty());
        s.now_ms = 210;
        s.sheds = 24;
        assert_eq!(h.tick(&s).len(), 1, "a fresh burst fires again");
    }

    #[test]
    fn slow_ledger_commit_is_diagnosed_and_self_clears() {
        let mut h = Health::new(cfg());
        let mut s = sample(20);
        s.max_commit_us = 5_000;
        let d = h.tick(&s);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, HealthKind::LedgerSlow);
        assert_eq!(d[0].value, 5_000);
        // Next tick reports fast commits: cleared; a new slow one re-fires.
        s.now_ms = 40;
        s.max_commit_us = 10;
        assert!(h.tick(&s).is_empty());
        s.now_ms = 60;
        s.max_commit_us = 9_000;
        assert_eq!(h.tick(&s).len(), 1);
    }

    #[test]
    fn starvation_requires_other_tenants_to_advance() {
        let mut h = Health::new(cfg());
        let mut s = sample(500);
        s.queue_depth = 2;
        s.tenants = vec![TenantObs { name: "slow".into(), queued: 2, waiting_since_ms: 100 }];
        // Nobody dispatched recently → global stall territory, not starvation.
        s.last_dispatch_ms = 0;
        s.running = 1; // pool busy, so no stall either
        assert!(h.tick(&s).is_empty());
        // Another tenant just got served while 'slow' kept waiting 400ms.
        s.last_dispatch_ms = 490;
        let d = h.tick(&s);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, HealthKind::TenantStarvation);
        assert_eq!(d[0].subject, "slow");
        assert_eq!(d[0].value, 400);
        // Edge-triggered per tenant.
        s.now_ms = 600;
        s.last_dispatch_ms = 590;
        assert!(h.tick(&s).is_empty());
    }

    #[test]
    fn diagnosis_serializes_with_labeled_kind() {
        let d = HealthDiagnosis {
            t_ms: 7,
            kind: HealthKind::ShedSpike,
            subject: "admission".into(),
            value: 42,
            detail: "x".into(),
        };
        let v = d.to_value();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("shed-spike"));
        assert_eq!(v.get("value").unwrap().as_u64(), Some(42));
    }
}
