//! The `datalife serve` wire protocol: JSON Lines over TCP or a Unix
//! socket.
//!
//! Every request is one JSON object on one line; every response is one (or,
//! for `stream`, many) JSON object(s) on one line each. Requests are a flat
//! object with an `op` discriminator; unknown fields are ignored, absent
//! optional fields default. Responses carry a `type` discriminator.
//!
//! ## Requests
//!
//! | op        | fields                                                        |
//! |-----------|---------------------------------------------------------------|
//! | `submit`  | `workflow`, [`tenant`], [`scale`], [`nodes`], [`seed`], [`deadline_ms`], [`chaos_at`], [`panic`] |
//! | `status`  | `job`                                                         |
//! | `cancel`  | `job`                                                         |
//! | `stream`  | `job` — responds with `window` lines, then a terminal line    |
//! | `stats`   | —                                                             |
//! | `drain`   | — stop admitting, park in-flight jobs, then acknowledge       |
//! | `ping`    | —                                                             |
//!
//! ## Responses
//!
//! `{"type":"accepted","job":N}` · `{"type":"rejected","reason":R,"detail":D}`
//! · `{"type":"job","job":N,"state":S,...}` · `{"type":"window",...}` ·
//! `{"type":"stats",...}` · `{"type":"error","detail":D}` — see README for
//! the full schema. Rejection reasons are closed vocabulary:
//! [`RejectReason`]. A submit is only `accepted` *after* the job has been
//! durably recorded in the write-ahead ledger.

use serde::{Deserialize, Number, Serialize, Value};

/// One parsed request line. Flat by design: the vendored serde derives
/// handle absent fields by deserializing `Option` from `Null`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    pub op: String,
    /// Catalog workflow name (`submit`).
    pub workflow: Option<String>,
    /// Tenant for fair-share scheduling; defaults to `"anon"`.
    pub tenant: Option<String>,
    /// `tiny` (default) or `paper`.
    pub scale: Option<String>,
    /// Cluster nodes to simulate on (default 2).
    pub nodes: Option<u64>,
    /// Fault-plan seed (default 0 = unseeded base plan).
    pub seed: Option<u64>,
    /// Sim-time budget in ms. `0` (or any value the job has already
    /// exceeded on admission) is rejected with reason `deadline`; a run
    /// reaching it mid-flight is preempted at a checkpoint, not killed.
    pub deadline_ms: Option<u64>,
    /// Arm the deterministic coordinator-kill switch at this dispatch
    /// index (the `datalife chaos --serve` harness; with
    /// `--abort-on-chaos` the daemon dies as if `kill -9`ed).
    pub chaos_at: Option<u64>,
    /// Make the worker thread panic instead of running the job — exercises
    /// panic isolation. Typed `failed` state, daemon keeps serving.
    pub panic: Option<bool>,
    /// Job id for `status` / `cancel` / `stream`.
    pub job: Option<u64>,
}

impl Request {
    pub fn new(op: &str) -> Request {
        Request {
            op: op.into(),
            workflow: None,
            tenant: None,
            scale: None,
            nodes: None,
            seed: None,
            deadline_ms: None,
            chaos_at: None,
            panic: None,
            job: None,
        }
    }

    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        serde_json::from_str(line).map_err(|e| format!("bad request: {e}"))
    }

    /// The request as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("request serializes")
    }
}

/// Why a submit was refused. Closed vocabulary so clients can match on it;
/// rendered in the `reason` field of a `rejected` response. Every refused
/// submit gets one of these — the daemon never sheds silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Admission queue is at capacity (load shedding).
    Capacity,
    /// Deadline is zero or already exhausted at admission.
    Deadline,
    /// Unknown workflow/scale or malformed field.
    BadRequest,
    /// The daemon is draining and admits nothing new.
    Draining,
}

impl RejectReason {
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::Capacity => "capacity",
            RejectReason::Deadline => "deadline",
            RejectReason::BadRequest => "bad_request",
            RejectReason::Draining => "draining",
        }
    }
}

/// Builders for the response lines. Responses are hand-assembled
/// [`Value`] objects (not derived) so the `type` discriminator and field
/// order are stable wire schema, independent of struct layout.
pub mod resp {
    use super::*;

    fn obj(fields: Vec<(&str, Value)>) -> String {
        let v = Value::Object(fields.into_iter().map(|(k, x)| (k.to_owned(), x)).collect());
        serde_json::to_string(&v).expect("response serializes")
    }

    fn s(x: &str) -> Value {
        Value::String(x.to_owned())
    }

    fn n(x: u64) -> Value {
        Value::Number(Number::U64(x))
    }

    pub fn accepted(job: u64) -> String {
        obj(vec![("type", s("accepted")), ("job", n(job))])
    }

    pub fn rejected(reason: RejectReason, detail: &str) -> String {
        obj(vec![
            ("type", s("rejected")),
            ("reason", s(reason.label())),
            ("detail", s(detail)),
        ])
    }

    pub fn error(detail: &str) -> String {
        obj(vec![("type", s("error")), ("detail", s(detail))])
    }

    pub fn pong() -> String {
        obj(vec![("type", s("pong"))])
    }

    pub fn ok(what: &str) -> String {
        obj(vec![("type", s("ok")), ("what", s(what))])
    }

    /// `status` response / `stream` terminal line.
    pub fn job(job: u64, state: &str, detail: &str, tenant: &str) -> String {
        obj(vec![
            ("type", s("job")),
            ("job", n(job)),
            ("state", s(state)),
            ("detail", s(detail)),
            ("tenant", s(tenant)),
        ])
    }

    /// One streamed window: the serialized [`dfl_workflows::WindowSummary`]
    /// wrapped with the discriminator and job id.
    pub fn window(job: u64, summary: &impl Serialize) -> String {
        obj(vec![("type", s("window")), ("job", n(job)), ("summary", summary.to_value())])
    }

    pub fn stats(metrics: &impl Serialize) -> String {
        obj(vec![("type", s("stats")), ("metrics", metrics.to_value())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_and_tolerates_missing_fields() {
        let mut r = Request::new("submit");
        r.workflow = Some("smoke".into());
        r.deadline_ms = Some(250);
        let line = r.to_line();
        assert_eq!(Request::parse(&line).unwrap(), r);

        // Minimal hand-written client line: absent optionals default.
        let r = Request::parse(r#"{"op":"ping"}"#).unwrap();
        assert_eq!(r.op, "ping");
        assert_eq!(r.workflow, None);
        assert_eq!(r.job, None);
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"workflow":"smoke"}"#).is_err(), "op is mandatory");
    }

    #[test]
    fn responses_carry_type_discriminators() {
        let v: Value = serde_json::from_str(&resp::accepted(7)).unwrap();
        assert_eq!(v["type"].as_str(), Some("accepted"));
        assert_eq!(v["job"].as_u64(), Some(7));
        let v: Value =
            serde_json::from_str(&resp::rejected(RejectReason::Capacity, "queue full")).unwrap();
        assert_eq!(v["reason"].as_str(), Some("capacity"));
    }
}
