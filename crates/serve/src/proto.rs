//! The `datalife serve` wire protocol: JSON Lines over TCP or a Unix
//! socket.
//!
//! Every request is one JSON object on one line; every response is one (or,
//! for `stream`, many) JSON object(s) on one line each. Requests are a flat
//! object with an `op` discriminator; unknown fields are ignored, absent
//! optional fields default. Responses carry a `type` discriminator.
//!
//! ## Requests
//!
//! | op        | fields                                                        |
//! |-----------|---------------------------------------------------------------|
//! | `submit`  | `workflow`, [`tenant`], [`scale`], [`nodes`], [`seed`], [`deadline_ms`], [`chaos_at`], [`panic`] |
//! | `status`  | `job`                                                         |
//! | `cancel`  | `job`                                                         |
//! | `stream`  | `job` — responds with `window` lines, then a terminal line    |
//! | `stats`   | —                                                             |
//! | `metrics` | — wall-clock daemon snapshot: tenants, latencies, diagnoses   |
//! | `trace`   | — wall-clock job-lifecycle timeline (Chrome trace + JSONL)    |
//! | `drain`   | — stop admitting, park in-flight jobs, then acknowledge       |
//! | `ping`    | —                                                             |
//!
//! ## Responses
//!
//! `{"type":"accepted","job":N}` ·
//! `{"type":"rejected","reason":R,"detail":D,"queue_depth":N,"retry_after_ms":N}`
//! · `{"type":"job","job":N,"state":S,...}` · `{"type":"window",...}` ·
//! `{"type":"stats",...}` · `{"type":"metrics",...}` · `{"type":"trace",...}`
//! · `{"type":"error","detail":D}` — see README for
//! the full schema. Rejection reasons are closed vocabulary:
//! [`RejectReason`]. A submit is only `accepted` *after* the job has been
//! durably recorded in the write-ahead ledger. Shed replies carry the
//! queue depth at rejection and a back-off hint (`retry_after_ms`, only on
//! `capacity`/`draining`) so storm clients can pace their retries.

use serde::{Deserialize, Number, Serialize, Value};

/// One parsed request line. Flat by design: the vendored serde derives
/// handle absent fields by deserializing `Option` from `Null`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    pub op: String,
    /// Catalog workflow name (`submit`).
    pub workflow: Option<String>,
    /// Tenant for fair-share scheduling; defaults to `"anon"`.
    pub tenant: Option<String>,
    /// `tiny` (default) or `paper`.
    pub scale: Option<String>,
    /// Cluster nodes to simulate on (default 2).
    pub nodes: Option<u64>,
    /// Fault-plan seed (default 0 = unseeded base plan).
    pub seed: Option<u64>,
    /// Sim-time budget in ms. `0` (or any value the job has already
    /// exceeded on admission) is rejected with reason `deadline`; a run
    /// reaching it mid-flight is preempted at a checkpoint, not killed.
    pub deadline_ms: Option<u64>,
    /// Arm the deterministic coordinator-kill switch at this dispatch
    /// index (the `datalife chaos --serve` harness; with
    /// `--abort-on-chaos` the daemon dies as if `kill -9`ed).
    pub chaos_at: Option<u64>,
    /// Make the worker thread panic instead of running the job — exercises
    /// panic isolation. Typed `failed` state, daemon keeps serving.
    pub panic: Option<bool>,
    /// Job id for `status` / `cancel` / `stream`.
    pub job: Option<u64>,
}

impl Request {
    pub fn new(op: &str) -> Request {
        Request {
            op: op.into(),
            workflow: None,
            tenant: None,
            scale: None,
            nodes: None,
            seed: None,
            deadline_ms: None,
            chaos_at: None,
            panic: None,
            job: None,
        }
    }

    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        serde_json::from_str(line).map_err(|e| format!("bad request: {e}"))
    }

    /// The request as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("request serializes")
    }
}

/// Why a submit was refused. Closed vocabulary so clients can match on it;
/// rendered in the `reason` field of a `rejected` response. Every refused
/// submit gets one of these — the daemon never sheds silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Admission queue is at capacity (load shedding).
    Capacity,
    /// Deadline is zero or already exhausted at admission.
    Deadline,
    /// Unknown workflow/scale or malformed field.
    BadRequest,
    /// The daemon is draining and admits nothing new.
    Draining,
}

impl RejectReason {
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::Capacity => "capacity",
            RejectReason::Deadline => "deadline",
            RejectReason::BadRequest => "bad_request",
            RejectReason::Draining => "draining",
        }
    }
}

/// Builders for the response lines. Responses are hand-assembled
/// [`Value`] objects (not derived) so the `type` discriminator and field
/// order are stable wire schema, independent of struct layout.
pub mod resp {
    use super::*;

    fn obj(fields: Vec<(&str, Value)>) -> String {
        let v = Value::Object(fields.into_iter().map(|(k, x)| (k.to_owned(), x)).collect());
        serde_json::to_string(&v).expect("response serializes")
    }

    fn s(x: &str) -> Value {
        Value::String(x.to_owned())
    }

    fn n(x: u64) -> Value {
        Value::Number(Number::U64(x))
    }

    pub fn accepted(job: u64) -> String {
        obj(vec![("type", s("accepted")), ("job", n(job))])
    }

    /// A shed/refused submit. `queue_depth` is the admission queue depth
    /// at rejection; `retry_after_ms` (present only when the daemon can
    /// usefully hint — capacity and draining sheds) tells a well-behaved
    /// client how long to back off before resubmitting.
    pub fn rejected(
        reason: RejectReason,
        detail: &str,
        queue_depth: u64,
        retry_after_ms: Option<u64>,
    ) -> String {
        let mut fields = vec![
            ("type", s("rejected")),
            ("reason", s(reason.label())),
            ("detail", s(detail)),
            ("queue_depth", n(queue_depth)),
        ];
        if let Some(ms) = retry_after_ms {
            fields.push(("retry_after_ms", n(ms)));
        }
        obj(fields)
    }

    pub fn error(detail: &str) -> String {
        obj(vec![("type", s("error")), ("detail", s(detail))])
    }

    pub fn pong() -> String {
        obj(vec![("type", s("pong"))])
    }

    pub fn ok(what: &str) -> String {
        obj(vec![("type", s("ok")), ("what", s(what))])
    }

    /// `status` response / `stream` terminal line.
    pub fn job(job: u64, state: &str, detail: &str, tenant: &str) -> String {
        obj(vec![
            ("type", s("job")),
            ("job", n(job)),
            ("state", s(state)),
            ("detail", s(detail)),
            ("tenant", s(tenant)),
        ])
    }

    /// One streamed window: the serialized [`dfl_workflows::WindowSummary`]
    /// wrapped with the discriminator and job id.
    pub fn window(job: u64, summary: &impl Serialize) -> String {
        obj(vec![("type", s("window")), ("job", n(job)), ("summary", summary.to_value())])
    }

    pub fn stats(metrics: &impl Serialize) -> String {
        obj(vec![("type", s("stats")), ("metrics", metrics.to_value())])
    }

    /// The wall-clock `metrics` snapshot; the daemon assembles the fields
    /// (uptime, queue, tenants, latency quantiles, counters, diagnoses).
    pub fn metrics(fields: Vec<(&str, Value)>) -> String {
        let mut all = vec![("type", s("metrics"))];
        all.extend(fields);
        obj(all)
    }

    /// The wall-clock daemon timeline, in both export formats (mirrors the
    /// per-job result file's `chrome_trace`/`jsonl` field names).
    pub fn trace(chrome: &str, events: &str) -> String {
        obj(vec![
            ("type", s("trace")),
            ("chrome_trace", s(chrome)),
            ("jsonl", s(events)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_and_tolerates_missing_fields() {
        let mut r = Request::new("submit");
        r.workflow = Some("smoke".into());
        r.deadline_ms = Some(250);
        let line = r.to_line();
        assert_eq!(Request::parse(&line).unwrap(), r);

        // Minimal hand-written client line: absent optionals default.
        let r = Request::parse(r#"{"op":"ping"}"#).unwrap();
        assert_eq!(r.op, "ping");
        assert_eq!(r.workflow, None);
        assert_eq!(r.job, None);
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"workflow":"smoke"}"#).is_err(), "op is mandatory");
    }

    #[test]
    fn responses_carry_type_discriminators() {
        let v: Value = serde_json::from_str(&resp::accepted(7)).unwrap();
        assert_eq!(v["type"].as_str(), Some("accepted"));
        assert_eq!(v["job"].as_u64(), Some(7));
        let v: Value = serde_json::from_str(&resp::rejected(
            RejectReason::Capacity,
            "queue full",
            64,
            Some(250),
        ))
        .unwrap();
        assert_eq!(v["reason"].as_str(), Some("capacity"));
    }

    #[test]
    fn shed_reply_roundtrips_queue_depth_and_retry_hint() {
        let line = resp::rejected(RejectReason::Capacity, "queue full", 64, Some(250));
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["type"].as_str(), Some("rejected"));
        assert_eq!(v["reason"].as_str(), Some("capacity"));
        assert_eq!(v["queue_depth"].as_u64(), Some(64), "depth rides the shed reply");
        assert_eq!(v["retry_after_ms"].as_u64(), Some(250), "back-off hint present");

        // Reasons that carry no useful back-off omit the hint rather than
        // sending a bogus zero.
        let line = resp::rejected(RejectReason::BadRequest, "unknown workflow", 3, None);
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["queue_depth"].as_u64(), Some(3));
        assert!(v.get("retry_after_ms").is_none(), "no hint field at all");
    }
}
