//! Transport: JSON Lines over TCP (loopback) and a Unix domain socket.
//!
//! Pure `std::net` / `std::os::unix::net` — no async runtime, one thread
//! per connection (connections are few and long-lived; jobs, not sockets,
//! are the scarce resource). Both listeners serve the same [`Daemon`];
//! the bound endpoints are published in `<state_dir>/endpoint.json` so
//! clients and the chaos harness can find a daemon that bound port 0.
//!
//! A connection is a session: the client writes request lines, the server
//! answers each with one (or, for `stream`, many) response lines, in
//! order. The `shutdown` op drains the daemon, acknowledges, and releases
//! [`NetServer::wait`]; accept threads die with the process.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::daemon::Daemon;

/// Where a running daemon is listening; serialized to
/// `<state_dir>/endpoint.json`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Endpoints {
    /// TCP address, e.g. `127.0.0.1:43651`.
    pub tcp: String,
    /// Unix socket path.
    pub sock: String,
    /// HTTP address of the Prometheus scrape listener (`GET /metrics`).
    /// `Option` so endpoint files from older daemons still parse.
    pub metrics: Option<String>,
}

impl Endpoints {
    /// Reads the endpoint file a daemon published under `state_dir`.
    pub fn load(state_dir: &Path) -> Result<Endpoints, String> {
        let path = state_dir.join("endpoint.json");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))
    }
}

/// The listening front end over a [`Daemon`].
pub struct NetServer {
    pub endpoints: Endpoints,
    shutdown_rx: Receiver<()>,
}

impl NetServer {
    /// Binds TCP (loopback, ephemeral port), the Unix socket
    /// `<state_dir>/serve.sock`, and an ephemeral scrape listener;
    /// publishes `endpoint.json`, and starts accepting.
    pub fn start(daemon: Arc<Daemon>, state_dir: &Path) -> Result<NetServer, String> {
        NetServer::start_with_metrics(daemon, state_dir, "127.0.0.1:0")
    }

    /// [`NetServer::start`] with an explicit scrape-listener address (the
    /// `serve --metrics-addr` flag — a fixed port for a real Prometheus
    /// scrape config).
    pub fn start_with_metrics(
        daemon: Arc<Daemon>,
        state_dir: &Path,
        metrics_addr: &str,
    ) -> Result<NetServer, String> {
        let tcp = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind tcp: {e}"))?;
        let tcp_addr: SocketAddr = tcp.local_addr().map_err(|e| e.to_string())?;
        let sock_path = state_dir.join("serve.sock");
        let _ = std::fs::remove_file(&sock_path); // stale socket from a kill -9
        let unix = UnixListener::bind(&sock_path)
            .map_err(|e| format!("bind {}: {e}", sock_path.display()))?;
        let scrape = TcpListener::bind(metrics_addr)
            .map_err(|e| format!("bind metrics {metrics_addr}: {e}"))?;
        let scrape_addr: SocketAddr = scrape.local_addr().map_err(|e| e.to_string())?;

        let endpoints = Endpoints {
            tcp: tcp_addr.to_string(),
            sock: sock_path.display().to_string(),
            metrics: Some(scrape_addr.to_string()),
        };
        write_endpoint_file(state_dir, &endpoints)?;

        let (shutdown_tx, shutdown_rx) = sync_channel(1);
        spawn_accept_loop("dfl-serve-tcp", daemon.clone(), shutdown_tx.clone(), move || {
            tcp.accept().ok().map(|(s, _)| Conn::Tcp(s))
        });
        spawn_accept_loop("dfl-serve-unix", daemon.clone(), shutdown_tx, move || {
            unix.accept().ok().map(|(s, _)| Conn::Unix(s))
        });
        spawn_metrics_loop(daemon, scrape);
        Ok(NetServer { endpoints, shutdown_rx })
    }

    /// Blocks until a client sends the `shutdown` op.
    pub fn wait(&self) {
        let _ = self.shutdown_rx.recv();
    }
}

fn write_endpoint_file(state_dir: &Path, ep: &Endpoints) -> Result<(), String> {
    let path = state_dir.join("endpoint.json");
    let tmp = path.with_extension("json.tmp");
    let json = serde_json::to_string(ep).map_err(|e| e.to_string())?;
    std::fs::write(&tmp, json).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &path).map_err(|e| format!("rename {}: {e}", path.display()))?;
    Ok(())
}

/// A connection from either listener, unified behind one read/write pair.
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn split(self) -> std::io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
        match self {
            Conn::Tcp(s) => {
                let w = s.try_clone()?;
                Ok((Box::new(BufReader::new(s)), Box::new(w)))
            }
            Conn::Unix(s) => {
                let w = s.try_clone()?;
                Ok((Box::new(BufReader::new(s)), Box::new(w)))
            }
        }
    }
}

fn spawn_accept_loop(
    name: &str,
    daemon: Arc<Daemon>,
    shutdown_tx: SyncSender<()>,
    mut accept: impl FnMut() -> Option<Conn> + Send + 'static,
) {
    std::thread::Builder::new()
        .name(name.to_owned())
        .spawn(move || {
            while let Some(conn) = accept() {
                let daemon = daemon.clone();
                let shutdown_tx = shutdown_tx.clone();
                let _ = std::thread::Builder::new()
                    .name("dfl-serve-conn".to_owned())
                    .spawn(move || serve_conn(conn, &daemon, &shutdown_tx));
            }
        })
        .expect("spawn accept loop");
}

/// The Prometheus scrape front end: one thread accepting, one short-lived
/// thread per HTTP exchange.
fn spawn_metrics_loop(daemon: Arc<Daemon>, listener: TcpListener) {
    std::thread::Builder::new()
        .name("dfl-serve-metrics".to_owned())
        .spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                let daemon = daemon.clone();
                let _ = std::thread::Builder::new()
                    .name("dfl-serve-scrape".to_owned())
                    .spawn(move || serve_scrape(stream, &daemon));
            }
        })
        .expect("spawn metrics listener");
}

/// One HTTP exchange, hand-rolled over `std::net` (no HTTP dependency):
/// `GET /metrics` gets the Prometheus text page, anything else a 404. One
/// response per connection (`Connection: close`) — scrapers reconnect
/// every poll, which is the Prometheus norm.
fn serve_scrape(stream: TcpStream, daemon: &Daemon) {
    let Ok(read) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read);
    let mut writer = stream;
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the request headers; nothing in them changes the answer.
    loop {
        let mut h = String::new();
        match reader.read_line(&mut h) {
            Ok(0) => break,
            Ok(_) if h == "\r\n" || h == "\n" => break,
            Ok(_) => {}
            Err(_) => return,
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, ctype, body) = if method == "GET" && path == "/metrics" {
        ("200 OK", "text/plain; version=0.0.4; charset=utf-8", daemon.prometheus())
    } else {
        ("404 Not Found", "text/plain; charset=utf-8", "only GET /metrics is served\n".to_owned())
    };
    let _ = write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = writer.flush();
}

/// One client session: request line in, response line(s) out.
fn serve_conn(conn: Conn, daemon: &Daemon, shutdown_tx: &SyncSender<()>) {
    daemon.conn_opened();
    serve_session(conn, daemon, shutdown_tx);
    daemon.conn_closed();
}

fn serve_session(conn: Conn, daemon: &Daemon, shutdown_tx: &SyncSender<()>) {
    let Ok((reader, mut writer)) = conn.split() else { return };
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let mut dead_client = false;
        let shutdown = daemon.handle_line(&line, &mut |resp_line| {
            if !dead_client {
                dead_client = writeln!(writer, "{resp_line}").is_err() || writer.flush().is_err();
            }
        });
        if shutdown {
            // Acknowledged already (the `ok` line above); release `wait`.
            let _ = shutdown_tx.try_send(());
            return;
        }
        if dead_client {
            return;
        }
    }
}

/// Minimal blocking client for the daemon: used by the CLI chaos driver,
/// the storm bench, and the tests. One connection, synchronous
/// request/response.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon's TCP endpoint (`host:port`).
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let writer = stream.try_clone().map_err(|e| e.to_string())?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Connects via the endpoint file a daemon published under `state_dir`.
    pub fn connect_dir(state_dir: &Path) -> Result<Client, String> {
        Client::connect(&Endpoints::load(state_dir)?.tcp)
    }

    /// Sends one request line and reads one response line.
    pub fn roundtrip(&mut self, line: &str) -> Result<String, String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))?;
        self.read_line()
    }

    /// Reads response lines until the job's terminal `{"type":"job",...}`
    /// line arrives (the `stream` op's contract), returning all lines.
    pub fn stream_to_end(&mut self, request_line: &str) -> Result<Vec<String>, String> {
        writeln!(self.writer, "{request_line}").map_err(|e| format!("send: {e}"))?;
        let mut lines = Vec::new();
        loop {
            let line = self.read_line()?;
            let terminal = line.contains("\"type\":\"job\"") || line.contains("\"type\":\"error\"");
            lines.push(line);
            if terminal {
                return Ok(lines);
            }
        }
    }

    fn read_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".into());
        }
        Ok(line.trim_end().to_owned())
    }
}

/// The sock path a daemon binds under `state_dir` (for tests that probe
/// the Unix transport).
pub fn sock_path(state_dir: &Path) -> PathBuf {
    state_dir.join("serve.sock")
}
