//! Benchmarks the measurement layer (§3): per-operation monitoring cost and
//! the effect of spatial sampling rate — an ablation of the paper's
//! constant-space design (the monitor claims "negligible" overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfl_trace::{IoTiming, Monitor, MonitorConfig, OpenMode};

fn bench_read_recording(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_read_op");
    group.throughput(Throughput::Elements(1));
    // Ablation: full tracking vs 10% and 1% spatial sampling.
    for (label, pct) in [("sample_100pct", 100u64), ("sample_10pct", 10), ("sample_1pct", 1)] {
        let cfg = MonitorConfig::default().with_sampling_percent(pct);
        let m = Monitor::new(cfg);
        let ctx = m.begin_task("bench-task", 0);
        let fd = ctx.open("big.dat", OpenMode::Read, Some(1 << 34), 0);
        let mut offset = 0u64;
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                ctx.read_at(fd, offset % (1 << 34), 1 << 16, IoTiming::new(offset, 10)).unwrap();
                offset = offset.wrapping_add(1 << 16);
            })
        });
    }
    group.finish();
}

fn bench_write_recording(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_write_op");
    group.throughput(Throughput::Elements(1));
    let m = Monitor::new(MonitorConfig::default());
    let ctx = m.begin_task("bench-task", 0);
    let fd = ctx.open("out.dat", OpenMode::Write, None, 0);
    group.bench_function("sequential_append", |b| {
        b.iter(|| ctx.write(fd, 1 << 16, IoTiming::new(0, 10)).unwrap())
    });
    group.finish();
}

fn bench_open_close(c: &mut Criterion) {
    let m = Monitor::new(MonitorConfig::default());
    let ctx = m.begin_task("bench-task", 0);
    c.bench_function("monitor_open_close_cycle", |b| {
        let mut i = 0u64;
        b.iter(|| {
            // Cycle through a small working set of files (amortized-O(1)
            // interning after warmup).
            let fd = ctx.open(&format!("f{}", i % 64), OpenMode::Read, Some(1 << 20), i);
            ctx.close(fd, i + 1).unwrap();
            i += 1;
        })
    });
}

criterion_group!(benches, bench_read_recording, bench_write_recording, bench_open_close);
criterion_main!(benches);
