//! Benchmarks the execution substrate: discrete-event throughput of the
//! fair-share flow network, cache access rates, and an end-to-end tiny
//! workflow simulation — plus an ablation of fair-share contention vs
//! uncontended flows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfl_iosim::breakdown::FlowTag;
use dfl_iosim::cache::{CacheConfig, CacheState};
use dfl_iosim::cluster::ClusterSpec;
use dfl_iosim::flow::{naive::NaiveFlowNet, FlowNet, FlowOwner};
use dfl_iosim::shard::ShardPlan;
use dfl_iosim::sim::{Action, JobSpec, SimConfig, Simulation};
use dfl_iosim::storage::{TierKind, TierRef};
use dfl_iosim::time::SimTime;
use dfl_workflows::engine::{run, RunConfig};
use dfl_workflows::genomes::{generate, GenomesConfig};
use dfl_workflows::{FaultPlan, VerifyPolicy};

fn bench_flow_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_flow_events");
    // Ablation: contended (all jobs on one shared tier) vs uncontended
    // (node-local tiers) — the contended case re-profiles more flows.
    for (label, local) in [("contended_shared", false), ("uncontended_local", true)] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut sim = Simulation::new(ClusterSpec::gpu_cluster(4), SimConfig::default());
                for i in 0..64 {
                    let node = i % 4;
                    let tier = if local {
                        TierRef::node(TierKind::Ssd, node)
                    } else {
                        TierRef::shared(TierKind::Beegfs)
                    };
                    sim.fs_mut().create_external(&format!("f{i}"), 8 << 20, tier);
                    sim.submit(
                        JobSpec::new(&format!("j-{i}"), node)
                            .action(Action::read_file(&format!("f{i}")))
                            .action(Action::compute_ms(1)),
                    );
                }
                sim.run().unwrap();
                sim.time()
            })
        });
    }
    group.finish();
}

fn bench_cache_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(1));
    for &span in &[1u64 << 20, 8 << 20] {
        let mut cache = CacheState::new(CacheConfig::tazer_table4());
        let mut off = 0u64;
        group.bench_function(BenchmarkId::new("read", format!("{}MiB", span >> 20)), |b| {
            b.iter(|| {
                let r = cache.access(0, 0, 0, off % (64 << 30), span);
                off += span;
                r
            })
        });
    }
    group.finish();
}

/// The 1k-flow stress scenario: staggered flows over 16 shared tiers ×
/// 64 NICs, drained to empty. Parameterized over the engine so the
/// incremental `FlowNet` can be compared against the naive full-recompute
/// baseline (the pre-rewrite algorithm).
macro_rules! drain_stress {
    ($net:expr, $flows:expr) => {{
        let mut net = $net;
        let tiers: Vec<_> = (0..16u64).map(|i| net.add_resource(&format!("tier{i}"), 8_000.0)).collect();
        let nics: Vec<_> = (0..64u64).map(|i| net.add_resource(&format!("nic{i}"), 1_000.0)).collect();
        for i in 0..$flows {
            let bytes = 1_000.0 + (i as f64 * 97.0) % 5_000.0;
            let path = vec![tiers[(i % 16) as usize], nics[(i % 64) as usize]];
            let owner = FlowOwner { job: i as u32, tag: FlowTag::LocalRead, background: false };
            net.start(SimTime(i * 1_000_000), &path, bytes, owner);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, k)) = net.next_completion() {
            last = t;
            net.complete(t, k);
        }
        last
    }};
}

fn bench_flow_stress(c: &mut Criterion) {
    const FLOWS: u64 = 1024;
    let mut group = c.benchmark_group("flow_stress_1k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(FLOWS));
    group.bench_function("incremental", |b| {
        b.iter(|| drain_stress!(FlowNet::new(), std::hint::black_box(FLOWS)))
    });
    group.bench_function("naive_baseline", |b| {
        b.iter(|| drain_stress!(NaiveFlowNet::new(), std::hint::black_box(FLOWS)))
    });
    // Full simulator: 1024 jobs saturating 32 nodes × 32 cores, all
    // streaming distinct files off the shared BeeGFS tier.
    group.bench_function("sim_1024_jobs_shared_tier", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(ClusterSpec::gpu_cluster(32), SimConfig::default());
            for i in 0..1024usize {
                let file = format!("in{i}");
                sim.fs_mut().create_external(&file, (1 << 20) + (i as u64) * 4096, TierRef::shared(TierKind::Beegfs));
                sim.submit(JobSpec::new(&format!("j-{i}"), (i % 32) as u32).action(Action::read_file(&file)));
            }
            sim.run().unwrap();
            sim.time()
        })
    });
    group.finish();
}

/// The sharded event core on the 1024-job shared-tier scenario: identical
/// workload, shard counts 1 vs 4. Sharding partitions the event queue and
/// flow network by node domain, so the shards=4 leg prices the win from
/// per-shard heaps + conservative windows (results stay byte-identical —
/// `tests/tests/shard_differential.rs` proves it; this group prices it).
fn bench_sim_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_sharded");
    group.sample_size(10);
    for shards in [1u32, 4] {
        group.bench_function(BenchmarkId::new("sim_1024_jobs_shared_tier", format!("shards{shards}")), |b| {
            b.iter(|| {
                let cluster = ClusterSpec::gpu_cluster(32);
                let plan = ShardPlan::partition(cluster.node_count(), shards).unwrap();
                let mut sim = Simulation::new_sharded(cluster, SimConfig::default(), plan).unwrap();
                for i in 0..1024usize {
                    let file = format!("in{i}");
                    sim.fs_mut().create_external(&file, (1 << 20) + (i as u64) * 4096, TierRef::shared(TierKind::Beegfs));
                    sim.submit(JobSpec::new(&format!("j-{i}"), (i % 32) as u32).action(Action::read_file(&file)));
                }
                sim.run().unwrap();
                sim.time()
            })
        });
    }
    group.finish();
}

fn bench_end_to_end_workflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let spec = generate(&GenomesConfig::tiny());
    group.bench_function("genomes_tiny_simulate_and_measure", |b| {
        b.iter(|| run(std::hint::black_box(&spec), &RunConfig::default_gpu(2)).unwrap().makespan_s)
    });
    group.finish();
}

/// Cost of the observability layer on the end-to-end genomes run:
/// `disabled` must track `baseline` (the ≤2% budget in DESIGN.md — a
/// disabled run pays one branch per potential emission and nothing else);
/// `enabled`/`enabled_sampled` show the full recording cost.
fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    let spec = generate(&GenomesConfig::tiny());
    // `baseline_no_obs` and `disabled` run the identical configuration
    // back to back: their delta is the measured cost of carrying the
    // (disabled) observability layer, which the ≤2% budget bounds. Keeping
    // them adjacent inside one group cancels the slow throughput drift a
    // shared CI runner imposes across a long bench suite.
    let configs: [(&str, Option<dfl_obs::ObsConfig>); 4] = [
        ("baseline_no_obs", None),
        ("disabled", None),
        ("enabled", Some(dfl_obs::ObsConfig::default())),
        ("enabled_sampled_10ms", Some(dfl_obs::ObsConfig::sampled(10_000_000))),
    ];
    for (label, obs) in configs {
        let mut cfg = RunConfig::default_gpu(2);
        cfg.obs = obs;
        group.bench_function(label, |b| {
            b.iter(|| run(std::hint::black_box(&spec), &cfg).unwrap().makespan_s)
        });
    }
    // Watchdogs armed but silent: must cost no more than plain recording.
    {
        let mut cfg = RunConfig::default_gpu(2);
        cfg.obs = Some(
            dfl_obs::ObsConfig::sampled(10_000_000)
                .with_watchdogs(dfl_obs::WatchdogConfig::default()),
        );
        group.bench_function("enabled_watchdogs_10ms", |b| {
            b.iter(|| run(std::hint::black_box(&spec), &cfg).unwrap().makespan_s)
        });
    }
    // Full live-monitoring pipeline: subscriber + windowed blame + the
    // incremental critical-path refresh at every 100 ms window boundary.
    {
        let cfg = RunConfig::default_gpu(2);
        let opts = dfl_workflows::watch::WatchOptions::default();
        group.bench_function("watched_100ms_windows", |b| {
            b.iter(|| {
                dfl_workflows::watch::run_watched(
                    std::hint::black_box(&spec),
                    &cfg,
                    &opts,
                    |w| {
                        std::hint::black_box(w.events);
                    },
                )
                .unwrap()
                .makespan_s
            })
        });
    }
    group.finish();
}

/// Cost of the integrity machinery on the end-to-end genomes run:
/// `verify_off` must track `baseline` (with `VerifyPolicy::Off` and no
/// corruption in the plan the integrity branch is dead and the run stays
/// byte-identical); `verify_on_read`/`verify_sample_4` price the checksum
/// modeling, and `corrupt_recover` prices a full detect → quarantine →
/// cone-recovery cycle.
fn bench_fault_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_recovery");
    group.sample_size(10);
    let spec = generate(&GenomesConfig::tiny());
    let policies: [(&str, VerifyPolicy); 4] = [
        ("baseline", VerifyPolicy::Off),
        ("verify_off", VerifyPolicy::Off),
        ("verify_on_read", VerifyPolicy::OnRead),
        ("verify_sample_4", VerifyPolicy::Sample(4)),
    ];
    for (label, verify) in policies {
        let mut cfg = RunConfig::default_gpu(2);
        cfg.verify = verify;
        group.bench_function(label, |b| {
            b.iter(|| run(std::hint::black_box(&spec), &cfg).unwrap().makespan_s)
        });
    }
    // Detect-and-recover: random write flips under sampled verification
    // exercise taint propagation, cone quarantine, and lineage re-execution.
    {
        let mut cfg = RunConfig::default_gpu(2);
        cfg.verify = VerifyPolicy::Sample(4);
        cfg.faults = FaultPlan::seeded(42).corrupt_writes(0.02);
        cfg.retry.max_attempts = 30;
        group.bench_function("corrupt_recover", |b| {
            b.iter(|| run(std::hint::black_box(&spec), &cfg).unwrap().makespan_s)
        });
    }
    group.finish();
}

// `sim_sharded` runs first: its shards=1 vs shards=4 legs are compared
// against a fixed budget, and the long suite's slow drift (allocator
// state, frequency throttling) would otherwise tax the later group.
criterion_group!(
    benches,
    bench_sim_sharded,
    bench_flow_events,
    bench_flow_stress,
    bench_cache_access,
    bench_end_to_end_workflow,
    bench_obs_overhead,
    bench_fault_recovery
);
criterion_main!(benches);
