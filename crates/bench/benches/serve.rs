//! `serve_storm` — admission-control benchmarks for the analysis daemon.
//!
//! A storm of concurrent TCP clients submits jobs to a workers=0 daemon
//! (admission and durable ledgering only — the storm measures the control
//! plane, not workflow execution). Each client times its own
//! submit-to-reply round trip; the reported ns/iter is the p99 of those
//! latencies, via `Bencher::iter_custom`.
//!
//! Both benches also assert the admission contract on every reply:
//! at capacity the daemon sheds with typed `rejected{reason:"capacity"}`
//! lines (never silently), and every `accepted` job is durable — the
//! ledger reopened from disk after shutdown holds exactly the accepted
//! set, so a `kill -9` after any accept loses nothing.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use dfl_serve::{Client, Daemon, Ledger, NetServer, Request, ServeConfig};

const CLIENTS: usize = 1000;

fn fresh_daemon(tag: &str, queue_cap: usize) -> (Arc<Daemon>, NetServer, PathBuf) {
    let dir =
        std::env::temp_dir().join(format!("dfl-bench-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut cfg = ServeConfig::new(&dir);
    cfg.workers = 0; // admission only: the storm measures the control plane
    cfg.queue_cap = queue_cap;
    let daemon = Arc::new(Daemon::start(cfg).unwrap());
    let server = NetServer::start(daemon.clone(), &dir).unwrap();
    (daemon, server, dir)
}

/// One storm: `CLIENTS` TCP connections, all submitting one job at the
/// same instant, each timing its own submit→reply round trip. Returns
/// `(latency, reply)` per client.
///
/// Connections are established sequentially first — a simultaneous SYN
/// flood would overflow the listener's accept backlog and turn kernel
/// connection resets into bogus measurements. The burst the bench
/// measures is the submit burst over 1000 established sessions, which is
/// what hits the daemon's admission path.
fn storm(addr: &str) -> Vec<(Duration, String)> {
    let clients: Vec<Client> = (0..CLIENTS)
        .map(|_| {
            let mut client = None;
            for _ in 0..200 {
                match Client::connect(addr) {
                    Ok(c) => {
                        client = Some(c);
                        break;
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
            client.expect("connect to storm daemon")
        })
        .collect();

    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
    let handles: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(i, mut client)| {
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut req = Request::new("submit");
                req.workflow = Some("smoke".into());
                req.tenant = Some(format!("tenant-{}", i % 8));
                let line = req.to_line();
                barrier.wait();
                let t0 = Instant::now();
                let reply = client.roundtrip(&line).expect("submit reply");
                (t0.elapsed(), reply)
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Splits storm replies into (accepted, capacity-shed) counts, panicking
/// on anything outside the typed vocabulary.
fn tally(results: &[(Duration, String)]) -> (usize, usize) {
    let mut accepted = 0;
    let mut shed = 0;
    for (_, reply) in results {
        if reply.contains("\"type\":\"accepted\"") {
            accepted += 1;
        } else if reply.contains("\"type\":\"rejected\"") && reply.contains("\"capacity\"") {
            shed += 1;
        } else {
            panic!("untyped storm reply: {reply}");
        }
    }
    (accepted, shed)
}

fn p99(results: &[(Duration, String)]) -> Duration {
    let mut lat: Vec<Duration> = results.iter().map(|(d, _)| *d).collect();
    lat.sort();
    lat[(lat.len() - 1) * 99 / 100]
}

/// The durable half of "zero accepted-job losses": after daemon shutdown
/// the on-disk ledger must hold exactly the accepted jobs.
fn assert_ledger_holds(dir: &std::path::Path, accepted: usize) {
    let ledger = Ledger::open(dir).unwrap();
    assert_eq!(ledger.jobs().len(), accepted, "ledger lost accepted jobs");
}

fn one_storm(tag: &str, queue_cap: usize, expect_accept: usize) -> Duration {
    let (daemon, server, dir) = fresh_daemon(tag, queue_cap);
    let results = storm(&server.endpoints.tcp);
    let (accepted, shed) = tally(&results);
    assert_eq!(accepted, expect_accept, "accepted != capacity");
    assert_eq!(accepted + shed, CLIENTS, "a submit went unanswered");
    let p = p99(&results);
    daemon.shutdown();
    assert_ledger_holds(&dir, accepted);
    let _ = std::fs::remove_dir_all(&dir);
    p
}

/// Polls `GET /metrics` on the scrape listener in a tight loop until told
/// to stop — a deliberately hostile Prometheus scraper (real ones poll
/// every few seconds) hammering the daemon lock while the storm runs.
fn spawn_scraper(addr: String, stop: Arc<std::sync::atomic::AtomicBool>) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        use std::io::{Read, Write};
        let mut scrapes = 0u64;
        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
            let Ok(mut s) = std::net::TcpStream::connect(&addr) else { continue };
            let _ = write!(s, "GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n");
            let mut page = String::new();
            if s.read_to_string(&mut page).is_ok() && page.contains("serve_accepted") {
                scrapes += 1;
            }
        }
        scrapes
    })
}

/// The storm with a concurrent scraper: measures what metrics exposition
/// costs the admission hot path. The CI perf gate holds this bench's p99
/// within 5% of the unscraped `serve_storm` baseline.
fn one_storm_scraped(tag: &str) -> Duration {
    let (daemon, server, dir) = fresh_daemon(tag, CLIENTS);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scrape_addr = server.endpoints.metrics.clone().expect("scrape endpoint published");
    let scraper = spawn_scraper(scrape_addr, stop.clone());
    let results = storm(&server.endpoints.tcp);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let scrapes = scraper.join().unwrap();
    assert!(scrapes > 0, "the scraper never got a page out");
    let (accepted, shed) = tally(&results);
    assert_eq!(accepted, CLIENTS, "accepted != capacity");
    assert_eq!(shed, 0);
    let p = p99(&results);
    daemon.shutdown();
    assert_ledger_holds(&dir, accepted);
    let _ = std::fs::remove_dir_all(&dir);
    p
}

fn bench_serve_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_storm");
    group.sample_size(10);

    // 1000 clients, queue sized to take them all: p99 submit-to-accept.
    group.bench_function("p99_submit_to_accept_1000_clients", |b| {
        b.iter_custom(|iters| {
            (0..iters).map(|_| one_storm("p99", CLIENTS, CLIENTS)).sum()
        })
    });

    // Same storm at 2x overload: half accepted, half typed capacity
    // shedding; p99 over all replies (accepts and sheds).
    group.bench_function("p99_submit_2x_overload", |b| {
        b.iter_custom(|iters| {
            (0..iters).map(|_| one_storm("overload", CLIENTS / 2, CLIENTS / 2)).sum()
        })
    });

    group.finish();
}

fn bench_serve_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_metrics");
    group.sample_size(10);

    // The full-acceptance storm under continuous Prometheus scraping: the
    // observability layer's overhead on the submit-to-accept p99.
    group.bench_function("p99_submit_under_scrape_1000_clients", |b| {
        b.iter_custom(|iters| (0..iters).map(|_| one_storm_scraped("scraped")).sum())
    });

    group.finish();
}

criterion_group!(serve, bench_serve_storm, bench_serve_metrics);
criterion_main!(serve);
