//! Benchmarks DFL graph construction from measurement records (§4.1) —
//! the step the paper notes is parallelizable and linear in records.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfl_core::DflGraph;
use dfl_trace::{IoTiming, MeasurementSet, Monitor, MonitorConfig, OpenMode};

/// Builds a measurement set with `tasks` tasks each touching `files_per`
/// files (half produced, half consumed).
fn synth_measurements(tasks: usize, files_per: usize) -> MeasurementSet {
    let m = Monitor::new(MonitorConfig::default());
    for t in 0..tasks {
        let ctx = m.begin_task(&format!("task-{t}"), (t as u64) * 1000);
        for f in 0..files_per {
            // Chain files so tasks share data (realistic edge structure).
            let path = format!("file-{}", (t * files_per / 2 + f) % (tasks * files_per / 2 + 1));
            if f % 2 == 0 {
                let fd = ctx.open(&path, OpenMode::Write, None, t as u64 * 1000);
                ctx.write(fd, 1 << 20, IoTiming::new(t as u64 * 1000, 100)).unwrap();
                ctx.close(fd, t as u64 * 1000 + 500).unwrap();
            } else {
                let fd = ctx.open(&path, OpenMode::Read, Some(1 << 20), t as u64 * 1000);
                ctx.read(fd, 1 << 20, IoTiming::new(t as u64 * 1000, 100)).unwrap();
                ctx.close(fd, t as u64 * 1000 + 500).unwrap();
            }
        }
        ctx.finish(t as u64 * 1000 + 900);
    }
    m.snapshot()
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfl_graph_from_measurements");
    for &tasks in &[100usize, 500, 2000] {
        let set = synth_measurements(tasks, 8);
        group.throughput(Throughput::Elements(set.records.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &set, |b, set| {
            b.iter(|| DflGraph::from_measurements(std::hint::black_box(set)));
        });
    }
    group.finish();
}

fn bench_template(c: &mut Criterion) {
    let set = synth_measurements(1000, 8);
    let g = DflGraph::from_measurements(&set);
    c.bench_function("dfl_template_aggregation_1000_tasks", |b| {
        b.iter(|| std::hint::black_box(&g).to_template());
    });
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_snapshot");
    for &tasks in &[100usize, 1000] {
        let m = Monitor::new(MonitorConfig::default());
        for t in 0..tasks {
            let ctx = m.begin_task(&format!("t-{t}"), 0);
            let fd = ctx.open("shared.dat", OpenMode::Read, Some(1 << 30), 0);
            ctx.read(fd, 1 << 24, IoTiming::default()).unwrap();
            ctx.close(fd, 100).unwrap();
            ctx.finish(100);
        }
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &m, |b, m| {
            b.iter(|| std::hint::black_box(m).snapshot());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction, bench_template, bench_snapshot);
criterion_main!(benches);
