//! Benchmarks the analysis pipeline (§5): GCPA under several cost models,
//! DFL caterpillar construction (plain vs DFL rule — an ablation of the
//! design choice), and full opportunity analysis. All are expected to scale
//! linearly in V+E.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfl_core::analysis::caterpillar::{caterpillar, CaterpillarRule};
use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::critical_path::critical_path;
use dfl_core::analysis::patterns::{analyze, AnalysisConfig};
use dfl_core::props::{DataProps, EdgeProps, FlowDir, TaskProps};
use dfl_core::DflGraph;

/// A layered workflow-shaped DAG: `width` parallel pipelines of `depth`
/// producer→data→consumer stages, with periodic aggregators creating
/// fan-in/fan-out.
fn synth_graph(width: usize, depth: usize) -> DflGraph {
    let mut g = DflGraph::new();
    let mut frontier: Vec<_> = (0..width)
        .map(|w| g.add_task(&format!("src-{w}"), "src", TaskProps { lifetime_ns: 1_000_000, ..Default::default() }))
        .collect();
    for d in 0..depth {
        let mut next = Vec::with_capacity(width);
        for (w, &t) in frontier.iter().enumerate() {
            let file = g.add_data(&format!("f-{d}-{w}"), "f", DataProps { size: 1 << 20, ..Default::default() });
            g.add_edge(t, file, FlowDir::Producer, EdgeProps {
                volume: (1 + w as u64) << 16,
                footprint: ((1 + w as u64) << 16) as f64,
                ops: 4,
                instances: 1,
                ..Default::default()
            });
            let consumer = g.add_task(&format!("t-{}-{w}", d + 1), "t", TaskProps { lifetime_ns: 1_000_000, ..Default::default() });
            g.add_edge(file, consumer, FlowDir::Consumer, EdgeProps {
                volume: (1 + w as u64) << 16,
                footprint: ((1 + w as u64) << 16) as f64,
                ops: 4,
                subset_fraction: 0.8,
                instances: 1,
                ..Default::default()
            });
            // Every 4th column also feeds an aggregator of the layer.
            if w % 4 == 0 && w + 1 < width {
                g.add_edge(file, frontier[w + 1], FlowDir::Consumer, EdgeProps {
                    volume: 1 << 14,
                    ops: 1,
                    instances: 1,
                    ..Default::default()
                });
            }
            next.push(consumer);
        }
        frontier = next;
    }
    g
}

fn bench_gcpa(c: &mut Criterion) {
    let mut group = c.benchmark_group("gcpa_critical_path");
    for &width in &[10usize, 50, 200] {
        let g = synth_graph(width, 20);
        group.throughput(Throughput::Elements((g.vertex_count() + g.edge_count()) as u64));
        for cost in [CostModel::Volume, CostModel::Time, CostModel::BranchJoin { branch_threshold: 2 }] {
            group.bench_with_input(
                BenchmarkId::new(cost.label().replace(['+', ' '], "_"), width),
                &g,
                |b, g| b.iter(|| critical_path(std::hint::black_box(g), &cost)),
            );
        }
    }
    group.finish();
}

fn bench_caterpillar(c: &mut Criterion) {
    let mut group = c.benchmark_group("caterpillar");
    let g = synth_graph(100, 20);
    let cp = critical_path(&g, &CostModel::Volume);
    // Ablation: plain caterpillar vs the DFL distance-2 rule.
    group.bench_function("plain_rule", |b| {
        b.iter(|| caterpillar(std::hint::black_box(&g), &cp, CaterpillarRule::Plain))
    });
    group.bench_function("dfl_rule", |b| {
        b.iter(|| caterpillar(std::hint::black_box(&g), &cp, CaterpillarRule::Dfl))
    });
    group.finish();
}

fn bench_opportunity_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("opportunity_analysis");
    for &width in &[10usize, 50, 200] {
        let g = synth_graph(width, 20);
        let cfg = AnalysisConfig { volume_threshold: 1 << 16, ..Default::default() };
        group.throughput(Throughput::Elements((g.vertex_count() + g.edge_count()) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(width), &g, |b, g| {
            b.iter(|| analyze(std::hint::black_box(g), &cfg))
        });
    }
    group.finish();
}

/// 100k-vertex scale: one full batch sweep over a 102.5k-vertex layered
/// DAG, and the incremental engine's single-edit requery on the same
/// topology (reweight one source task under the Time model, so the edit
/// genuinely propagates down its cone rather than no-opping).
fn bench_gcpa_100k(c: &mut Criterion) {
    use dfl_core::analysis::IncrementalGcpa;
    use dfl_core::graph::VertexProps;
    use dfl_core::{EdgeId, VertexId};

    let g = synth_graph(2_500, 20);
    let mut group = c.benchmark_group("gcpa_100k");
    group.sample_size(10);
    group.throughput(Throughput::Elements((g.vertex_count() + g.edge_count()) as u64));
    group.bench_function(BenchmarkId::new("batch", g.vertex_count()), |b| {
        b.iter(|| critical_path(std::hint::black_box(&g), &CostModel::Volume))
    });

    let mut eng = IncrementalGcpa::new(CostModel::Time);
    for i in 0..g.vertex_count() {
        eng.add_vertex(g.vertex(VertexId(i as u32)).clone(), i as u64);
    }
    for i in 0..g.edge_count() {
        let e = g.edge(EdgeId(i as u32));
        eng.add_edge(e.src, e.dst, e.dir, e.props);
    }
    let _ = eng.critical_path();
    let mut flip = false;
    group.bench_function(BenchmarkId::new("incremental_edit", g.vertex_count()), |b| {
        b.iter(|| {
            flip = !flip;
            let life = if flip { 2_000_000 } else { 1_000_000 };
            eng.set_vertex_props(
                VertexId(0),
                VertexProps::Task(TaskProps { lifetime_ns: life, ..Default::default() }),
            );
            eng.critical_path().total_cost
        })
    });
    group.finish();
}

/// The streaming engine: folding a real run's measurements task by task
/// with a critical-path refresh after every fold (the watch dashboard's
/// worst case) vs one batch pass over the same set.
fn bench_live_incremental(c: &mut Criterion) {
    use dfl_core::analysis::LiveDfl;
    use dfl_workflows::engine::{run, RunConfig};
    use dfl_workflows::genomes::{generate, GenomesConfig};

    let set = run(&generate(&GenomesConfig::tiny()), &RunConfig::default_gpu(2))
        .expect("clean run completes")
        .measurements;
    let mut group = c.benchmark_group("live_incremental");
    group.throughput(Throughput::Elements(set.tasks.len() as u64));
    group.bench_function("fold_with_cp_refresh_per_task", |b| {
        b.iter(|| {
            let mut live = LiveDfl::new(CostModel::Volume);
            for f in &set.files {
                live.fold_file(f);
            }
            let mut total = 0.0;
            for t in &set.tasks {
                let recs: Vec<_> =
                    set.records.iter().filter(|r| r.task == t.task).cloned().collect();
                live.fold_task(t, &recs);
                total += live.critical_path().total_cost;
            }
            total
        })
    });
    group.bench_function("batch_single_pass", |b| {
        b.iter(|| {
            let g = dfl_core::DflGraph::from_measurements(std::hint::black_box(&set));
            critical_path(&g, &CostModel::Volume).total_cost
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gcpa,
    bench_gcpa_100k,
    bench_caterpillar,
    bench_opportunity_analysis,
    bench_live_incremental
);
criterion_main!(benches);
