//! Shared helpers for the figure/table regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md's per-experiment index).
//! These helpers render the small fixed-width report tables those binaries
//! print.

/// Renders a fixed-width table: header row + rows, columns sized to fit.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    use std::fmt::Write as _;
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let mut s = String::new();
    let _ = writeln!(s, "### {title}");
    for (h, w) in header.iter().zip(&widths) {
        let _ = write!(s, "{h:<w$}  ");
    }
    let _ = writeln!(s);
    for (h, w) in header.iter().zip(&widths) {
        let _ = write!(s, "{}  ", "-".repeat((*w).max(h.len())));
    }
    let _ = writeln!(s);
    for r in rows {
        for (c, w) in r.iter().zip(&widths) {
            let _ = write!(s, "{c:<w$}  ");
        }
        let _ = writeln!(s);
    }
    s
}

/// Formats a speedup like `15.2x`.
pub fn speedup(baseline: f64, improved: f64) -> String {
    if improved <= 0.0 {
        return "∞".to_owned();
    }
    format!("{:.1}x", baseline / improved)
}

/// Formats seconds with two decimals.
pub fn secs(s: f64) -> String {
    format!("{s:.2}")
}

/// A one-line banner tying the output back to the paper artifact.
pub fn banner(what: &str) {
    println!("==============================================================");
    println!("DataLife-rs reproduction — {what}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "demo",
            &["config", "time"],
            &[
                vec!["15/bfs".into(), "100.0".into()],
                vec!["10/bfs+shm+staging".into(), "6.7".into()],
            ],
        );
        assert!(t.contains("### demo"));
        assert!(t.contains("15/bfs"));
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[1].starts_with("config"));
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(speedup(150.0, 10.0), "15.0x");
        assert_eq!(speedup(1.0, 0.0), "∞");
    }
}
