//! Regenerates **Tables 2–4**: the machine configurations, the Belle II
//! scenarios, and the TAZeR cache levels, as realized by this reproduction.
//!
//! Run with: `cargo run --release -p dfl-bench --bin tables_2_3_4`

use dfl_bench::{banner, render_table};
use dfl_iosim::cache::CacheConfig;
use dfl_iosim::ClusterSpec;
use dfl_workflows::belle2::Scenario;

fn main() {
    banner("Tables 2–4 — machines, scenarios, cache configurations");

    // Table 2.
    let mut rows = Vec::new();
    for c in [
        ClusterSpec::cpu_cluster(10),
        ClusterSpec::gpu_cluster(10),
        ClusterSpec::cpu_cluster_with_data_server(10),
    ] {
        rows.push(vec![
            c.name.clone(),
            format!("{} × {} cores, {} GB", c.node_count(), c.nodes[0].cores, c.nodes[0].mem_bytes >> 30),
            c.tiers
                .iter()
                .map(|t| {
                    format!("{} ({:.0} MiB/s)", t.kind.label(), t.read_bw / (1 << 20) as f64)
                })
                .collect::<Vec<_>>()
                .join(", "),
        ]);
    }
    println!(
        "{}",
        render_table("Table 2 — machine configurations", &["machine", "compute, memory", "storage options"], &rows)
    );

    // Table 3.
    let rows: Vec<Vec<String>> = Scenario::all()
        .into_iter()
        .map(|s| {
            vec![
                s.label().to_owned(),
                if s.fragmented() { "real" } else { "regular" }.to_owned(),
                if s.ensemble() { "4x" } else { "no" }.to_owned(),
                if s.filter() { "4x" } else { "no" }.to_owned(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table("Table 3 — Belle II scenarios", &["scenario", "pattern", "ensemble", "filter"], &rows)
    );

    // Table 4.
    let cache = CacheConfig::tazer_table4();
    let rows: Vec<Vec<String>> = cache
        .levels
        .iter()
        .map(|l| {
            vec![
                l.name.clone(),
                format!("{:?}", l.scope),
                if l.capacity >= 1 << 30 {
                    format!("{} GB", l.capacity >> 30)
                } else {
                    format!("{} MB", l.capacity >> 20)
                },
                format!("{:.0} MiB/s", l.read_bw / (1 << 20) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table("Table 4 — TAZeR cache configuration", &["cache", "scope", "size", "service bw"], &rows)
    );
}
