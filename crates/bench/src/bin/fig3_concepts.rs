//! Regenerates **Fig. 3** (and Fig. 1's concepts): a hand-built DFL graph
//! with its critical path (3a), the DFL caterpillar narrowing (3b), and the
//! aggregator / compressor-aggregator / splitter relations (3c–e), plus the
//! opportunity ranking.
//!
//! Run with: `cargo run --release -p dfl-bench --bin fig3_concepts`

use dfl_bench::banner;
use dfl_core::analysis::caterpillar::{caterpillar, CaterpillarRule};
use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::critical_path::critical_path;
use dfl_core::analysis::patterns::{analyze, report, AnalysisConfig};
use dfl_core::props::{DataProps, EdgeProps, FlowDir, TaskProps};
use dfl_core::viz::{render_ascii, to_dot};
use dfl_core::DflGraph;

/// Builds the Fig. 3a-style graph: a spine t1→d1→t2→d2→t3 with an off-path
/// producer t7 (fed by d9), an aggregator with data parallelism, and a
/// splitter.
fn fig3_graph() -> DflGraph {
    let mut g = DflGraph::new();
    let mb = |n: u64| n << 20;

    // Spine.
    let t1 = g.add_task("t1", "t", TaskProps { lifetime_ns: 2_000_000_000, ..Default::default() });
    let d1 = g.add_data("d1", "d", DataProps { size: mb(512), ..Default::default() });
    let t2 = g.add_task("t2", "t", TaskProps { lifetime_ns: 3_000_000_000, ..Default::default() });
    let d2 = g.add_data("d2", "d", DataProps { size: mb(256), ..Default::default() });
    let t3 = g.add_task("t3", "t", TaskProps { lifetime_ns: 1_000_000_000, ..Default::default() });
    g.add_edge(t1, d1, FlowDir::Producer, EdgeProps { volume: mb(512), footprint: mb(512) as f64, ops: 64, ..Default::default() });
    g.add_edge(d1, t2, FlowDir::Consumer, EdgeProps { volume: mb(512), footprint: mb(512) as f64, ops: 64, blocking_fraction: 0.5, ..Default::default() });
    g.add_edge(t2, d2, FlowDir::Producer, EdgeProps { volume: mb(256), footprint: mb(256) as f64, ops: 32, ..Default::default() });
    g.add_edge(d2, t3, FlowDir::Consumer, EdgeProps { volume: mb(256), footprint: mb(256) as f64, ops: 32, ..Default::default() });

    // Off-path producer feeding the spine (the DFL caterpillar rule's case).
    let d9 = g.add_data("d9", "d", DataProps { size: mb(64), ..Default::default() });
    let t7 = g.add_task("t7", "t", TaskProps { lifetime_ns: 500_000_000, ..Default::default() });
    g.add_edge(d9, t7, FlowDir::Consumer, EdgeProps { volume: mb(64), footprint: mb(64) as f64, ops: 8, ..Default::default() });
    g.add_edge(t7, d1, FlowDir::Producer, EdgeProps { volume: mb(32), footprint: mb(32) as f64, ops: 4, ..Default::default() });

    // Aggregator with data parallelism (Fig. 3c/d): 4 partition readers of
    // one input file feed a compressing aggregator.
    let src = g.add_data("src", "d", DataProps { size: mb(400), ..Default::default() });
    let mut parts = Vec::new();
    for i in 0..4 {
        let w = g.add_task(&format!("part-{i}"), "part", TaskProps { lifetime_ns: 1_000_000_000, ..Default::default() });
        g.add_edge(src, w, FlowDir::Consumer, EdgeProps {
            volume: mb(100),
            footprint: mb(100) as f64,
            subset_fraction: 0.25,
            ops: 16,
            ..Default::default()
        });
        let o = g.add_data(&format!("part-{i}.out"), "part#.out", DataProps { size: mb(100), ..Default::default() });
        g.add_edge(w, o, FlowDir::Producer, EdgeProps { volume: mb(100), footprint: mb(100) as f64, ops: 16, ..Default::default() });
        parts.push(o);
    }
    let agg = g.add_task("agg", "agg", TaskProps { lifetime_ns: 2_000_000_000, ..Default::default() });
    for p in parts {
        g.add_edge(p, agg, FlowDir::Consumer, EdgeProps { volume: mb(100), footprint: mb(100) as f64, ops: 16, ..Default::default() });
    }
    let packed = g.add_data("packed.tar.gz", "packed", DataProps { size: mb(80), ..Default::default() });
    g.add_edge(agg, packed, FlowDir::Producer, EdgeProps { volume: mb(80), footprint: mb(80) as f64, ops: 8, ..Default::default() });

    // Splitter (Fig. 3e): packed output scattered over 3 consumers.
    for i in 0..3 {
        let c = g.add_task(&format!("use-{i}"), "use", TaskProps { lifetime_ns: 700_000_000, ..Default::default() });
        g.add_edge(packed, c, FlowDir::Consumer, EdgeProps {
            volume: mb(27),
            footprint: mb(27) as f64,
            subset_fraction: 0.33,
            ops: 4,
            ..Default::default()
        });
    }
    g
}

fn main() {
    banner("Fig. 3 — DFL graph, critical path, caterpillar, opportunities (§5)");
    let g = fig3_graph();

    let cp = critical_path(&g, &CostModel::Volume);
    println!("critical path by volume (Fig. 3a, purple):");
    for (i, v) in cp.vertices.iter().enumerate() {
        print!("{}{}", if i > 0 { " → " } else { "  " }, g.vertex(*v).name);
    }
    println!("   (cost {:.0} bytes)\n", cp.total_cost);

    let cat = caterpillar(&g, &cp, CaterpillarRule::Dfl);
    println!(
        "DFL caterpillar (Fig. 3b): spine {} + legs {} + distance-2 extension {}",
        cat.spine.len(),
        cat.legs.len(),
        cat.extended.len()
    );
    println!(
        "  extension preserves the producer relation: {:?}\n",
        cat.extended.iter().map(|&v| g.vertex(v).name.clone()).collect::<Vec<_>>()
    );

    println!("{}", render_ascii(&g, Some(&cp)));

    let mut cfg = AnalysisConfig { volume_threshold: 64 << 20, fan_in_threshold: 3, ..Default::default() };
    cfg.parallelism_threshold = 4;
    let ops = analyze(&g, &cfg);
    println!("{}", report(&g, &ops));

    std::fs::create_dir_all("target/fig3").ok();
    std::fs::write("target/fig3/fig3.dot", to_dot(&g, "fig3", Some(&cp))).expect("write dot");
    println!("wrote target/fig3/fig3.dot (render with graphviz)");
}
