//! Ablation: GCPA cost properties (§5.1).
//!
//! "By adopting different properties the path focuses on different
//! bottlenecks": volume ⇒ transfer volume, footprint ⇒ storage capacity,
//! rate/time ⇒ transfer speed, branch/join ⇒ coordination. This sweep runs
//! every cost model on every workflow and shows how much the chosen
//! property changes *which* path is critical.
//!
//! Run with: `cargo run --release -p dfl-bench --bin ablation_gcpa`

use dfl_bench::{banner, render_table};
use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::critical_path::critical_path;
use dfl_core::DflGraph;
use dfl_workflows::engine::{run, RunConfig};
use dfl_workflows::{ddmd, genomes, montage, seismic};

fn overlap(a: &dfl_core::analysis::CriticalPath, b: &dfl_core::analysis::CriticalPath) -> f64 {
    if a.vertices.is_empty() {
        return 0.0;
    }
    let bset: std::collections::HashSet<_> = b.vertices.iter().collect();
    a.vertices.iter().filter(|v| bset.contains(v)).count() as f64 / a.vertices.len() as f64
}

fn main() {
    banner("ablation — GCPA cost property sweep (§5.1)");

    let graphs: Vec<(&str, DflGraph)> = vec![
        (
            "1000 Genomes",
            DflGraph::from_measurements(
                &run(&genomes::generate(&genomes::GenomesConfig::tiny()), &RunConfig::default_gpu(2))
                    .unwrap()
                    .measurements,
            ),
        ),
        (
            "DeepDriveMD",
            DflGraph::from_measurements(
                &run(
                    &ddmd::generate(&ddmd::DdmdConfig::tiny(), ddmd::Pipeline::Original),
                    &RunConfig::default_gpu(2),
                )
                .unwrap()
                .measurements,
            ),
        ),
        (
            "Montage",
            DflGraph::from_measurements(
                &run(&montage::generate(&montage::MontageConfig::tiny()), &RunConfig::default_gpu(2))
                    .unwrap()
                    .measurements,
            ),
        ),
        (
            "Seismic",
            DflGraph::from_measurements(
                &run(&seismic::generate(&seismic::SeismicConfig::tiny()), &RunConfig::default_gpu(2))
                    .unwrap()
                    .measurements,
            ),
        ),
    ];

    let costs = [
        CostModel::Volume,
        CostModel::Footprint,
        CostModel::Time,
        CostModel::BranchJoin { branch_threshold: 2 },
        CostModel::TaskFanIn,
    ];

    let mut rows = Vec::new();
    for (name, g) in &graphs {
        let volume_path = critical_path(g, &CostModel::Volume);
        for cost in costs {
            let cp = critical_path(g, &cost);
            let end = cp
                .vertices
                .last()
                .map(|&v| g.vertex(v).name.clone())
                .unwrap_or_default();
            rows.push(vec![
                (*name).to_owned(),
                cost.label().to_owned(),
                cp.vertices.len().to_string(),
                format!("{:.3e}", cp.total_cost),
                format!("{:.0}%", overlap(&cp, &volume_path) * 100.0),
                end,
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            "critical paths under each cost property",
            &["workflow", "property", "length", "cost", "overlap w/ volume path", "endpoint"],
            &rows,
        )
    );
    println!("different properties select materially different paths (low overlap), which is");
    println!("why the paper runs GCPA per property rather than a single critical path.");
}
