//! Regenerates **Table 1**: runs the full opportunity analysis over all
//! five workflows and tallies which patterns are detected where, with the
//! top-ranked opportunity per workflow.
//!
//! Run with: `cargo run --release -p dfl-bench --bin table1_opportunities`

use std::collections::BTreeMap;

use dfl_bench::{banner, render_table};
use dfl_core::analysis::patterns::{analyze, AnalysisConfig, PatternKind};
use dfl_core::DflGraph;
use dfl_workflows::engine::{run, RunConfig};
use dfl_workflows::{belle2, ddmd, genomes, montage, seismic};

fn graphs() -> Vec<(&'static str, DflGraph)> {
    let mut out = Vec::new();

    let cfg = genomes::GenomesConfig {
        chromosomes: 2,
        indiv_per_chr: 4,
        populations: 2,
        ..genomes::GenomesConfig::tiny()
    };
    let r = run(&genomes::generate(&cfg), &RunConfig::default_gpu(4)).expect("genomes");
    out.push(("1000 Genomes", DflGraph::from_measurements(&r.measurements)));

    let cfg = ddmd::DdmdConfig { iterations: 2, ..ddmd::DdmdConfig::tiny() };
    let r = run(&ddmd::generate(&cfg, ddmd::Pipeline::Original), &RunConfig::default_gpu(2)).expect("ddmd");
    out.push(("DeepDriveMD", DflGraph::from_measurements(&r.measurements)));

    let cfg = belle2::Belle2Config::tiny();
    let r = run(
        &belle2::generate(&cfg, belle2::DataAccess::Cached),
        &belle2::run_config(&cfg, belle2::DataAccess::Cached, 2),
    )
    .expect("belle2");
    out.push(("Belle II MC", DflGraph::from_measurements(&r.measurements)));

    let cfg = montage::MontageConfig::tiny();
    let r = run(&montage::generate(&cfg), &RunConfig::default_gpu(2)).expect("montage");
    out.push(("Montage", DflGraph::from_measurements(&r.measurements)));

    let cfg = seismic::SeismicConfig::tiny();
    let r = run(&seismic::generate(&cfg), &RunConfig::default_gpu(2)).expect("seismic");
    out.push(("Seismic", DflGraph::from_measurements(&r.measurements)));

    out
}

fn main() {
    banner("Table 1 — opportunity patterns detected per workflow (§5)");
    let cfg = AnalysisConfig {
        volume_threshold: 2 << 20, // tiny instances: 2 MiB counts as "large"
        fan_in_threshold: 3,
        parallelism_threshold: 3,
        ..Default::default()
    };

    let all_patterns = [
        PatternKind::DataVolume,
        PatternKind::MismatchedDataRate,
        PatternKind::DataNonUse,
        PatternKind::IntraTaskLocality,
        PatternKind::InterTaskLocality,
        PatternKind::CriticalDataFlow,
        PatternKind::NonCriticalDataFlow,
        PatternKind::ParallelismTradeoff,
        PatternKind::Aggregator,
        PatternKind::CompressorAggregator,
        PatternKind::Splitter,
        PatternKind::AggregatorThenRegular,
        PatternKind::AggregatorThenSplitter,
    ];

    let gs = graphs();
    let mut rows = Vec::new();
    let mut tops: Vec<Vec<String>> = Vec::new();
    let mut per_wf: Vec<(String, BTreeMap<&'static str, usize>)> = Vec::new();
    for (name, g) in &gs {
        let ops = analyze(g, &cfg);
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for o in &ops {
            *counts.entry(o.pattern.label()).or_insert(0) += 1;
        }
        if let Some(top) = ops.first() {
            tops.push(vec![
                (*name).to_owned(),
                top.pattern.label().to_owned(),
                top.evidence.clone(),
                top.remediations
                    .iter()
                    .map(|r| r.label())
                    .collect::<Vec<_>>()
                    .join("; "),
            ]);
        }
        per_wf.push(((*name).to_owned(), counts));
    }

    for p in all_patterns {
        let mut row = vec![p.label().to_owned()];
        for (_, counts) in &per_wf {
            row.push(counts.get(p.label()).copied().unwrap_or(0).to_string());
        }
        rows.push(row);
    }
    let header: Vec<&str> =
        std::iter::once("pattern").chain(gs.iter().map(|(n, _)| *n)).collect();
    println!("{}", render_table("detected opportunity counts", &header, &rows));

    println!(
        "{}",
        render_table(
            "top-ranked opportunity per workflow (caterpillar members first)",
            &["workflow", "pattern", "evidence", "remediations"],
            &tops,
        )
    );
}
