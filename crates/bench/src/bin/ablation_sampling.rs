//! Ablation: spatial sampling rate vs measurement accuracy (§3).
//!
//! The paper claims constant-space measurement via deterministic location
//! sampling; the cost is estimation error on *unique* quantities
//! (footprints). This sweep measures footprint estimation error and tracked
//! state size across sampling rates for a scan + hot-spot access mix.
//!
//! Run with: `cargo run --release -p dfl-bench --bin ablation_sampling`

use dfl_bench::{banner, render_table};
use dfl_trace::{IoTiming, Monitor, MonitorConfig, OpenMode};

/// A workload with a known footprint: scans the first 60% of a 1 GiB file
/// and re-reads a hot 5% region ten times.
fn run_workload(pct: u64) -> (f64, usize, u64) {
    let m = Monitor::new(MonitorConfig::default().with_sampling_percent(pct));
    let gib: u64 = 1 << 30;
    let ctx = m.begin_task("scan-0", 0);
    let fd = ctx.open("data.bin", OpenMode::Read, Some(gib), 0);
    let op = 1 << 20;
    for i in 0..(gib * 6 / 10 / op) {
        ctx.read_at(fd, i * op, op, IoTiming::new(i, 100)).unwrap();
    }
    for pass in 0..10u64 {
        for i in 0..(gib / 20 / op) {
            ctx.read_at(fd, i * op, op, IoTiming::new(1_000_000 + pass, 100)).unwrap();
        }
    }
    ctx.close(fd, 2_000_000).unwrap();
    ctx.finish(2_000_000);

    let set = m.snapshot();
    let rec = &set.records[0];
    (rec.read_footprint(), rec.histogram.tracked_locations(), rec.bytes_read)
}

fn main() {
    banner("ablation — spatial sampling rate vs footprint accuracy (§3)");
    let truth = (1u64 << 30) as f64 * 0.6;
    let mut rows = Vec::new();
    for pct in [100u64, 50, 25, 10, 5, 1] {
        let (est, locations, volume) = run_workload(pct);
        let err = (est - truth).abs() / truth * 100.0;
        rows.push(vec![
            format!("{pct}%"),
            format!("{:.1} MiB", est / (1 << 20) as f64),
            format!("{err:.1}%"),
            locations.to_string(),
            format!("{:.1} MiB", volume as f64 / (1 << 20) as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            "footprint estimate vs sampling rate (true footprint 614.4 MiB)",
            &["rate", "estimated footprint", "error", "tracked locations", "exact volume"],
            &rows,
        )
    );
    println!("volumes stay exact at every rate (kept as scalar counters);");
    println!("unique-byte estimates degrade gracefully while state shrinks with the rate.");
}
