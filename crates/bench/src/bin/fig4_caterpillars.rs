//! Regenerates **Fig. 4**: the DFL caterpillars of the five workflows —
//! spine/leg/extension sizes under each workflow's paper-chosen critical
//! path property.
//!
//! Run with: `cargo run --release -p dfl-bench --bin fig4_caterpillars`

use dfl_bench::{banner, render_table};
use dfl_core::analysis::caterpillar::{caterpillar, CaterpillarRule};
use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::critical_path::{component_critical_paths, critical_path};
use dfl_core::DflGraph;
use dfl_workflows::engine::{run, Placement, RunConfig};
use dfl_workflows::{belle2, ddmd, genomes, montage, seismic};

fn main() {
    banner("Fig. 4 — DFL caterpillars for the five workflows (§5.1, §6.1)");

    let mut rows = Vec::new();
    let mut add = |name: &str, g: &DflGraph, cost: CostModel| {
        let cp = critical_path(g, &cost);
        let cat = caterpillar(g, &cp, CaterpillarRule::Dfl);
        let coverage = cat.len() as f64 / g.vertex_count() as f64;
        rows.push(vec![
            name.to_owned(),
            cost.label().to_owned(),
            cp.vertices.len().to_string(),
            cat.legs.len().to_string(),
            cat.extended.len().to_string(),
            format!("{:.0}%", coverage * 100.0),
        ]);
    };

    let gcfg = genomes::GenomesConfig {
        chromosomes: 2,
        indiv_per_chr: 4,
        populations: 2,
        ..genomes::GenomesConfig::tiny()
    };
    let r = run(&genomes::generate(&gcfg), &RunConfig::default_gpu(4)).expect("genomes");
    let g1 = DflGraph::from_measurements(&r.measurements);
    add("(a) 1000 Genomes", &g1, CostModel::BranchJoin { branch_threshold: 2 });

    let dcfg = ddmd::DdmdConfig { iterations: 1, ..ddmd::DdmdConfig::tiny() };
    let r = run(&ddmd::generate(&dcfg, ddmd::Pipeline::Original), &RunConfig::default_gpu(2)).expect("ddmd");
    let g2 = DflGraph::from_measurements(&r.measurements);
    add("(b) DeepDriveMD", &g2, CostModel::Volume);

    let bcfg = belle2::Belle2Config { tasks: 6, pool: 3, ..belle2::Belle2Config::tiny() };
    let r = run(
        &belle2::generate(&bcfg, belle2::DataAccess::Cached),
        &belle2::run_config(&bcfg, belle2::DataAccess::Cached, 2),
    )
    .expect("belle2");
    let g3 = DflGraph::from_measurements(&r.measurements);
    add("(c) Belle II MC", &g3, CostModel::Volume);

    let mcfg = montage::MontageConfig::tiny();
    let r = run(&montage::generate(&mcfg), &RunConfig::default_gpu(2)).expect("montage");
    let g4 = DflGraph::from_measurements(&r.measurements);
    add("(d) Montage", &g4, CostModel::Volume);

    let scfg = seismic::SeismicConfig::tiny();
    let r = run(&seismic::generate(&scfg), &RunConfig::default_gpu(2)).expect("seismic");
    let g5 = DflGraph::from_measurements(&r.measurements);
    add("(e) Seismic", &g5, CostModel::TaskFanIn);

    println!(
        "{}",
        render_table(
            "Fig. 4 — caterpillar tree composition",
            &["workflow", "CP property", "spine", "legs", "dist-2 ext", "graph coverage"],
            &rows,
        )
    );

    // The 1000 Genomes observation: one caterpillar per chromosome (§6.2).
    let mut cfg10 = RunConfig::default_gpu(4);
    cfg10.placement = Placement::ByGroup;
    let r = run(&genomes::generate(&gcfg), &cfg10).expect("genomes bygroup");
    let g = DflGraph::from_measurements(&r.measurements);
    let paths = component_critical_paths(&g, &CostModel::BranchJoin { branch_threshold: 2 });
    println!(
        "1000 Genomes with {} chromosomes: {} weakly-connected near-critical paths found \
         (the paper identifies one caterpillar per chromosome; shared inputs link them).",
        gcfg.chromosomes,
        paths.len()
    );
}
