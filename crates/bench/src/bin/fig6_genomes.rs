//! Regenerates **Fig. 6**: 1000 Genomes execution time for the six staging
//! configurations, with per-stage breakdown.
//!
//! Paper shapes to reproduce: local intermediate staging beats all-BeeGFS
//! (up to ~2.8×), input staging adds a further large factor (up to ~6.7×),
//! and the best configuration improves on the original 15-node layout by
//! ~15×.
//!
//! Run with: `cargo run --release -p dfl-bench --bin fig6_genomes`

use dfl_bench::{banner, render_table, secs, speedup};
use dfl_workflows::engine::run;
use dfl_workflows::genomes::{generate, Fig6Config, GenomesConfig};

fn main() {
    banner("Fig. 6 — 1000 Genomes staging configurations (§6.2)");
    let cfg = GenomesConfig::default();
    let spec = generate(&cfg);
    println!(
        "workflow: {} tasks ({} indiv / {} merge / {} sift / {} freq / {} mutat), \
         read volume {:.1} GiB, write volume {:.1} GiB\n",
        spec.tasks.len(),
        cfg.chromosomes * cfg.indiv_per_chr,
        cfg.chromosomes,
        cfg.chromosomes,
        cfg.chromosomes * cfg.populations,
        cfg.chromosomes * cfg.populations,
        spec.total_read_volume() as f64 / (1u64 << 30) as f64,
        spec.total_write_volume() as f64 / (1u64 << 30) as f64,
    );

    let mut rows = Vec::new();
    let mut baseline = None;
    for variant in Fig6Config::all() {
        let result = run(&spec, &variant.run_config()).expect("simulation");
        let total = result.makespan_s;
        baseline.get_or_insert(total);
        rows.push(vec![
            variant.label().to_owned(),
            secs(result.stage_time(0)),
            secs(result.stage_time(2)),
            secs(result.stage_time(3)),
            secs(result.stage_time(4)),
            secs(total),
            speedup(baseline.unwrap(), total),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Fig. 6 — execution time per configuration (seconds)",
            &["config", "stage1 (staging)", "stage2 (indiv)", "stage3 (merge+sift)", "stage4 (freq+mutat)", "total", "vs 15/bfs"],
            &rows,
        )
    );
    println!("paper: staging intermediates locally ⇒ up to 2.8x; staging inputs ⇒ up to 6.7x; overall 15x vs 15/bfs.");
}
