//! Regenerates **Fig. 7**: DeepDriveMD execution time for the Original and
//! Shortened pipelines across storage configurations, with per-stage times.
//!
//! Paper shapes to reproduce: the Shortened (coalesced aggregation +
//! asynchronous training) pipeline is up to ~1.9× faster; within Shortened,
//! BeeGFS adds ~5% over NFS and RAM-disk aggregation a further ~9%.
//!
//! Run with: `cargo run --release -p dfl-bench --bin fig7_ddmd`

use dfl_bench::{banner, render_table, secs, speedup};
use dfl_workflows::ddmd::{generate, DdmdConfig, Fig7Config};
use dfl_workflows::engine::run;

fn main() {
    banner("Fig. 7 — DeepDriveMD pipelines (§6.3)");
    let cfg = DdmdConfig::default();
    println!(
        "workflow: {} sims/iter × {} iterations; combined file {:.1} GiB; train reads {:.1} GiB/iter\n",
        cfg.n_sims,
        cfg.iterations,
        cfg.combined_bytes as f64 / (1u64 << 30) as f64,
        (cfg.combined_bytes as f64 * cfg.used_fraction * f64::from(cfg.train_passes))
            / (1u64 << 30) as f64,
    );

    let mut rows = Vec::new();
    let mut baseline = None;
    for variant in Fig7Config::all() {
        let spec = generate(&cfg, variant.pipeline());
        let result = run(&spec, &variant.run_config()).expect("simulation");
        let total = result.makespan_s;
        baseline.get_or_insert(total);
        rows.push(vec![
            variant.label().to_owned(),
            secs(result.stage_time(1)),
            secs(result.stage_time(2)),
            secs(result.stage_time(3)),
            secs(result.stage_time(4)),
            secs(total),
            speedup(baseline.unwrap(), total),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Fig. 7 — execution time per configuration (seconds; stage spans overlap in Shortened)",
            &["config", "sim", "aggregate", "train", "lof", "total", "vs original/nfs"],
            &rows,
        )
    );
    println!("paper: Shortened up to 1.9x; within Shortened, BeeGFS +5.4% and +RAM-disk a further 9%.");
}
