//! Ablation: the DFL caterpillar's distance-2 producer rule, and the
//! caterpillar itself, vs plain critical-path narrowing (§5.1).
//!
//! For each workflow: how many of the top-ranked opportunities lie on (a)
//! the bare critical path, (b) the plain caterpillar, (c) the DFL
//! caterpillar. The paper's argument is that (c) retains the producer/
//! consumer relations pattern detection needs while staying near-linear in
//! size.
//!
//! Run with: `cargo run --release -p dfl-bench --bin ablation_caterpillar`

use dfl_bench::{banner, render_table};
use dfl_core::analysis::caterpillar::{caterpillar, CaterpillarRule};
use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::critical_path::critical_path;
use dfl_core::analysis::patterns::{analyze, AnalysisConfig, Subject};
use dfl_core::DflGraph;
use dfl_workflows::engine::{run, RunConfig};
use dfl_workflows::{ddmd, genomes, seismic};

fn coverage(g: &DflGraph, members: &[bool], top: &[dfl_core::analysis::Opportunity]) -> usize {
    top.iter()
        .filter(|o| match &o.subject {
            Subject::Vertex(v) => members[v.0 as usize],
            Subject::Edge(e) => {
                let edge = g.edge(*e);
                members[edge.src.0 as usize] && members[edge.dst.0 as usize]
            }
            Subject::Composite(p, d, c) => {
                members[p.0 as usize] && members[d.0 as usize] && members[c.0 as usize]
            }
        })
        .count()
}

fn main() {
    banner("ablation — critical path vs plain vs DFL caterpillar (§5.1)");

    let graphs: Vec<(&str, DflGraph, CostModel)> = vec![
        (
            "1000 Genomes",
            DflGraph::from_measurements(
                &run(&genomes::generate(&genomes::GenomesConfig::tiny()), &RunConfig::default_gpu(2))
                    .unwrap()
                    .measurements,
            ),
            CostModel::BranchJoin { branch_threshold: 2 },
        ),
        (
            "DeepDriveMD",
            DflGraph::from_measurements(
                &run(
                    &ddmd::generate(&ddmd::DdmdConfig::tiny(), ddmd::Pipeline::Original),
                    &RunConfig::default_gpu(2),
                )
                .unwrap()
                .measurements,
            ),
            CostModel::Volume,
        ),
        (
            "Seismic",
            DflGraph::from_measurements(
                &run(&seismic::generate(&seismic::SeismicConfig::tiny()), &RunConfig::default_gpu(2))
                    .unwrap()
                    .measurements,
            ),
            CostModel::TaskFanIn,
        ),
    ];

    let mut rows = Vec::new();
    for (name, g, cost) in &graphs {
        let cfg = AnalysisConfig {
            volume_threshold: 1 << 20,
            fan_in_threshold: 3,
            parallelism_threshold: 3,
            ..Default::default()
        };
        let mut top = analyze(g, &cfg);
        top.truncate(10);

        let cp = critical_path(g, cost);
        let plain = caterpillar(g, &cp, CaterpillarRule::Plain);
        let dfl = caterpillar(g, &cp, CaterpillarRule::Dfl);

        let path_members = cp.membership(g.vertex_count());
        let plain_members = plain.membership(g.vertex_count());
        let dfl_members = dfl.membership(g.vertex_count());

        rows.push(vec![
            (*name).to_owned(),
            format!("{}/{} v", cp.vertices.len(), g.vertex_count()),
            format!("{} of 10", coverage(g, &path_members, &top)),
            format!("{} v, {} of 10", plain.len(), coverage(g, &plain_members, &top)),
            format!("{} v, {} of 10", dfl.len(), coverage(g, &dfl_members, &top)),
        ]);
    }
    println!(
        "{}",
        render_table(
            "top-10 opportunity coverage by narrowing strategy",
            &["workflow", "critical path", "CP covers", "plain caterpillar", "DFL caterpillar"],
            &rows,
        )
    );
    println!("the DFL rule's extra distance-2 vertices buy producer-relation coverage at");
    println!("negligible size cost — the paper's justification for extending the caterpillar.");
}
