//! Regenerates **§6.4 + Fig. 8**: the Belle II Monte Carlo case study.
//!
//! Part 1 — distributed caching vs FTP copying (paper: **10×**).
//! Part 2 — the Table 3 emulated-optimization scenarios S1–S6 replayed
//! through the TAZeR cache, reporting the execution breakdown (bars) and
//! relative time (line), where 0 = all data staged locally ("optimal") and
//! 1 = S1 under TAZeR. Paper improvements: S2 ≈ 6%, S3 ≈ 65%, S4 ≈ 67%,
//! S5 ≈ 95%, S6 ≈ 100%; most-plausible scenarios S3–S4 ⇒ a further
//! 2.9–3.0× over the 10× (the abstract's 10–30×).
//!
//! Run with: `cargo run --release -p dfl-bench --bin fig8_belle2`

use dfl_bench::{banner, render_table, secs, speedup};
use dfl_iosim::breakdown::FlowTag;
use dfl_workflows::belle2::{
    generate, run_config, run_replay, Belle2Config, DataAccess, Scenario,
};
use dfl_workflows::engine::run;

const NODES: usize = 10;

fn main() {
    banner("Fig. 8 / §6.4 — Belle II Monte Carlo (caching + emulated optimizations)");
    let cfg = Belle2Config::default();
    println!(
        "campaign: {} tasks on {NODES} nodes ({} concurrent), {} datasets × {:.1} GiB, {} draws/task\n",
        cfg.tasks,
        cfg.tasks,
        cfg.pool,
        cfg.dataset_bytes as f64 / (1u64 << 30) as f64,
        cfg.datasets_per_task,
    );

    // ---- Part 1: FTP copy vs TAZeR caching ----
    let ftp = run(&generate(&cfg, DataAccess::FtpCopy), &run_config(&cfg, DataAccess::FtpCopy, NODES))
        .expect("ftp run");
    let cached = run(&generate(&cfg, DataAccess::Cached), &run_config(&cfg, DataAccess::Cached, NODES))
        .expect("cached run");
    println!(
        "{}",
        render_table(
            "distributed caching vs FTP copy (paper: 10.0x)",
            &["access", "makespan (s)", "speedup"],
            &[
                vec!["FTP copy".into(), secs(ftp.makespan_s), "1.0x".into()],
                vec![
                    "TAZeR caching".into(),
                    secs(cached.makespan_s),
                    speedup(ftp.makespan_s, cached.makespan_s),
                ],
            ],
        )
    );

    // ---- Part 2: Table 3 scenarios (campaign-scale pool) ----
    let cfg = Belle2Config::campaign();
    println!(
        "replay campaign: pool {} × {:.1} GiB (exceeds the 512 GB L4), {} tasks\n",
        cfg.pool,
        cfg.dataset_bytes as f64 / (1u64 << 30) as f64,
        cfg.tasks
    );
    let optimal = run_replay(&cfg, &Scenario::S6.traces(&cfg), NODES, true);
    let mut outcomes = Vec::new();
    for s in Scenario::all() {
        outcomes.push((s, run_replay(&cfg, &s.traces(&cfg), NODES, false)));
    }
    let t0 = optimal.makespan_s;
    let t1 = outcomes[0].1.makespan_s;

    let mut rows = Vec::new();
    for (s, o) in &outcomes {
        let rel = (o.makespan_s - t0) / (t1 - t0);
        let b = &o.breakdown;
        let net = b.get(FlowTag::NetworkRead) + b.get(FlowTag::CacheL4);
        let node_cache = b.get(FlowTag::CacheL1) + b.get(FlowTag::CacheL2) + b.get(FlowTag::CacheL3);
        rows.push(vec![
            s.label().to_owned(),
            secs(o.makespan_s),
            format!("{rel:.2}"),
            format!("{:.0}%", (1.0 - rel) * 100.0),
            secs(net as f64 / 1e9),
            secs(node_cache as f64 / 1e9),
            secs(b.get(FlowTag::CodeTransfer) as f64 / 1e9),
            secs(b.get(FlowTag::Metadata) as f64 / 1e9),
        ]);
    }
    rows.push(vec![
        "optimal (local)".into(),
        secs(t0),
        "0.00".into(),
        "100%".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    println!(
        "{}",
        render_table(
            "Fig. 8 — scenario breakdown (flow-seconds summed over tasks) and relative time",
            &["scenario", "makespan (s)", "relative", "improvement", "network+L4 (s)", "node caches (s)", "code xfer (s)", "overhead (s)"],
            &rows,
        )
    );
    println!(
        "paper: S2 6%, S3 65%, S4 67%, S5 95%, S6 ≈100% improvement; S3/S4 ⇒ an extra 2.9-3.0x over caching."
    );
    let s4 = outcomes[3].1.makespan_s;
    println!(
        "most-plausible extra factor here (S1/S4): {}",
        speedup(t1, s4)
    );
}
