//! Regenerates **Fig. 5**: the 1000 Genomes chromosome-1 DFL caterpillar
//! under the data-branch/task-join property, listing the branches (green)
//! and joins the paper calls out (columns and chr1 fan-out; aggregation on
//! indiv, merge, sift, mutat).
//!
//! Run with: `cargo run --release -p dfl-bench --bin fig5_genomes_caterpillar`

use dfl_bench::{banner, render_table};
use dfl_core::analysis::caterpillar::{caterpillar, CaterpillarRule};
use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::critical_path::critical_path;
use dfl_core::DflGraph;
use dfl_workflows::engine::{run, RunConfig};
use dfl_workflows::genomes::{generate, GenomesConfig};

fn main() {
    banner("Fig. 5 — 1000 Genomes chr1 caterpillar by branches & joins (§6.2)");
    // One chromosome, paper-sized fan-out kept small enough to print.
    let cfg = GenomesConfig {
        chromosomes: 1,
        indiv_per_chr: 6,
        populations: 3,
        ..GenomesConfig::tiny()
    };
    let result = run(&generate(&cfg), &RunConfig::default_gpu(2)).expect("run");
    let g = DflGraph::from_measurements(&result.measurements);

    let cost = CostModel::BranchJoin { branch_threshold: 2 };
    let cp = critical_path(&g, &cost);
    println!("critical path (most branch/join instances, cost {:.0}):", cp.total_cost);
    for v in &cp.vertices {
        let vx = g.vertex(*v);
        let (ind, outd) = (g.in_degree(*v), g.out_degree(*v));
        let marks = format!(
            "{}{}",
            if vx.is_data() && outd > 2 { " [branch]" } else { "" },
            if vx.is_task() && ind >= 2 { " [join]" } else { "" },
        );
        println!("  {}{marks}", vx.name);
    }

    let cat = caterpillar(&g, &cp, CaterpillarRule::Dfl);
    println!(
        "\ncaterpillar: {} spine + {} legs + {} dist-2 = {} of {} vertices\n",
        cat.spine.len(),
        cat.legs.len(),
        cat.extended.len(),
        cat.len(),
        g.vertex_count()
    );

    // Data branches (green in the paper's figure).
    let mut rows = Vec::new();
    for d in g.data_vertices() {
        if g.out_degree(d) > 2 {
            rows.push(vec![
                g.vertex(d).name.clone(),
                g.out_degree(d).to_string(),
                g.successors(d)
                    .take(4)
                    .map(|t| g.vertex(t).name.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
                    + if g.out_degree(d) > 4 { ", …" } else { "" },
            ]);
        }
    }
    println!(
        "{}",
        render_table("data branches (fan-out > 2)", &["file", "consumers", "e.g."], &rows)
    );

    let mut rows = Vec::new();
    for t in g.task_vertices() {
        if g.in_degree(t) >= 2 {
            rows.push(vec![g.vertex(t).name.clone(), g.in_degree(t).to_string()]);
        }
    }
    println!("{}", render_table("task joins (fan-in ≥ 2)", &["task", "inputs"], &rows));
    println!("paper: branches on columns and chr1; joins on indiv, merge, sift, mutat —");
    println!("       duplicated, congested flow that staging/caching can localize.");
}
