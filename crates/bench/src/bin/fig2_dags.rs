//! Regenerates **Fig. 2(a–e)**: the signature DFL-DAGs of the five
//! workflows, with each workflow's paper-chosen critical path highlighted,
//! plus Sankey JSON written to `target/fig2/`.
//!
//! Run with: `cargo run --release -p dfl-bench --bin fig2_dags`

use dfl_bench::{banner, render_table};
use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::critical_path::critical_path;
use dfl_core::viz::sankey::{SankeyDiagram, SankeyOptions};
use dfl_core::DflGraph;
use dfl_workflows::engine::{run, RunConfig};
use dfl_workflows::{belle2, ddmd, genomes, montage, seismic};

/// A scaled-down instance per workflow, big enough to show the signature
/// structure but quick to simulate.
fn build_all() -> Vec<(&'static str, DflGraph, CostModel)> {
    let mut out = Vec::new();

    let g1 = {
        let cfg = genomes::GenomesConfig {
            chromosomes: 2,
            indiv_per_chr: 4,
            populations: 2,
            ..genomes::GenomesConfig::tiny()
        };
        let r = run(&genomes::generate(&cfg), &RunConfig::default_gpu(4)).expect("genomes");
        DflGraph::from_measurements(&r.measurements)
    };
    out.push(("(a) 1000 Genomes", g1, CostModel::BranchJoin { branch_threshold: 2 }));

    let g2 = {
        let cfg = ddmd::DdmdConfig { iterations: 1, ..ddmd::DdmdConfig::tiny() };
        let r = run(&ddmd::generate(&cfg, ddmd::Pipeline::Original), &RunConfig::default_gpu(2))
            .expect("ddmd");
        DflGraph::from_measurements(&r.measurements)
    };
    out.push(("(b) DeepDriveMD", g2, CostModel::Volume));

    let g3 = {
        let cfg = belle2::Belle2Config { tasks: 6, pool: 3, ..belle2::Belle2Config::tiny() };
        let r = run(
            &belle2::generate(&cfg, belle2::DataAccess::Cached),
            &belle2::run_config(&cfg, belle2::DataAccess::Cached, 2),
        )
        .expect("belle2");
        DflGraph::from_measurements(&r.measurements)
    };
    out.push(("(c) Belle II MC", g3, CostModel::Volume));

    let g4 = {
        let cfg = montage::MontageConfig::tiny();
        let r = run(&montage::generate(&cfg), &RunConfig::default_gpu(2)).expect("montage");
        DflGraph::from_measurements(&r.measurements)
    };
    out.push(("(d) Montage", g4, CostModel::Volume));

    let g5 = {
        let cfg = seismic::SeismicConfig::tiny();
        let r = run(&seismic::generate(&cfg), &RunConfig::default_gpu(2)).expect("seismic");
        DflGraph::from_measurements(&r.measurements)
    };
    out.push(("(e) Seismic", g5, CostModel::TaskFanIn));

    out
}

fn main() {
    banner("Fig. 2(a–e) — signature DFL-DAGs for five workflows (§6.1)");
    std::fs::create_dir_all("target/fig2").ok();

    let mut rows = Vec::new();
    for (name, g, cost) in build_all() {
        let cp = critical_path(&g, &cost);
        let tasks = g.task_vertices().count();
        let data = g.data_vertices().count();
        rows.push(vec![
            name.to_owned(),
            tasks.to_string(),
            data.to_string(),
            g.edge_count().to_string(),
            cost.label().to_owned(),
            format!("{} vertices, cost {:.3e}", cp.vertices.len(), cp.total_cost),
        ]);

        let sankey = SankeyDiagram::from_graph(&g, &SankeyOptions {
            title: name.to_owned(),
            critical_path: Some(cp),
            ..Default::default()
        });
        let path = format!(
            "target/fig2/{}.sankey.json",
            name.trim_start_matches(['(', 'a', 'b', 'c', 'd', 'e', ')', ' '])
                .replace(' ', "_")
                .to_lowercase()
        );
        std::fs::write(&path, sankey.to_json().expect("json")).expect("write sankey");
        println!("wrote {path}");
    }
    println!();
    println!(
        "{}",
        render_table(
            "Fig. 2 — DFL-DAG shapes and critical paths",
            &["workflow", "task vertices", "data vertices", "edges", "CP property", "critical path"],
            &rows,
        )
    );
}
