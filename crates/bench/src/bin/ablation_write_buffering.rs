//! Ablation: the Table 1 "write buffering" remediation.
//!
//! Runs the 1000 Genomes workflow with synchronous vs buffered writes on
//! shared storage. Buffering takes producer flows off the task critical
//! path (tasks return at memory speed and the drain proceeds in the
//! background), which shortens write-heavy stages without any placement
//! change.
//!
//! Run with: `cargo run --release -p dfl-bench --bin ablation_write_buffering`

use dfl_bench::{banner, render_table, secs, speedup};
use dfl_workflows::engine::run;
use dfl_workflows::genomes::{generate, Fig6Config, GenomesConfig};

fn main() {
    banner("ablation — synchronous vs buffered writes (Table 1 remediation)");
    let cfg = GenomesConfig {
        chromosomes: 4,
        indiv_per_chr: 8,
        populations: 3,
        ..GenomesConfig::default()
    };
    let spec = generate(&cfg);

    let mut rows = Vec::new();
    let mut baseline = None;
    for (label, buffered) in [("synchronous writes", false), ("buffered writes", true)] {
        let mut rc = Fig6Config::N10Bfs.run_config();
        rc.write_buffering = buffered;
        let r = run(&spec, &rc).expect("run");
        baseline.get_or_insert(r.makespan_s);
        rows.push(vec![
            label.to_owned(),
            secs(r.stage_time(2)),
            secs(r.stage_time(3)),
            secs(r.stage_time(4)),
            secs(r.makespan_s),
            speedup(baseline.unwrap(), r.makespan_s),
        ]);
    }
    println!(
        "{}",
        render_table(
            "1000 Genomes (4 chromosomes) on shared BeeGFS",
            &["write mode", "stage2 (indiv)", "stage3 (merge+sift)", "stage4", "total", "speedup"],
            &rows,
        )
    );
    println!("buffering shortens the write-heavy producer stages (indiv, merge) but the");
    println!("background drains then contend with downstream reads on the same shared");
    println!("tier — the zero-sum outcome Table 1 anticipates when the remediation is");
    println!("applied without also pairing tasks with flow resources.");
}
