//! Parameter sweep + averaged lifecycle graphs (§2): "we generalize either
//! DFL-DAGs or DFL-Ts by varying a key input parameter and forming averaged
//! graphs from several executions."
//!
//! Sweeps the 1000 Genomes problem size (indiv tasks per chromosome),
//! aggregates each run's DFL-DAG into a template, averages the templates,
//! and reports how the key flows scale with the parameter.
//!
//! Run with: `cargo run --release -p dfl-bench --bin sweep_genomes`

use dfl_bench::{banner, render_table};
use dfl_core::graph::merge::average_graphs;
use dfl_core::props::fmt_bytes;
use dfl_core::DflGraph;
use dfl_workflows::engine::{run, RunConfig};
use dfl_workflows::genomes::{generate, GenomesConfig};

fn main() {
    banner("sweep — 1000 Genomes problem size, averaged DFL templates (§2)");

    let sizes = [6u32, 12, 18, 24];
    let mut templates = Vec::new();
    let mut rows = Vec::new();
    for &indiv in &sizes {
        let cfg = GenomesConfig {
            chromosomes: 2,
            indiv_per_chr: indiv,
            populations: 2,
            ..GenomesConfig::default()
        };
        let result = run(&generate(&cfg), &RunConfig::default_gpu(4)).expect("run");
        let g = DflGraph::from_measurements(&result.measurements);
        let t = g.to_template();

        let indiv_v = t.graph.find_vertex("indiv").expect("indiv template");
        let merge_v = t.graph.find_vertex("merge").expect("merge template");
        rows.push(vec![
            indiv.to_string(),
            format!("{:.1}", result.makespan_s),
            t.graph.vertex(indiv_v).props.as_task().unwrap().instances.to_string(),
            fmt_bytes(t.graph.in_volume(indiv_v) as f64),
            fmt_bytes(t.graph.in_volume(merge_v) as f64),
            format!("{} → {}", g.vertex_count(), t.graph.vertex_count()),
        ]);
        templates.push(t.graph);
    }
    println!(
        "{}",
        render_table(
            "per-size runs (template = instances of a logical task merged)",
            &["indiv/chr", "makespan (s)", "indiv instances", "indiv inflow", "merge inflow", "DAG → template vertices"],
            &rows,
        )
    );

    // Average the four templates: structure matches by logical name, so the
    // averaged graph carries per-run volume histograms on each edge.
    let avg = average_graphs(&templates).expect("non-empty");
    println!("averaged template over {} runs:", avg.runs);
    let mut edge_rows = Vec::new();
    for (eid, e) in avg.graph.edges() {
        let hist = &avg.volume_histograms[eid.0 as usize];
        if hist.len() == sizes.len() {
            edge_rows.push(vec![
                format!("{} → {}", avg.graph.vertex(e.src).name, avg.graph.vertex(e.dst).name),
                fmt_bytes(e.props.volume as f64),
                hist.iter().map(|v| fmt_bytes(*v as f64)).collect::<Vec<_>>().join(" | "),
            ]);
        }
    }
    edge_rows.sort_by(|a, b| b[1].len().cmp(&a[1].len()).then(b[1].cmp(&a[1])));
    edge_rows.truncate(8);
    println!(
        "{}",
        render_table(
            "top averaged edges with per-size volume histograms",
            &["flow", "mean volume", "volumes across sweep"],
            &edge_rows,
        )
    );
    println!("fan-in flows (indiv outputs → merge) scale with problem size while the");
    println!("chromosome-file inflow stays fixed — the trade-off §6.2 tunes.");
}
