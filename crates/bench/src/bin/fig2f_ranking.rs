//! Regenerates **Fig. 2(f)**: the DDMD producer-consumer relation ranking
//! by flow volume. The paper's top relation is aggregate → combined → train
//! (2.4 GB), ahead of aggregate → combined → lof (0.88 GB).
//!
//! Run with: `cargo run --release -p dfl-bench --bin fig2f_ranking`

use dfl_bench::banner;
use dfl_core::analysis::ranking::rank_producer_consumer;
use dfl_core::DflGraph;
use dfl_workflows::ddmd::{generate, DdmdConfig, Pipeline};
use dfl_workflows::engine::{run, RunConfig};

fn main() {
    banner("Fig. 2(f) — DDMD producer-consumer ranking by volume (§4.3)");
    let cfg = DdmdConfig { iterations: 1, ..DdmdConfig::default() };
    let result = run(&generate(&cfg, Pipeline::Original), &RunConfig::default_gpu(2)).expect("run");
    let g = DflGraph::from_measurements(&result.measurements);

    let mut table = rank_producer_consumer(&g);
    table.truncate(12);
    println!("{table}");
    println!("paper: train reads 2.4 GB vs lof 0.88 GB from the same aggregated file;");
    println!("       the top-ranked relations identify the flows worth co-scheduling/caching.");
}
