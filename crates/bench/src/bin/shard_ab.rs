//! Interleaved A/B timing of the 1024-job shared-tier scenario at two
//! shard counts. Alternating the legs rep-by-rep cancels the slow
//! frequency/allocator drift a long bench suite suffers on a shared box,
//! which the grouped criterion runs cannot.

use dfl_iosim::cluster::ClusterSpec;
use dfl_iosim::shard::ShardPlan;
use dfl_iosim::sim::{Action, JobSpec, SimConfig, Simulation};
use dfl_iosim::storage::{TierKind, TierRef};

fn scenario(shards: u32) -> u64 {
    let cluster = ClusterSpec::gpu_cluster(32);
    let plan = ShardPlan::partition(cluster.node_count(), shards).unwrap();
    let mut sim = Simulation::new_sharded(cluster, SimConfig::default(), plan).unwrap();
    for i in 0..1024usize {
        let file = format!("in{i}");
        sim.fs_mut().create_external(&file, (1 << 20) + (i as u64) * 4096, TierRef::shared(TierKind::Beegfs));
        sim.submit(JobSpec::new(&format!("j-{i}"), (i % 32) as u32).action(Action::read_file(&file)));
    }
    sim.run().unwrap();
    sim.time().ns()
}

fn main() {
    let reps: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(15);
    let mut a = Vec::new(); // shards=1
    let mut b = Vec::new(); // shards=4
    let mut end = (0, 0);
    for _ in 0..reps {
        let t = std::time::Instant::now();
        end.0 = scenario(1);
        a.push(t.elapsed().as_nanos() as u64);
        let t = std::time::Instant::now();
        end.1 = scenario(4);
        b.push(t.elapsed().as_nanos() as u64);
    }
    assert_eq!(end.0, end.1, "shard counts must agree on the answer");
    a.sort_unstable();
    b.sort_unstable();
    let med = |v: &[u64]| v[v.len() / 2] as f64 / 1e6;
    let min = |v: &[u64]| v[0] as f64 / 1e6;
    println!("shards=1: median {:8.3} ms  min {:8.3} ms", med(&a), min(&a));
    println!("shards=4: median {:8.3} ms  min {:8.3} ms", med(&b), min(&b));
}
