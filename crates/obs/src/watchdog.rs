//! Anomaly watchdogs over the live event stream.
//!
//! [`Watchdog`] is a deterministic state machine fed by the simulator's
//! emission sites (the same calls that feed the [`crate::Recorder`]): job
//! queue/start/finish transitions, per-resource flow starts/ends, cache
//! lookups and evictions, and periodic queue-depth samples. Four detectors
//! run over that feed:
//!
//! - **Stall**: no dispatch progress (no job start or finish) for at least
//!   [`WatchdogConfig::stall_ns`] of sim-time while jobs sit runnable in a
//!   ready queue.
//! - **Tier saturation**: one bandwidth resource holds at least
//!   [`WatchdogConfig::saturation_flows`] concurrent flows for a sustained
//!   [`WatchdogConfig::saturation_ns`].
//! - **Cache thrash**: within a sliding window, the hit rate collapses
//!   below a floor while evictions churn.
//! - **Queue imbalance**: the per-node ready-queue depth gap exceeds a
//!   threshold at a sampling round.
//!
//! Every firing appends a typed [`Diagnosis`] (byte-identical across
//! same-seed runs) and, when a recorder is attached, an
//! [`InstantKind::Diagnosis`] instant on a lazily created
//! [`TrackKind::Diagnosis`] track — lazily, so a run in which nothing fires
//! records a timeline byte-identical to one with watchdogs disabled.
//! Detectors are edge-triggered: a condition must clear before the same
//! detector (for the same subject) fires again.
//!
//! All thresholds are integers (ns, counts, percent) so the config keeps
//! `Eq` and hashes into the engine's config fingerprint deterministically.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::timeline::{InstantKind, Recorder, TrackId, TrackKind};

/// Integer thresholds for the four detectors. `Default` is tuned to stay
/// silent on healthy small runs (the golden fixtures must not fire) while
/// catching crafted stalls and thrash scenarios.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Fire a stall after this many sim-ns without a job start/finish while
    /// at least one job is queued runnable.
    pub stall_ns: u64,
    /// Concurrent flows on one resource that count as saturated.
    pub saturation_flows: u32,
    /// How long a resource must stay saturated before firing.
    pub saturation_ns: u64,
    /// Sliding-window length for the cache-thrash detector.
    pub thrash_window_ns: u64,
    /// Minimum lookups inside the window before the hit rate is judged.
    pub thrash_min_lookups: u32,
    /// Fire when the window hit rate is at or below this percentage...
    pub thrash_max_hit_pct: u32,
    /// ...and at least this many evictions churned inside the window.
    pub thrash_min_evictions: u32,
    /// Fire when `max - min` ready-queue depth across nodes reaches this.
    pub imbalance_min_gap: u32,
    /// Sliding-window length for the corruption-storm detector.
    pub storm_window_ns: u64,
    /// Fire when at least this many corruption detections land inside the
    /// window (a burst usually means one tainted producer fanning out, not
    /// independent bit-flips).
    pub storm_min_detections: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_ns: 500_000_000, // 500 ms
            saturation_flows: 48,
            saturation_ns: 100_000_000, // 100 ms
            thrash_window_ns: 200_000_000, // 200 ms
            thrash_min_lookups: 16,
            thrash_max_hit_pct: 25,
            thrash_min_evictions: 8,
            imbalance_min_gap: 12,
            storm_window_ns: 1_000_000_000, // 1 s
            storm_min_detections: 3,
        }
    }
}

/// What a [`Diagnosis`] is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiagnosisKind {
    Stall,
    TierSaturation,
    CacheThrash,
    QueueImbalance,
    /// A burst of corruption detections inside one window — the signature
    /// of a tainted producer fanning out through its consumers.
    CorruptionStorm,
}

/// Stable lowercase label for a diagnosis kind.
pub fn diagnosis_kind_label(k: DiagnosisKind) -> &'static str {
    match k {
        DiagnosisKind::Stall => "stall",
        DiagnosisKind::TierSaturation => "tier-saturation",
        DiagnosisKind::CacheThrash => "cache-thrash",
        DiagnosisKind::QueueImbalance => "queue-imbalance",
        DiagnosisKind::CorruptionStorm => "corruption-storm",
    }
}

/// One watchdog firing. The serialized stream of these is byte-identical
/// across same-seed runs (everything in it is integer or derived from the
/// deterministic sim clock).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Sim-time of the firing.
    pub t_ns: u64,
    pub kind: DiagnosisKind,
    /// What is gating progress: a track name (`tier:beegfs`, `node:3`) or
    /// `"scheduler"` for global stalls.
    pub subject: String,
    /// Kind-dependent magnitude (stall gap ns, flow count, hit pct, depth
    /// gap).
    pub value: u64,
    /// Human-readable one-liner (also the timeline instant's name).
    pub detail: String,
}

const NOT_SATURATED: u64 = u64::MAX;

/// Serializable dynamic state of a [`Watchdog`] for checkpointing; see
/// [`Watchdog::state`] / [`Watchdog::restore`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WatchdogState {
    pub diagnoses: Vec<Diagnosis>,
    pub track: Option<u32>,
    pub queued: u32,
    pub last_progress_ns: u64,
    pub stall_active: bool,
    pub flows: Vec<u32>,
    pub sat_since: Vec<u64>,
    pub sat_active: Vec<bool>,
    pub cache_window: Vec<(u64, u8, u32)>,
    pub thrash_active: bool,
    pub depths: Vec<u64>,
    pub imbalance_active: bool,
    pub corruption_window: Vec<u64>,
    pub storm_active: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheEvt {
    Hit = 0,
    Miss = 1,
    Evict = 2,
}

/// The detector state machine. Pure with respect to its inputs: same feed
/// sequence, same diagnoses.
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    /// Resource track names, indexed like the feed's `resource` argument.
    resource_names: Vec<String>,
    /// Node track names, indexed like the feed's `node` argument.
    node_names: Vec<String>,
    track: Option<TrackId>,
    diagnoses: Vec<Diagnosis>,
    /// Jobs currently runnable (queued, not started).
    queued: u32,
    last_progress_ns: u64,
    stall_active: bool,
    /// Active flows per resource.
    flows: Vec<u32>,
    /// Since when each resource has been at/above the saturation threshold
    /// (`NOT_SATURATED` when below).
    sat_since: Vec<u64>,
    sat_active: Vec<bool>,
    /// Sliding window of cache events: `(t_ns, kind, count)`.
    cache_window: VecDeque<(u64, CacheEvt, u32)>,
    thrash_active: bool,
    /// Latest sampled ready-queue depth per node.
    depths: Vec<u64>,
    imbalance_active: bool,
    /// Sliding window of corruption-detection times.
    corruption_window: VecDeque<u64>,
    storm_active: bool,
}

impl Watchdog {
    /// `node_names` / `resource_names` become diagnosis subjects; their
    /// indices must match the feed calls' `node` / `resource` arguments.
    pub fn new(cfg: WatchdogConfig, node_names: Vec<String>, resource_names: Vec<String>) -> Self {
        let n_res = resource_names.len();
        let n_nodes = node_names.len();
        Watchdog {
            cfg,
            resource_names,
            node_names,
            track: None,
            diagnoses: Vec::new(),
            queued: 0,
            last_progress_ns: 0,
            stall_active: false,
            flows: vec![0; n_res],
            sat_since: vec![NOT_SATURATED; n_res],
            sat_active: vec![false; n_res],
            cache_window: VecDeque::new(),
            thrash_active: false,
            depths: vec![0; n_nodes],
            imbalance_active: false,
            corruption_window: VecDeque::new(),
            storm_active: false,
        }
    }

    /// All diagnoses so far, in firing order.
    pub fn diagnoses(&self) -> &[Diagnosis] {
        &self.diagnoses
    }

    /// Moves the accumulated diagnoses out.
    pub fn take_diagnoses(&mut self) -> Vec<Diagnosis> {
        std::mem::take(&mut self.diagnoses)
    }

    // ---- feed ----------------------------------------------------------

    pub fn job_queued(&mut self, t_ns: u64, rec: &mut Recorder) {
        self.queued += 1;
        // Arrival of the first runnable job re-bases the stall clock: idle
        // time with an empty queue is not a stall.
        if self.queued == 1 {
            self.last_progress_ns = self.last_progress_ns.max(t_ns);
        }
        self.check(t_ns, rec);
    }

    pub fn job_started(&mut self, t_ns: u64, rec: &mut Recorder) {
        self.queued = self.queued.saturating_sub(1);
        self.progress(t_ns);
        self.check(t_ns, rec);
    }

    /// A job attempt finished (completed or failed) — either way the
    /// dispatch loop is making progress.
    pub fn job_finished(&mut self, t_ns: u64, rec: &mut Recorder) {
        self.progress(t_ns);
        self.check(t_ns, rec);
    }

    pub fn flow_started(&mut self, resource: usize, t_ns: u64, rec: &mut Recorder) {
        if let Some(f) = self.flows.get_mut(resource) {
            *f += 1;
        }
        self.check(t_ns, rec);
    }

    pub fn flow_ended(&mut self, resource: usize, t_ns: u64, rec: &mut Recorder) {
        if let Some(f) = self.flows.get_mut(resource) {
            *f = f.saturating_sub(1);
        }
        self.check(t_ns, rec);
    }

    pub fn cache_lookup(&mut self, hit: bool, t_ns: u64, rec: &mut Recorder) {
        let kind = if hit { CacheEvt::Hit } else { CacheEvt::Miss };
        self.cache_window.push_back((t_ns, kind, 1));
        self.check(t_ns, rec);
    }

    pub fn cache_evicted(&mut self, count: u32, t_ns: u64, rec: &mut Recorder) {
        self.cache_window.push_back((t_ns, CacheEvt::Evict, count));
        self.check(t_ns, rec);
    }

    /// One sampling round: the latest ready-queue depth of every node.
    pub fn queue_depths(&mut self, depths: &[u64], t_ns: u64, rec: &mut Recorder) {
        let n = self.depths.len().min(depths.len());
        self.depths[..n].copy_from_slice(&depths[..n]);
        self.check(t_ns, rec);
    }

    /// Verification caught corrupt data at `t_ns`.
    pub fn corruption_detected(&mut self, t_ns: u64, rec: &mut Recorder) {
        self.corruption_window.push_back(t_ns);
        self.check(t_ns, rec);
    }

    /// Clock tick with no semantic event (sampling cadence) — lets the
    /// stall and saturation detectors fire while nothing else happens.
    pub fn tick(&mut self, t_ns: u64, rec: &mut Recorder) {
        self.check(t_ns, rec);
    }

    // ---- detectors -----------------------------------------------------

    fn progress(&mut self, t_ns: u64) {
        self.last_progress_ns = t_ns;
        self.stall_active = false;
    }

    fn emit(&mut self, rec: &mut Recorder, d: Diagnosis) {
        let track = *self
            .track
            .get_or_insert_with(|| rec.add_track("watchdog", TrackKind::Diagnosis));
        rec.instant(track, d.t_ns, InstantKind::Diagnosis, d.detail.clone(), d.value);
        self.diagnoses.push(d);
    }

    fn check(&mut self, t_ns: u64, rec: &mut Recorder) {
        self.check_stall(t_ns, rec);
        self.check_saturation(t_ns, rec);
        self.check_thrash(t_ns, rec);
        self.check_imbalance(t_ns, rec);
        self.check_storm(t_ns, rec);
    }

    fn check_storm(&mut self, t_ns: u64, rec: &mut Recorder) {
        let horizon = t_ns.saturating_sub(self.cfg.storm_window_ns);
        while self.corruption_window.front().is_some_and(|&t| t < horizon) {
            self.corruption_window.pop_front();
        }
        let detections = self.corruption_window.len() as u64;
        let cond = detections >= u64::from(self.cfg.storm_min_detections);
        if cond && !self.storm_active {
            self.storm_active = true;
            let d = Diagnosis {
                t_ns,
                kind: DiagnosisKind::CorruptionStorm,
                subject: "integrity".to_owned(),
                value: detections,
                detail: format!(
                    "corruption-storm: {detections} detections within {:.0} ms",
                    self.cfg.storm_window_ns as f64 / 1e6
                ),
            };
            self.emit(rec, d);
        } else if !cond {
            self.storm_active = false;
        }
    }

    fn check_stall(&mut self, t_ns: u64, rec: &mut Recorder) {
        let gap = t_ns.saturating_sub(self.last_progress_ns);
        if self.queued > 0 && gap >= self.cfg.stall_ns {
            if !self.stall_active {
                self.stall_active = true;
                let d = Diagnosis {
                    t_ns,
                    kind: DiagnosisKind::Stall,
                    subject: "scheduler".to_owned(),
                    value: gap,
                    detail: format!(
                        "stall: {} runnable job(s), no dispatch progress for {:.0} ms",
                        self.queued,
                        gap as f64 / 1e6
                    ),
                };
                self.emit(rec, d);
            }
        } else if self.queued == 0 {
            self.stall_active = false;
        }
    }

    fn check_saturation(&mut self, t_ns: u64, rec: &mut Recorder) {
        for r in 0..self.flows.len() {
            if self.flows[r] >= self.cfg.saturation_flows {
                if self.sat_since[r] == NOT_SATURATED {
                    self.sat_since[r] = t_ns;
                }
                let held = t_ns.saturating_sub(self.sat_since[r]);
                if held >= self.cfg.saturation_ns && !self.sat_active[r] {
                    self.sat_active[r] = true;
                    let d = Diagnosis {
                        t_ns,
                        kind: DiagnosisKind::TierSaturation,
                        subject: self.resource_names[r].clone(),
                        value: u64::from(self.flows[r]),
                        detail: format!(
                            "tier-saturation: {} holds {} flows for {:.0} ms",
                            self.resource_names[r],
                            self.flows[r],
                            held as f64 / 1e6
                        ),
                    };
                    self.emit(rec, d);
                }
            } else {
                self.sat_since[r] = NOT_SATURATED;
                self.sat_active[r] = false;
            }
        }
    }

    fn check_thrash(&mut self, t_ns: u64, rec: &mut Recorder) {
        let horizon = t_ns.saturating_sub(self.cfg.thrash_window_ns);
        while self.cache_window.front().is_some_and(|&(t, _, _)| t < horizon) {
            self.cache_window.pop_front();
        }
        let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);
        for &(_, kind, n) in &self.cache_window {
            match kind {
                CacheEvt::Hit => hits += u64::from(n),
                CacheEvt::Miss => misses += u64::from(n),
                CacheEvt::Evict => evictions += u64::from(n),
            }
        }
        let lookups = hits + misses;
        let hit_pct = (hits * 100).checked_div(lookups).unwrap_or(100);
        let cond = lookups >= u64::from(self.cfg.thrash_min_lookups)
            && hit_pct <= u64::from(self.cfg.thrash_max_hit_pct)
            && evictions >= u64::from(self.cfg.thrash_min_evictions);
        if cond && !self.thrash_active {
            self.thrash_active = true;
            let d = Diagnosis {
                t_ns,
                kind: DiagnosisKind::CacheThrash,
                subject: "cache".to_owned(),
                value: hit_pct,
                detail: format!(
                    "cache-thrash: hit rate {hit_pct}% over {lookups} lookups, \
                     {evictions} evictions in window"
                ),
            };
            self.emit(rec, d);
        } else if !cond {
            self.thrash_active = false;
        }
    }

    fn check_imbalance(&mut self, t_ns: u64, rec: &mut Recorder) {
        if self.depths.len() < 2 {
            return;
        }
        let (mut min_d, mut max_d, mut max_node) = (u64::MAX, 0u64, 0usize);
        for (n, &d) in self.depths.iter().enumerate() {
            if d < min_d {
                min_d = d;
            }
            if d > max_d {
                max_d = d;
                max_node = n;
            }
        }
        let gap = max_d.saturating_sub(min_d);
        let cond = gap >= u64::from(self.cfg.imbalance_min_gap);
        if cond && !self.imbalance_active {
            self.imbalance_active = true;
            let d = Diagnosis {
                t_ns,
                kind: DiagnosisKind::QueueImbalance,
                subject: self.node_names[max_node].clone(),
                value: gap,
                detail: format!(
                    "queue-imbalance: {} at depth {max_d} vs cluster min {min_d}",
                    self.node_names[max_node]
                ),
            };
            self.emit(rec, d);
        } else if !cond {
            self.imbalance_active = false;
        }
    }

    // ---- checkpointing -------------------------------------------------

    /// Captures the dynamic state (config and subject names are rebuilt
    /// from the run configuration on restore).
    pub fn state(&self) -> WatchdogState {
        WatchdogState {
            diagnoses: self.diagnoses.clone(),
            track: self.track.map(|t| t.0),
            queued: self.queued,
            last_progress_ns: self.last_progress_ns,
            stall_active: self.stall_active,
            flows: self.flows.clone(),
            sat_since: self.sat_since.clone(),
            sat_active: self.sat_active.clone(),
            cache_window: self
                .cache_window
                .iter()
                .map(|&(t, k, n)| (t, k as u8, n))
                .collect(),
            thrash_active: self.thrash_active,
            depths: self.depths.clone(),
            imbalance_active: self.imbalance_active,
            corruption_window: self.corruption_window.iter().copied().collect(),
            storm_active: self.storm_active,
        }
    }

    /// Overlays a captured [`WatchdogState`] onto a freshly built watchdog
    /// with the same layout.
    pub fn restore(&mut self, st: WatchdogState) {
        self.diagnoses = st.diagnoses;
        self.track = st.track.map(TrackId);
        self.queued = st.queued;
        self.last_progress_ns = st.last_progress_ns;
        self.stall_active = st.stall_active;
        self.flows = st.flows;
        self.sat_since = st.sat_since;
        self.sat_active = st.sat_active;
        self.cache_window = st
            .cache_window
            .into_iter()
            .map(|(t, k, n)| {
                let kind = match k {
                    0 => CacheEvt::Hit,
                    1 => CacheEvt::Miss,
                    _ => CacheEvt::Evict,
                };
                (t, kind, n)
            })
            .collect();
        self.thrash_active = st.thrash_active;
        self.depths = st.depths;
        self.imbalance_active = st.imbalance_active;
        self.corruption_window = st.corruption_window.into();
        self.storm_active = st.storm_active;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TimelineEvent;

    fn wd(cfg: WatchdogConfig) -> (Watchdog, Recorder) {
        let w = Watchdog::new(
            cfg,
            vec!["node:0".into(), "node:1".into()],
            vec!["tier:beegfs".into(), "nic:0".into()],
        );
        (w, Recorder::new(4096))
    }

    #[test]
    fn stall_fires_once_and_rearms_after_progress() {
        let cfg = WatchdogConfig { stall_ns: 100, ..WatchdogConfig::default() };
        let (mut w, mut r) = wd(cfg);
        w.job_queued(0, &mut r);
        w.tick(50, &mut r);
        assert!(w.diagnoses().is_empty());
        w.tick(100, &mut r);
        w.tick(150, &mut r); // still stalled: no second firing
        assert_eq!(w.diagnoses().len(), 1);
        assert_eq!(w.diagnoses()[0].kind, DiagnosisKind::Stall);
        assert_eq!(w.diagnoses()[0].t_ns, 100);
        // Progress re-arms; a second stall fires again.
        w.job_started(160, &mut r);
        w.job_queued(170, &mut r);
        w.tick(280, &mut r);
        assert_eq!(w.diagnoses().len(), 2);
    }

    #[test]
    fn empty_queue_never_stalls() {
        let cfg = WatchdogConfig { stall_ns: 100, ..WatchdogConfig::default() };
        let (mut w, mut r) = wd(cfg);
        w.tick(10_000, &mut r);
        assert!(w.diagnoses().is_empty());
        // A job arriving late must not instantly trip on the idle gap.
        w.job_queued(10_000, &mut r);
        w.tick(10_050, &mut r);
        assert!(w.diagnoses().is_empty());
        w.tick(10_100, &mut r);
        assert_eq!(w.diagnoses().len(), 1);
    }

    #[test]
    fn saturation_requires_sustained_load() {
        let cfg = WatchdogConfig {
            saturation_flows: 2,
            saturation_ns: 100,
            ..WatchdogConfig::default()
        };
        let (mut w, mut r) = wd(cfg);
        w.flow_started(0, 0, &mut r);
        w.flow_started(0, 10, &mut r);
        w.tick(50, &mut r);
        assert!(w.diagnoses().is_empty(), "not sustained yet");
        w.tick(110, &mut r);
        assert_eq!(w.diagnoses().len(), 1);
        assert_eq!(w.diagnoses()[0].subject, "tier:beegfs");
        // Dropping below the threshold re-arms.
        w.flow_ended(0, 120, &mut r);
        w.flow_started(0, 130, &mut r);
        w.tick(300, &mut r);
        assert_eq!(w.diagnoses().len(), 2);
    }

    #[test]
    fn thrash_needs_low_hit_rate_and_churn() {
        let cfg = WatchdogConfig {
            thrash_window_ns: 1_000,
            thrash_min_lookups: 4,
            thrash_max_hit_pct: 50,
            thrash_min_evictions: 2,
            ..WatchdogConfig::default()
        };
        let (mut w, mut r) = wd(cfg);
        for t in 0..4 {
            w.cache_lookup(false, t, &mut r);
        }
        assert!(w.diagnoses().is_empty(), "no evictions yet");
        w.cache_evicted(2, 5, &mut r);
        assert_eq!(w.diagnoses().len(), 1);
        assert_eq!(w.diagnoses()[0].kind, DiagnosisKind::CacheThrash);
        // Window expiry clears the condition; fresh churn re-fires.
        w.tick(5_000, &mut r);
        for t in 5_000..5_004 {
            w.cache_lookup(false, t, &mut r);
        }
        w.cache_evicted(2, 5_004, &mut r);
        assert_eq!(w.diagnoses().len(), 2);
    }

    #[test]
    fn imbalance_is_edge_triggered() {
        let cfg = WatchdogConfig { imbalance_min_gap: 4, ..WatchdogConfig::default() };
        let (mut w, mut r) = wd(cfg);
        w.queue_depths(&[6, 1], 10, &mut r);
        w.queue_depths(&[7, 1], 20, &mut r);
        assert_eq!(w.diagnoses().len(), 1);
        assert_eq!(w.diagnoses()[0].subject, "node:0");
        w.queue_depths(&[2, 1], 30, &mut r);
        w.queue_depths(&[9, 1], 40, &mut r);
        assert_eq!(w.diagnoses().len(), 2);
    }

    #[test]
    fn corruption_storm_fires_on_burst_and_rearms() {
        let cfg = WatchdogConfig {
            storm_window_ns: 1_000,
            storm_min_detections: 3,
            ..WatchdogConfig::default()
        };
        let (mut w, mut r) = wd(cfg);
        w.corruption_detected(0, &mut r);
        w.corruption_detected(100, &mut r);
        assert!(w.diagnoses().is_empty(), "two detections are not a storm");
        w.corruption_detected(200, &mut r);
        assert_eq!(w.diagnoses().len(), 1);
        assert_eq!(w.diagnoses()[0].kind, DiagnosisKind::CorruptionStorm);
        assert_eq!(w.diagnoses()[0].value, 3);
        w.corruption_detected(300, &mut r); // still active: no second firing
        assert_eq!(w.diagnoses().len(), 1);
        // Window expiry clears the condition; a fresh burst re-fires.
        w.tick(10_000, &mut r);
        for t in [10_100, 10_200, 10_300] {
            w.corruption_detected(t, &mut r);
        }
        assert_eq!(w.diagnoses().len(), 2);
    }

    #[test]
    fn firings_land_on_lazy_diagnosis_track() {
        let cfg = WatchdogConfig { stall_ns: 100, ..WatchdogConfig::default() };
        let (mut w, mut r) = wd(cfg);
        assert!(r.tracks().iter().all(|t| t.kind != TrackKind::Diagnosis));
        w.job_queued(0, &mut r);
        w.tick(100, &mut r);
        let tl = r.finish(200);
        let track = tl
            .tracks
            .iter()
            .position(|t| t.kind == TrackKind::Diagnosis)
            .expect("diagnosis track created on first firing");
        let inst: Vec<_> = tl.instants().collect();
        assert_eq!(inst.len(), 1);
        assert_eq!(inst[0].kind, InstantKind::Diagnosis);
        assert_eq!(inst[0].track as usize, track);
        assert!(matches!(&tl.events[0], TimelineEvent::Instant(_)));
    }

    #[test]
    fn silent_watchdog_leaves_recorder_untouched() {
        let (mut w, mut r) = wd(WatchdogConfig::default());
        w.job_queued(0, &mut r);
        w.job_started(10, &mut r);
        w.flow_started(0, 20, &mut r);
        w.flow_ended(0, 30, &mut r);
        w.job_finished(40, &mut r);
        let tl = r.finish(50);
        assert_eq!(tl.events.len(), 0);
        assert!(tl.tracks.is_empty());
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let cfg = WatchdogConfig { stall_ns: 100, ..WatchdogConfig::default() };
        let (mut w, mut r) = wd(cfg.clone());
        w.job_queued(0, &mut r);
        w.tick(100, &mut r);
        w.job_started(110, &mut r);
        w.job_queued(120, &mut r);

        let st = w.state();
        let (mut w2, _) = wd(cfg);
        w2.restore(st);

        w.tick(250, &mut r);
        let mut r2 = Recorder::new(4096);
        w2.tick(250, &mut r2);
        assert_eq!(w.diagnoses(), w2.diagnoses());
    }
}
