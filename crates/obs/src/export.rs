//! Timeline exporters.
//!
//! Three renderings of a finished [`Timeline`]:
//! - [`chrome_trace`]: Chrome-trace-format JSON (the "JSON Array Format"
//!   with a `traceEvents` wrapper), loadable in Perfetto or
//!   `chrome://tracing`. Each track becomes a process (`pid = track + 1`,
//!   named via `M` metadata events); span lanes become thread rows (`tid`),
//!   so concurrent spans never overlap on a row.
//! - [`jsonl`]: one compact JSON object per line — a header line with
//!   tracks/metrics, then every event in emission order. Grep-friendly.
//! - [`ascii_summary`]: a terminal utilization summary.
//!
//! All three are pure functions of the timeline, so byte-identical
//! timelines produce byte-identical exports.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Number, Value};
use serde_json::to_string as json_compact;

use crate::timeline::{InstantKind, Sample, SpanKind, SpanOutcome, Timeline, TimelineEvent};

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn s(v: impl Into<String>) -> Value {
    Value::String(v.into())
}

fn u(v: u64) -> Value {
    Value::Number(Number::U64(v))
}

fn f(v: f64) -> Value {
    Value::Number(Number::F64(v))
}

/// Microsecond timestamp for Chrome trace format (which uses µs).
fn micros(t_ns: u64) -> Value {
    f(t_ns as f64 / 1000.0)
}

/// Stable lowercase label for a span kind (used as the trace `cat`).
pub fn span_kind_label(k: SpanKind) -> &'static str {
    match k {
        SpanKind::Queued => "queued",
        SpanKind::Run => "run",
        SpanKind::Retry => "retry",
        SpanKind::Recovery => "recovery",
        SpanKind::Flow => "flow",
        SpanKind::Stage => "stage",
        SpanKind::Checkpoint => "checkpoint",
    }
}

/// Stable lowercase label for a span outcome.
pub fn outcome_label(o: SpanOutcome) -> &'static str {
    match o {
        SpanOutcome::Ok => "ok",
        SpanOutcome::Failed => "failed",
        SpanOutcome::Cancelled => "cancelled",
    }
}

/// Stable lowercase label for an instant kind.
pub fn instant_kind_label(k: InstantKind) -> &'static str {
    match k {
        InstantKind::CacheHit => "cache-hit",
        InstantKind::CacheMiss => "cache-miss",
        InstantKind::CacheEvict => "cache-evict",
        InstantKind::CacheInvalidate => "cache-invalidate",
        InstantKind::NodeCrash => "node-crash",
        InstantKind::NodeRecover => "node-recover",
        InstantKind::CapacityChange => "capacity-change",
        InstantKind::IoError => "io-error",
        InstantKind::Diagnosis => "diagnosis",
        InstantKind::CorruptionInjected => "corruption-injected",
        InstantKind::CorruptionDetected => "corruption-detected",
        InstantKind::Quarantine => "quarantine",
        InstantKind::Reverify => "reverify",
        InstantKind::LedgerCommit => "ledger-commit",
        InstantKind::Shed => "shed",
        InstantKind::Window => "window",
    }
}

/// Renders the timeline as Chrome-trace-format JSON for Perfetto /
/// `chrome://tracing`. One process per track (in track order, so the UI
/// shows nodes, then resources, then stage/fault tracks), one thread row
/// per span lane.
pub fn chrome_trace(tl: &Timeline) -> String {
    let mut events: Vec<Value> = Vec::with_capacity(tl.events.len() + 2 * tl.tracks.len());

    for (i, track) in tl.tracks.iter().enumerate() {
        let pid = i as u64 + 1;
        events.push(obj(vec![
            ("name", s("process_name")),
            ("ph", s("M")),
            ("pid", u(pid)),
            ("tid", u(0)),
            ("args", obj(vec![("name", s(&track.name))])),
        ]));
        events.push(obj(vec![
            ("name", s("process_sort_index")),
            ("ph", s("M")),
            ("pid", u(pid)),
            ("tid", u(0)),
            ("args", obj(vec![("sort_index", u(i as u64))])),
        ]));
    }

    for ev in &tl.events {
        match ev {
            TimelineEvent::Span(sp) => {
                let mut args = vec![
                    ("id", u(sp.id)),
                    ("outcome", s(outcome_label(sp.outcome))),
                ];
                if let Some(job) = sp.meta.job {
                    args.push(("job", u(u64::from(job))));
                }
                if let Some(tag) = &sp.meta.tag {
                    args.push(("tag", s(tag)));
                }
                if let Some(src) = &sp.meta.src {
                    args.push(("src", s(src)));
                }
                if let Some(dst) = &sp.meta.dst {
                    args.push(("dst", s(dst)));
                }
                if let Some(bytes) = sp.meta.bytes {
                    args.push(("bytes", u(bytes)));
                }
                events.push(obj(vec![
                    ("name", s(&sp.name)),
                    ("cat", s(span_kind_label(sp.kind))),
                    ("ph", s("X")),
                    ("ts", micros(sp.start_ns)),
                    ("dur", micros(sp.end_ns - sp.start_ns)),
                    ("pid", u(u64::from(sp.track) + 1)),
                    ("tid", u(u64::from(sp.lane))),
                    ("args", obj(args)),
                ]));
            }
            TimelineEvent::Instant(inst) => {
                events.push(obj(vec![
                    ("name", s(&inst.name)),
                    ("cat", s(instant_kind_label(inst.kind))),
                    ("ph", s("i")),
                    ("s", s("p")),
                    ("ts", micros(inst.t_ns)),
                    ("pid", u(u64::from(inst.track) + 1)),
                    ("tid", u(0)),
                    ("args", obj(vec![("value", u(inst.value))])),
                ]));
            }
            TimelineEvent::Sample(sm) => {
                events.push(obj(vec![
                    ("name", s(&sm.name)),
                    ("ph", s("C")),
                    ("ts", micros(sm.t_ns)),
                    ("pid", u(u64::from(sm.track) + 1)),
                    ("tid", u(0)),
                    ("args", obj(vec![("value", f(sm.value))])),
                ]));
            }
        }
    }

    let root = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", s("ms")),
        (
            "otherData",
            obj(vec![
                ("end_ns", u(tl.end_ns)),
                ("dropped", u(tl.dropped)),
                ("saturated_lanes", u(tl.saturated_lanes)),
            ]),
        ),
    ]);
    json_compact(&root).expect("chrome trace serialization is infallible")
}

/// Renders the timeline as a compact JSONL stream: a header object (tracks,
/// end time, drop count, metrics snapshot) followed by one line per event
/// in emission order.
pub fn jsonl(tl: &Timeline) -> String {
    let header = obj(vec![
        ("tracks", serde::Serialize::to_value(&tl.tracks)),
        ("end_ns", u(tl.end_ns)),
        ("dropped", u(tl.dropped)),
        ("saturated_lanes", u(tl.saturated_lanes)),
        ("metrics", serde::Serialize::to_value(&tl.metrics)),
    ]);
    let mut out = json_compact(&header).expect("jsonl header serialization is infallible");
    for ev in &tl.events {
        out.push('\n');
        out.push_str(&json_compact(ev).expect("jsonl event serialization is infallible"));
    }
    out.push('\n');
    out
}

struct SampleStats {
    count: u64,
    sum: f64,
    max: f64,
}

impl SampleStats {
    fn add(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }
}

/// Renders a terminal summary: span/instant counts by kind and per-track
/// sample statistics (mean/max utilization, queue depths, …).
pub fn ascii_summary(tl: &Timeline) -> String {
    let mut span_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut instant_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut sample_stats: BTreeMap<(u32, &str), SampleStats> = BTreeMap::new();

    for ev in &tl.events {
        match ev {
            TimelineEvent::Span(sp) => {
                *span_counts.entry(span_kind_label(sp.kind)).or_insert(0) += 1;
            }
            TimelineEvent::Instant(inst) => {
                *instant_counts.entry(instant_kind_label(inst.kind)).or_insert(0) += 1;
            }
            TimelineEvent::Sample(Sample { track, name, value, .. }) => {
                sample_stats
                    .entry((*track, name.as_str()))
                    .or_insert(SampleStats { count: 0, sum: 0.0, max: f64::NEG_INFINITY })
                    .add(*value);
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline: {} events on {} tracks, end = {:.3} ms, dropped = {}, saturated lanes = {}",
        tl.events.len(),
        tl.tracks.len(),
        tl.end_ns as f64 / 1e6,
        tl.dropped,
        tl.saturated_lanes
    );
    if tl.dropped > 0 {
        let _ = writeln!(
            out,
            "WARNING: {} event(s) dropped at the recorder's buffer limit — counts below \
             are incomplete (raise ObsConfig.max_events)",
            tl.dropped
        );
    }

    if !span_counts.is_empty() {
        let _ = writeln!(out, "spans:");
        for (kind, n) in &span_counts {
            let _ = writeln!(out, "  {kind:<12} {n}");
        }
    }
    if !instant_counts.is_empty() {
        let _ = writeln!(out, "instants:");
        for (kind, n) in &instant_counts {
            let _ = writeln!(out, "  {kind:<18} {n}");
        }
    }
    if !sample_stats.is_empty() {
        let _ = writeln!(out, "samples (per track):");
        let _ = writeln!(out, "  {:<24} {:<16} {:>8} {:>10} {:>10}", "track", "metric", "n", "mean", "max");
        for ((track, name), st) in &sample_stats {
            let track_name = tl
                .tracks
                .get(*track as usize)
                .map_or("?", |t| t.name.as_str());
            let mean = if st.count == 0 { 0.0 } else { st.sum / st.count as f64 };
            let _ = writeln!(
                out,
                "  {:<24} {:<16} {:>8} {:>10.3} {:>10.3}",
                track_name, name, st.count, mean, st.max
            );
        }
    }
    if !tl.metrics.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for c in &tl.metrics.counters {
            let _ = writeln!(out, "  {:<28} {}", c.name, c.value);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{Recorder, SpanMeta, TrackKind};

    fn tiny_timeline() -> Timeline {
        let mut r = Recorder::new(1024);
        let node = r.add_track("node:0", TrackKind::Node);
        let tier = r.add_track("tier:beegfs", TrackKind::Resource);
        let h = r.begin_span(
            node,
            1_000,
            "job-a",
            SpanKind::Run,
            SpanMeta { job: Some(0), ..SpanMeta::default() },
        );
        let fl = r.begin_span(
            tier,
            1_500,
            "write job-a",
            SpanKind::Flow,
            SpanMeta {
                job: Some(0),
                tag: Some("write".into()),
                src: Some("node:0".into()),
                dst: Some("tier:beegfs".into()),
                bytes: Some(4096),
            },
        );
        r.instant(tier, 1_200, InstantKind::CacheMiss, "f.dat", 4096);
        r.sample(node, 2_000, "queue_depth", 3.0);
        r.end_span(fl, 2_500, SpanOutcome::Ok);
        r.end_span(h, 3_000, SpanOutcome::Ok);
        let hits = r.metrics.counter("cache_hits");
        r.metrics.inc(hits, 7);
        r.finish(3_000)
    }

    #[test]
    fn chrome_trace_parses_and_has_required_fields() {
        let out = chrome_trace(&tiny_timeline());
        let v: Value = serde_json::from_str(&out).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        // 2 metadata events per track + 4 real events.
        assert_eq!(events.len(), 2 * 2 + 4);
        for ev in events {
            assert!(ev["ph"].as_str().is_some(), "missing ph: {ev:?}");
            assert!(ev["pid"].as_u64().is_some(), "missing pid: {ev:?}");
            assert!(ev["tid"].as_u64().is_some(), "missing tid: {ev:?}");
            if ev["ph"].as_str() != Some("M") {
                assert!(ev["ts"].as_f64().is_some(), "missing ts: {ev:?}");
            }
        }
        let complete: Vec<&Value> =
            events.iter().filter(|e| e["ph"].as_str() == Some("X")).collect();
        assert_eq!(complete.len(), 2);
        let flow = complete.iter().find(|e| e["cat"].as_str() == Some("flow")).unwrap();
        assert_eq!(flow["args"]["bytes"].as_u64(), Some(4096));
        assert_eq!(flow["args"]["src"].as_str(), Some("node:0"));
        assert_eq!(flow["ts"].as_f64(), Some(1.5));
        assert_eq!(flow["dur"].as_f64(), Some(1.0));
    }

    #[test]
    fn chrome_trace_is_deterministic() {
        assert_eq!(chrome_trace(&tiny_timeline()), chrome_trace(&tiny_timeline()));
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let out = jsonl(&tiny_timeline());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1 + 4);
        for line in &lines {
            let _: Value = serde_json::from_str(line).unwrap();
        }
        let header: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(header["end_ns"].as_u64(), Some(3_000));
        assert_eq!(header["tracks"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn ascii_summary_mentions_kinds_and_counters() {
        let out = ascii_summary(&tiny_timeline());
        assert!(out.contains("run"), "{out}");
        assert!(out.contains("flow"), "{out}");
        assert!(out.contains("cache-miss"), "{out}");
        assert!(out.contains("queue_depth"), "{out}");
        assert!(out.contains("cache_hits"), "{out}");
    }

    #[test]
    fn exports_surface_drop_and_lane_counts() {
        // Two overlapping spans on one track → 2 saturated lanes; a buffer
        // of 3 drops the rest.
        let mut r = Recorder::new(3);
        let t = r.add_track("n", TrackKind::Node);
        let a = r.begin_span(t, 0, "a", SpanKind::Run, SpanMeta::default());
        let b = r.begin_span(t, 1, "b", SpanKind::Run, SpanMeta::default());
        r.end_span(a, 5, SpanOutcome::Ok);
        r.end_span(b, 6, SpanOutcome::Ok);
        for i in 0..4 {
            r.instant(t, i, InstantKind::CacheHit, "h", 1);
        }
        let tl = r.finish(6);
        assert_eq!((tl.dropped, tl.saturated_lanes), (3, 2));

        let summary = ascii_summary(&tl);
        assert!(summary.contains("dropped = 3"), "{summary}");
        assert!(summary.contains("saturated lanes = 2"), "{summary}");
        assert!(summary.contains("WARNING"), "{summary}");

        let header: Value = serde_json::from_str(jsonl(&tl).lines().next().unwrap()).unwrap();
        assert_eq!(header["dropped"].as_u64(), Some(3));
        assert_eq!(header["saturated_lanes"].as_u64(), Some(2));

        let trace: Value = serde_json::from_str(&chrome_trace(&tl)).unwrap();
        assert_eq!(trace["otherData"]["dropped"].as_u64(), Some(3));
        assert_eq!(trace["otherData"]["saturated_lanes"].as_u64(), Some(2));
    }
}
