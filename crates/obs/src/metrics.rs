//! A small from-scratch metrics registry: named counters, gauges, and
//! fixed-bucket histograms (no external metrics crates per the dependency
//! policy). IDs are plain indices handed out at registration; hot-path
//! updates are an array write. [`MetricsRegistry::snapshot`] produces a
//! serializable, deterministic [`MetricsSnapshot`] (registration order).

use serde::{Deserialize, Serialize};

/// Handle to a counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Debug, Clone)]
struct Histogram {
    /// Upper bounds of the first `bounds.len()` buckets (ascending); one
    /// implicit overflow bucket follows.
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Snapshot of one counter.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
}

/// Snapshot of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GaugeSnapshot {
    pub name: String,
    pub value: f64,
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    pub name: String,
    /// Bucket upper bounds; `counts` has one extra overflow bucket.
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated value at quantile `q` (0.0..=1.0) by linear interpolation
    /// within the containing bucket. The first bucket interpolates from 0
    /// (latencies are non-negative); the overflow bucket is clamped to the
    /// observed `max` since it has no upper edge. Empty histograms report 0.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c;
            if (next as f64) >= rank && c > 0 {
                if i >= self.bounds.len() {
                    return self.max;
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let into = (rank - cum as f64) / c as f64;
                return (lo + (hi - lo) * into).min(self.max).max(self.min);
            }
            cum = next;
        }
        self.max
    }
}

/// `count` ascending bucket upper edges starting at `start`, each `factor`
/// times the previous — the standard shape for wall-clock latencies that
/// span µs to seconds, where the fixed linear sim-time bounds would dump
/// everything into one bucket. The registry appends its usual implicit
/// overflow bucket on top.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0, "exponential buckets must start above 0");
    assert!(factor > 1.0, "exponential bucket factor must exceed 1");
    assert!(count >= 1, "need at least one bucket edge");
    let mut edges = Vec::with_capacity(count);
    let mut edge = start;
    for _ in 0..count {
        edges.push(edge);
        edge *= factor;
    }
    edges
}

/// Deterministic snapshot of a whole registry, in registration order.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSnapshot>,
    pub gauges: Vec<GaugeSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
    }

    /// Value of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Checkpointable state of one histogram; floats as IEEE-754 bits (the
/// min/max of an empty histogram are ±∞, which JSON cannot represent).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramState {
    pub name: String,
    pub bounds_bits: Vec<u64>,
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum_bits: u64,
    pub min_bits: u64,
    pub max_bits: u64,
}

/// Full-fidelity registry state for checkpoint/restore (see
/// [`MetricsRegistry::state`]). Gauge values travel as f64 bit patterns.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistryState {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<HistogramState>,
}

/// The registry. Registration dedups by name (same name → same handle), so
/// instruments can be declared idempotently.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) a counter.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_owned(), 0));
        CounterId(self.counters.len() - 1)
    }

    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Registers (or finds) a gauge.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_owned(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Registers (or finds) a fixed-bucket histogram. `bounds` are ascending
    /// bucket upper limits; an overflow bucket is added automatically.
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "histogram bounds must ascend");
        self.histograms.push((
            name.to_owned(),
            Histogram {
                bounds: bounds.to_vec(),
                counts: vec![0; bounds.len() + 1],
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            },
        ));
        HistogramId(self.histograms.len() - 1)
    }

    pub fn observe(&mut self, id: HistogramId, value: f64) {
        let h = &mut self.histograms[id.0].1;
        let bucket = h.bounds.partition_point(|&b| b < value);
        h.counts[bucket] += 1;
        h.count += 1;
        h.sum += value;
        h.min = h.min.min(value);
        h.max = h.max.max(value);
    }

    /// Full-fidelity serializable state for checkpoint/restore. Unlike
    /// [`MetricsRegistry::snapshot`] (an export artifact that masks the
    /// ±∞ min/max sentinels of empty histograms), this preserves every
    /// float as its IEEE-754 bit pattern so a restore is bit-exact.
    pub fn state(&self) -> RegistryState {
        RegistryState {
            counters: self.counters.clone(),
            gauges: self.gauges.iter().map(|(n, v)| (n.clone(), v.to_bits())).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| HistogramState {
                    name: n.clone(),
                    bounds_bits: h.bounds.iter().map(|b| b.to_bits()).collect(),
                    counts: h.counts.clone(),
                    count: h.count,
                    sum_bits: h.sum.to_bits(),
                    min_bits: h.min.to_bits(),
                    max_bits: h.max.to_bits(),
                })
                .collect(),
        }
    }

    /// Replaces the registry contents with a captured [`RegistryState`].
    /// Instrument handles remain valid as long as the state was captured
    /// from a registry with the same registration sequence (ids are dense
    /// registration-order indices).
    pub fn restore(&mut self, st: &RegistryState) {
        self.counters = st.counters.clone();
        self.gauges = st.gauges.iter().map(|(n, v)| (n.clone(), f64::from_bits(*v))).collect();
        self.histograms = st
            .histograms
            .iter()
            .map(|h| {
                (
                    h.name.clone(),
                    Histogram {
                        bounds: h.bounds_bits.iter().map(|b| f64::from_bits(*b)).collect(),
                        counts: h.counts.clone(),
                        count: h.count,
                        sum: f64::from_bits(h.sum_bits),
                        min: f64::from_bits(h.min_bits),
                        max: f64::from_bits(h.max_bits),
                    },
                )
            })
            .collect();
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(n, v)| CounterSnapshot { name: n.clone(), value: *v })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(n, v)| GaugeSnapshot { name: n.clone(), value: *v })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| HistogramSnapshot {
                    name: n.clone(),
                    bounds: h.bounds.clone(),
                    counts: h.counts.clone(),
                    count: h.count,
                    sum: h.sum,
                    min: if h.count == 0 { 0.0 } else { h.min },
                    max: if h.count == 0 { 0.0 } else { h.max },
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_dedup_by_name() {
        let mut m = MetricsRegistry::new();
        let a = m.counter("hits");
        let b = m.counter("hits");
        assert_eq!(a, b);
        m.inc(a, 2);
        m.inc(b, 3);
        assert_eq!(m.snapshot().counter("hits"), 5);
    }

    #[test]
    fn gauges_keep_last_value() {
        let mut m = MetricsRegistry::new();
        let g = m.gauge("depth");
        m.set(g, 4.0);
        m.set(g, 1.5);
        assert_eq!(m.snapshot().gauge("depth"), Some(1.5));
    }

    #[test]
    fn histogram_buckets_boundaries() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat", &[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 10.0, 99.0, 1000.0] {
            m.observe(h, v);
        }
        let s = m.snapshot();
        let hs = s.histogram("lat").unwrap();
        // `< bound` partition: 0.5,1.0 → b0; 5,10 → b1; 99 → b2; 1000 → overflow.
        assert_eq!(hs.counts, vec![2, 2, 1, 1]);
        assert_eq!(hs.count, 6);
        assert_eq!(hs.min, 0.5);
        assert_eq!(hs.max, 1000.0);
        assert!((hs.mean() - 1115.5 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshot_is_finite() {
        let mut m = MetricsRegistry::new();
        m.histogram("empty", &[1.0]);
        let s = m.snapshot();
        let h = s.histogram("empty").unwrap();
        assert_eq!((h.min, h.max, h.count), (0.0, 0.0, 0));
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn unsorted_bounds_rejected() {
        MetricsRegistry::new().histogram("bad", &[2.0, 1.0]);
    }

    #[test]
    fn exponential_buckets_cover_microseconds_to_seconds() {
        // 50µs doubling 15 times reaches ~1.6s: a µs–s latency range that
        // fixed ms-scale sim bounds would collapse into one bucket.
        let edges = exponential_buckets(50.0, 2.0, 16);
        assert_eq!(edges.len(), 16);
        assert_eq!(edges[0], 50.0);
        assert_eq!(edges[1], 100.0);
        assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must ascend");
        assert!(edges[15] > 1_000_000.0, "top edge must exceed one second in µs");
        // Registry accepts them directly as caller-supplied bounds.
        let mut m = MetricsRegistry::new();
        let h = m.histogram("submit_us", &edges);
        for v in [10.0, 50.0, 51.0, 99.0, 5_000_000.0] {
            m.observe(h, v);
        }
        let s = m.snapshot();
        let hs = s.histogram("submit_us").unwrap();
        // `< bound` partition (edges upper-inclusive): 10,50 → b0; 51,99 → b1;
        // 5s → overflow.
        assert_eq!(hs.counts[0], 2);
        assert_eq!(hs.counts[1], 2);
        assert_eq!(hs.counts[16], 1, "beyond the top edge lands in overflow");
        assert_eq!(hs.count, 5);
    }

    #[test]
    #[should_panic(expected = "start above 0")]
    fn exponential_buckets_reject_zero_start() {
        exponential_buckets(0.0, 2.0, 4);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn exponential_buckets_reject_shrinking_factor() {
        exponential_buckets(1.0, 1.0, 4);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat", &exponential_buckets(1.0, 2.0, 8));
        // 100 observations uniformly in bucket (4, 8].
        for i in 0..100 {
            m.observe(h, 4.0 + 4.0 * (i as f64 + 0.5) / 100.0);
        }
        let s = m.snapshot();
        let hs = s.histogram("lat").unwrap();
        let p50 = hs.quantile(0.5);
        assert!((4.0..=8.0).contains(&p50), "p50 {p50} outside its bucket");
        assert!((p50 - 6.0).abs() < 0.2, "p50 {p50} should sit mid-bucket");
        assert!(hs.quantile(0.99) <= hs.max);
        assert_eq!(hs.quantile(0.0).max(hs.min), hs.quantile(0.0));
    }

    #[test]
    fn quantile_handles_overflow_and_empty() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat", &[1.0, 2.0]);
        assert_eq!(m.snapshot().histogram("lat").unwrap().quantile(0.99), 0.0);
        m.observe(h, 50.0); // overflow bucket only
        let s = m.snapshot();
        let hs = s.histogram("lat").unwrap();
        assert_eq!(hs.quantile(0.5), 50.0, "overflow bucket clamps to max");
        assert_eq!(hs.quantile(1.0), 50.0);
    }
}
