//! The timeline event model and recorder.
//!
//! A [`Timeline`] is a list of *tracks* (one per node, bandwidth resource,
//! plus engine-stage and fault tracks) and a bounded, append-only list of
//! events: completed [`Span`]s, point-in-time [`TInstant`]s, and periodic
//! [`Sample`]s. The [`Recorder`] hands out stable span IDs at open time (in
//! deterministic event-loop order) and appends the completed span at close
//! time, so same-seed runs produce byte-identical event lists.
//!
//! Within a track, concurrent spans are spread across *lanes*: the recorder
//! assigns each opening span the lowest lane with no open span, so exported
//! Chrome-trace slices never overlap on one thread row and Perfetto renders
//! them without merge heuristics.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::{Arc, Mutex, Weak};

use serde::{Deserialize, Serialize};

use crate::metrics::{MetricsRegistry, MetricsSnapshot, RegistryState};

/// Index of a track (assigned in registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackId(pub u32);

/// What a track represents (drives exporter grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrackKind {
    /// A compute node: job attempt spans + queue-depth samples.
    Node,
    /// A bandwidth resource (tier, NIC, cache level): flow spans + samples.
    Resource,
    /// Engine workflow stages.
    Stage,
    /// Fault-plan events (crashes, recoveries, degradations, I/O errors).
    Fault,
    /// Watchdog diagnoses. Registered lazily on the first firing, so a run
    /// in which no detector trips records a timeline byte-identical to one
    /// with watchdogs disabled.
    Diagnosis,
}

/// One timeline track.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Track {
    pub name: String,
    pub kind: TrackKind,
}

/// Span classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// A job sitting in its node's ready queue.
    Queued,
    /// First attempt of a job.
    Run,
    /// Retry attempt (replacement of a failed job).
    Retry,
    /// Lineage-recovery re-run.
    Recovery,
    /// One transfer through the flow network.
    Flow,
    /// An engine workflow stage.
    Stage,
    /// A checkpoint being written (engine save point).
    Checkpoint,
}

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanOutcome {
    Ok,
    /// The job attempt failed (crash, transient I/O error, lost input).
    Failed,
    /// The flow (or still-open span at finish time) was cancelled.
    Cancelled,
}

/// Point-event classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstantKind {
    CacheHit,
    CacheMiss,
    CacheEvict,
    CacheInvalidate,
    NodeCrash,
    NodeRecover,
    /// A fault-plan (or injected) capacity change took effect.
    CapacityChange,
    /// A transient I/O error hit a job's operation.
    IoError,
    /// A watchdog diagnosis (stall, saturation, thrash, imbalance) fired.
    Diagnosis,
    /// A silent corruption was injected into stored or in-flight data.
    CorruptionInjected,
    /// Checksum verification caught corrupt data.
    CorruptionDetected,
    /// A tainted file version was quarantined (all replicas dropped).
    Quarantine,
    /// A re-produced version of a quarantined file passed verification.
    Reverify,
    /// A write-ahead ledger commit hit disk (value: latency in µs).
    LedgerCommit,
    /// An admission request was shed (value: queue depth at rejection).
    Shed,
    /// A progress window / checkpoint boundary was reached.
    Window,
}

/// Optional structured payload attached to a span at open time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanMeta {
    /// Owning simulator job id.
    pub job: Option<u32>,
    /// Flow tag label (e.g. "network-read") for flow spans.
    pub tag: Option<String>,
    /// First resource on a flow's path.
    pub src: Option<String>,
    /// Last resource on a flow's path.
    pub dst: Option<String>,
    /// Transfer size for flow spans (read-equivalent bytes).
    pub bytes: Option<u64>,
}

/// A completed span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Stable ID, assigned at open in deterministic event-loop order.
    pub id: u64,
    pub track: u32,
    /// Display lane within the track (no two open spans share a lane).
    pub lane: u32,
    pub name: String,
    pub kind: SpanKind,
    pub start_ns: u64,
    pub end_ns: u64,
    pub outcome: SpanOutcome,
    pub meta: SpanMeta,
}

/// A point event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TInstant {
    pub track: u32,
    pub t_ns: u64,
    pub kind: InstantKind,
    pub name: String,
    /// Kind-dependent magnitude (bytes, a node id, a capacity, …).
    pub value: u64,
}

/// One periodic sample of a named per-track quantity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    pub track: u32,
    pub t_ns: u64,
    pub name: String,
    pub value: f64,
}

/// One recorded event, in emission order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TimelineEvent {
    Span(Span),
    Instant(TInstant),
    Sample(Sample),
}

impl TimelineEvent {
    /// Emission timestamp (spans are emitted at close time).
    pub fn t_ns(&self) -> u64 {
        match self {
            TimelineEvent::Span(s) => s.end_ns,
            TimelineEvent::Instant(i) => i.t_ns,
            TimelineEvent::Sample(s) => s.t_ns,
        }
    }
}

/// The finished, exportable artifact of one recorded run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Timeline {
    pub tracks: Vec<Track>,
    /// Bounded append-only event list in emission order.
    pub events: Vec<TimelineEvent>,
    /// Sim-time at which the timeline was finalized (the makespan).
    pub end_ns: u64,
    /// Events discarded because the buffer limit was reached.
    pub dropped: u64,
    /// Total display lanes the run saturated: the sum over tracks of the
    /// peak number of concurrently open spans (each track's lane high-water
    /// mark) — the row count a Perfetto render of this timeline needs.
    pub saturated_lanes: u64,
    /// Final snapshot of the run's metrics registry.
    pub metrics: MetricsSnapshot,
}

impl Timeline {
    /// Iterates completed spans.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.events.iter().filter_map(|e| match e {
            TimelineEvent::Span(s) => Some(s),
            _ => None,
        })
    }

    /// Iterates instants.
    pub fn instants(&self) -> impl Iterator<Item = &TInstant> {
        self.events.iter().filter_map(|e| match e {
            TimelineEvent::Instant(i) => Some(i),
            _ => None,
        })
    }

    /// Iterates samples.
    pub fn samples(&self) -> impl Iterator<Item = &Sample> {
        self.events.iter().filter_map(|e| match e {
            TimelineEvent::Sample(s) => Some(s),
            _ => None,
        })
    }
}

/// Shared core of one subscriber's bounded ring buffer.
#[derive(Debug)]
struct StreamInner {
    buf: VecDeque<TimelineEvent>,
    capacity: usize,
    dropped: u64,
}

/// A bounded live view of a [`Recorder`]'s event stream, created with
/// [`Recorder::subscribe`].
///
/// The recorder pushes a clone of every event it *records* (drops from the
/// recorder's own bounded buffer are never seen here), in exactly the order
/// they land in the recorded timeline. The stream itself is a ring buffer:
/// when more than `capacity` events accumulate between drains, the oldest
/// are discarded and counted in [`EventStream::dropped`], so a slow consumer
/// always sees the most recent window of activity with exact drop
/// accounting. Dropping the handle detaches the subscriber.
#[derive(Debug)]
pub struct EventStream {
    inner: Arc<Mutex<StreamInner>>,
}

impl EventStream {
    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<TimelineEvent> {
        let mut g = self.inner.lock().expect("event stream lock");
        g.buf.drain(..).collect()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event stream lock").buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events this subscriber lost to ring-buffer overflow (cumulative).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("event stream lock").dropped
    }
}

/// Handle to a span opened on a [`Recorder`] (the span's stable ID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpanHandle(pub u64);

/// Checkpointable state of one open (not yet closed) span.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenSpanState {
    pub id: u64,
    pub track: u32,
    pub lane: u32,
    pub name: String,
    pub kind: SpanKind,
    pub start_ns: u64,
    pub meta: SpanMeta,
}

/// Checkpointable state of one track's lane allocator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaneState {
    /// Freed lanes, ascending.
    pub free: Vec<u32>,
    pub next: u32,
}

/// Complete serializable state of an in-flight [`Recorder`]; see
/// [`Recorder::state`] / [`Recorder::from_state`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecorderState {
    pub tracks: Vec<Track>,
    pub events: Vec<TimelineEvent>,
    pub max_events: u64,
    pub dropped: u64,
    pub next_span: u64,
    /// Open spans sorted by id.
    pub open: Vec<OpenSpanState>,
    pub lanes: Vec<LaneState>,
    pub metrics: RegistryState,
}

#[derive(Debug)]
struct OpenSpan {
    track: u32,
    lane: u32,
    name: String,
    kind: SpanKind,
    start_ns: u64,
    meta: SpanMeta,
}

/// Per-track lane allocator: lowest free lane wins (deterministic).
#[derive(Debug, Default)]
struct Lanes {
    free: BinaryHeap<Reverse<u32>>,
    next: u32,
}

impl Lanes {
    fn acquire(&mut self) -> u32 {
        match self.free.pop() {
            Some(Reverse(l)) => l,
            None => {
                let l = self.next;
                self.next += 1;
                l
            }
        }
    }

    fn release(&mut self, lane: u32) {
        self.free.push(Reverse(lane));
    }
}

/// The in-flight recorder: tracks, open spans, the bounded event buffer,
/// and the run's metrics registry. [`Recorder::finish`] turns it into an
/// immutable [`Timeline`].
#[derive(Debug)]
pub struct Recorder {
    tracks: Vec<Track>,
    events: Vec<TimelineEvent>,
    max_events: usize,
    dropped: u64,
    next_span: u64,
    open: HashMap<u64, OpenSpan>,
    lanes: Vec<Lanes>,
    /// Live subscribers (weak: a dropped [`EventStream`] detaches itself).
    /// Transient by design — never part of [`RecorderState`], so checkpoint
    /// round-trips are unaffected by who is watching.
    subscribers: Vec<Weak<Mutex<StreamInner>>>,
    /// The run's metrics registry (counters/gauges/histograms), snapshotted
    /// into the timeline at finish.
    pub metrics: MetricsRegistry,
}

impl Recorder {
    pub fn new(max_events: usize) -> Self {
        Recorder {
            tracks: Vec::new(),
            events: Vec::new(),
            max_events,
            dropped: 0,
            next_span: 0,
            open: HashMap::new(),
            lanes: Vec::new(),
            subscribers: Vec::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Attaches a live subscriber with a ring buffer of `capacity` events.
    ///
    /// Every subsequently *recorded* event is cloned into the stream in
    /// recorded order; with enough capacity the drained sequence is exactly
    /// the recorded timeline suffix. With no subscribers attached the hot
    /// path pays only an `is_empty` check and no clone.
    pub fn subscribe(&mut self, capacity: usize) -> EventStream {
        assert!(capacity > 0, "subscriber capacity must be positive");
        let inner = Arc::new(Mutex::new(StreamInner {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }));
        self.subscribers.push(Arc::downgrade(&inner));
        EventStream { inner }
    }

    /// Live subscribers still attached.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.iter().filter(|w| w.strong_count() > 0).count()
    }

    /// Registers a track; IDs are assigned in registration order.
    pub fn add_track(&mut self, name: impl Into<String>, kind: TrackKind) -> TrackId {
        let id = TrackId(self.tracks.len() as u32);
        self.tracks.push(Track { name: name.into(), kind });
        self.lanes.push(Lanes::default());
        id
    }

    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    fn push(&mut self, ev: TimelineEvent) {
        if self.events.len() < self.max_events {
            if !self.subscribers.is_empty() {
                self.feed_subscribers(&ev);
            }
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Clones `ev` into every live subscriber ring (and prunes dead ones).
    fn feed_subscribers(&mut self, ev: &TimelineEvent) {
        self.subscribers.retain(|weak| {
            let Some(inner) = weak.upgrade() else { return false };
            let mut g = inner.lock().expect("event stream lock");
            if g.buf.len() == g.capacity {
                g.buf.pop_front();
                g.dropped += 1;
            }
            g.buf.push_back(ev.clone());
            true
        });
    }

    /// Opens a span; the returned handle's ID is stable across same-seed
    /// runs. The span is appended to the buffer when closed.
    pub fn begin_span(
        &mut self,
        track: TrackId,
        t_ns: u64,
        name: impl Into<String>,
        kind: SpanKind,
        meta: SpanMeta,
    ) -> SpanHandle {
        let id = self.next_span;
        self.next_span += 1;
        let lane = self.lanes[track.0 as usize].acquire();
        self.open.insert(
            id,
            OpenSpan { track: track.0, lane, name: name.into(), kind, start_ns: t_ns, meta },
        );
        SpanHandle(id)
    }

    /// Closes a span, appending it to the buffer. Closing an unknown (or
    /// already-closed) handle is a no-op so call sites stay simple.
    pub fn end_span(&mut self, h: SpanHandle, t_ns: u64, outcome: SpanOutcome) {
        let Some(o) = self.open.remove(&h.0) else { return };
        self.lanes[o.track as usize].release(o.lane);
        self.push(TimelineEvent::Span(Span {
            id: h.0,
            track: o.track,
            lane: o.lane,
            name: o.name,
            kind: o.kind,
            start_ns: o.start_ns,
            end_ns: t_ns.max(o.start_ns),
            outcome,
            meta: o.meta,
        }));
    }

    /// Records an already-closed span in one call (used for retroactive
    /// spans like engine stages).
    pub fn record_span(
        &mut self,
        track: TrackId,
        start_ns: u64,
        end_ns: u64,
        name: impl Into<String>,
        kind: SpanKind,
        meta: SpanMeta,
    ) {
        let h = self.begin_span(track, start_ns, name, kind, meta);
        self.end_span(h, end_ns, SpanOutcome::Ok);
    }

    /// Records a point event.
    pub fn instant(
        &mut self,
        track: TrackId,
        t_ns: u64,
        kind: InstantKind,
        name: impl Into<String>,
        value: u64,
    ) {
        self.push(TimelineEvent::Instant(TInstant {
            track: track.0,
            t_ns,
            kind,
            name: name.into(),
            value,
        }));
    }

    /// Records one periodic sample.
    pub fn sample(&mut self, track: TrackId, t_ns: u64, name: impl Into<String>, value: f64) {
        self.push(TimelineEvent::Sample(Sample { track: track.0, t_ns, name: name.into(), value }));
    }

    /// Number of events recorded so far (excluding drops).
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Captures the recorder's complete in-flight state (including open
    /// spans, lane allocators, the span-id counter, and the metrics
    /// registry) for checkpointing. [`Recorder::from_state`] inverts it
    /// exactly, so a restored recorder continues producing the same span
    /// ids, lanes, and events as one that was never interrupted.
    pub fn state(&self) -> RecorderState {
        let mut open: Vec<OpenSpanState> = self
            .open
            .iter()
            .map(|(&id, o)| OpenSpanState {
                id,
                track: o.track,
                lane: o.lane,
                name: o.name.clone(),
                kind: o.kind,
                start_ns: o.start_ns,
                meta: o.meta.clone(),
            })
            .collect();
        open.sort_unstable_by_key(|o| o.id);
        let lanes = self
            .lanes
            .iter()
            .map(|l| {
                let mut free: Vec<u32> = l.free.iter().map(|Reverse(x)| *x).collect();
                free.sort_unstable();
                LaneState { free, next: l.next }
            })
            .collect();
        RecorderState {
            tracks: self.tracks.clone(),
            events: self.events.clone(),
            max_events: self.max_events as u64,
            dropped: self.dropped,
            next_span: self.next_span,
            open,
            lanes,
            metrics: self.metrics.state(),
        }
    }

    /// Rebuilds a recorder from a captured [`RecorderState`].
    pub fn from_state(st: RecorderState) -> Self {
        let mut r = Recorder::new(st.max_events as usize);
        r.tracks = st.tracks;
        r.events = st.events;
        r.dropped = st.dropped;
        r.next_span = st.next_span;
        r.open = st
            .open
            .into_iter()
            .map(|o| {
                (
                    o.id,
                    OpenSpan {
                        track: o.track,
                        lane: o.lane,
                        name: o.name,
                        kind: o.kind,
                        start_ns: o.start_ns,
                        meta: o.meta,
                    },
                )
            })
            .collect();
        r.lanes = st
            .lanes
            .into_iter()
            .map(|l| Lanes { free: l.free.into_iter().map(Reverse).collect(), next: l.next })
            .collect();
        r.metrics.restore(&st.metrics);
        r
    }

    /// Finalizes the recorder into a [`Timeline`] at `end_ns`. Spans still
    /// open (e.g. jobs never started because the run was abandoned) are
    /// closed as [`SpanOutcome::Cancelled`] in ID order, keeping the export
    /// deterministic.
    pub fn finish(mut self, end_ns: u64) -> Timeline {
        let mut leftover: Vec<u64> = self.open.keys().copied().collect();
        leftover.sort_unstable();
        for id in leftover {
            self.end_span(SpanHandle(id), end_ns, SpanOutcome::Cancelled);
        }
        let saturated_lanes = self.lanes.iter().map(|l| u64::from(l.next)).sum();
        Timeline {
            tracks: self.tracks,
            events: self.events,
            end_ns,
            dropped: self.dropped,
            saturated_lanes,
            metrics: self.metrics.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_and_lanes_are_deterministic() {
        let build = || {
            let mut r = Recorder::new(1024);
            let t = r.add_track("node:0", TrackKind::Node);
            let a = r.begin_span(t, 0, "a", SpanKind::Run, SpanMeta::default());
            let b = r.begin_span(t, 5, "b", SpanKind::Run, SpanMeta::default());
            r.end_span(a, 10, SpanOutcome::Ok);
            let c = r.begin_span(t, 12, "c", SpanKind::Run, SpanMeta::default());
            r.end_span(b, 20, SpanOutcome::Ok);
            r.end_span(c, 21, SpanOutcome::Ok);
            r.finish(21)
        };
        let (x, y) = (build(), build());
        assert_eq!(x, y);
        let spans: Vec<_> = x.spans().collect();
        assert_eq!(spans.len(), 3);
        // a and b overlap → lanes 0 and 1; c reuses a's freed lane 0.
        assert_eq!((spans[0].name.as_str(), spans[0].lane), ("a", 0));
        assert_eq!((spans[1].name.as_str(), spans[1].lane), ("b", 1));
        assert_eq!((spans[2].name.as_str(), spans[2].lane), ("c", 0));
        assert_eq!(spans.iter().map(|s| s.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn buffer_limit_counts_drops() {
        let mut r = Recorder::new(2);
        let t = r.add_track("x", TrackKind::Resource);
        for i in 0..5 {
            r.instant(t, i, InstantKind::CacheHit, "h", 1);
        }
        let tl = r.finish(5);
        assert_eq!(tl.events.len(), 2);
        assert_eq!(tl.dropped, 3);
    }

    #[test]
    fn finish_closes_open_spans_cancelled() {
        let mut r = Recorder::new(64);
        let t = r.add_track("n", TrackKind::Node);
        let _a = r.begin_span(t, 3, "stuck", SpanKind::Queued, SpanMeta::default());
        let tl = r.finish(9);
        let s: Vec<_> = tl.spans().collect();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].outcome, SpanOutcome::Cancelled);
        assert_eq!((s[0].start_ns, s[0].end_ns), (3, 9));
    }

    #[test]
    fn double_close_is_a_noop() {
        let mut r = Recorder::new(64);
        let t = r.add_track("n", TrackKind::Node);
        let a = r.begin_span(t, 0, "a", SpanKind::Run, SpanMeta::default());
        r.end_span(a, 1, SpanOutcome::Ok);
        r.end_span(a, 2, SpanOutcome::Failed);
        let tl = r.finish(2);
        assert_eq!(tl.spans().count(), 1);
        assert_eq!(tl.spans().next().unwrap().end_ns, 1);
    }

    #[test]
    fn subscriber_sees_recorded_order_exactly() {
        let mut r = Recorder::new(1024);
        let t = r.add_track("n", TrackKind::Node);
        let stream = r.subscribe(64);
        let a = r.begin_span(t, 0, "a", SpanKind::Run, SpanMeta::default());
        r.instant(t, 1, InstantKind::CacheHit, "h", 1);
        r.sample(t, 2, "depth", 1.0);
        r.end_span(a, 3, SpanOutcome::Ok);
        let got = stream.drain();
        let tl = r.finish(3);
        assert_eq!(got, tl.events, "stream order == recorded order");
        assert_eq!(stream.dropped(), 0);
        assert!(stream.is_empty(), "drain empties the ring");
    }

    #[test]
    fn subscriber_ring_drops_oldest_with_accounting() {
        let mut r = Recorder::new(1024);
        let t = r.add_track("n", TrackKind::Node);
        let stream = r.subscribe(2);
        for i in 0..5 {
            r.instant(t, i, InstantKind::CacheHit, format!("e{i}"), i);
        }
        assert_eq!(stream.dropped(), 3);
        let got = stream.drain();
        assert_eq!(got.len(), 2);
        // Ring keeps the *newest* events.
        assert!(matches!(&got[0], TimelineEvent::Instant(i) if i.name == "e3"));
        assert!(matches!(&got[1], TimelineEvent::Instant(i) if i.name == "e4"));
        // Drops are per-subscriber, not the recorder's.
        assert_eq!(r.finish(5).dropped, 0);
    }

    #[test]
    fn dropped_subscriber_detaches() {
        let mut r = Recorder::new(16);
        let t = r.add_track("n", TrackKind::Node);
        let stream = r.subscribe(4);
        assert_eq!(r.subscriber_count(), 1);
        drop(stream);
        r.instant(t, 0, InstantKind::CacheHit, "h", 1);
        assert_eq!(r.subscriber_count(), 0);
    }

    #[test]
    fn recorder_buffer_overflow_never_reaches_subscribers() {
        let mut r = Recorder::new(2);
        let t = r.add_track("x", TrackKind::Resource);
        let stream = r.subscribe(16);
        for i in 0..5 {
            r.instant(t, i, InstantKind::CacheMiss, "m", 1);
        }
        // Only the two recorded events were fed; recorder drops are invisible.
        assert_eq!(stream.drain().len(), 2);
        assert_eq!(stream.dropped(), 0);
    }

    #[test]
    fn saturated_lanes_sum_track_high_water() {
        let mut r = Recorder::new(64);
        let t0 = r.add_track("a", TrackKind::Node);
        let t1 = r.add_track("b", TrackKind::Node);
        let a = r.begin_span(t0, 0, "a", SpanKind::Run, SpanMeta::default());
        let b = r.begin_span(t0, 1, "b", SpanKind::Run, SpanMeta::default());
        r.end_span(a, 2, SpanOutcome::Ok);
        r.end_span(b, 3, SpanOutcome::Ok);
        // Lane 0 is reused on t0 afterwards: high water stays 2.
        let c = r.begin_span(t0, 4, "c", SpanKind::Run, SpanMeta::default());
        r.end_span(c, 5, SpanOutcome::Ok);
        let d = r.begin_span(t1, 4, "d", SpanKind::Run, SpanMeta::default());
        r.end_span(d, 6, SpanOutcome::Ok);
        assert_eq!(r.finish(6).saturated_lanes, 3);
    }

    #[test]
    fn end_never_precedes_start() {
        let mut r = Recorder::new(64);
        let t = r.add_track("n", TrackKind::Node);
        let a = r.begin_span(t, 10, "a", SpanKind::Run, SpanMeta::default());
        r.end_span(a, 4, SpanOutcome::Ok); // clamped
        assert_eq!(r.finish(10).spans().next().unwrap().end_ns, 10);
    }
}
