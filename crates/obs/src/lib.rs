//! # dfl-obs — deterministic observability for the simulation substrate
//!
//! A zero-overhead-when-disabled observability layer: the simulator (and the
//! workflow engine above it) record typed *spans* and *instants* in sim-time
//! into a bounded, append-only [`Timeline`] with stable IDs, alongside a
//! from-scratch [`metrics::MetricsRegistry`] (counters, gauges, fixed-bucket
//! histograms). Exporters render the timeline as Chrome-trace-format JSON
//! (loadable in Perfetto / `chrome://tracing`), a compact JSONL event
//! stream, or an ASCII utilization summary.
//!
//! # Determinism
//!
//! Everything here is driven by the simulator's deterministic event loop:
//! span IDs are assigned in emission order, completed events are appended in
//! close order, and lanes are allocated lowest-free-first. Two runs with the
//! same seed therefore produce byte-identical exports — which is what the
//! golden-trace test suite locks down.
//!
//! The recorder is owned behind an `Option`: a disabled run pays one branch
//! per potential emission site and allocates nothing.

pub mod export;
pub mod expo;
pub mod metrics;
pub mod timeline;
pub mod watchdog;

pub use export::{ascii_summary, chrome_trace, jsonl};
pub use expo::{escape_label_value, labeled, prometheus_text};
pub use metrics::{
    exponential_buckets, CounterId, GaugeId, HistogramId, MetricsRegistry, MetricsSnapshot,
    RegistryState,
};
pub use timeline::{
    EventStream, InstantKind, Recorder, RecorderState, Sample, Span, SpanHandle, SpanKind,
    SpanMeta, SpanOutcome, TInstant, Timeline, TimelineEvent, Track, TrackId, TrackKind,
};
pub use watchdog::{
    diagnosis_kind_label, Diagnosis, DiagnosisKind, Watchdog, WatchdogConfig, WatchdogState,
};

/// Observability configuration. `None` at the simulator level means fully
/// disabled (zero overhead); this struct configures an enabled recorder.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ObsConfig {
    /// Bound on recorded timeline events. Once full, further events are
    /// counted in [`Timeline::dropped`] instead of being recorded, keeping
    /// memory bounded on pathological runs while staying deterministic.
    pub max_events: usize,
    /// Periodic utilization/queue-depth sampling cadence in sim-time ns;
    /// `None` disables sampling (spans and instants are still recorded).
    pub sample_every_ns: Option<u64>,
    /// Anomaly watchdogs over the live stream; `None` (the default) runs no
    /// detectors. Enabled watchdogs perturb nothing unless a detector fires
    /// (the diagnosis track is created lazily on the first firing).
    pub watchdogs: Option<WatchdogConfig>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { max_events: 1 << 20, sample_every_ns: None, watchdogs: None }
    }
}

impl ObsConfig {
    /// Recording plus periodic sampling every `ns` of sim-time.
    pub fn sampled(ns: u64) -> Self {
        assert!(ns > 0, "sampling cadence must be positive");
        ObsConfig { sample_every_ns: Some(ns), ..ObsConfig::default() }
    }

    /// Adds anomaly watchdogs with the given thresholds.
    pub fn with_watchdogs(mut self, cfg: WatchdogConfig) -> Self {
        self.watchdogs = Some(cfg);
        self
    }
}
